#include "obs/metrics.h"

#include <algorithm>

namespace gb::obs {

namespace {

template <typename Pairs>
auto find_pair(const Pairs& pairs, const std::string& name)
    -> decltype(pairs.begin()) {
  return std::find_if(pairs.begin(), pairs.end(),
                      [&name](const auto& p) { return p.first == name; });
}

}  // namespace

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  const auto it = find_pair(counters, name);
  return it != counters.end() ? it->second : 0;
}

double MetricsSnapshot::gauge(const std::string& name) const {
  const auto it = find_pair(gauges, name);
  return it != gauges.end() ? it->second : 0.0;
}

void MetricsRegistry::incr(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::add(const std::string& name, double delta) {
  gauges_[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsRegistry::max_gauge(const std::string& name, double value) {
  auto [it, inserted] = gauges_.try_emplace(name, value);
  if (!inserted && value > it->second) it->second = value;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

double MetricsRegistry::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0.0;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.assign(counters_.begin(), counters_.end());
  snap.gauges.assign(gauges_.begin(), gauges_.end());
  return snap;
}

}  // namespace gb::obs
