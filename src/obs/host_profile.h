// HostProfiler: wall-clock profiling of the host thread pool.
//
// Collects the per-chunk samples a ThreadPool emits when a profile sink
// is attached (core/thread_pool.h): which chunk ran, on which pool
// thread, when it started, how long it took and how many chunks were
// still unclaimed. This is *host-side* observability — the numbers vary
// run to run and across `parallelism` settings — so exporters keep it in
// a clearly separated section (trace_json's "hostProfile"), never mixed
// into the deterministic simulated timeline or the metrics registry.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "core/thread_pool.h"

namespace gb::obs {

class HostProfiler final : public ChunkProfileSink {
 public:
  struct Sample {
    std::size_t chunk = 0;         // index in the deterministic chunk plan
    std::size_t thread = 0;        // pool worker, or pool size for the caller
    double start_sec = 0.0;        // wall-clock, relative to sink attach
    double duration_sec = 0.0;     // wall-clock chunk execution time
    std::size_t pending = 0;       // chunks still unclaimed at pickup
  };

  void on_chunk(std::size_t chunk, std::size_t thread, double start_sec,
                double duration_sec, std::size_t pending) override;

  /// Copy of all samples collected so far (thread-safe).
  std::vector<Sample> samples() const;

  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<Sample> samples_;
};

}  // namespace gb::obs
