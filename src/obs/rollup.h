// Campaign-level metrics rollup: merges per-cell MetricsSnapshots into one
// aggregate snapshot (counters and gauges sum by name). Counter sums are
// exact; gauge sums are floating-point and therefore order-sensitive in
// the last ulp, so callers that need byte-stable rollups (the campaign
// report does) must add cells in a deterministic order — the runner uses
// grid-expansion order, never completion order.
#pragma once

#include <cstddef>

#include "obs/metrics.h"

namespace gb::obs {

/// Name-wise sum of two snapshots; the result is sorted by name like any
/// registry snapshot.
MetricsSnapshot merge_snapshots(const MetricsSnapshot& a,
                                const MetricsSnapshot& b);

/// Accumulator over many cells; add() order fixes the gauge-sum order.
class MetricsRollup {
 public:
  void add(const MetricsSnapshot& snapshot);

  const MetricsSnapshot& total() const { return total_; }
  std::size_t cells() const { return cells_; }

 private:
  MetricsSnapshot total_;
  std::size_t cells_ = 0;
};

}  // namespace gb::obs
