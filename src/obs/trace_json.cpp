#include "obs/trace_json.h"

#include <cstdint>
#include <fstream>

#include "core/error.h"
#include "harness/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/cluster.h"
#include "sim/monitor.h"

namespace gb::obs {

namespace {

using harness::JsonWriter;

constexpr double kMicros = 1e6;  // trace-event timestamps are in µs

void write_event_header(JsonWriter& json, const char* ph, std::uint64_t pid) {
  json.key("ph");
  json.value(ph);
  json.key("pid");
  json.value(pid);
  json.key("tid");
  json.value(std::uint64_t{0});
}

void write_process_name(JsonWriter& json, std::uint64_t pid,
                        const std::string& name) {
  json.begin_object();
  json.key("name");
  json.value("process_name");
  write_event_header(json, "M", pid);
  json.key("args");
  json.begin_object();
  json.key("name");
  json.value(name);
  json.end_object();
  json.end_object();
}

/// Counter ("C") track sampled from one node's usage trace at the bucket
/// midpoints the paper's figures use. All sampled values come from the
/// simulated timeline, so the track is parallelism-independent.
void write_counter_track(JsonWriter& json, const sim::UsageTrace& trace,
                         std::uint64_t pid, const TraceMeta& meta) {
  if (meta.total_time <= 0.0 || meta.counter_points <= 0 || trace.empty()) {
    return;
  }
  for (int i = 0; i < meta.counter_points; ++i) {
    const SimTime t = meta.total_time * (static_cast<double>(i) + 0.5) /
                      static_cast<double>(meta.counter_points);
    const sim::UsageSample sample = trace.at(t);
    json.begin_object();
    json.key("name");
    json.value("usage");
    write_event_header(json, "C", pid);
    json.key("ts");
    json.value(t * kMicros);
    json.key("args");
    json.begin_object();
    json.key("cpu_cores");
    json.value(sample.cpu_cores);
    json.key("mem_bytes");
    json.value(sample.mem_bytes);
    json.key("net_bps");
    json.value(sample.net_in_bps + sample.net_out_bps);
    json.end_object();
    json.end_object();
  }
}

}  // namespace

std::string trace_to_json(const sim::Cluster& cluster, const TraceMeta& meta,
                          const HostProfiler* host_profile) {
  JsonWriter json;
  json.begin_object();
  json.key("displayTimeUnit");
  json.value("ms");

  json.key("otherData");
  json.begin_object();
  json.key("platform");
  json.value(meta.platform);
  json.key("dataset");
  json.value(meta.dataset);
  json.key("algorithm");
  json.value(meta.algorithm);
  json.key("outcome");
  json.value(meta.outcome);
  json.key("total_time_sec");
  json.value(meta.total_time);
  json.key("num_workers");
  json.value(std::uint64_t{cluster.num_workers()});
  json.key("cores_per_worker");
  json.value(std::uint64_t{cluster.cores_per_worker()});
  json.end_object();

  json.key("traceEvents");
  json.begin_array();

  // One trace-event "process" per simulated node.
  write_process_name(json, 0, "master");
  for (std::uint32_t w = 0; w < cluster.num_workers(); ++w) {
    write_process_name(json, w + 1, "worker-" + std::to_string(w));
  }

  // Engine phases: the whole cluster advances through them in lockstep
  // (bulk-synchronous semantics), so spans live on the master timeline
  // with the participating worker count in args.
  for (const TraceSpan& span : cluster.trace().spans()) {
    json.begin_object();
    json.key("name");
    json.value(span.name);
    json.key("cat");
    json.value(span.category);
    write_event_header(json, "X", 0);
    json.key("ts");
    json.value(span.begin * kMicros);
    json.key("dur");
    json.value((span.end - span.begin) * kMicros);
    json.key("args");
    json.begin_object();
    json.key("computation");
    json.value(span.computation);
    json.key("workers");
    json.value(std::uint64_t{span.workers});
    // Only multi-tenant runs tag spans; omitting the key otherwise keeps
    // single-job trace files byte-identical to earlier versions.
    if (!span.job.empty()) {
      json.key("job");
      json.value(span.job);
    }
    json.end_object();
    json.end_object();
  }

  // Fault injections: instants pinned to the affected node.
  for (const TraceInstant& instant : cluster.trace().instants()) {
    json.begin_object();
    json.key("name");
    json.value(instant.name);
    json.key("cat");
    json.value(instant.category);
    write_event_header(json, "i", std::uint64_t{instant.worker} + 1);
    json.key("ts");
    json.value(instant.time * kMicros);
    json.key("s");
    json.value("g");
    if (!instant.job.empty()) {
      json.key("args");
      json.begin_object();
      json.key("job");
      json.value(instant.job);
      json.end_object();
    }
    json.end_object();
  }

  // Resource-usage counter tracks per node.
  write_counter_track(json, cluster.master_trace(), 0, meta);
  for (std::uint32_t w = 0; w < cluster.num_workers(); ++w) {
    write_counter_track(json, cluster.worker_trace(w), w + 1, meta);
  }

  json.end_array();

  const MetricsSnapshot metrics = cluster.metrics().snapshot();
  json.key("metrics");
  json.begin_object();
  json.key("counters");
  json.begin_object();
  for (const auto& [name, value] : metrics.counters) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  json.key("gauges");
  json.begin_object();
  for (const auto& [name, value] : metrics.gauges) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  json.end_object();

  // Host wall-clock samples: opt-in and clearly separated, because they
  // vary run to run and across parallelism settings.
  if (host_profile != nullptr) {
    json.key("hostProfile");
    json.begin_array();
    for (const HostProfiler::Sample& s : host_profile->samples()) {
      json.begin_object();
      json.key("chunk");
      json.value(std::uint64_t{s.chunk});
      json.key("thread");
      json.value(std::uint64_t{s.thread});
      json.key("start_sec");
      json.value(s.start_sec);
      json.key("duration_sec");
      json.value(s.duration_sec);
      json.key("pending");
      json.value(std::uint64_t{s.pending});
      json.end_object();
    }
    json.end_array();
  }

  json.end_object();
  return json.str();
}

void write_trace_file(const std::string& path, const sim::Cluster& cluster,
                      const TraceMeta& meta, const HostProfiler* host_profile) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open trace file '" + path + "' for writing");
  out << trace_to_json(cluster, meta, host_profile) << '\n';
  if (!out) throw Error("failed writing trace file '" + path + "'");
}

}  // namespace gb::obs
