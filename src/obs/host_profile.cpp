#include "obs/host_profile.h"

namespace gb::obs {

void HostProfiler::on_chunk(std::size_t chunk, std::size_t thread,
                            double start_sec, double duration_sec,
                            std::size_t pending) {
  std::lock_guard lock(mutex_);
  Sample sample;
  sample.chunk = chunk;
  sample.thread = thread;
  sample.start_sec = start_sec;
  sample.duration_sec = duration_sec;
  sample.pending = pending;
  samples_.push_back(sample);
}

std::vector<HostProfiler::Sample> HostProfiler::samples() const {
  std::lock_guard lock(mutex_);
  return samples_;
}

std::size_t HostProfiler::size() const {
  std::lock_guard lock(mutex_);
  return samples_.size();
}

void HostProfiler::clear() {
  std::lock_guard lock(mutex_);
  samples_.clear();
}

}  // namespace gb::obs
