// MetricsRegistry: named counters and gauges for the observability layer.
//
// Engines, the fault injector and the host-pool plumbing increment
// counters (integral event counts: tasks scheduled, retries, checkpoints)
// and accumulate gauges (continuous quantities: shuffle bytes, straggler
// delay seconds) while a run executes. Everything recorded here must be
// derived from *simulated* quantities so that a run reports identical
// metrics at every host `parallelism` setting — host-side wall-clock
// observations belong in obs::HostProfiler, never in this registry.
//
// Iteration order is deterministic (sorted by name), so snapshots can be
// serialized into byte-stable reports and trace files.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace gb::obs {

/// Point-in-time copy of a registry, sorted by metric name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;

  bool empty() const { return counters.empty() && gauges.empty(); }

  /// Counter value by exact name; 0 when absent.
  std::uint64_t counter(const std::string& name) const;
  /// Gauge value by exact name; 0.0 when absent.
  double gauge(const std::string& name) const;
};

class MetricsRegistry {
 public:
  /// Add `delta` to the named counter (created at 0).
  void incr(const std::string& name, std::uint64_t delta = 1);

  /// Accumulate `delta` into the named gauge (created at 0.0).
  void add(const std::string& name, double delta);

  /// Overwrite the named gauge.
  void set_gauge(const std::string& name, double value);

  /// Raise the named gauge to `value` if it is larger (peak tracking).
  void max_gauge(const std::string& name, double value);

  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;

  bool empty() const { return counters_.empty() && gauges_.empty(); }
  void clear();

  MetricsSnapshot snapshot() const;

 private:
  // std::map: sorted, deterministic iteration for serialization.
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
};

}  // namespace gb::obs
