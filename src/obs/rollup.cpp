#include "obs/rollup.h"

namespace gb::obs {
namespace {

/// Merge two name-sorted (name, value) lists by summing values of equal
/// names. Classic sorted-merge, so the output stays sorted.
template <typename T>
std::vector<std::pair<std::string, T>> merge_sorted(
    const std::vector<std::pair<std::string, T>>& a,
    const std::vector<std::pair<std::string, T>>& b) {
  std::vector<std::pair<std::string, T>> out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      out.push_back(a[i++]);
    } else if (b[j].first < a[i].first) {
      out.push_back(b[j++]);
    } else {
      out.emplace_back(a[i].first, a[i].second + b[j].second);
      ++i;
      ++j;
    }
  }
  while (i < a.size()) out.push_back(a[i++]);
  while (j < b.size()) out.push_back(b[j++]);
  return out;
}

}  // namespace

MetricsSnapshot merge_snapshots(const MetricsSnapshot& a,
                                const MetricsSnapshot& b) {
  MetricsSnapshot merged;
  merged.counters = merge_sorted(a.counters, b.counters);
  merged.gauges = merge_sorted(a.gauges, b.gauges);
  return merged;
}

void MetricsRollup::add(const MetricsSnapshot& snapshot) {
  total_ = merge_snapshots(total_, snapshot);
  ++cells_;
}

}  // namespace gb::obs
