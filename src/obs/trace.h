// TraceRecorder: a per-run timeline of engine phases keyed to simulated
// time.
//
// Every phase a platform engine accounts through PhaseRecorder lands here
// as a span (name, category, computation/overhead flag, worker count);
// fault injections land as instant events pinned to the affected node.
// Because span times come from the cost model — never from the host
// clock — the recorded timeline is bit-identical at every host
// `parallelism` setting, which is what makes the exported trace files
// (obs/trace_json.h) byte-stable and diffable across runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace gb::obs {

/// One engine phase on the simulated timeline (half-open [begin, end)).
struct TraceSpan {
  std::string name;
  std::string category;  // "computation", "overhead", "recovery", ...
  SimTime begin = 0.0;
  SimTime end = 0.0;
  bool computation = false;   // the paper's Tc / To split
  std::uint32_t workers = 0;  // computing nodes participating
  /// Serving-layer job this span belongs to (the job key); empty for a
  /// single-job run. Stamped by the recorder's job tag so every engine
  /// phase of a multi-tenant run is attributable to its job.
  std::string job;
};

/// A point event on the timeline (e.g. an injected fault firing).
struct TraceInstant {
  std::string name;
  std::string category;  // "fault", ...
  SimTime time = 0.0;
  std::uint32_t worker = 0;  // affected computing node
  std::string job;  // owning serving-layer job; empty for single-job runs
};

class TraceRecorder {
 public:
  /// Tag every subsequently recorded span/instant with the given job key
  /// (multi-tenant runs give each job's cluster its own recorder, so one
  /// tag per recorder is the common case). Empty disables tagging.
  void set_job_tag(std::string tag) { job_tag_ = std::move(tag); }
  const std::string& job_tag() const { return job_tag_; }

  void add_span(std::string name, std::string category, SimTime begin,
                SimTime end, bool computation, std::uint32_t workers) {
    TraceSpan span;
    span.name = std::move(name);
    span.category = std::move(category);
    span.begin = begin;
    span.end = end;
    span.computation = computation;
    span.workers = workers;
    span.job = job_tag_;
    spans_.push_back(std::move(span));
  }

  void add_instant(std::string name, std::string category, SimTime time,
                   std::uint32_t worker) {
    TraceInstant instant;
    instant.name = std::move(name);
    instant.category = std::move(category);
    instant.time = time;
    instant.worker = worker;
    instant.job = job_tag_;
    instants_.push_back(std::move(instant));
  }

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<TraceInstant>& instants() const { return instants_; }

  bool empty() const { return spans_.empty() && instants_.empty(); }

  void clear() {
    spans_.clear();
    instants_.clear();
  }

 private:
  std::vector<TraceSpan> spans_;      // in recording (= simulated) order
  std::vector<TraceInstant> instants_;
  std::string job_tag_;
};

}  // namespace gb::obs
