// Chrome trace-event JSON export of a run's observability data.
//
// Serializes the Cluster's TraceRecorder spans/instants, resource-usage
// counter tracks and metrics snapshot into the trace-event format that
// chrome://tracing and Perfetto load directly: one "process" per
// simulated node (pid 0 = master, pid i+1 = worker i), engine phases as
// complete ("X") spans, fault injections as instant ("i") events pinned
// to the affected node, and cpu/memory/network counter ("C") tracks
// sampled from each node's UsageTrace.
//
// Every value is derived from simulated quantities, so the emitted bytes
// are identical at every host `parallelism` setting. Host wall-clock
// profiling (obs::HostProfiler) is the one exception: it is only folded
// in — under a separate top-level "hostProfile" key — when the caller
// explicitly passes a profiler, keeping the default output byte-stable.
#pragma once

#include <string>

#include "core/types.h"
#include "obs/host_profile.h"

namespace gb::sim {
class Cluster;
}  // namespace gb::sim

namespace gb::obs {

/// Run identification stamped into the trace's "otherData" section.
struct TraceMeta {
  std::string platform;
  std::string dataset;
  std::string algorithm;
  std::string outcome;       // outcome_label() of the run's Measurement
  SimTime total_time = 0.0;  // simulated seconds; 0 skips counter tracks
  int counter_points = 100;  // samples per usage counter track
};

/// The full trace document as a compact JSON string.
std::string trace_to_json(const sim::Cluster& cluster, const TraceMeta& meta,
                          const HostProfiler* host_profile = nullptr);

/// trace_to_json written to `path`; throws gb::Error when the file
/// cannot be written.
void write_trace_file(const std::string& path, const sim::Cluster& cluster,
                      const TraceMeta& meta,
                      const HostProfiler* host_profile = nullptr);

}  // namespace gb::obs
