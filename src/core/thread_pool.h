// Minimal work-sharing thread pool with a blocked-range parallel_for and
// a deterministically chunked parallel_chunks.
//
// Platform engines use it to run per-partition work concurrently on the
// host while the *simulated* cluster time is accounted separately by the
// cost model. On a single-core host the pool degrades to serial execution
// with no thread creation.
//
// Determinism contract: `parallel_for` splits [0, n) into one block per
// worker, so the split depends on the pool size — fine for loops whose
// result is independent of the split (disjoint element writes), wrong for
// anything that accumulates per-block state. Engines that need
// bit-identical results at any thread count use `plan_chunks` +
// `parallel_chunks` (or the `run_chunks` helper): the chunk plan is a pure
// function of n alone, and per-chunk accumulators are merged by the caller
// serially in ascending chunk order. The serial path executes the *same*
// plan inline, so parallelism only changes wall-clock time, never output.
//
// Nested calls: a worker thread that re-enters parallel_for /
// parallel_chunks on the pool it belongs to runs the loop inline instead
// of enqueueing (enqueueing from a worker can deadlock once every worker
// blocks waiting for tasks nobody is free to run).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace gb {

/// Host-side wall-clock profiling hook. When a sink is attached to a
/// pool, every chunk executed through parallel_chunks (and run_chunks
/// routed over that pool) reports: its index in the deterministic chunk
/// plan, the executing thread (pool workers are 0..size-1; the calling
/// thread reports the pool size), seconds since the sink was attached,
/// its wall-clock duration, and how many chunks were still unclaimed
/// when it was picked up (queue depth). Implementations must be
/// thread-safe; obs::HostProfiler is the standard collector. Profiling
/// observes wall-clock only — it never changes chunk plans or results.
class ChunkProfileSink {
 public:
  virtual ~ChunkProfileSink() = default;
  virtual void on_chunk(std::size_t chunk, std::size_t thread,
                        double start_sec, double duration_sec,
                        std::size_t pending) = 0;
};

class ThreadPool {
 public:
  /// Default chunk size for plan_chunks: small enough to split the
  /// generator graphs used in tests, large enough that per-chunk
  /// dispatch overhead is noise on real datasets.
  static constexpr std::size_t kDefaultGrain = 512;
  /// Upper bound on chunks per loop; caps serial merge cost and keeps
  /// chunked floating-point sums short.
  static constexpr std::size_t kMaxChunks = 64;

  /// threads == 0 picks hardware_concurrency(); a pool of size 1 runs
  /// tasks inline on the caller, avoiding thread overhead entirely.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return size_; }

  /// Run fn(begin, end) over [0, n) split into roughly equal blocks, one
  /// per worker, and wait for completion. Exceptions from workers are
  /// rethrown on the caller (first one wins). The split depends on the
  /// pool size — use only when the result does not depend on the split.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Deterministic chunk count for a loop of n iterations: a pure
  /// function of n (and grain), never of the pool size. 0 when n == 0.
  static std::size_t plan_chunks(std::size_t n,
                                 std::size_t grain = kDefaultGrain);

  /// Half-open range [begin, end) of chunk c under the fixed plan.
  static std::pair<std::size_t, std::size_t> chunk_range(std::size_t n,
                                                         std::size_t chunks,
                                                         std::size_t c);

  /// Run fn(chunk, begin, end) for every chunk in [0, chunks) with ranges
  /// from chunk_range(n, chunks, c), and wait for completion. Chunks may
  /// execute in any order and concurrently; callers needing determinism
  /// keep per-chunk state and merge it in ascending chunk order after the
  /// call returns. Exceptions: first one wins, rethrown on the caller.
  void parallel_chunks(
      std::size_t n, std::size_t chunks,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Process-wide default pool (hardware concurrency).
  static ThreadPool& global();

  /// Process-wide pool of size 1 — the `parallelism=1` serial baseline.
  static ThreadPool& serial();

  /// Attach a wall-clock profile sink (nullptr detaches). The sink's
  /// clock starts at attach time. The sink must outlive any
  /// parallel_chunks call issued while it is attached.
  void set_profile_sink(ChunkProfileSink* sink);

 private:
  void worker_loop(std::size_t index);
  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  std::size_t size_;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<ChunkProfileSink*> profile_sink_{nullptr};
  std::chrono::steady_clock::time_point profile_epoch_{};
};

/// Deterministically chunked loop: executes the plan_chunks(n, grain) plan
/// via `pool` when it can run concurrently, otherwise inline in ascending
/// chunk order on the caller. A null pool means "serial". Results must be
/// assembled per chunk and merged in chunk order by the caller; under that
/// rule the output is bit-identical for every pool size, including null.
void run_chunks(
    ThreadPool* pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    std::size_t grain = ThreadPool::kDefaultGrain);

}  // namespace gb
