// Minimal work-sharing thread pool with a blocked-range parallel_for.
//
// Platform engines use it to run per-partition work concurrently on the
// host while the *simulated* cluster time is accounted separately by the
// cost model. On a single-core host the pool degrades to serial execution
// with no thread creation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gb {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency(); a pool of size 1 runs
  /// tasks inline on the caller, avoiding thread overhead entirely.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return size_; }

  /// Run fn(begin, end) over [0, n) split into roughly equal blocks, one
  /// per worker, and wait for completion. Exceptions from workers are
  /// rethrown on the caller (first one wins).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide default pool.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::size_t size_;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace gb
