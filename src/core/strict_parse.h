// One strict numeric parser for the whole tree.
//
// std::stoull and friends accept partial garbage ("12abc"), skip leading
// whitespace, silently wrap negative input into huge unsigned values, and
// throw uncaught exceptions on overflow. These helpers return
// std::nullopt for anything that is not a complete, in-range (and for
// doubles, finite) literal. Callers map nullopt onto their own error
// channel: the gb_* tools print usage(), sim/faults.cpp throws its
// malformed-spec Error.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>

namespace gb::strict {

inline std::optional<std::uint64_t> parse_u64(const std::string& text,
                                              std::uint64_t min_value = 0) {
  // Plain digit strings only: stoull skips whitespace, wraps "-1", and
  // accepts a leading "+"; requiring a leading digit rejects all three.
  if (text.empty() || text[0] < '0' || text[0] > '9') return std::nullopt;
  try {
    std::size_t pos = 0;
    const std::uint64_t parsed = std::stoull(text, &pos);
    if (pos != text.size() || parsed < min_value) return std::nullopt;
    return parsed;
  } catch (...) {
    return std::nullopt;
  }
}

inline std::optional<std::uint32_t> parse_u32(const std::string& text,
                                              std::uint32_t min_value = 0) {
  const auto parsed = parse_u64(text, min_value);
  if (!parsed || *parsed > std::numeric_limits<std::uint32_t>::max()) {
    return std::nullopt;
  }
  return static_cast<std::uint32_t>(*parsed);
}

inline std::optional<double> parse_double(
    const std::string& text,
    double min_value = std::numeric_limits<double>::lowest()) {
  if (text.empty()) return std::nullopt;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(text, &pos);
    // Reject partial parses ("1.5x") and the non-finite spellings stod
    // accepts without throwing ("inf", "nan"). Out-of-range literals like
    // "1e999" make stod throw and land in the catch.
    if (pos != text.size() || !std::isfinite(parsed) || parsed < min_value) {
      return std::nullopt;
    }
    return parsed;
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace gb::strict
