#include "core/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace gb {
namespace {

// Set for the duration of worker_loop so nested parallel calls from a
// worker onto its own pool can be detected and run inline.
thread_local const ThreadPool* tl_worker_pool = nullptr;
thread_local std::size_t tl_worker_index = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  size_ = threads;
  if (size_ == 1) return;  // inline mode: no worker threads
  workers_.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_worker_pool = this;
  tl_worker_index = index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) break;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
  tl_worker_pool = nullptr;
}

bool ThreadPool::on_worker_thread() const { return tl_worker_pool == this; }

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (size_ == 1 || n < 2 || on_worker_thread()) {
    fn(0, n);
    return;
  }

  const std::size_t blocks = std::min(size_, n);
  const std::size_t chunk = (n + blocks - 1) / blocks;

  std::atomic<std::size_t> remaining{blocks};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::condition_variable done_cv;
  std::mutex done_mutex;

  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    auto task = [&, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_one();
      }
    };
    {
      std::lock_guard lock(mutex_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t ThreadPool::plan_chunks(std::size_t n, std::size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return std::min(kMaxChunks, (n + grain - 1) / grain);
}

std::pair<std::size_t, std::size_t> ThreadPool::chunk_range(std::size_t n,
                                                            std::size_t chunks,
                                                            std::size_t c) {
  const std::size_t per = (n + chunks - 1) / chunks;
  const std::size_t begin = std::min(n, c * per);
  const std::size_t end = std::min(n, begin + per);
  return {begin, end};
}

void ThreadPool::set_profile_sink(ChunkProfileSink* sink) {
  profile_epoch_ = std::chrono::steady_clock::now();
  profile_sink_.store(sink, std::memory_order_release);
}

void ThreadPool::parallel_chunks(
    std::size_t n, std::size_t chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0 || chunks == 0) return;
  // Wall-clock profiling wrapper; a null sink costs one atomic load per
  // parallel_chunks call and nothing per chunk.
  ChunkProfileSink* const sink =
      profile_sink_.load(std::memory_order_acquire);
  const auto epoch = profile_epoch_;
  const auto run_one = [&fn, sink, epoch, n, chunks](std::size_t c,
                                                     std::size_t thread,
                                                     std::size_t pending) {
    const auto [begin, end] = chunk_range(n, chunks, c);
    if (sink == nullptr) {
      fn(c, begin, end);
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    fn(c, begin, end);
    const auto t1 = std::chrono::steady_clock::now();
    sink->on_chunk(c, thread,
                   std::chrono::duration<double>(t0 - epoch).count(),
                   std::chrono::duration<double>(t1 - t0).count(), pending);
  };
  if (size_ == 1 || chunks == 1 || on_worker_thread()) {
    const std::size_t caller =
        on_worker_thread() ? tl_worker_index : size_;
    for (std::size_t c = 0; c < chunks; ++c) {
      run_one(c, caller, chunks - c - 1);
    }
    return;
  }

  // One claiming task per worker (bounded by chunks); each task drains
  // chunks off a shared cursor so a slow chunk cannot stall the rest.
  const std::size_t tasks = std::min(size_, chunks);
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);

  std::atomic<std::size_t> remaining{tasks};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::condition_variable done_cv;
  std::mutex done_mutex;

  for (std::size_t t = 0; t < tasks; ++t) {
    auto task = [&, cursor, chunks] {
      try {
        for (;;) {
          const std::size_t c = cursor->fetch_add(1);
          if (c >= chunks) break;
          run_one(c, tl_worker_index, chunks - std::min(chunks, c + 1));
        }
      } catch (...) {
        cursor->store(chunks);  // fail fast: stop handing out chunks
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_one();
      }
    };
    {
      std::lock_guard lock(mutex_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool& ThreadPool::serial() {
  static ThreadPool pool(1);
  return pool;
}

void run_chunks(
    ThreadPool* pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  const std::size_t chunks = ThreadPool::plan_chunks(n, grain);
  if (chunks == 0) return;
  if (pool != nullptr) {
    // Route even size-1 pools through parallel_chunks: it executes the
    // same plan inline, in the same ascending order, and honours any
    // attached profile sink.
    pool->parallel_chunks(n, chunks, fn);
    return;
  }
  for (std::size_t c = 0; c < chunks; ++c) {
    const auto [begin, end] = ThreadPool::chunk_range(n, chunks, c);
    fn(c, begin, end);
  }
}

}  // namespace gb
