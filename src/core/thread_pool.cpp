#include "core/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace gb {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  size_ = threads;
  if (size_ == 1) return;  // inline mode: no worker threads
  workers_.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (size_ == 1 || n < 2) {
    fn(0, n);
    return;
  }

  const std::size_t blocks = std::min(size_, n);
  const std::size_t chunk = (n + blocks - 1) / blocks;

  std::atomic<std::size_t> remaining{blocks};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::condition_variable done_cv;
  std::mutex done_mutex;

  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    auto task = [&, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_one();
      }
    };
    {
      std::lock_guard lock(mutex_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gb
