// Compressed sparse row (CSR) graph and its builder.
//
// This is the in-memory graph representation shared by every substrate:
// dataset generators emit it, platform engines partition it, algorithms
// traverse it. Directed graphs keep both out- and in-adjacency (the paper's
// text format stores both lists per vertex); undirected graphs store each
// edge in the adjacency of both endpoints and report the logical edge count.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/types.h"

namespace gb {

class GraphBuilder;

class Graph {
 public:
  Graph() = default;

  bool directed() const { return directed_; }
  VertexId num_vertices() const { return num_vertices_; }

  /// Logical edge count: distinct arcs for directed graphs, distinct
  /// unordered pairs for undirected graphs (matches the paper's Table 2).
  EdgeId num_edges() const { return num_edges_; }

  /// Stored adjacency entries (= 2 * num_edges() for undirected graphs).
  EdgeId num_adjacency_entries() const { return out_adj_.size(); }

  std::span<const VertexId> out_neighbors(VertexId v) const {
    return {out_adj_.data() + out_offsets_[v],
            out_adj_.data() + out_offsets_[v + 1]};
  }

  /// For undirected graphs in-neighbors alias out-neighbors.
  std::span<const VertexId> in_neighbors(VertexId v) const {
    if (!directed_) return out_neighbors(v);
    return {in_adj_.data() + in_offsets_[v], in_adj_.data() + in_offsets_[v + 1]};
  }

  EdgeId out_degree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }

  EdgeId in_degree(VertexId v) const {
    if (!directed_) return out_degree(v);
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Degree used by undirected algorithms; for directed graphs this is
  /// out-degree (the paper propagates along out-edges only).
  EdgeId degree(VertexId v) const { return out_degree(v); }

  /// Position of v's adjacency in the flat CSR arrays (valid for
  /// v <= num_vertices(); the last offset is the total entry count).
  /// Byte-addressed consumers — the paged storage layer — map these to
  /// page coordinates. For undirected graphs in_offset aliases out_offset,
  /// like the adjacency itself.
  EdgeId out_offset(VertexId v) const { return out_offsets_[v]; }
  EdgeId in_offset(VertexId v) const {
    return directed_ ? in_offsets_[v] : out_offsets_[v];
  }

  /// Binary search in the (sorted) out-adjacency.
  bool has_edge(VertexId u, VertexId v) const;

  /// Bytes this graph occupies when serialized in the paper's plain-text
  /// format (used for disk-size-sensitive experiments such as ingestion).
  Bytes text_size_bytes() const;

  /// Fast binary (de)serialization, used by the dataset cache so large
  /// generated graphs are built once per machine rather than per binary.
  void save_binary(const std::string& path) const;
  static Graph load_binary(const std::string& path);

 private:
  friend class GraphBuilder;

  bool directed_ = false;
  VertexId num_vertices_ = 0;
  EdgeId num_edges_ = 0;
  std::vector<EdgeId> out_offsets_;
  std::vector<VertexId> out_adj_;
  std::vector<EdgeId> in_offsets_;   // directed only
  std::vector<VertexId> in_adj_;     // directed only
};

/// Accumulates edges, then produces a canonical Graph: sorted adjacency,
/// parallel edges and self-loops removed, undirected edges symmetrized.
class GraphBuilder {
 public:
  GraphBuilder(VertexId num_vertices, bool directed);

  VertexId num_vertices() const { return num_vertices_; }
  bool directed() const { return directed_; }

  /// Queue an edge. For undirected graphs (u, v) and (v, u) are the same
  /// edge; either may be added. Self-loops are dropped at build time.
  void add_edge(VertexId u, VertexId v);

  /// Number of queued (pre-dedup) edges.
  std::size_t pending_edges() const { return edges_.size(); }

  /// Grow the vertex set (used by the evolution algorithm).
  void grow_to(VertexId num_vertices);

  /// Build the canonical graph. The builder is left empty.
  Graph build();

 private:
  VertexId num_vertices_;
  bool directed_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace gb
