// Compressed sparse row (CSR) graph and its builder.
//
// This is the in-memory graph representation shared by every substrate:
// dataset generators emit it, platform engines partition it, algorithms
// traverse it. Directed graphs keep both out- and in-adjacency (the paper's
// text format stores both lists per vertex); undirected graphs store each
// edge in the adjacency of both endpoints and report the logical edge count.
//
// Edge weights are optional. A graph built with weighted add_edge calls
// stores per-entry weight arrays parallel to the adjacency; unweighted
// graphs store nothing extra and serialize byte-identically to the
// pre-weight binary format. Algorithms that need weights on an unweighted
// graph (Graphalytics SSSP on the paper's datasets) use the EdgeWeights
// view, which derives a deterministic weight per edge from a seed without
// materializing anything.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/types.h"

namespace gb {

class GraphBuilder;

class Graph {
 public:
  Graph() = default;

  bool directed() const { return directed_; }
  VertexId num_vertices() const { return num_vertices_; }

  /// Logical edge count: distinct arcs for directed graphs, distinct
  /// unordered pairs for undirected graphs (matches the paper's Table 2).
  EdgeId num_edges() const { return num_edges_; }

  /// Stored adjacency entries (= 2 * num_edges() for undirected graphs).
  EdgeId num_adjacency_entries() const { return out_adj_.size(); }

  std::span<const VertexId> out_neighbors(VertexId v) const {
    return {out_adj_.data() + out_offsets_[v],
            out_adj_.data() + out_offsets_[v + 1]};
  }

  /// For undirected graphs in-neighbors alias out-neighbors.
  std::span<const VertexId> in_neighbors(VertexId v) const {
    if (!directed_) return out_neighbors(v);
    return {in_adj_.data() + in_offsets_[v], in_adj_.data() + in_offsets_[v + 1]};
  }

  EdgeId out_degree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }

  EdgeId in_degree(VertexId v) const {
    if (!directed_) return out_degree(v);
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Degree used by undirected algorithms; for directed graphs this is
  /// out-degree (the paper propagates along out-edges only).
  EdgeId degree(VertexId v) const { return out_degree(v); }

  /// Position of v's adjacency in the flat CSR arrays (valid for
  /// v <= num_vertices(); the last offset is the total entry count).
  /// Byte-addressed consumers — the paged storage layer — map these to
  /// page coordinates. For undirected graphs in_offset aliases out_offset,
  /// like the adjacency itself.
  EdgeId out_offset(VertexId v) const { return out_offsets_[v]; }
  EdgeId in_offset(VertexId v) const {
    return directed_ ? in_offsets_[v] : out_offsets_[v];
  }

  /// True when the graph carries stored per-edge weights.
  bool weighted() const { return weighted_; }

  /// Stored weights parallel to out_neighbors(v). Empty span per vertex
  /// when the graph is unweighted (use EdgeWeights for derived weights).
  std::span<const EdgeWeight> out_weights(VertexId v) const {
    if (!weighted_) return {};
    return {out_weights_.data() + out_offsets_[v],
            out_weights_.data() + out_offsets_[v + 1]};
  }

  /// Stored weights parallel to in_neighbors(v); for undirected graphs
  /// they alias out_weights (each edge has one symmetric weight).
  std::span<const EdgeWeight> in_weights(VertexId v) const {
    if (!weighted_) return {};
    if (!directed_) return out_weights(v);
    return {in_weights_.data() + in_offsets_[v],
            in_weights_.data() + in_offsets_[v + 1]};
  }

  /// Binary search in the (sorted) out-adjacency.
  bool has_edge(VertexId u, VertexId v) const;

  /// Bytes this graph occupies when serialized in the paper's plain-text
  /// format (used for disk-size-sensitive experiments such as ingestion).
  Bytes text_size_bytes() const;

  /// Fast binary (de)serialization, used by the dataset cache so large
  /// generated graphs are built once per machine rather than per binary.
  void save_binary(const std::string& path) const;
  static Graph load_binary(const std::string& path);

 private:
  friend class GraphBuilder;

  bool directed_ = false;
  bool weighted_ = false;
  VertexId num_vertices_ = 0;
  EdgeId num_edges_ = 0;
  std::vector<EdgeId> out_offsets_;
  std::vector<VertexId> out_adj_;
  std::vector<EdgeId> in_offsets_;   // directed only
  std::vector<VertexId> in_adj_;     // directed only
  std::vector<EdgeWeight> out_weights_;  // weighted only, parallel to out_adj_
  std::vector<EdgeWeight> in_weights_;   // weighted && directed only
};

/// Accumulates edges, then produces a canonical Graph: sorted adjacency,
/// parallel edges and self-loops removed, undirected edges symmetrized.
class GraphBuilder {
 public:
  GraphBuilder(VertexId num_vertices, bool directed);

  VertexId num_vertices() const { return num_vertices_; }
  bool directed() const { return directed_; }

  /// Queue an edge. For undirected graphs (u, v) and (v, u) are the same
  /// edge; either may be added. Self-loops are dropped at build time.
  void add_edge(VertexId u, VertexId v);

  /// Queue a weighted edge. The first weighted add marks the builder
  /// weighted; unweighted adds mixed in carry weight 1. Duplicate edges
  /// keep the minimum weight, and undirected edges share one symmetric
  /// weight regardless of insertion orientation.
  void add_edge(VertexId u, VertexId v, EdgeWeight weight);

  /// True once any weighted edge was queued; build() then emits weights.
  bool weighted() const { return weighted_; }

  /// Number of queued (pre-dedup) edges.
  std::size_t pending_edges() const { return edges_.size(); }

  /// Grow the vertex set (used by the evolution algorithm).
  void grow_to(VertexId num_vertices);

  /// Build the canonical graph. The builder is left empty.
  Graph build();

 private:
  Graph build_weighted();

  VertexId num_vertices_;
  bool directed_;
  bool weighted_ = false;
  std::vector<std::pair<VertexId, VertexId>> edges_;
  std::vector<EdgeWeight> weights_;  // parallel to edges_ once weighted_
};

/// Largest derived edge weight (inclusive); derived weights span
/// [1, kMaxEdgeWeight]. Small enough that uint64 min-plus sums can never
/// overflow, large enough to give delta-stepping distinct buckets.
inline constexpr EdgeWeight kMaxEdgeWeight = 64;

/// Deterministic per-edge weight drawn from a seed: a pure function of the
/// (canonicalized) endpoints, so the paper's unweighted datasets stay
/// byte-identical on disk while every engine sees identical weights. For
/// undirected graphs the endpoints are ordered first, making the weight
/// symmetric; directed arcs (u, v) and (v, u) draw independently.
EdgeWeight derive_edge_weight(VertexId u, VertexId v, bool directed,
                              std::uint64_t seed);

/// Uniform read view over edge weights: stored weights when the graph has
/// them, otherwise seed-derived ones. Cheap to construct per run (pointer +
/// seed), never materializes an array, and indexes parallel to the
/// adjacency spans so traversal loops pay one hash, not a lookup.
class EdgeWeights {
 public:
  EdgeWeights(const Graph& graph, std::uint64_t seed)
      : graph_(&graph), seed_(seed), stored_(graph.weighted()) {}

  /// Weight of the k-th out-edge of u (parallel to out_neighbors(u)).
  EdgeWeight out_weight(VertexId u, std::size_t k) const {
    if (stored_) return graph_->out_weights(u)[k];
    return derive_edge_weight(u, graph_->out_neighbors(u)[k],
                              graph_->directed(), seed_);
  }

  /// Weight of the k-th in-edge of v (parallel to in_neighbors(v)); for a
  /// directed graph this is the weight of arc in_neighbors(v)[k] -> v.
  EdgeWeight in_weight(VertexId v, std::size_t k) const {
    if (stored_) return graph_->in_weights(v)[k];
    return derive_edge_weight(graph_->in_neighbors(v)[k], v,
                              graph_->directed(), seed_);
  }

  /// Weight of arc u -> v, which must exist (binary search in out(u)).
  EdgeWeight weight(VertexId u, VertexId v) const {
    const auto nbrs = graph_->out_neighbors(u);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
    return out_weight(u, static_cast<std::size_t>(it - nbrs.begin()));
  }

 private:
  const Graph* graph_;
  std::uint64_t seed_;
  bool stored_;
};

}  // namespace gb
