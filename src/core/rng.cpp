#include "core/rng.h"

#include <cmath>

namespace gb {

std::uint64_t Xoshiro256::next_geometric(double p) {
  if (p >= 1.0) return 0;
  // Inverse-CDF sampling: floor(log(U) / log(1-p)).
  const double u = 1.0 - next_double();  // in (0, 1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

}  // namespace gb
