// Reader/writer for the paper's plain-text graph format.
//
// One line per vertex. Undirected: "<id>: <n1>,<n2>,..."; directed:
// "<id>: <in1>,<in2>,... # <out1>,<out2>,..." (in-list, then out-list).
// Vertex ids are integers; neighbor lists may be empty.
#pragma once

#include <iosfwd>
#include <string>

#include "core/graph.h"

namespace gb {

/// Serialize a graph in the text format described above.
void write_graph(const Graph& g, std::ostream& out);
void write_graph_to_file(const Graph& g, const std::string& path);

/// Parse a graph from the text format. Throws FormatError on bad input.
Graph read_graph(std::istream& in, bool directed);
Graph read_graph_from_file(const std::string& path, bool directed);

/// SNAP edge-list format (the repositories the paper's datasets come
/// from): '#'-prefixed comment lines, then one "<src><ws><dst>" pair per
/// line, with an optional third integer column holding an edge weight
/// (any weighted line makes the whole graph weighted). Vertex ids need
/// not be dense — they are renumbered densely in first-appearance order.
Graph read_snap_edge_list(std::istream& in, bool directed);
Graph read_snap_edge_list_from_file(const std::string& path, bool directed);

/// Serialize as a SNAP edge list (each undirected edge written once,
/// weights as a third column when the graph is weighted).
void write_snap_edge_list(const Graph& g, std::ostream& out);

}  // namespace gb
