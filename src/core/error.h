// Error taxonomy. Platform engines signal the failure modes the paper
// observes in the wild (OOM crashes, experiment timeouts) as typed
// exceptions so the harness can report them per-cell like the paper does.
#pragma once

#include <stdexcept>
#include <string>

namespace gb {

/// Base class for all graphbench errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input data (graph files, configs).
class FormatError : public Error {
 public:
  using Error::Error;
};

/// A platform run failed in a way the paper records as an outcome
/// (crash or forced termination), not as a bug in the harness.
class PlatformError : public Error {
 public:
  enum class Kind {
    kOutOfMemory,
    kDiskFull,
    kTimeout,
    kUnsupported,
    /// A computing node was lost and the platform cannot recover the run
    /// (GraphLab's MPI abort; Giraph with checkpointing disabled; a
    /// MapReduce task that exhausted its retry budget).
    kWorkerLost,
  };

  PlatformError(Kind kind, const std::string& what) : Error(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

}  // namespace gb
