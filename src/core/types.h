// Fundamental types shared by every graphbench module.
#pragma once

#include <cstdint>
#include <limits>

namespace gb {

/// Vertex identifier. 32 bits suffice for every dataset in the study
/// (Friendster tops out at ~66 M vertices).
using VertexId = std::uint32_t;

/// Edge counts and CSR offsets. Friendster has 1.8 G edges, so 64 bits.
using EdgeId = std::uint64_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// Integer edge weight (Graphalytics SSSP). Small positive integers keep
/// min-plus distances exact in 64 bits, so weighted traversal stays
/// bit-identical across engines, partitioners, and host parallelism.
using EdgeWeight = std::uint32_t;

/// Simulated time in seconds. Double keeps the arithmetic simple; the
/// resolution required by the paper's figures is ~1 ms over hours.
using SimTime = double;

/// Bytes of simulated storage / memory / network payload.
using Bytes = std::uint64_t;

inline constexpr Bytes operator""_KiB(unsigned long long v) { return v << 10; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return v << 20; }
inline constexpr Bytes operator""_GiB(unsigned long long v) { return v << 30; }

}  // namespace gb
