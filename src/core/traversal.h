// Direction-optimizing traversal policy (Beamer, Asanović & Patterson,
// SC'12), shared by the reference BFS and the engines whose execution
// models permit a pull phase (platforms/gas, platforms/pregel).
//
// The decision is a pure function of deterministic frontier statistics
// (vertex and edge counts are exact integers merged in chunk order), so
// the chosen direction — and therefore every downstream quantity — is
// identical at every host parallelism.
#pragma once

#include <cstdint>
#include <vector>

namespace gb {

/// Traversal direction for one BFS level. kAuto applies the heuristic;
/// the forced modes exist for tests and ablation benches.
enum class TraversalMode { kAuto, kPush, kPull };

/// One frontier expansion of a direction-optimizing BFS: the frontier
/// being expanded (its depth, size and out-edge count) and the direction
/// the policy chose for it. The per-dataset push/pull crossover tables in
/// EXPERIMENTS.md come from this trace.
struct BfsLevelTrace {
  std::uint64_t depth = 0;
  std::uint64_t frontier_verts = 0;
  std::uint64_t frontier_edges = 0;
  bool pull = false;
};

struct BfsTraversalTrace {
  std::vector<BfsLevelTrace> levels;

  std::uint64_t pull_levels() const {
    std::uint64_t n = 0;
    for (const auto& l : levels) n += l.pull ? 1 : 0;
    return n;
  }
  std::uint64_t push_levels() const { return levels.size() - pull_levels(); }
};

/// The standard frontier-size / unexplored-edges switching heuristic.
///
/// Push (top-down) examines the out-edges of the frontier; pull
/// (bottom-up) scans candidate vertices' in-edges looking for a frontier
/// parent. Pull wins when the frontier's edge count approaches the count
/// of edges still unexplored (alpha), and loses again once the frontier
/// has shrunk to a sliver of the vertex set (beta). Beamer's published
/// constants (14, 24) carry over unchanged.
struct DirectionPolicy {
  std::uint64_t alpha = 14;
  std::uint64_t beta = 24;

  /// Decide the direction for the next level.
  ///  frontier_verts / frontier_edges: size and out-edge count of the
  ///    current frontier;
  ///  unexplored_edges: out-edges of vertices not yet visited;
  ///  num_vertices: |V|.
  bool should_pull(bool currently_pull, std::uint64_t frontier_verts,
                   std::uint64_t frontier_edges,
                   std::uint64_t unexplored_edges,
                   std::uint64_t num_vertices) const {
    if (currently_pull) {
      // Stay bottom-up until the frontier shrinks below |V| / beta.
      return frontier_verts * beta >= num_vertices;
    }
    // Go bottom-up when the frontier's edges outnumber a 1/alpha share
    // of the unexplored edges.
    return frontier_edges * alpha > unexplored_edges;
  }

  /// Resolve a (possibly forced) mode into the direction for this level.
  bool pull_for(TraversalMode mode, bool currently_pull,
                std::uint64_t frontier_verts, std::uint64_t frontier_edges,
                std::uint64_t unexplored_edges,
                std::uint64_t num_vertices) const {
    switch (mode) {
      case TraversalMode::kPush:
        return false;
      case TraversalMode::kPull:
        return true;
      case TraversalMode::kAuto:
        break;
    }
    return should_pull(currently_pull, frontier_verts, frontier_edges,
                       unexplored_edges, num_vertices);
  }
};

}  // namespace gb
