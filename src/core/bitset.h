// Dense bitset over vertex ids — the frontier representation for
// direction-optimizing traversal.
//
// Two write paths with one determinism story:
//  * `set` / `reset` are plain word writes, for use from a single thread
//    or over disjoint chunk ranges (chunk c owns bits [begin, end), and
//    word boundaries are handled by the caller owning whole ranges —
//    see `clear_range`).
//  * `set_atomic` claims a bit with a relaxed fetch_or and reports
//    whether this caller set it first. OR is commutative and idempotent,
//    so the resulting bit pattern is independent of thread schedule; the
//    *claim winner* may vary between runs, which is safe exactly when
//    every winner would write the same value (BFS: every claimant
//    proposes the same level for the same depth).
//
// Word storage is plain std::uint64_t; atomic access goes through
// std::atomic_ref, so the same buffer serves both phases without copies.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace gb {

class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(std::size_t bits) { grow_to(bits); }

  std::size_t size() const { return bits_; }
  std::size_t num_words() const { return words_.size(); }

  /// Grow to at least `bits` positions. Existing bits keep their values;
  /// new positions start cleared (matches GraphBuilder::grow_to, which
  /// the evolution algorithm uses mid-run).
  void grow_to(std::size_t bits) {
    if (bits <= bits_) return;
    bits_ = bits;
    words_.resize((bits + 63) / 64, 0);
  }

  /// Clear every bit, keeping the size.
  void clear() { std::fill(words_.begin(), words_.end(), 0); }

  /// Clear the bits of whole words covering [begin, end) — callers
  /// splitting the clear across chunks must pass word-aligned ranges
  /// (begin % 64 == 0) so no word is shared between chunks. `end` may be
  /// the bitset size.
  void clear_words(std::size_t begin, std::size_t end) {
    const std::size_t first = begin / 64;
    const std::size_t last = (end + 63) / 64;
    for (std::size_t w = first; w < last; ++w) words_[w] = 0;
  }

  void set(std::size_t i) { words_[i / 64] |= std::uint64_t{1} << (i % 64); }

  void reset(std::size_t i) {
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }

  bool test(std::size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  /// Read bit i with a relaxed atomic load — the race-free companion to
  /// concurrent set_atomic on the same word (a plain `test` next to a
  /// racing fetch_or is a data race under the memory model even though
  /// the hardware would tolerate it).
  bool test_atomic(std::size_t i) const {
    std::atomic_ref<const std::uint64_t> word(words_[i / 64]);
    return (word.load(std::memory_order_relaxed) >> (i % 64)) & 1u;
  }

  /// Atomically set bit i; returns true when this call flipped it 0 -> 1
  /// (the claim). Relaxed ordering is sufficient: claims only gate
  /// idempotent writes, and the phase ends with a pool join (a full
  /// synchronization point) before any bit is read back.
  bool set_atomic(std::size_t i) {
    std::atomic_ref<std::uint64_t> word(words_[i / 64]);
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    return (word.fetch_or(mask, std::memory_order_relaxed) & mask) == 0;
  }

  /// Population count — a pure function of the bit pattern, so it is
  /// deterministic even when the bits were set by racing set_atomic.
  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const std::uint64_t w : words_) {
      total += static_cast<std::uint64_t>(__builtin_popcountll(w));
    }
    return total;
  }

  bool any() const {
    for (const std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Visit every set bit in ascending order: fn(index).
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace gb
