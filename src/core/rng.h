// Deterministic, seedable random number generation.
//
// All generators and randomized algorithms in graphbench draw from these
// engines so that every dataset and every experiment is reproducible from
// a single seed. SplitMix64 seeds Xoshiro256** per the reference authors'
// recommendation (Blackman & Vigna).
#pragma once

#include <array>
#include <cstdint>

namespace gb {

/// SplitMix64: tiny, passes BigCrush, ideal for seeding other engines.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast general-purpose engine used everywhere randomness
/// is needed on a hot path.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) : state_{} {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Lemire's multiply-shift without the rejection
  /// loop; bias is < 2^-32 for every bound used in this project.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool next_bool(double p) { return next_double() < p; }

  /// Geometric sample: number of failures before the first success with
  /// success probability p in (0, 1]. Matches the Forest Fire model's
  /// "geometrically distributed mean (1-p)^-1" draw.
  std::uint64_t next_geometric(double p);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace gb
