// Structural graph statistics used by Table 2 and by the STATS algorithm's
// reference implementation: link density, average degree, clustering.
#pragma once

#include <cstdint>

#include "core/graph.h"
#include "core/thread_pool.h"

namespace gb {

struct GraphSummary {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  /// Link density d = #E / (#V * (#V - 1)) for directed graphs and
  /// 2#E / (#V * (#V - 1)) for undirected (paper Table 2, the values
  /// listed there are x 1e-5).
  double link_density = 0.0;
  /// D: average degree for undirected graphs; average in-degree
  /// (= average out-degree) for directed graphs.
  double average_degree = 0.0;
  bool directed = false;
};

GraphSummary summarize(const Graph& g);

/// Count common elements of two sorted id lists, skipping `exclude`.
/// Uses a linear merge for similar sizes and binary probing when one list
/// is much shorter — the skewed-degree graphs in this study hit the
/// latter constantly (a leaf's 3-entry list against a hub's 40 k).
EdgeId sorted_intersection_count(std::span<const VertexId> a,
                                 std::span<const VertexId> b,
                                 VertexId exclude);

/// Local clustering coefficient of one vertex: fraction of ordered pairs
/// of neighbors that are themselves connected. Directed graphs use the
/// Graphalytics convention — the neighborhood is the union of in- and
/// out-neighbors and links are counted as directed arcs inside it —
/// matching the STATS/LCC implementations on the tested platforms.
/// (Undirected graphs: the adjacency double-counts each neighbor-neighbor
/// edge, exactly matching the ordered-pair denominator.)
double local_clustering_coefficient(const Graph& g, VertexId v);

/// The neighborhood the LCC is defined over: the (sorted) out-adjacency
/// for undirected graphs, the sorted in/out union for directed ones.
/// Directed results are built in `scratch` (reusable across calls);
/// undirected graphs return the adjacency span directly, no copy.
std::span<const VertexId> lcc_neighborhood(const Graph& g, VertexId v,
                                           std::vector<VertexId>& scratch);

/// Directed links inside a neighborhood of v: for each member u, how many
/// members u's out-adjacency hits (v itself excluded). The triangle
/// kernel shared by every engine's STATS/LCC program.
EdgeId lcc_links(const Graph& g, std::span<const VertexId> nbrs, VertexId v);

/// links / (k * (k - 1)); 0 when the neighborhood has fewer than 2
/// members. Integer inputs + one division keep the value bit-identical
/// however the links were counted.
double lcc_from_counts(EdgeId links, std::size_t neighborhood_size);

/// Simulated intersection work for one vertex's LCC: each neighbor's
/// out-list is merged against the neighborhood
/// (sum over u in N(v) of |N(v)| + out_degree(u)).
EdgeId lcc_work_units(const Graph& g, std::span<const VertexId> nbrs);

/// Average LCC over all vertices (the STATS headline output). The sum is
/// chunked deterministically (ThreadPool::plan_chunks) and merged in
/// chunk order, so the value is bit-identical at every pool size — a null
/// pool runs the same plan inline.
double average_lcc(const Graph& g, ThreadPool* pool = nullptr);

/// Number of directed links between the LCC neighborhood members of v
/// (undirected: each neighbor-neighbor edge counted once per endpoint).
EdgeId edges_between_neighbors(const Graph& g, VertexId v);

/// Restrict a graph to its largest (weakly) connected component and
/// renumber vertices densely. The paper does this to every raw dataset.
Graph largest_component(const Graph& g);

/// Degree-distribution summary: the skew numbers that decide platform
/// behaviour (hub sizes drive message explosions; the Gini coefficient
/// summarizes how unequal the degree mass is).
struct DegreeDistribution {
  EdgeId min_degree = 0;
  EdgeId max_degree = 0;
  double mean = 0;
  EdgeId p50 = 0;
  EdgeId p90 = 0;
  EdgeId p99 = 0;
  double gini = 0;  // 0 = regular graph, -> 1 = all edges on one hub
  /// Moment skewness g1 = m3 / m2^1.5 of the degree sequence (0 for a
  /// regular graph, large and positive for hub-dominated ones). The
  /// dataset-realism audit (gb_datagen --audit) reports it per dataset
  /// per the SoK's complaint about unrealistically symmetric synthetics.
  double skewness = 0;
  /// sum(deg^2): the neighborhood-exchange volume in id entries — the
  /// quantity behind every STATS crash in the paper.
  double sum_squared_degree = 0;
};

DegreeDistribution degree_distribution(const Graph& g);

}  // namespace gb
