#include "core/graph.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <stdexcept>

#include "core/error.h"

namespace gb {

bool Graph::has_edge(VertexId u, VertexId v) const {
  const auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

Bytes Graph::text_size_bytes() const {
  // Approximates the paper's plain-text format: one line per vertex with
  // the vertex id and comma-separated neighbor lists. We charge an average
  // of 8 characters per id (ids up to 8 digits plus separator) plus the
  // line header. This tracks the paper's "tens of MB to tens of GB" sizes.
  constexpr Bytes kCharsPerId = 8;
  constexpr Bytes kLineOverhead = 10;
  // Undirected: each edge appears in both endpoint lines (out_adj_ already
  // holds 2E entries). Directed: each arc appears in the source's out-list
  // and the destination's in-list.
  const Bytes entries = out_adj_.size() + in_adj_.size();
  return entries * kCharsPerId + static_cast<Bytes>(num_vertices_) * kLineOverhead;
}

namespace {

constexpr std::uint64_t kBinaryMagic = 0x6762475246313030ULL;  // "gbGRF100"
constexpr std::uint8_t kBinaryVersion = 1;

template <typename T>
void write_vec(std::ofstream& out, const std::vector<T>& v) {
  const std::uint64_t n = v.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
}

/// Reads a length-prefixed vector, validating the on-disk length against
/// the bytes actually left in the file: a truncated or corrupt cache must
/// fail with FormatError, not resize() to a bogus multi-gigabyte length.
template <typename T>
void read_vec(std::ifstream& in, std::vector<T>& v, std::uint64_t file_size,
              const std::string& path) {
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) throw FormatError("short read from '" + path + "'");
  const auto pos = static_cast<std::uint64_t>(in.tellg());
  const std::uint64_t remaining = file_size > pos ? file_size - pos : 0;
  if (n > remaining / sizeof(T)) {
    throw FormatError("'" + path + "' is truncated or corrupt: vector of " +
                      std::to_string(n) + " elements exceeds the " +
                      std::to_string(remaining) + " bytes left in the file");
  }
  v.resize(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
}

}  // namespace

void Graph::save_binary(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw FormatError("cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(&kBinaryMagic), sizeof(kBinaryMagic));
  out.write(reinterpret_cast<const char*>(&kBinaryVersion), sizeof(kBinaryVersion));
  const std::uint8_t directed = directed_ ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&directed), sizeof(directed));
  out.write(reinterpret_cast<const char*>(&num_vertices_), sizeof(num_vertices_));
  out.write(reinterpret_cast<const char*>(&num_edges_), sizeof(num_edges_));
  write_vec(out, out_offsets_);
  write_vec(out, out_adj_);
  write_vec(out, in_offsets_);
  write_vec(out, in_adj_);
  if (!out) throw FormatError("short write to '" + path + "'");
}

Graph Graph::load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw FormatError("cannot open '" + path + "' for reading");
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kBinaryMagic) {
    throw FormatError("'" + path + "' is not a graphbench binary graph");
  }
  std::uint8_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kBinaryVersion) {
    throw FormatError("'" + path + "' has unsupported format version " +
                      std::to_string(version) + " (expected " +
                      std::to_string(kBinaryVersion) + ")");
  }
  Graph g;
  std::uint8_t directed = 0;
  in.read(reinterpret_cast<char*>(&directed), sizeof(directed));
  g.directed_ = directed != 0;
  in.read(reinterpret_cast<char*>(&g.num_vertices_), sizeof(g.num_vertices_));
  in.read(reinterpret_cast<char*>(&g.num_edges_), sizeof(g.num_edges_));
  read_vec(in, g.out_offsets_, file_size, path);
  read_vec(in, g.out_adj_, file_size, path);
  read_vec(in, g.in_offsets_, file_size, path);
  read_vec(in, g.in_adj_, file_size, path);
  if (!in) throw FormatError("short read from '" + path + "'");
  return g;
}

GraphBuilder::GraphBuilder(VertexId num_vertices, bool directed)
    : num_vertices_(num_vertices), directed_(directed) {}

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  if (u >= num_vertices_ || v >= num_vertices_) {
    throw FormatError("edge endpoint out of range");
  }
  edges_.emplace_back(u, v);
}

void GraphBuilder::grow_to(VertexId num_vertices) {
  if (num_vertices < num_vertices_) {
    throw FormatError("GraphBuilder::grow_to cannot shrink the vertex set");
  }
  num_vertices_ = num_vertices;
}

Graph GraphBuilder::build() {
  Graph g;
  g.directed_ = directed_;
  g.num_vertices_ = num_vertices_;

  // Canonicalize: drop self-loops; for undirected graphs order endpoints
  // so duplicates collapse regardless of insertion orientation.
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(edges_.size());
  for (auto [u, v] : edges_) {
    if (u == v) continue;
    if (!directed_ && u > v) std::swap(u, v);
    edges.emplace_back(u, v);
  }
  edges_.clear();
  edges_.shrink_to_fit();

  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  g.num_edges_ = edges.size();

  // Out-degree counting. Undirected: each edge contributes to both ends.
  const VertexId n = num_vertices_;
  std::vector<EdgeId> out_deg(n, 0);
  for (const auto& [u, v] : edges) {
    ++out_deg[u];
    if (!directed_) ++out_deg[v];
  }

  g.out_offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    g.out_offsets_[v + 1] = g.out_offsets_[v] + out_deg[v];
  }
  g.out_adj_.resize(g.out_offsets_[n]);

  std::vector<EdgeId> cursor(g.out_offsets_.begin(), g.out_offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.out_adj_[cursor[u]++] = v;
    if (!directed_) g.out_adj_[cursor[v]++] = u;
  }

  if (directed_) {
    std::vector<EdgeId> in_deg(n, 0);
    for (const auto& [u, v] : edges) ++in_deg[v];
    g.in_offsets_.assign(n + 1, 0);
    for (VertexId v = 0; v < n; ++v) {
      g.in_offsets_[v + 1] = g.in_offsets_[v] + in_deg[v];
    }
    g.in_adj_.resize(g.in_offsets_[n]);
    std::vector<EdgeId> in_cursor(g.in_offsets_.begin(),
                                  g.in_offsets_.end() - 1);
    for (const auto& [u, v] : edges) g.in_adj_[in_cursor[v]++] = u;
  }

  // Sorted-adjacency invariant: edges were inserted in sorted edge order,
  // so each out list is already sorted for directed graphs; undirected
  // interleaving can break ordering, so sort per vertex.
  if (!directed_) {
    for (VertexId v = 0; v < n; ++v) {
      auto begin = g.out_adj_.begin() + static_cast<std::ptrdiff_t>(g.out_offsets_[v]);
      auto end = g.out_adj_.begin() + static_cast<std::ptrdiff_t>(g.out_offsets_[v + 1]);
      std::sort(begin, end);
    }
  }
  return g;
}

}  // namespace gb
