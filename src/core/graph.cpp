#include "core/graph.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "core/error.h"

namespace gb {

bool Graph::has_edge(VertexId u, VertexId v) const {
  const auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

Bytes Graph::text_size_bytes() const {
  // Approximates the paper's plain-text format: one line per vertex with
  // the vertex id and comma-separated neighbor lists. We charge an average
  // of 8 characters per id (ids up to 8 digits plus separator) plus the
  // line header. This tracks the paper's "tens of MB to tens of GB" sizes.
  constexpr Bytes kCharsPerId = 8;
  constexpr Bytes kLineOverhead = 10;
  // Undirected: each edge appears in both endpoint lines (out_adj_ already
  // holds 2E entries). Directed: each arc appears in the source's out-list
  // and the destination's in-list.
  const Bytes entries = out_adj_.size() + in_adj_.size();
  return entries * kCharsPerId + static_cast<Bytes>(num_vertices_) * kLineOverhead;
}

EdgeWeight derive_edge_weight(VertexId u, VertexId v, bool directed,
                              std::uint64_t seed) {
  if (!directed && u > v) std::swap(u, v);
  // SplitMix64 finalizer chain over (seed, u, v).
  auto mix = [](std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  };
  const std::uint64_t h = mix(mix(mix(seed) ^ u) ^ v);
  return static_cast<EdgeWeight>(1 + h % kMaxEdgeWeight);
}

namespace {

constexpr std::uint64_t kBinaryMagic = 0x6762475246313030ULL;  // "gbGRF100"
// Version 1: unweighted. Version 2 appends the weight arrays and is only
// written for weighted graphs, so existing unweighted caches stay
// byte-identical.
constexpr std::uint8_t kBinaryVersion = 1;
constexpr std::uint8_t kBinaryVersionWeighted = 2;

template <typename T>
void write_vec(std::ofstream& out, const std::vector<T>& v) {
  const std::uint64_t n = v.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
}

/// Reads a length-prefixed vector, validating the on-disk length against
/// the bytes actually left in the file: a truncated or corrupt cache must
/// fail with FormatError, not resize() to a bogus multi-gigabyte length.
template <typename T>
void read_vec(std::ifstream& in, std::vector<T>& v, std::uint64_t file_size,
              const std::string& path) {
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) throw FormatError("short read from '" + path + "'");
  const auto pos = static_cast<std::uint64_t>(in.tellg());
  const std::uint64_t remaining = file_size > pos ? file_size - pos : 0;
  if (n > remaining / sizeof(T)) {
    throw FormatError("'" + path + "' is truncated or corrupt: vector of " +
                      std::to_string(n) + " elements exceeds the " +
                      std::to_string(remaining) + " bytes left in the file");
  }
  v.resize(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
}

}  // namespace

void Graph::save_binary(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw FormatError("cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(&kBinaryMagic), sizeof(kBinaryMagic));
  const std::uint8_t version = weighted_ ? kBinaryVersionWeighted : kBinaryVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint8_t directed = directed_ ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&directed), sizeof(directed));
  out.write(reinterpret_cast<const char*>(&num_vertices_), sizeof(num_vertices_));
  out.write(reinterpret_cast<const char*>(&num_edges_), sizeof(num_edges_));
  write_vec(out, out_offsets_);
  write_vec(out, out_adj_);
  write_vec(out, in_offsets_);
  write_vec(out, in_adj_);
  if (weighted_) {
    write_vec(out, out_weights_);
    write_vec(out, in_weights_);
  }
  if (!out) throw FormatError("short write to '" + path + "'");
}

Graph Graph::load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw FormatError("cannot open '" + path + "' for reading");
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kBinaryMagic) {
    throw FormatError("'" + path + "' is not a graphbench binary graph");
  }
  std::uint8_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in ||
      (version != kBinaryVersion && version != kBinaryVersionWeighted)) {
    throw FormatError("'" + path + "' has unsupported format version " +
                      std::to_string(version) + " (expected " +
                      std::to_string(kBinaryVersion) + " or " +
                      std::to_string(kBinaryVersionWeighted) + ")");
  }
  Graph g;
  std::uint8_t directed = 0;
  in.read(reinterpret_cast<char*>(&directed), sizeof(directed));
  g.directed_ = directed != 0;
  in.read(reinterpret_cast<char*>(&g.num_vertices_), sizeof(g.num_vertices_));
  in.read(reinterpret_cast<char*>(&g.num_edges_), sizeof(g.num_edges_));
  read_vec(in, g.out_offsets_, file_size, path);
  read_vec(in, g.out_adj_, file_size, path);
  read_vec(in, g.in_offsets_, file_size, path);
  read_vec(in, g.in_adj_, file_size, path);
  if (version == kBinaryVersionWeighted) {
    g.weighted_ = true;
    read_vec(in, g.out_weights_, file_size, path);
    read_vec(in, g.in_weights_, file_size, path);
    if (g.out_weights_.size() != g.out_adj_.size() ||
        g.in_weights_.size() != g.in_adj_.size()) {
      throw FormatError("'" + path +
                        "' is corrupt: weight arrays do not match the "
                        "adjacency");
    }
  }
  if (!in) throw FormatError("short read from '" + path + "'");
  return g;
}

GraphBuilder::GraphBuilder(VertexId num_vertices, bool directed)
    : num_vertices_(num_vertices), directed_(directed) {}

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  if (u >= num_vertices_ || v >= num_vertices_) {
    throw FormatError("edge endpoint out of range");
  }
  edges_.emplace_back(u, v);
  if (weighted_) weights_.push_back(1);
}

void GraphBuilder::add_edge(VertexId u, VertexId v, EdgeWeight weight) {
  if (weight == 0) throw FormatError("edge weight must be positive");
  if (u >= num_vertices_ || v >= num_vertices_) {
    throw FormatError("edge endpoint out of range");
  }
  if (!weighted_) {
    weighted_ = true;
    weights_.assign(edges_.size(), 1);
  }
  edges_.emplace_back(u, v);
  weights_.push_back(weight);
}

void GraphBuilder::grow_to(VertexId num_vertices) {
  if (num_vertices < num_vertices_) {
    throw FormatError("GraphBuilder::grow_to cannot shrink the vertex set");
  }
  num_vertices_ = num_vertices;
}

Graph GraphBuilder::build() {
  if (weighted_) return build_weighted();
  Graph g;
  g.directed_ = directed_;
  g.num_vertices_ = num_vertices_;

  // Canonicalize: drop self-loops; for undirected graphs order endpoints
  // so duplicates collapse regardless of insertion orientation.
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(edges_.size());
  for (auto [u, v] : edges_) {
    if (u == v) continue;
    if (!directed_ && u > v) std::swap(u, v);
    edges.emplace_back(u, v);
  }
  edges_.clear();
  edges_.shrink_to_fit();

  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  g.num_edges_ = edges.size();

  // Out-degree counting. Undirected: each edge contributes to both ends.
  const VertexId n = num_vertices_;
  std::vector<EdgeId> out_deg(n, 0);
  for (const auto& [u, v] : edges) {
    ++out_deg[u];
    if (!directed_) ++out_deg[v];
  }

  g.out_offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    g.out_offsets_[v + 1] = g.out_offsets_[v] + out_deg[v];
  }
  g.out_adj_.resize(g.out_offsets_[n]);

  std::vector<EdgeId> cursor(g.out_offsets_.begin(), g.out_offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.out_adj_[cursor[u]++] = v;
    if (!directed_) g.out_adj_[cursor[v]++] = u;
  }

  if (directed_) {
    std::vector<EdgeId> in_deg(n, 0);
    for (const auto& [u, v] : edges) ++in_deg[v];
    g.in_offsets_.assign(n + 1, 0);
    for (VertexId v = 0; v < n; ++v) {
      g.in_offsets_[v + 1] = g.in_offsets_[v] + in_deg[v];
    }
    g.in_adj_.resize(g.in_offsets_[n]);
    std::vector<EdgeId> in_cursor(g.in_offsets_.begin(),
                                  g.in_offsets_.end() - 1);
    for (const auto& [u, v] : edges) g.in_adj_[in_cursor[v]++] = u;
  }

  // Sorted-adjacency invariant: edges were inserted in sorted edge order,
  // so each out list is already sorted for directed graphs; undirected
  // interleaving can break ordering, so sort per vertex.
  if (!directed_) {
    for (VertexId v = 0; v < n; ++v) {
      auto begin = g.out_adj_.begin() + static_cast<std::ptrdiff_t>(g.out_offsets_[v]);
      auto end = g.out_adj_.begin() + static_cast<std::ptrdiff_t>(g.out_offsets_[v + 1]);
      std::sort(begin, end);
    }
  }
  return g;
}

Graph GraphBuilder::build_weighted() {
  Graph g;
  g.directed_ = directed_;
  g.weighted_ = true;
  g.num_vertices_ = num_vertices_;

  // Canonicalize like the unweighted path (self-loops dropped, undirected
  // endpoints ordered), carrying the weight with each edge. Duplicates
  // keep the minimum weight: sorting by (u, v, w) puts it first.
  struct WEdge {
    VertexId u, v;
    EdgeWeight w;
  };
  std::vector<WEdge> edges;
  edges.reserve(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    auto [u, v] = edges_[i];
    if (u == v) continue;
    if (!directed_ && u > v) std::swap(u, v);
    edges.push_back({u, v, weights_[i]});
  }
  edges_.clear();
  edges_.shrink_to_fit();
  weights_.clear();
  weights_.shrink_to_fit();

  std::sort(edges.begin(), edges.end(), [](const WEdge& a, const WEdge& b) {
    return std::tie(a.u, a.v, a.w) < std::tie(b.u, b.v, b.w);
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const WEdge& a, const WEdge& b) {
                            return a.u == b.u && a.v == b.v;
                          }),
              edges.end());
  g.num_edges_ = edges.size();

  const VertexId n = num_vertices_;
  std::vector<EdgeId> out_deg(n, 0);
  for (const auto& e : edges) {
    ++out_deg[e.u];
    if (!directed_) ++out_deg[e.v];
  }

  g.out_offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    g.out_offsets_[v + 1] = g.out_offsets_[v] + out_deg[v];
  }
  g.out_adj_.resize(g.out_offsets_[n]);
  g.out_weights_.resize(g.out_offsets_[n]);

  std::vector<EdgeId> cursor(g.out_offsets_.begin(), g.out_offsets_.end() - 1);
  for (const auto& e : edges) {
    g.out_adj_[cursor[e.u]] = e.v;
    g.out_weights_[cursor[e.u]++] = e.w;
    if (!directed_) {
      g.out_adj_[cursor[e.v]] = e.u;
      g.out_weights_[cursor[e.v]++] = e.w;
    }
  }

  if (directed_) {
    std::vector<EdgeId> in_deg(n, 0);
    for (const auto& e : edges) ++in_deg[e.v];
    g.in_offsets_.assign(n + 1, 0);
    for (VertexId v = 0; v < n; ++v) {
      g.in_offsets_[v + 1] = g.in_offsets_[v] + in_deg[v];
    }
    g.in_adj_.resize(g.in_offsets_[n]);
    g.in_weights_.resize(g.in_offsets_[n]);
    std::vector<EdgeId> in_cursor(g.in_offsets_.begin(),
                                  g.in_offsets_.end() - 1);
    for (const auto& e : edges) {
      g.in_adj_[in_cursor[e.v]] = e.u;
      g.in_weights_[in_cursor[e.v]++] = e.w;
    }
  } else {
    // Undirected interleaving can break per-vertex ordering; co-sort the
    // adjacency with its weights.
    std::vector<std::pair<VertexId, EdgeWeight>> scratch;
    for (VertexId v = 0; v < n; ++v) {
      const auto begin = g.out_offsets_[v];
      const auto end = g.out_offsets_[v + 1];
      scratch.clear();
      for (EdgeId i = begin; i < end; ++i) {
        scratch.emplace_back(g.out_adj_[i], g.out_weights_[i]);
      }
      std::sort(scratch.begin(), scratch.end());
      for (EdgeId i = begin; i < end; ++i) {
        g.out_adj_[i] = scratch[i - begin].first;
        g.out_weights_[i] = scratch[i - begin].second;
      }
    }
  }
  return g;
}

}  // namespace gb
