#include "core/graph_stats.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <vector>

#include "stats/stats.h"

namespace gb {

GraphSummary summarize(const Graph& g) {
  GraphSummary s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  s.directed = g.directed();
  const double n = static_cast<double>(s.num_vertices);
  const double e = static_cast<double>(s.num_edges);
  if (s.num_vertices > 1) {
    const double pairs = n * (n - 1.0);
    s.link_density = g.directed() ? e / pairs : 2.0 * e / pairs;
  }
  if (s.num_vertices > 0) {
    // For directed graphs e arcs give average in-degree e/n; for
    // undirected each edge contributes 2 endpoint incidences.
    s.average_degree = g.directed() ? e / n : 2.0 * e / n;
  }
  return s;
}

EdgeId sorted_intersection_count(std::span<const VertexId> a,
                                 std::span<const VertexId> b,
                                 VertexId exclude) {
  if (a.size() > b.size()) std::swap(a, b);
  EdgeId count = 0;
  // Galloping pays off once the size ratio beats the log factor.
  if (a.size() * 16 < b.size()) {
    for (const VertexId x : a) {
      if (x != exclude && std::binary_search(b.begin(), b.end(), x)) ++count;
    }
    return count;
  }
  auto it1 = a.begin();
  auto it2 = b.begin();
  while (it1 != a.end() && it2 != b.end()) {
    if (*it1 < *it2) {
      ++it1;
    } else if (*it2 < *it1) {
      ++it2;
    } else {
      if (*it1 != exclude) ++count;
      ++it1;
      ++it2;
    }
  }
  return count;
}

std::span<const VertexId> lcc_neighborhood(const Graph& g, VertexId v,
                                           std::vector<VertexId>& scratch) {
  if (!g.directed()) return g.out_neighbors(v);
  // Directed: Graphalytics defines the neighborhood as everyone v touches
  // in either direction. Both adjacency lists are sorted and self-loops
  // never exist, so a set union suffices.
  const auto out = g.out_neighbors(v);
  const auto in = g.in_neighbors(v);
  scratch.clear();
  scratch.reserve(out.size() + in.size());
  std::set_union(out.begin(), out.end(), in.begin(), in.end(),
                 std::back_inserter(scratch));
  return scratch;
}

EdgeId lcc_links(const Graph& g, std::span<const VertexId> nbrs, VertexId v) {
  EdgeId count = 0;
  // For each neighborhood member u, count how many members u's
  // out-adjacency reaches.
  for (const VertexId u : nbrs) {
    count += sorted_intersection_count(nbrs, g.out_neighbors(u), v);
  }
  return count;
}

double lcc_from_counts(EdgeId links, std::size_t neighborhood_size) {
  if (neighborhood_size < 2) return 0.0;
  const double k = static_cast<double>(neighborhood_size);
  return static_cast<double>(links) / (k * (k - 1.0));
}

EdgeId lcc_work_units(const Graph& g, std::span<const VertexId> nbrs) {
  EdgeId units = 0;
  for (const VertexId u : nbrs) units += nbrs.size() + g.out_degree(u);
  return units;
}

EdgeId edges_between_neighbors(const Graph& g, VertexId v) {
  std::vector<VertexId> scratch;
  return lcc_links(g, lcc_neighborhood(g, v, scratch), v);
}

double local_clustering_coefficient(const Graph& g, VertexId v) {
  std::vector<VertexId> scratch;
  const auto nbrs = lcc_neighborhood(g, v, scratch);
  if (nbrs.size() < 2) return 0.0;
  return lcc_from_counts(lcc_links(g, nbrs, v), nbrs.size());
}

double average_lcc(const Graph& g, ThreadPool* pool) {
  const VertexId n = g.num_vertices();
  if (n == 0) return 0.0;
  const std::size_t chunks = ThreadPool::plan_chunks(n);
  std::vector<double> partial(chunks, 0.0);
  run_chunks(pool, n, [&](std::size_t c, std::size_t begin, std::size_t end) {
    double sum = 0.0;
    std::vector<VertexId> scratch;
    for (std::size_t v = begin; v < end; ++v) {
      const auto nbrs = lcc_neighborhood(g, static_cast<VertexId>(v), scratch);
      sum += lcc_from_counts(lcc_links(g, nbrs, static_cast<VertexId>(v)),
                             nbrs.size());
    }
    partial[c] = sum;
  });
  double total = 0.0;
  for (const double sum : partial) total += sum;
  return total / static_cast<double>(n);
}

DegreeDistribution degree_distribution(const Graph& g) {
  DegreeDistribution d;
  const VertexId n = g.num_vertices();
  if (n == 0) return d;
  std::vector<EdgeId> degrees(n);
  double total = 0;
  for (VertexId v = 0; v < n; ++v) {
    degrees[v] = g.out_degree(v);
    total += static_cast<double>(degrees[v]);
    d.sum_squared_degree +=
        static_cast<double>(degrees[v]) * static_cast<double>(degrees[v]);
  }
  std::sort(degrees.begin(), degrees.end());
  d.min_degree = degrees.front();
  d.max_degree = degrees.back();
  d.mean = total / static_cast<double>(n);
  const auto percentile = [&](double p) {
    // The repo-wide nearest-rank rule (stats::nearest_rank): the smallest
    // degree with at least p·n of the vertices at or below it. This is
    // the same rule the serving percentiles use, so a p99 here and a p99
    // there mean the same thing; a skewed tail (the star hub) is hit at
    // p99 exactly as before.
    return degrees[stats::nearest_rank(n, p) - 1];
  };
  d.p50 = percentile(0.50);
  d.p90 = percentile(0.90);
  d.p99 = percentile(0.99);
  // Moment skewness over the full degree population (all n vertices are
  // observed, so the population moments are the right ones here).
  {
    double m2 = 0;
    double m3 = 0;
    for (const EdgeId deg : degrees) {
      const double dx = static_cast<double>(deg) - d.mean;
      m2 += dx * dx;
      m3 += dx * dx * dx;
    }
    m2 /= static_cast<double>(n);
    m3 /= static_cast<double>(n);
    if (m2 > 0) d.skewness = m3 / std::pow(m2, 1.5);
  }
  // Gini over the sorted degrees: G = (2*sum(i*x_i))/(n*sum(x)) - (n+1)/n.
  if (total > 0) {
    double weighted = 0;
    for (VertexId i = 0; i < n; ++i) {
      weighted += static_cast<double>(i + 1) * static_cast<double>(degrees[i]);
    }
    d.gini = 2.0 * weighted / (static_cast<double>(n) * total) -
             (static_cast<double>(n) + 1.0) / static_cast<double>(n);
  }
  return d;
}

Graph largest_component(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> comp(n, kInvalidVertex);
  std::vector<VertexId> stack;
  VertexId best_root = 0;
  std::size_t best_size = 0;
  VertexId next_comp = 0;

  for (VertexId s = 0; s < n; ++s) {
    if (comp[s] != kInvalidVertex) continue;
    std::size_t size = 0;
    stack.push_back(s);
    comp[s] = next_comp;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      ++size;
      // Weak connectivity: traverse both directions for directed graphs.
      for (const VertexId u : g.out_neighbors(v)) {
        if (comp[u] == kInvalidVertex) {
          comp[u] = next_comp;
          stack.push_back(u);
        }
      }
      if (g.directed()) {
        for (const VertexId u : g.in_neighbors(v)) {
          if (comp[u] == kInvalidVertex) {
            comp[u] = next_comp;
            stack.push_back(u);
          }
        }
      }
    }
    if (size > best_size) {
      best_size = size;
      best_root = next_comp;
    }
    ++next_comp;
  }

  // Dense renumbering of the winning component.
  std::vector<VertexId> remap(n, kInvalidVertex);
  VertexId next_id = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (comp[v] == best_root) remap[v] = next_id++;
  }

  GraphBuilder builder(next_id, g.directed());
  for (VertexId v = 0; v < n; ++v) {
    if (remap[v] == kInvalidVertex) continue;
    for (const VertexId u : g.out_neighbors(v)) {
      if (remap[u] == kInvalidVertex) continue;
      if (!g.directed() && remap[u] < remap[v]) continue;  // emit once
      builder.add_edge(remap[v], remap[u]);
    }
  }
  return builder.build();
}

}  // namespace gb
