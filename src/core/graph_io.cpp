#include "core/graph_io.h"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/error.h"

namespace gb {
namespace {

VertexId parse_id(std::string_view token, std::size_t line_no) {
  VertexId value = 0;
  const auto* begin = token.data();
  const auto* end = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw FormatError("bad vertex id '" + std::string(token) + "' at line " +
                      std::to_string(line_no));
  }
  return value;
}

void parse_id_list(std::string_view list, std::size_t line_no,
                   std::vector<VertexId>& out) {
  out.clear();
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    std::string_view token = list.substr(0, comma);
    if (!token.empty()) out.push_back(parse_id(token, line_no));
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
}

void write_list(std::span<const VertexId> ids, std::ostream& out) {
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) out << ',';
    out << ids[i];
  }
}

}  // namespace

void write_graph(const Graph& g, std::ostream& out) {
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out << v << ": ";
    if (g.directed()) {
      write_list(g.in_neighbors(v), out);
      out << " # ";
      write_list(g.out_neighbors(v), out);
    } else {
      write_list(g.out_neighbors(v), out);
    }
    out << '\n';
  }
}

void write_graph_to_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw FormatError("cannot open '" + path + "' for writing");
  write_graph(g, out);
}

Graph read_graph(std::istream& in, bool directed) {
  // First pass accumulates edges keyed by the maximum id seen; vertex ids
  // must be dense (0..n-1) per the paper's preprocessed datasets.
  std::vector<std::pair<VertexId, VertexId>> edges;
  VertexId max_id = 0;
  bool saw_vertex = false;

  std::string line;
  std::vector<VertexId> ids;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv(line);
    if (sv.empty()) continue;
    const std::size_t colon = sv.find(':');
    if (colon == std::string_view::npos) {
      throw FormatError("missing ':' at line " + std::to_string(line_no));
    }
    const VertexId v = parse_id(sv.substr(0, colon), line_no);
    saw_vertex = true;
    max_id = std::max(max_id, v);
    std::string_view rest = sv.substr(colon + 1);
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);

    std::string_view out_list = rest;
    if (directed) {
      const std::size_t hash = rest.find('#');
      if (hash == std::string_view::npos) {
        throw FormatError("directed vertex line missing '#' at line " +
                          std::to_string(line_no));
      }
      // The in-list is redundant with the out-lists of other vertices;
      // only the out-list defines edges.
      out_list = rest.substr(hash + 1);
    }
    while (!out_list.empty() && out_list.front() == ' ') out_list.remove_prefix(1);
    while (!out_list.empty() && out_list.back() == ' ') out_list.remove_suffix(1);

    parse_id_list(out_list, line_no, ids);
    for (VertexId u : ids) {
      edges.emplace_back(v, u);
      max_id = std::max(max_id, u);
    }
  }

  const VertexId n = saw_vertex ? max_id + 1 : 0;
  GraphBuilder builder(n, directed);
  for (auto [u, v] : edges) builder.add_edge(u, v);
  return builder.build();
}

Graph read_graph_from_file(const std::string& path, bool directed) {
  std::ifstream in(path);
  if (!in) throw FormatError("cannot open '" + path + "' for reading");
  return read_graph(in, directed);
}

Graph read_snap_edge_list(std::istream& in, bool directed) {
  // weight 0 marks "no third column": builder weights are 1-based.
  std::vector<std::tuple<VertexId, VertexId, EdgeWeight>> edges;
  bool any_weighted = false;
  std::unordered_map<std::uint64_t, VertexId> remap;
  const auto dense_id = [&remap](std::uint64_t raw) {
    const auto [it, inserted] =
        remap.emplace(raw, static_cast<VertexId>(remap.size()));
    (void)inserted;
    return it->second;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv(line);
    while (!sv.empty() && (sv.front() == ' ' || sv.front() == '\t')) {
      sv.remove_prefix(1);
    }
    if (sv.empty() || sv.front() == '#') continue;

    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    const char* begin = sv.data();
    const char* end = sv.data() + sv.size();
    auto [p1, e1] = std::from_chars(begin, end, src);
    if (e1 != std::errc{}) {
      throw FormatError("bad source id at line " + std::to_string(line_no));
    }
    while (p1 != end && (*p1 == ' ' || *p1 == '\t')) ++p1;
    auto [p2, e2] = std::from_chars(p1, end, dst);
    if (e2 != std::errc{} || p1 == p2) {
      throw FormatError("bad destination id at line " +
                        std::to_string(line_no));
    }
    // Optional third column: an integer edge weight (weighted SNAP
    // exports). Lines without one build unweighted edges.
    EdgeWeight weight = 0;
    while (p2 != end && (*p2 == ' ' || *p2 == '\t')) ++p2;
    if (p2 != end) {
      auto [p3, e3] = std::from_chars(p2, end, weight);
      if (e3 != std::errc{} || p3 != end || weight == 0) {
        throw FormatError("bad edge weight at line " + std::to_string(line_no));
      }
      any_weighted = true;
    }
    // Sequence the renumbering explicitly: argument evaluation order is
    // unspecified, and ids must be assigned in reading order.
    const VertexId s = dense_id(src);
    const VertexId t = dense_id(dst);
    edges.emplace_back(s, t, weight);
  }

  GraphBuilder builder(static_cast<VertexId>(remap.size()), directed);
  for (const auto& [u, v, w] : edges) {
    if (any_weighted) {
      builder.add_edge(u, v, w == 0 ? 1 : w);
    } else {
      builder.add_edge(u, v);
    }
  }
  return builder.build();
}

Graph read_snap_edge_list_from_file(const std::string& path, bool directed) {
  std::ifstream in(path);
  if (!in) throw FormatError("cannot open '" + path + "' for reading");
  return read_snap_edge_list(in, directed);
}

void write_snap_edge_list(const Graph& g, std::ostream& out) {
  out << "# graphbench SNAP export: " << g.num_vertices() << " nodes, "
      << g.num_edges() << " edges, "
      << (g.directed() ? "directed" : "undirected") << '\n';
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.out_neighbors(v);
    const auto weights = g.out_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId u = nbrs[k];
      if (!g.directed() && u < v) continue;  // each undirected edge once
      out << v << '\t' << u;
      if (g.weighted()) out << '\t' << weights[k];
      out << '\n';
    }
  }
}

}  // namespace gb
