#include "harness/cell_result.h"

#include <cstdio>
#include <cstring>

#include "core/error.h"
#include "harness/json.h"
#include "harness/json_read.h"

namespace gb::harness {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h = (h ^ bytes[i]) * kFnvPrime;
  }
  return h;
}

std::string hex64(std::uint64_t value) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::uint64_t parse_hex64(const std::string& text) {
  if (text.empty() || text.size() > 16) {
    throw FormatError("cell result: bad hash '" + text + "'");
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw FormatError("cell result: bad hash '" + text + "'");
    }
  }
  return value;
}

}  // namespace

std::string outcome_class(const std::string& outcome_label) {
  if (outcome_label == "ok") return "ok";
  if (outcome_label.rfind("crash", 0) == 0) return "crash";
  if (outcome_label == "timeout") return "timeout";
  if (outcome_label == "n/a") return "n/a";
  return "error";
}

std::uint64_t hash_output(const platforms::AlgorithmOutput& output) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, output.vertex_values.data(),
            output.vertex_values.size() * sizeof(std::uint64_t));
  // Hash the scalar's bit pattern, not its value: the digest certifies
  // bit-identity, and distinct bit patterns (e.g. -0.0 vs 0.0) differ.
  std::uint64_t scalar_bits = 0;
  static_assert(sizeof(scalar_bits) == sizeof(output.scalar));
  std::memcpy(&scalar_bits, &output.scalar, sizeof(scalar_bits));
  h = fnv1a(h, &scalar_bits, sizeof(scalar_bits));
  h = fnv1a(h, &output.vertices, sizeof(output.vertices));
  h = fnv1a(h, &output.edges, sizeof(output.edges));
  h = fnv1a(h, &output.iterations, sizeof(output.iterations));
  return h;
}

CellResult make_cell_result(std::string key, std::string platform,
                            std::string dataset, std::string algorithm,
                            std::uint32_t workers, std::uint32_t cores,
                            double scale, std::uint64_t seed,
                            const Measurement& measurement) {
  CellResult r;
  r.key = std::move(key);
  r.platform = std::move(platform);
  r.dataset = std::move(dataset);
  r.algorithm = std::move(algorithm);
  r.workers = workers;
  r.cores = cores;
  r.scale = scale;
  r.seed = seed;
  r.outcome = outcome_label(measurement.outcome);
  r.message = measurement.message;
  if (measurement.ok()) {
    r.makespan_sec = measurement.result.total_time;
    r.computation_sec = measurement.result.computation_time;
    r.iterations = measurement.result.output.iterations;
  }
  r.output_hash = hash_output(measurement.result.output);
  r.metrics = measurement.metrics;
  return r;
}

void write_cell_result(JsonWriter& json, const CellResult& result) {
  json.begin_object();
  json.key("key");
  json.value(result.key);
  json.key("platform");
  json.value(result.platform);
  json.key("dataset");
  json.value(result.dataset);
  json.key("algorithm");
  json.value(result.algorithm);
  json.key("workers");
  json.value(static_cast<std::uint64_t>(result.workers));
  json.key("cores");
  json.value(static_cast<std::uint64_t>(result.cores));
  json.key("scale");
  json.value(result.scale);
  json.key("seed");
  // Seeds are user-chosen 64-bit values; hex strings round-trip exactly
  // where a JSON double would lose bits above 2^53.
  json.value(hex64(result.seed));
  json.key("outcome");
  json.value(result.outcome);
  json.key("message");
  json.value(result.message);
  json.key("makespan_sec");
  json.value(result.makespan_sec);
  json.key("computation_sec");
  json.value(result.computation_sec);
  json.key("iterations");
  json.value(result.iterations);
  json.key("attempts");
  json.value(static_cast<std::uint64_t>(result.attempts));
  json.key("output_hash");
  json.value(hex64(result.output_hash));
  if (!result.host_ms.empty()) {
    // Only when present: single-shot records keep their historical bytes.
    json.key("host_ms");
    json.begin_array();
    for (const double ms : result.host_ms) json.value(ms);
    json.end_array();
  }
  json.key("metrics");
  json.begin_object();
  json.key("counters");
  json.begin_object();
  for (const auto& [name, value] : result.metrics.counters) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  json.key("gauges");
  json.begin_object();
  for (const auto& [name, value] : result.metrics.gauges) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  json.end_object();
  json.end_object();
}

std::string cell_result_to_json(const CellResult& result) {
  JsonWriter json;
  write_cell_result(json, result);
  return json.str();
}

CellResult cell_result_from_json(const std::string& text) {
  const JsonValue doc = parse_json(text);
  if (!doc.is_object()) throw FormatError("cell result: not an object");
  CellResult r;
  r.key = doc.string_or("key", "");
  if (r.key.empty()) throw FormatError("cell result: missing key");
  r.platform = doc.string_or("platform", "");
  r.dataset = doc.string_or("dataset", "");
  r.algorithm = doc.string_or("algorithm", "");
  r.workers = static_cast<std::uint32_t>(doc.u64_or("workers", 0));
  r.cores = static_cast<std::uint32_t>(doc.u64_or("cores", 0));
  r.scale = doc.number_or("scale", 0.0);
  r.seed = parse_hex64(doc.string_or("seed", "0"));
  r.outcome = doc.string_or("outcome", "error");
  r.message = doc.string_or("message", "");
  r.makespan_sec = doc.number_or("makespan_sec", 0.0);
  r.computation_sec = doc.number_or("computation_sec", 0.0);
  r.iterations = doc.u64_or("iterations", 0);
  r.attempts = static_cast<std::uint32_t>(doc.u64_or("attempts", 1));
  r.output_hash = parse_hex64(doc.string_or("output_hash", "0"));
  if (const JsonValue* host = doc.find("host_ms")) {
    if (!host->is_array()) {
      throw FormatError("cell result: host_ms is not an array");
    }
    for (const JsonValue& ms : host->array) {
      if (ms.kind != JsonValue::Kind::kNumber) {
        throw FormatError("cell result: host_ms entry is not a number");
      }
      r.host_ms.push_back(ms.number);
    }
  }
  if (const JsonValue* metrics = doc.find("metrics")) {
    if (const JsonValue* counters = metrics->find("counters")) {
      for (const auto& [name, value] : counters->object) {
        if (value.kind != JsonValue::Kind::kNumber) {
          throw FormatError("cell result: counter '" + name +
                            "' is not a number");
        }
        r.metrics.counters.emplace_back(
            name, static_cast<std::uint64_t>(value.number));
      }
    }
    if (const JsonValue* gauges = metrics->find("gauges")) {
      for (const auto& [name, value] : gauges->object) {
        if (value.kind != JsonValue::Kind::kNumber &&
            !value.is_null()) {
          throw FormatError("cell result: gauge '" + name +
                            "' is not a number");
        }
        r.metrics.gauges.emplace_back(name,
                                      value.is_null() ? 0.0 : value.number);
      }
    }
  }
  return r;
}

}  // namespace gb::harness
