#include "harness/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/error.h"

namespace gb::harness {

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths;
  const auto account = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  account(header_);
  for (const auto& row : rows_) account(row);

  out << "== " << title_ << " ==\n";
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    out << '\n';
  };
  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (const std::size_t w : widths) total += w + 2;
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) print_row(row);
  out << '\n';
}

namespace {

// RFC 4180: cells containing the separator, quotes or line breaks are
// double-quoted, with embedded quotes doubled. Everything else passes
// through verbatim so existing plain-cell CSVs keep their bytes.
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string quoted;
  quoted.reserve(cell.size() + 2);
  quoted += '"';
  for (const char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  const auto write_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << ',';
      out << csv_escape(row[i]);
    }
    out << '\n';
  };
  if (!header_.empty()) write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

std::string format_seconds(SimTime t) {
  std::ostringstream out;
  out << std::fixed;
  if (t >= 3600.0) {
    out << std::setprecision(1) << t / 3600.0 << " h";
  } else if (t >= 60.0) {
    out << std::setprecision(1) << t / 60.0 << " min";
  } else if (t >= 1.0) {
    out << std::setprecision(1) << t << " s";
  } else {
    out << std::setprecision(1) << t * 1000.0 << " ms";
  }
  return out.str();
}

std::string format_si(double value) {
  // Two decimals in every branch — the giga range used to round to whole
  // units ("2G" for 1.5e9), inconsistent with "1.50M"/"1.50k" below.
  // Scale by magnitude so negative values pick the same unit as their
  // positive counterparts ("-1.50M", not "-1500000.00").
  const double magnitude = std::abs(value);
  std::ostringstream out;
  out << std::fixed << std::setprecision(2);
  if (magnitude >= 1e9) {
    out << value / 1e9 << "G";
  } else if (magnitude >= 1e6) {
    out << value / 1e6 << "M";
  } else if (magnitude >= 1e3) {
    out << value / 1e3 << "k";
  } else {
    out << value;
  }
  return out.str();
}

std::string format_measurement(const Measurement& m) {
  if (m.ok()) return format_seconds(m.time());
  return outcome_label(m.outcome);
}

void print_metrics(std::ostream& out, const obs::MetricsSnapshot& metrics,
                   const std::string& indent) {
  for (const auto& [name, value] : metrics.counters) {
    out << indent << name << ": " << value << '\n';
  }
  for (const auto& [name, value] : metrics.gauges) {
    out << indent << name << ": " << format_si(value) << '\n';
  }
}

}  // namespace gb::harness
