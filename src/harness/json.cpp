#include "harness/json.h"

#include <cmath>
#include <cstdio>

#include "core/error.h"

namespace gb::harness {

void JsonWriter::comma_if_needed() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows "key":
  }
  if (!has_items_.empty()) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
  }
}

void JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  stack_.push_back('{');
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != '{' || pending_key_) {
    throw Error("JsonWriter: unbalanced end_object");
  }
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
}

void JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  stack_.push_back('[');
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != '[' || pending_key_) {
    throw Error("JsonWriter: unbalanced end_array");
  }
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
}

void JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != '{' || pending_key_) {
    throw Error("JsonWriter: key outside an object");
  }
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::value(const std::string& text) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(text);
  out_ += '"';
}

void JsonWriter::value(const char* text) { value(std::string(text)); }

void JsonWriter::value(double number) {
  // JSON has no nan/inf literals; "%.17g" would emit them verbatim and
  // corrupt the document. null is the conventional stand-in.
  if (!std::isfinite(number)) {
    null();
    return;
  }
  comma_if_needed();
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", number);
  out_ += buffer;
}

void JsonWriter::value(std::uint64_t number) {
  comma_if_needed();
  out_ += std::to_string(number);
}

void JsonWriter::value(bool flag) {
  comma_if_needed();
  out_ += flag ? "true" : "false";
}

void JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
}

std::string JsonWriter::str() const {
  if (!stack_.empty() || pending_key_) {
    throw Error("JsonWriter: document still open");
  }
  return out_;
}

std::string JsonWriter::escape(const std::string& raw) {
  std::string escaped;
  escaped.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\t':
        escaped += "\\t";
        break;
      case '\r':
        escaped += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

std::string measurement_to_json(const std::string& platform,
                                const std::string& dataset,
                                const std::string& algorithm,
                                const Measurement& measurement) {
  JsonWriter json;
  json.begin_object();
  json.key("platform");
  json.value(platform);
  json.key("dataset");
  json.value(dataset);
  json.key("algorithm");
  json.value(algorithm);
  json.key("outcome");
  json.value(outcome_label(measurement.outcome));
  json.key("host_threads");
  json.value(static_cast<std::uint64_t>(measurement.host_threads));
  json.key("host_wall_sec");
  json.value(measurement.host_wall_seconds);
  json.key("faults");
  json.begin_object();
  json.key("injected");
  json.value(measurement.faults.injected);
  json.key("worker_crashes");
  json.value(measurement.faults.worker_crashes);
  json.key("transient_failures");
  json.value(measurement.faults.transient_failures);
  json.key("stragglers");
  json.value(measurement.faults.stragglers);
  json.key("task_retries");
  json.value(measurement.faults.task_retries);
  json.key("checkpoint_restarts");
  json.value(measurement.faults.checkpoint_restarts);
  json.key("recomputed_sec");
  json.value(measurement.faults.recomputed_sec);
  json.key("checkpoint_overhead_sec");
  json.value(measurement.faults.checkpoint_overhead_sec);
  json.key("straggler_delay_sec");
  json.value(measurement.faults.straggler_delay_sec);
  json.key("recovery_sec");
  json.value(measurement.faults.recovery_sec);
  json.end_object();
  if (measurement.partition.valid) {
    const auto& part = measurement.partition;
    json.key("partition");
    json.begin_object();
    json.key("strategy");
    json.value(partition::strategy_name(part.strategy));
    json.key("parts");
    json.value(static_cast<std::uint64_t>(part.parts));
    json.key("edge_cut_fraction");
    json.value(part.edge_cut_fraction);
    json.key("replication_factor");
    json.value(part.replication_factor);
    json.key("imbalance");
    json.value(part.imbalance);
    json.key("max_load");
    json.value(part.max_load);
    json.key("mean_load");
    json.value(part.mean_load);
    json.end_object();
  }
  json.key("metrics");
  json.begin_object();
  json.key("counters");
  json.begin_object();
  for (const auto& [name, value] : measurement.metrics.counters) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  json.key("gauges");
  json.begin_object();
  for (const auto& [name, value] : measurement.metrics.gauges) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  json.end_object();
  if (measurement.ok()) {
    json.key("total_time_sec");
    json.value(measurement.result.total_time);
    json.key("computation_time_sec");
    json.value(measurement.result.computation_time);
    json.key("overhead_time_sec");
    json.value(measurement.result.overhead_time());
    json.key("iterations");
    json.value(measurement.result.output.iterations);
    json.key("phases");
    json.begin_array();
    for (const auto& [name, duration] : measurement.result.phases) {
      json.begin_object();
      json.key("name");
      json.value(name);
      json.key("sec");
      json.value(duration);
      json.end_object();
    }
    json.end_array();
  } else {
    json.key("error");
    json.value(measurement.message);
  }
  json.end_object();
  return json.str();
}

}  // namespace gb::harness
