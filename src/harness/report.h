// Plain-text table / CSV reporting for the bench binaries. Each bench
// prints the rows/series of one paper table or figure.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/types.h"
#include "harness/experiment.h"

namespace gb::harness {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header) {
    header_ = std::move(header);
  }
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Aligned ASCII rendering.
  void print(std::ostream& out) const;

  /// Comma-separated rendering (for plotting scripts).
  void write_csv(const std::string& path) const;

  const std::string& title() const { return title_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "123.4 s", "1.2 h" — human execution times.
std::string format_seconds(SimTime t);

/// Engineering notation with SI suffix ("3.4M", "870k").
std::string format_si(double value);

/// A measurement cell: time when ok, the failure label otherwise.
std::string format_measurement(const Measurement& m);

/// Text rendering of a metrics snapshot, one "<indent><name>: <value>"
/// line per metric (counters first, then gauges via format_si). Writes
/// nothing for an empty snapshot.
void print_metrics(std::ostream& out, const obs::MetricsSnapshot& metrics,
                   const std::string& indent = "  ");

}  // namespace gb::harness
