#include "harness/json_read.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "core/error.h"

namespace gb::harness {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw FormatError("json: " + what + " at offset " +
                      std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(const char* word) {
    std::size_t len = 0;
    while (word[len] != '\0') ++len;
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't': {
        if (!consume_word("true")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_word("false")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_word("null")) fail("bad literal");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return v;
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return v;
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Our writer only escapes control characters (< 0x20); encode
          // the general case as UTF-8 anyway so foreign documents parse.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(parsed)) {
      fail("bad number '" + token + "'");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = parsed;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (v->kind != Kind::kNumber) {
    throw FormatError("json: member '" + key + "' is not a number");
  }
  return v->number;
}

std::uint64_t JsonValue::u64_or(const std::string& key,
                                std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (v->kind != Kind::kNumber) {
    throw FormatError("json: member '" + key + "' is not a number");
  }
  // %.17g round-trips every uint64 the writer emits below 2^53 exactly;
  // journal counters stay far below that.
  return static_cast<std::uint64_t>(v->number);
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (v->kind != Kind::kString) {
    throw FormatError("json: member '" + key + "' is not a string");
  }
  return v->string;
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (v->kind != Kind::kBool) {
    throw FormatError("json: member '" + key + "' is not a bool");
  }
  return v->boolean;
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace gb::harness
