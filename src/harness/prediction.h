// Performance-boundary model (the paper's stated future work, Section 7:
// "an empirically validated performance-boundary model for predicting the
// worst performance of these platforms").
//
// Given nothing but dataset statistics (vertex/edge counts, on-disk size),
// an iteration budget and a cluster shape, predict — without executing
// anything — an upper bound on the job execution time per platform. The
// bound assumes the worst case for the data-dependent unknowns: every
// vertex active in every iteration, every message crossing the network,
// every iteration running the full budget. The prediction bench validates
// the bound against the simulator: bounded ≥ simulated for every cell,
// and tight within a small factor for the platforms without dynamic
// active sets.
#pragma once

#include <cstdint>
#include <string>

#include "core/types.h"
#include "datasets/catalog.h"
#include "platforms/platform.h"
#include "sim/cluster.h"

namespace gb::harness {

/// Structural inputs of the model: everything an analyst knows *before*
/// running (Table 2 plus an iteration budget).
struct WorkloadStats {
  double vertices = 0;
  double adjacency_entries = 0;  // stored directed arcs (2E if undirected)
  double text_bytes = 0;
  double iterations = 1;          // algorithm rounds (budget or estimate)
  double message_bytes = 16.0;    // per message on the wire
};

/// Extract workload stats from a dataset (paper-size, i.e. extrapolated).
WorkloadStats workload_stats(const datasets::Dataset& dataset,
                             double iterations);

enum class PlatformClass {
  kHadoop,
  kYarn,
  kStratosphere,
  kGiraph,
  kGraphLab,
  kNeo4j,
};

const char* platform_class_name(PlatformClass p);

struct Prediction {
  SimTime upper_bound = 0;  // worst-case job execution time
  SimTime fixed_cost = 0;   // setup / load / write floor (iteration-free)
  SimTime per_iteration = 0;
};

/// Closed-form worst-case prediction. Uses the same cost model as the
/// engines but no execution: all data-dependent quantities are replaced
/// by their maxima.
Prediction predict_worst_case(PlatformClass platform,
                              const WorkloadStats& workload,
                              const sim::ClusterConfig& cluster);

}  // namespace gb::harness
