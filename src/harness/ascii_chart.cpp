#include "harness/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

namespace gb::harness {

std::string ascii_chart(std::span<const double> values,
                        const ChartOptions& options) {
  if (values.empty() || options.height <= 0) return "";
  double y_max = options.y_max;
  if (y_max <= 0) {
    y_max = *std::max_element(values.begin(), values.end());
  }
  if (y_max <= 0) y_max = 1.0;

  std::ostringstream out;
  for (int row = options.height; row >= 1; --row) {
    const double threshold =
        y_max * (static_cast<double>(row) - 0.5) / options.height;
    if (row == options.height) {
      char header[64];
      std::snprintf(header, sizeof(header), "%10.3g |", y_max);
      out << header;
    } else if (row == 1) {
      char footer[64];
      std::snprintf(footer, sizeof(footer), "%10.3g |", 0.0);
      out << footer;
    } else {
      out << std::string(11, ' ') << '|';
    }
    for (const double v : values) {
      out << (v >= threshold ? options.mark : ' ');
    }
    out << '\n';
  }
  out << std::string(11, ' ') << '+' << std::string(values.size(), '-')
      << '\n';
  if (!options.y_label.empty()) {
    out << std::string(12, ' ') << options.y_label << '\n';
  }
  return out.str();
}

std::vector<double> downsample(std::span<const double> values,
                               std::size_t columns) {
  std::vector<double> result;
  if (values.empty() || columns == 0) return result;
  result.reserve(columns);
  for (std::size_t c = 0; c < columns; ++c) {
    const std::size_t begin = c * values.size() / columns;
    const std::size_t end = (c + 1) * values.size() / columns;
    if (begin == end) {
      // More columns than samples: this bucket received no sample.
      // values[begin] is the sample whose span covers this column, so
      // pushing it holds the series at its current level (step
      // interpolation) rather than averaging zero samples or collapsing
      // the chart to values.size() columns.
      result.push_back(values[begin]);
      continue;
    }
    double sum = 0;
    for (std::size_t i = begin; i < end; ++i) sum += values[i];
    result.push_back(sum / static_cast<double>(end - begin));
  }
  return result;
}

}  // namespace gb::harness
