// The paper's metrics (Table 1): EPS, VPS and their normalized variants.
// All use the *paper-size* (extrapolated) vertex/edge counts so that
// scaled datasets report comparable throughput.
#pragma once

#include "core/types.h"
#include "datasets/catalog.h"

namespace gb::harness {

/// Edges per second: #E / T.
inline double eps(const datasets::Dataset& dataset, SimTime t) {
  if (t <= 0) return 0;
  return static_cast<double>(dataset.graph.num_edges()) *
         dataset.extrapolation() / t;
}

/// Vertices per second: #V / T.
inline double vps(const datasets::Dataset& dataset, SimTime t) {
  if (t <= 0) return 0;
  return static_cast<double>(dataset.graph.num_vertices()) *
         dataset.extrapolation() / t;
}

/// Normalized EPS: per computing node, or per core when cores > 1.
inline double neps(const datasets::Dataset& dataset, SimTime t,
                   std::uint32_t nodes, std::uint32_t cores_per_node = 1) {
  if (nodes == 0 || cores_per_node == 0) return 0;
  return eps(dataset, t) / (static_cast<double>(nodes) * cores_per_node);
}

inline double nvps(const datasets::Dataset& dataset, SimTime t,
                   std::uint32_t nodes, std::uint32_t cores_per_node = 1) {
  if (nodes == 0 || cores_per_node == 0) return 0;
  return vps(dataset, t) / (static_cast<double>(nodes) * cores_per_node);
}

}  // namespace gb::harness
