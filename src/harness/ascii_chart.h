// Terminal rendering of numeric series — the bench binaries use it to
// show the resource-usage figures (5-10) directly in the console, next to
// the CSVs meant for plotting tools.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace gb::harness {

struct ChartOptions {
  int height = 8;             // character rows
  double y_max = 0;           // <= 0: autoscale to the series maximum
  char mark = '#';
  std::string y_label;        // printed on the scale line
};

/// Render `values` as a column chart, one character column per value.
/// Returns a multi-line string (trailing newline included). Empty input
/// renders an empty string.
std::string ascii_chart(std::span<const double> values,
                        const ChartOptions& options = {});

/// Resample a series to exactly `columns` points by bucket-averaging (so
/// a 100-point normalized trace fits a terminal row). When the series is
/// shorter than `columns`, buckets that receive no sample hold the value
/// of the sample whose span covers them (step interpolation), stretching
/// the series across the full chart width instead of squeezing it into
/// the first few columns. Empty input or zero columns yields an empty
/// vector.
std::vector<double> downsample(std::span<const double> values,
                               std::size_t columns);

}  // namespace gb::harness
