// Per-cell campaign result schema.
//
// One CellResult is the durable record of one (platform, dataset,
// algorithm, cluster-size) cell: the identity axes, the outcome the paper
// would print, the simulated makespan, a digest of the algorithm output,
// and the cell's metrics snapshot. It is what the campaign journal appends
// per completed cell, what resume reads back, and what the baseline store
// diffs — so serialization must round-trip exactly: parsing a serialized
// record and re-serializing it yields identical bytes. All fields derive
// from simulated quantities; host wall-clock never enters this schema
// (it would break resumed-vs-uninterrupted report identity).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "obs/metrics.h"

namespace gb::harness {

struct CellResult {
  /// Canonical cell key (see campaign::CellSpec::key()); unique per grid.
  std::string key;

  // Identity axes.
  std::string platform;
  std::string dataset;
  std::string algorithm;
  std::uint32_t workers = 0;
  std::uint32_t cores = 0;
  double scale = 0.0;        // dataset scale (0 = catalog default)
  std::uint64_t seed = 0;    // dataset generation seed

  // Outcome.
  std::string outcome;       // outcome_label() string, e.g. "crash(OOM)"
  std::string message;       // failure detail, empty when ok
  double makespan_sec = 0.0;        // simulated T (0 unless ok)
  double computation_sec = 0.0;     // simulated Tc (0 unless ok)
  std::uint64_t iterations = 0;
  std::uint32_t attempts = 1;       // runs including bounded fault retries

  /// FNV-1a digest of the algorithm output (vertex values, scalar,
  /// counts). Pins bit-identity of results across parallelism settings
  /// and baseline generations without storing the full output.
  std::uint64_t output_hash = 0;

  /// Host wall-clock milliseconds of each timed repetition of this cell
  /// (campaign --reps; empty for single-shot runs, and then absent from
  /// the serialized record, so existing journals and baselines keep
  /// their exact bytes). This is the one deliberate exception to the
  /// "no host wall-clock" rule above: the *simulated* fields stay
  /// bit-identical across reps and parallelism — enforced per rep by the
  /// runner — while the host-time distribution is what the mean ± CI
  /// methodology reporting summarizes. Resume reuses the journaled
  /// distribution, so completed repetitions survive a crash.
  std::vector<double> host_ms;

  /// Per-cell metrics snapshot (journaled so a resumed campaign's rollup
  /// matches an uninterrupted one).
  obs::MetricsSnapshot metrics;

  bool ok() const { return outcome == "ok"; }
};

/// Coarse outcome classes for baseline shape checks: "ok", "crash",
/// "timeout", "n/a", "error". All crash flavours (OOM, disk, lost node)
/// collapse into "crash" — the paper's figures distinguish *that* a cell
/// crashed, the flavour is diagnostic detail.
std::string outcome_class(const std::string& outcome_label);

/// Assemble a CellResult from a finished measurement (identity axes are
/// the caller's; attempts defaults to 1).
CellResult make_cell_result(std::string key, std::string platform,
                            std::string dataset, std::string algorithm,
                            std::uint32_t workers, std::uint32_t cores,
                            double scale, std::uint64_t seed,
                            const Measurement& measurement);

/// Digest of an algorithm output (FNV-1a over values, scalar bits and
/// counts). Exposed so tests can compute expected digests directly.
std::uint64_t hash_output(const platforms::AlgorithmOutput& output);

class JsonWriter;

/// Emit the record as one JSON object into an open writer. The campaign
/// report embeds cells through this same function, so a journal line and
/// a report entry for the same cell are byte-identical.
void write_cell_result(JsonWriter& json, const CellResult& result);

/// One compact JSON object (single line, no trailing newline).
std::string cell_result_to_json(const CellResult& result);

/// Parse a serialized record. Throws FormatError on malformed input.
/// Guaranteed: cell_result_to_json(cell_result_from_json(s)) == s for any
/// s this library wrote.
CellResult cell_result_from_json(const std::string& text);

}  // namespace gb::harness
