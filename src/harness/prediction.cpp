#include "harness/prediction.h"

#include <algorithm>
#include <cmath>

namespace gb::harness {

WorkloadStats workload_stats(const datasets::Dataset& dataset,
                             double iterations) {
  WorkloadStats w;
  const double scale = dataset.extrapolation();
  w.vertices = static_cast<double>(dataset.graph.num_vertices()) * scale;
  w.adjacency_entries =
      static_cast<double>(dataset.graph.num_adjacency_entries()) * scale;
  w.text_bytes = static_cast<double>(dataset.graph.text_size_bytes()) * scale;
  w.iterations = std::max(1.0, iterations);
  return w;
}

const char* platform_class_name(PlatformClass p) {
  switch (p) {
    case PlatformClass::kHadoop:
      return "Hadoop";
    case PlatformClass::kYarn:
      return "YARN";
    case PlatformClass::kStratosphere:
      return "Stratosphere";
    case PlatformClass::kGiraph:
      return "Giraph";
    case PlatformClass::kGraphLab:
      return "GraphLab";
    case PlatformClass::kNeo4j:
      return "Neo4j";
  }
  return "?";
}

namespace {

/// Worst case for message-passing rounds: every stored arc carries one
/// message per iteration.
double worst_messages(const WorkloadStats& w) { return w.adjacency_entries; }

Prediction predict_mapreduce(const WorkloadStats& w,
                             const sim::ClusterConfig& cluster, bool yarn) {
  const auto& cost = cluster.cost;
  const double workers = cluster.num_workers;
  const double slots = workers * cluster.cores_per_worker;

  const double map_out_bytes =
      w.text_bytes + worst_messages(w) * w.message_bytes;
  const double records = w.vertices + worst_messages(w);
  const double records_per_slot = std::max(records / slots, 1.0);

  const double setup = (yarn ? cost.yarn_job_setup_sec : cost.mr_job_setup_sec) +
                       2.0 * cost.jvm_startup_sec;
  const double read = w.text_bytes / (cost.disk_read_bps * workers);
  const double cpu =
      (w.adjacency_entries + w.vertices + 2.0 * records) *
      cost.jvm_sec_per_unit / slots;
  const double sort = records_per_slot * std::log2(records_per_slot + 2.0) *
                      cost.jvm_sec_per_unit;
  const double spill = map_out_bytes / (cost.disk_write_bps * workers);
  const double shuffle =
      map_out_bytes / (cost.net_bps * workers) +
      map_out_bytes / (cost.disk_read_bps * workers);
  const double write = w.text_bytes / (cost.disk_write_bps * workers);
  // Convergence-check job: setup + scan.
  const double convergence = (yarn ? cost.yarn_job_setup_sec
                                   : cost.mr_job_setup_sec) +
                             cost.jvm_startup_sec + read;

  Prediction p;
  p.per_iteration =
      setup + read + cpu + sort + spill + shuffle + write + convergence;
  p.fixed_cost = 0;
  p.upper_bound = p.fixed_cost + w.iterations * p.per_iteration;
  return p;
}

Prediction predict_stratosphere(const WorkloadStats& w,
                                const sim::ClusterConfig& cluster) {
  const auto& cost = cluster.cost;
  const double workers = cluster.num_workers;
  const double slots = workers * cluster.cores_per_worker;
  const double records = w.vertices + worst_messages(w);
  const double records_per_slot = std::max(records / slots, 1.0);

  const double read = w.text_bytes / (cost.disk_read_bps * workers);
  const double cpu = (w.adjacency_entries + w.vertices + records) *
                     cost.jvm_sec_per_unit / slots;
  const double sort = records_per_slot * std::log2(records_per_slot + 2.0) *
                      cost.jvm_sec_per_unit;
  const double net = (records * w.message_bytes) / (cost.net_bps * workers);
  const double write = w.text_bytes / (cost.disk_write_bps * workers);

  Prediction p;
  p.per_iteration = cost.dataflow_deploy_sec + read + cpu + sort + net + write;
  p.fixed_cost = 0;
  p.upper_bound = w.iterations * p.per_iteration;
  return p;
}

Prediction predict_giraph(const WorkloadStats& w,
                          const sim::ClusterConfig& cluster) {
  const auto& cost = cluster.cost;
  const double workers = cluster.num_workers;
  const double slots = workers * cluster.cores_per_worker;

  const double load = w.text_bytes / (cost.disk_read_bps * workers) +
                      w.adjacency_entries * cost.jvm_sec_per_unit / slots +
                      w.text_bytes / (cost.net_bps * workers);
  const double per_step =
      (w.vertices + 4.0 * worst_messages(w)) * cost.jvm_sec_per_unit / slots +
      worst_messages(w) * w.message_bytes / (cost.net_bps * workers) +
      cost.bsp_barrier_sec;

  Prediction p;
  p.fixed_cost = cost.jvm_startup_sec + load + w.vertices * 20.0 /
                                                   (cost.disk_write_bps * workers);
  p.per_iteration = per_step;
  p.upper_bound = p.fixed_cost + w.iterations * per_step;
  return p;
}

Prediction predict_graphlab(const WorkloadStats& w,
                            const sim::ClusterConfig& cluster) {
  const auto& cost = cluster.cost;
  const double workers = cluster.num_workers;
  const double slots = workers * cluster.cores_per_worker;

  // Stock single-file loading: one reader, one NIC.
  const double load = w.text_bytes / cost.disk_read_bps +
                      w.text_bytes * 30e-9 +
                      w.text_bytes / cost.net_bps;
  const double finalize =
      w.adjacency_entries * cost.native_sec_per_unit / slots;
  // Worst-case mirror sync: every vertex mirrored on every worker.
  const double sync_bytes = w.vertices * workers * 40.0;
  const double per_step =
      (w.vertices + 2.0 * w.adjacency_entries) * cost.native_sec_per_unit /
          slots +
      sync_bytes / (cost.net_bps * workers) + 4.0 * cost.net_latency_sec;

  Prediction p;
  p.fixed_cost = cost.mpi_startup_sec + load + finalize;
  p.per_iteration = per_step;
  p.upper_bound = p.fixed_cost + w.iterations * per_step;
  return p;
}

Prediction predict_neo4j(const WorkloadStats& w,
                         const sim::ClusterConfig& cluster) {
  (void)cluster;
  // Worst case: the object cache thrashes (graph exceeds the heap) and
  // every record access pays the fault path.
  const double accesses = (w.vertices + w.adjacency_entries) * w.iterations;
  Prediction p;
  p.fixed_cost = 0.2;
  p.per_iteration = accesses / w.iterations * 0.9 * 0.5e-3;
  p.upper_bound = p.fixed_cost + w.iterations * p.per_iteration;
  return p;
}

}  // namespace

Prediction predict_worst_case(PlatformClass platform,
                              const WorkloadStats& workload,
                              const sim::ClusterConfig& cluster) {
  Prediction p;
  switch (platform) {
    case PlatformClass::kHadoop:
      p = predict_mapreduce(workload, cluster, false);
      break;
    case PlatformClass::kYarn:
      p = predict_mapreduce(workload, cluster, true);
      break;
    case PlatformClass::kStratosphere:
      p = predict_stratosphere(workload, cluster);
      break;
    case PlatformClass::kGiraph:
      p = predict_giraph(workload, cluster);
      break;
    case PlatformClass::kGraphLab:
      p = predict_graphlab(workload, cluster);
      break;
    case PlatformClass::kNeo4j:
      p = predict_neo4j(workload, cluster);
      break;
  }
  // Model tolerance: the closed forms drop constant terms (seeks, wire
  // latencies, coordination barriers) that a worst-case bound must cover.
  constexpr double kHeadroomFactor = 1.10;
  constexpr double kHeadroomFixed = 2.0;  // seconds
  p.fixed_cost = p.fixed_cost * kHeadroomFactor + kHeadroomFixed;
  p.per_iteration *= kHeadroomFactor;
  p.upper_bound = p.upper_bound * kHeadroomFactor + kHeadroomFixed;
  return p;
}

}  // namespace gb::harness
