// Minimal JSON emission for experiment results — machine-readable
// counterpart to the ASCII tables and CSVs, so external tooling (plotting
// notebooks, dashboards) can consume a bench run without parsing text
// tables. Writer-only by design: the library never ingests JSON.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.h"

namespace gb::harness {

/// Incremental JSON writer with correct string escaping. Produces
/// compact, valid JSON; nesting is the caller's responsibility through
/// the begin/end pairs (mismatches throw).
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key inside an object (must be followed by a value or container).
  void key(const std::string& name);

  void value(const std::string& text);
  void value(const char* text);
  void value(double number);
  void value(std::uint64_t number);
  void value(bool flag);
  void null();

  /// Finished document. Throws if containers are still open.
  std::string str() const;

  static std::string escape(const std::string& raw);

 private:
  void comma_if_needed();

  std::string out_;
  std::vector<char> stack_;       // '{' or '['
  std::vector<bool> has_items_;   // per container
  bool pending_key_ = false;
};

/// One measurement as a JSON object: platform, dataset, algorithm,
/// outcome, times, phase breakdown.
std::string measurement_to_json(const std::string& platform,
                                const std::string& dataset,
                                const std::string& algorithm,
                                const Measurement& measurement);

}  // namespace gb::harness
