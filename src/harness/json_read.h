// Minimal JSON parser — the reading counterpart of json.h's JsonWriter.
//
// The harness stayed writer-only until the campaign layer needed to read
// back its own artifacts: the per-cell journal (resume) and the committed
// baseline store (--check-baseline). This parser exists for exactly that
// round-trip — ingesting documents this library itself emitted — so it is
// strict (throws FormatError on anything malformed) and small: no
// streaming, no comments, no extensions.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gb::harness {

/// A parsed JSON value. Object member order is preserved as written, so a
/// parse → re-serialize round trip of our own documents is byte-stable.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Member lookup (objects only); nullptr when absent.
  const JsonValue* find(const std::string& key) const;

  /// Typed member accessors with defaults: the campaign journal tolerates
  /// records written by older schema versions, so absent keys fall back
  /// instead of throwing. Type *mismatches* still throw FormatError.
  double number_or(const std::string& key, double fallback) const;
  std::uint64_t u64_or(const std::string& key, std::uint64_t fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;
};

/// Parse one complete JSON document. Trailing garbage after the document,
/// and any syntax error, throws FormatError.
JsonValue parse_json(const std::string& text);

}  // namespace gb::harness
