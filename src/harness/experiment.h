// Experiment harness: runs one (platform, dataset, algorithm) cell on a
// fresh simulated cluster and captures the outcome the way the paper
// reports it — a time when the run succeeds, or a typed failure (crash,
// timeout) when it does not.
#pragma once

#include <string>

#include "datasets/catalog.h"
#include "obs/metrics.h"
#include "partition/strategy.h"
#include "platforms/platform.h"
#include "sim/cluster.h"

namespace gb::harness {

enum class Outcome {
  kOk,
  kOutOfMemory,
  kDiskFull,
  kTimeout,
  kUnsupported,
  kWorkerLost,
  kError,
};

const char* outcome_label(Outcome outcome);

struct Measurement {
  Outcome outcome = Outcome::kError;
  platforms::RunResult result;
  std::string message;
  /// What fault injection did to this run (all-zero without a fault
  /// plan). Captured even for failed runs — an aborted GraphLab job still
  /// reports the crash that killed it.
  sim::FaultStats faults;
  /// Named counters/gauges the engines recorded on the cluster during the
  /// run (tasks scheduled, shuffle bytes, retries, checkpoints...). Like
  /// `faults`, captured even when the run fails. All values derive from
  /// simulated quantities, so they are identical at every parallelism.
  obs::MetricsSnapshot metrics;
  /// Quality of the partition the engine used (edge-cut, replication,
  /// load imbalance). `partition.valid` is false when the run failed
  /// before the engine fixed data placement.
  partition::PartitionSummary partition;
  /// Host-side observability (not part of the simulated result): how many
  /// pool threads drove the engines and how long the run took on the
  /// wall. Deterministic replays must ignore host_wall_seconds.
  std::size_t host_threads = 1;
  double host_wall_seconds = 0.0;

  bool ok() const { return outcome == Outcome::kOk; }
  SimTime time() const { return result.total_time; }
};

/// Run one cell on the provided cluster (whose traces remain inspectable
/// afterwards — the resource-usage figures rely on that).
Measurement run_cell(const platforms::Platform& platform,
                     const datasets::Dataset& dataset,
                     platforms::Algorithm algorithm,
                     const platforms::AlgorithmParams& params,
                     sim::Cluster& cluster);

/// Convenience: build the cluster from a config (work_scale is filled in
/// from the dataset) and run. Non-distributed platforms get one node.
Measurement run_cell(const platforms::Platform& platform,
                     const datasets::Dataset& dataset,
                     platforms::Algorithm algorithm,
                     const platforms::AlgorithmParams& params,
                     sim::ClusterConfig config = {});

/// The paper's default parameters: the BFS source is a fixed
/// pseudo-random vertex per dataset (deterministic in the dataset name).
platforms::AlgorithmParams default_params(const datasets::Dataset& dataset);

}  // namespace gb::harness
