#include "harness/experiment.h"

#include <chrono>

#include "core/error.h"
#include "core/rng.h"

namespace gb::harness {

const char* outcome_label(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk:
      return "ok";
    case Outcome::kOutOfMemory:
      return "crash(OOM)";
    case Outcome::kDiskFull:
      return "crash(disk)";
    case Outcome::kTimeout:
      return "timeout";
    case Outcome::kUnsupported:
      return "n/a";
    case Outcome::kWorkerLost:
      return "crash(node)";
    case Outcome::kError:
      return "error";
  }
  return "?";
}

Measurement run_cell(const platforms::Platform& platform,
                     const datasets::Dataset& dataset,
                     platforms::Algorithm algorithm,
                     const platforms::AlgorithmParams& params,
                     sim::Cluster& cluster) {
  Measurement m;
  m.host_threads = cluster.pool().size();
  const auto wall_start = std::chrono::steady_clock::now();
  try {
    m.result = platform.run(dataset, algorithm, params, cluster);
    m.outcome = Outcome::kOk;
  } catch (const PlatformError& e) {
    switch (e.kind()) {
      case PlatformError::Kind::kOutOfMemory:
        m.outcome = Outcome::kOutOfMemory;
        break;
      case PlatformError::Kind::kDiskFull:
        m.outcome = Outcome::kDiskFull;
        break;
      case PlatformError::Kind::kTimeout:
        m.outcome = Outcome::kTimeout;
        break;
      case PlatformError::Kind::kUnsupported:
        m.outcome = Outcome::kUnsupported;
        break;
      case PlatformError::Kind::kWorkerLost:
        m.outcome = Outcome::kWorkerLost;
        break;
    }
    m.message = e.what();
  }
  // Captured for failed runs too: an aborted job still reports what was
  // injected before it died.
  m.faults = cluster.faults().stats();
  m.metrics = cluster.metrics().snapshot();
  m.partition = cluster.partition_summary();
  m.host_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return m;
}

Measurement run_cell(const platforms::Platform& platform,
                     const datasets::Dataset& dataset,
                     platforms::Algorithm algorithm,
                     const platforms::AlgorithmParams& params,
                     sim::ClusterConfig config) {
  config.work_scale = dataset.extrapolation();
  if (!platform.distributed()) {
    config.num_workers = 1;
  }
  sim::Cluster cluster(config);
  return run_cell(platform, dataset, algorithm, params, cluster);
}

platforms::AlgorithmParams default_params(const datasets::Dataset& dataset) {
  platforms::AlgorithmParams params;
  // Deterministic per-dataset "random" source, like the paper's fixed
  // randomly-picked vertex per graph.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : dataset.name) h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ULL;
  SplitMix64 seeded(h);
  if (dataset.graph.num_vertices() > 0) {
    params.bfs_source =
        static_cast<VertexId>(seeded.next() % dataset.graph.num_vertices());
    // Some datasets pin where the paper's drawn source fell (Citation's
    // 0.1 % coverage implies an early patent).
    const auto& meta = datasets::info(dataset.id);
    if (meta.name == dataset.name && meta.bfs_source_rank >= 0.0) {
      params.bfs_source = static_cast<VertexId>(
          meta.bfs_source_rank *
          static_cast<double>(dataset.graph.num_vertices()));
    }
    // A source without out-edges traverses nothing on a directed graph;
    // like the paper's operators we re-draw until the source can start.
    const VertexId n = dataset.graph.num_vertices();
    for (VertexId probe = 0;
         probe < n && dataset.graph.out_degree(params.bfs_source) == 0;
         ++probe) {
      params.bfs_source = (params.bfs_source + 1) % n;
    }
  }
  params.seed = h;
  return params;
}

}  // namespace gb::harness
