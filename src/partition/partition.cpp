#include "partition/partition.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numeric>
#include <queue>
#include <utility>
#include <vector>

namespace gb::partition {
namespace {

// A vertex's share of a worker's bulk-synchronous step: itself plus every
// adjacency entry it must scan (out + in for directed graphs; undirected
// rows already hold all incident edges).
double vertex_weight(const Graph& graph, VertexId v) {
  double w = 1.0 + static_cast<double>(graph.out_degree(v));
  if (graph.directed()) w += static_cast<double>(graph.in_degree(v));
  return w;
}

// Lazy min-heap over (load, part): loads only grow, so stale entries are
// popped on sight. Loads are integer-valued doubles — comparisons are
// exact and the argmin (ties broken toward the lowest part id) is
// deterministic.
class LoadHeap {
 public:
  explicit LoadHeap(std::uint32_t parts) {
    for (std::uint32_t p = 0; p < parts; ++p) heap_.emplace(0.0, p);
  }

  std::uint32_t least_loaded(const std::vector<double>& loads) {
    // Lazy deletion: a stale entry (its part's load grew since the push,
    // so update() has already pushed a fresher one) is discarded, never
    // re-pushed — re-pushing would accumulate duplicates and turn the
    // scan quadratic in the number of placements.
    while (heap_.top().first != loads[heap_.top().second]) heap_.pop();
    return heap_.top().second;
  }

  void update(std::uint32_t part, double load) { heap_.emplace(load, part); }

 private:
  using Entry = std::pair<double, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
};

void fill_hash(std::vector<std::uint32_t>& owner, std::uint32_t parts,
               ThreadPool* pool) {
  run_chunks(pool, owner.size(), [&](std::size_t, std::size_t begin,
                                     std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      owner[v] = static_cast<std::uint32_t>(v % parts);
    }
  });
}

void fill_range(std::vector<std::uint32_t>& owner, std::uint32_t parts,
                ThreadPool* pool) {
  const std::uint64_t n = owner.size();
  run_chunks(pool, owner.size(), [&](std::size_t, std::size_t begin,
                                     std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      owner[v] = static_cast<std::uint32_t>(v * parts / n);
    }
  });
}

// Greedy LPT: vertices in descending weight order each go to the
// currently least-loaded part. Inherently sequential (each placement
// depends on every earlier one), so it runs serially; the sort key
// (weight desc, id asc) is a strict total order, making the placement a
// pure function of the graph.
void fill_degree_balanced(const Graph& graph,
                          std::vector<std::uint32_t>& owner,
                          std::vector<double>& loads) {
  const std::uint32_t parts = static_cast<std::uint32_t>(loads.size());
  std::vector<VertexId> order(owner.size());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::vector<double> weight(owner.size());
  for (VertexId v = 0; v < owner.size(); ++v) {
    weight[v] = vertex_weight(graph, v);
  }
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    if (weight[a] != weight[b]) return weight[a] > weight[b];
    return a < b;
  });
  LoadHeap heap(parts);
  for (const VertexId v : order) {
    const std::uint32_t part = heap.least_loaded(loads);
    owner[v] = part;
    loads[part] += weight[v];
    heap.update(part, loads[part]);
  }
}

// PowerGraph-style greedy vertex-cut: edges are placed one at a time in
// adjacency order (each undirected pair once, v < u). The replica set of
// each endpoint is a per-vertex part bitmask; placement prefers a part
// both endpoints already occupy, then one either occupies, then the
// globally least-loaded part — always breaking load ties toward the
// lowest part id. Sequential by construction, hence serial.
struct VertexCutResult {
  std::vector<std::uint32_t> mirrors;
  double placed_edges = 0.0;
};

VertexCutResult fill_vertex_cut(const Graph& graph,
                                std::vector<std::uint32_t>& owner,
                                std::vector<double>& loads) {
  const std::uint32_t parts = static_cast<std::uint32_t>(loads.size());
  const VertexId n = graph.num_vertices();
  const std::size_t words = (static_cast<std::size_t>(parts) + 63) / 64;
  std::vector<std::uint64_t> mask(static_cast<std::size_t>(n) * words, 0);
  const auto mask_of = [&](VertexId v) { return mask.data() + v * words; };
  const auto set_bit = [&](VertexId v, std::uint32_t p) {
    mask_of(v)[p / 64] |= std::uint64_t{1} << (p % 64);
  };
  // Least-loaded part among the set bits of `bits` (words-long); returns
  // parts when the mask is empty.
  const auto best_in = [&](const std::uint64_t* bits) {
    std::uint32_t best = parts;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t word = bits[w];
      while (word != 0) {
        const std::uint32_t p = static_cast<std::uint32_t>(
            w * 64 + static_cast<std::size_t>(std::countr_zero(word)));
        word &= word - 1;
        if (best == parts || loads[p] < loads[best]) best = p;
      }
    }
    return best;
  };

  LoadHeap heap(parts);
  VertexCutResult result;
  std::vector<std::uint64_t> both(words);
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : graph.out_neighbors(v)) {
      if (!graph.directed() && u < v) continue;  // each pair once
      for (std::size_t w = 0; w < words; ++w) {
        both[w] = mask_of(v)[w] & mask_of(u)[w];
      }
      std::uint32_t part = best_in(both.data());
      if (part == parts) {
        for (std::size_t w = 0; w < words; ++w) {
          both[w] = mask_of(v)[w] | mask_of(u)[w];
        }
        part = best_in(both.data());
        if (part != parts) {
          // Balance guard: without it a hub's part absorbs every edge the
          // hub touches (a star graph collapses onto one worker with no
          // replication at all). When the candidate is more than one
          // average part-load heavier than the lightest part, spend an
          // extra replica to rebalance.
          const std::uint32_t lightest = heap.least_loaded(loads);
          if (loads[part] > loads[lightest] + 1.0 +
                                result.placed_edges /
                                    static_cast<double>(parts)) {
            part = lightest;
          }
        }
      }
      if (part == parts) part = heap.least_loaded(loads);
      set_bit(v, part);
      set_bit(u, part);
      loads[part] += 1.0;
      heap.update(part, loads[part]);
      result.placed_edges += 1.0;
    }
  }

  result.mirrors.assign(n, 1);
  for (VertexId v = 0; v < n; ++v) {
    std::uint32_t replicas = 0;
    std::uint32_t master = parts;
    for (std::size_t w = 0; w < words; ++w) {
      replicas += static_cast<std::uint32_t>(std::popcount(mask_of(v)[w]));
      if (master == parts && mask_of(v)[w] != 0) {
        master = static_cast<std::uint32_t>(
            w * 64 + static_cast<std::size_t>(std::countr_zero(mask_of(v)[w])));
      }
    }
    // Isolated vertices have no replicas yet; give them a single one at
    // their hash slot so owner_of stays total.
    owner[v] = master != parts ? master : static_cast<std::uint32_t>(v % parts);
    result.mirrors[v] = std::max(replicas, 1u);
  }
  return result;
}

// Sum of vertex_weight over owned vertices, per part. Chunked with
// per-chunk partial vectors merged in ascending chunk order; falls back
// to one serial pass when the per-chunk partials would be large.
void accumulate_vertex_loads(const Graph& graph,
                             const std::vector<std::uint32_t>& owner,
                             std::vector<double>& loads, ThreadPool* pool) {
  const std::size_t parts = loads.size();
  const std::size_t chunks = ThreadPool::plan_chunks(owner.size());
  if (parts > 4096 || chunks <= 1) {
    for (VertexId v = 0; v < owner.size(); ++v) {
      loads[owner[v]] += vertex_weight(graph, v);
    }
    return;
  }
  std::vector<std::vector<double>> partial(chunks,
                                           std::vector<double>(parts, 0.0));
  run_chunks(pool, owner.size(),
             [&](std::size_t chunk, std::size_t begin, std::size_t end) {
               auto& local = partial[chunk];
               for (std::size_t v = begin; v < end; ++v) {
                 local[owner[v]] +=
                     vertex_weight(graph, static_cast<VertexId>(v));
               }
             });
  for (const auto& local : partial) {
    for (std::size_t p = 0; p < parts; ++p) loads[p] += local[p];
  }
}

// Adjacency entries whose endpoints live on different parts. Integer
// per-chunk counts merged in chunk order: exact and order-independent.
double count_cut_entries(const Graph& graph,
                         const std::vector<std::uint32_t>& owner,
                         ThreadPool* pool) {
  const std::size_t chunks = ThreadPool::plan_chunks(owner.size());
  std::vector<std::uint64_t> cut(std::max<std::size_t>(chunks, 1), 0);
  run_chunks(pool, owner.size(),
             [&](std::size_t chunk, std::size_t begin, std::size_t end) {
               std::uint64_t local = 0;
               for (std::size_t v = begin; v < end; ++v) {
                 for (const VertexId u :
                      graph.out_neighbors(static_cast<VertexId>(v))) {
                   local += owner[v] != owner[u];
                 }
               }
               cut[chunk] = local;
             });
  std::uint64_t total = 0;
  for (const std::uint64_t c : cut) total += c;
  return static_cast<double>(total);
}

}  // namespace

PartitionSummary PartitionAssignment::summary() const {
  PartitionSummary s;
  s.valid = true;
  s.strategy = strategy;
  s.parts = num_parts;
  s.edge_cut_fraction = quality.edge_cut_fraction;
  s.replication_factor = quality.replication_factor;
  s.imbalance = quality.imbalance;
  s.max_load = quality.max_load;
  s.mean_load = quality.mean_load;
  return s;
}

PartitionAssignment compute_partition(const Graph& graph, Strategy strategy,
                                      std::uint32_t num_parts,
                                      ThreadPool* pool) {
  PartitionAssignment a;
  a.strategy = strategy;
  a.num_parts = std::max<std::uint32_t>(num_parts, 1);
  const VertexId n = graph.num_vertices();
  a.owner.assign(n, 0);
  a.mirrors.assign(n, 1);
  a.loads.assign(a.num_parts, 0.0);
  if (n == 0) return a;

  double total_mirrors = static_cast<double>(n);
  switch (strategy) {
    case Strategy::kHash:
      fill_hash(a.owner, a.num_parts, pool);
      accumulate_vertex_loads(graph, a.owner, a.loads, pool);
      break;
    case Strategy::kRange:
      fill_range(a.owner, a.num_parts, pool);
      accumulate_vertex_loads(graph, a.owner, a.loads, pool);
      break;
    case Strategy::kDegreeBalanced:
      fill_degree_balanced(graph, a.owner, a.loads);
      break;
    case Strategy::kVertexCut: {
      auto cut = fill_vertex_cut(graph, a.owner, a.loads);
      a.mirrors = std::move(cut.mirrors);
      total_mirrors = 0.0;
      for (const std::uint32_t m : a.mirrors) {
        total_mirrors += static_cast<double>(m);
      }
      break;
    }
  }

  auto& q = a.quality;
  const double entries = static_cast<double>(graph.num_adjacency_entries());
  q.edge_cut_fraction =
      entries > 0 ? count_cut_entries(graph, a.owner, pool) / entries : 0.0;
  q.replication_factor = total_mirrors / static_cast<double>(n);
  q.max_load = *std::max_element(a.loads.begin(), a.loads.end());
  double total_load = 0.0;
  for (const double load : a.loads) total_load += load;
  q.mean_load = total_load / static_cast<double>(a.num_parts);
  q.imbalance = q.mean_load > 0 ? q.max_load / q.mean_load : 1.0;
  return a;
}

}  // namespace gb::partition
