// Partitioning strategies and the report-facing quality summary.
//
// This header is deliberately tiny: sim::ClusterConfig and the campaign
// CellSpec embed a Strategy, and harness::Measurement embeds a
// PartitionSummary, so it must pull in nothing beyond <cstdint>/<string>.
// The heavyweight machinery (the assignment itself) lives in partition.h.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace gb::partition {

/// How vertices (or, for kVertexCut, edges) are distributed over workers.
/// All four strategies are pure functions of (graph, num_parts): no RNG,
/// no host-thread dependence, bit-identical at any --parallelism.
enum class Strategy : std::uint8_t {
  /// owner(v) = v mod W. The engines' historical hardwired scheme and
  /// the default; oblivious to both structure and skew.
  kHash,
  /// Contiguous vertex ranges of ~equal cardinality. Matches on-disk
  /// order, so locality-friendly loaders use it; degree skew lands
  /// wherever the hubs happen to sit.
  kRange,
  /// Greedy LPT over vertices sorted by descending degree: each vertex
  /// goes to the currently least-loaded part, weighting a vertex by
  /// 1 + its adjacency entries. Balances per-worker load on skewed
  /// graphs at hash-like edge-cut cost.
  kDegreeBalanced,
  /// PowerGraph-style greedy vertex-cut: edges are placed one at a time
  /// on the part that minimises new replicas, then load. Vertices
  /// spanning several parts get mirrors (replication factor > 1).
  kVertexCut,
};

/// Canonical lowercase name, stable across releases: used in CLI flags,
/// campaign cell keys, JSON reports and trace span names.
const char* strategy_name(Strategy strategy);

/// Inverse of strategy_name; nullopt for unknown names.
std::optional<Strategy> parse_strategy(const std::string& name);

/// All strategies in declaration order (for --partitioners axes, usage
/// text and exhaustive tests).
inline constexpr Strategy kAllStrategies[] = {
    Strategy::kHash, Strategy::kRange, Strategy::kDegreeBalanced,
    Strategy::kVertexCut};

/// Partition quality as it appears in reports. `valid` is false until an
/// engine actually partitioned a graph (e.g. a run that crashed in
/// setup never gets one).
struct PartitionSummary {
  bool valid = false;
  Strategy strategy = Strategy::kHash;
  std::uint32_t parts = 0;
  /// Fraction of adjacency entries whose endpoints live on different
  /// workers; in [0, 1]. Drives simulated network volume.
  double edge_cut_fraction = 0.0;
  /// Mean replicas per vertex; 1.0 exactly for the vertex partitioners,
  /// >= 1 for the vertex-cut.
  double replication_factor = 1.0;
  /// max worker load / mean worker load, >= 1. Multiplies
  /// bulk-synchronous compute time: the barrier waits for the most
  /// loaded worker (DESIGN.md §11).
  double imbalance = 1.0;
  double max_load = 0.0;
  double mean_load = 0.0;
};

}  // namespace gb::partition
