#include "partition/strategy.h"

namespace gb::partition {

const char* strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::kHash:
      return "hash";
    case Strategy::kRange:
      return "range";
    case Strategy::kDegreeBalanced:
      return "degree";
    case Strategy::kVertexCut:
      return "vertexcut";
  }
  return "hash";
}

std::optional<Strategy> parse_strategy(const std::string& name) {
  for (const Strategy strategy : kAllStrategies) {
    if (name == strategy_name(strategy)) return strategy;
  }
  return std::nullopt;
}

}  // namespace gb::partition
