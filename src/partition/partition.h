// Pluggable graph partitioning: one shared implementation that every
// engine consumes (DESIGN.md §11).
//
// compute_partition is a pure function of (graph, strategy, num_parts):
// the hash/range strategies and all quality metrics run chunked on the
// host thread pool with per-chunk accumulators merged in ascending chunk
// order, while the two greedy strategies are inherently sequential
// heuristics and run serially — either way the result is bit-identical
// at any --parallelism, which the campaign/journal layer depends on.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.h"
#include "core/thread_pool.h"
#include "partition/strategy.h"

namespace gb::partition {

/// Quality of an assignment, computed once from the placement.
struct PartitionQuality {
  /// Fraction of stored adjacency entries (v, u) with
  /// owner[v] != owner[u]; in [0, 1]. For the vertex-cut strategy this is
  /// still measured on the master placement, giving engines that route
  /// traffic by vertex owner (shuffles, message delivery) a consistent
  /// cross-worker fraction.
  double edge_cut_fraction = 0.0;
  /// Mean mirrors per vertex: exactly 1 for vertex partitioners, >= 1
  /// for the vertex-cut.
  double replication_factor = 1.0;
  double max_load = 0.0;
  double mean_load = 0.0;
  /// max_load / mean_load (1.0 when the graph is empty). The
  /// bulk-synchronous skew factor: a barrier waits for the most loaded
  /// worker, so engines multiply per-slot compute time by this.
  double imbalance = 1.0;
};

/// A concrete placement of one graph over `num_parts` workers.
struct PartitionAssignment {
  Strategy strategy = Strategy::kHash;
  std::uint32_t num_parts = 1;
  /// Owning part per vertex (the master replica for the vertex-cut).
  /// Empty iff the graph has no vertices.
  std::vector<std::uint32_t> owner;
  /// Replica count per vertex (all 1 except under kVertexCut).
  std::vector<std::uint32_t> mirrors;
  /// Load per part. Vertex strategies: sum over owned vertices of
  /// 1 + adjacency entries (out + in for directed graphs). Vertex-cut:
  /// edges placed on the part. Integer-valued, so sums are exact in
  /// double and independent of accumulation order.
  std::vector<double> loads;
  PartitionQuality quality;

  std::uint32_t owner_of(VertexId v) const {
    return v < owner.size() ? owner[v] : 0;
  }

  /// The summary stored on the cluster and surfaced in reports.
  PartitionSummary summary() const;
};

/// Partition `graph` into `num_parts` parts (clamped to >= 1) with the
/// given strategy. `pool` drives the chunked passes; nullptr = serial.
PartitionAssignment compute_partition(const Graph& graph, Strategy strategy,
                                      std::uint32_t num_parts,
                                      ThreadPool* pool);

}  // namespace gb::partition
