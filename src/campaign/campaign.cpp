#include "campaign/campaign.h"

#include <cstdio>
#include <set>

#include "algorithms/platform_suite.h"
#include "core/error.h"

namespace gb::campaign {
namespace {

// Compact, locale-independent scale rendering: "0" for the catalog
// default, otherwise a shortest-form decimal ("0.01", "1").
std::string format_scale(double scale) {
  if (scale <= 0.0) return "0";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", scale);
  return buffer;
}

}  // namespace

std::string CellSpec::key() const {
  std::string k = platform;
  k += '/';
  k += dataset_name();
  k += '/';
  k += algorithm_name();
  k += "/w" + std::to_string(workers);
  k += "/c" + std::to_string(cores);
  k += "/x" + format_scale(scale);
  k += "/r" + std::to_string(seed);
  for (const auto& fault : faults) k += "/f" + fault;
  if (checkpoint_interval > 0) {
    k += "/k" + std::to_string(checkpoint_interval);
  }
  if (partitioner != partition::Strategy::kHash) {
    k += std::string("/p") + partition::strategy_name(partitioner);
  }
  if (mem_budget_gb > 0.0) {
    k += "/m" + format_scale(mem_budget_gb);
  }
  return k;
}

std::vector<CellSpec> GridSpec::expand() const {
  if (platforms.empty()) throw Error("grid: no platforms");
  if (datasets.empty()) throw Error("grid: no datasets");
  if (algorithms.empty()) throw Error("grid: no algorithms");
  if (workers.empty()) throw Error("grid: no worker counts");
  if (cores.empty()) throw Error("grid: no core counts");
  if (partitioners.empty()) throw Error("grid: no partitioners");
  if (mem_budgets.empty()) throw Error("grid: no memory budgets");
  for (const auto& budget : mem_budgets) {
    if (budget < 0.0) throw Error("grid: negative memory budget");
  }
  for (const auto& name : platforms) {
    if (algorithms::make_platform(name) == nullptr) {
      throw Error("grid: unknown platform '" + name + "'");
    }
  }
  for (const auto& w : workers) {
    if (w == 0) throw Error("grid: zero workers");
  }
  for (const auto& c : cores) {
    if (c == 0) throw Error("grid: zero cores");
  }

  std::vector<CellSpec> cells;
  cells.reserve(platforms.size() * datasets.size() * algorithms.size() *
                workers.size() * cores.size() * mem_budgets.size() *
                partitioners.size());
  for (const auto& dataset : datasets) {
    for (const auto& algorithm : algorithms) {
      for (const auto& w : workers) {
        for (const auto& c : cores) {
          for (const auto& budget : mem_budgets) {
            for (const auto& strategy : partitioners) {
              for (const auto& platform : platforms) {
                CellSpec cell;
                cell.platform = platform;
                cell.dataset = dataset;
                cell.algorithm = algorithm;
                cell.workers = w;
                cell.cores = c;
                cell.scale = scale;
                cell.seed = seed;
                cell.faults = faults;
                cell.checkpoint_interval = checkpoint_interval;
                cell.partitioner = strategy;
                cell.mem_budget_gb = budget;
                cells.push_back(std::move(cell));
              }
            }
          }
        }
      }
    }
  }

  std::set<std::string> seen;
  for (const auto& cell : cells) {
    if (!seen.insert(cell.key()).second) {
      throw Error("grid: duplicate cell key '" + cell.key() + "'");
    }
  }
  return cells;
}

namespace {

GridSpec scalability_base(datasets::DatasetId dataset, double scale) {
  GridSpec grid;
  grid.platforms = {"Hadoop",  "YARN",     "Stratosphere",
                    "Giraph",  "GraphLab", "GraphLab(mp)"};
  grid.datasets = {dataset};
  grid.algorithms = {platforms::Algorithm::kBfs};
  grid.scale = scale;
  return grid;
}

}  // namespace

GridSpec horizontal_scalability_grid(datasets::DatasetId dataset,
                                     double scale) {
  GridSpec grid = scalability_base(dataset, scale);
  grid.workers.clear();
  for (std::uint32_t machines = 20; machines <= 50; machines += 5) {
    grid.workers.push_back(machines);
  }
  return grid;
}

GridSpec vertical_scalability_grid(datasets::DatasetId dataset, double scale) {
  GridSpec grid = scalability_base(dataset, scale);
  grid.workers = {20};
  grid.cores.clear();
  for (std::uint32_t cores = 1; cores <= 7; ++cores) {
    grid.cores.push_back(cores);
  }
  return grid;
}

GridSpec graphalytics_grid(datasets::DatasetId dataset, double scale) {
  GridSpec grid;
  // One engine per paradigm; PEGASUS sits out (LCC is not GIM-V).
  grid.platforms = {"Giraph", "Hadoop", "Stratosphere", "GraphLab", "Neo4j"};
  grid.datasets = {dataset};
  grid.algorithms = {platforms::Algorithm::kPageRank,
                     platforms::Algorithm::kSssp, platforms::Algorithm::kLcc};
  grid.scale = scale;
  return grid;
}

}  // namespace gb::campaign
