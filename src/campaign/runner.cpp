#include "campaign/runner.h"

#include <exception>
#include <memory>

#include "algorithms/platform_suite.h"
#include "campaign/journal.h"
#include "core/thread_pool.h"
#include "harness/json.h"
#include "obs/rollup.h"
#include "sim/cluster.h"
#include "sim/faults.h"
#include "stats/repeat.h"

namespace gb::campaign {
namespace {

harness::CellResult error_result(const CellSpec& spec,
                                 const std::string& message) {
  harness::Measurement m;
  m.outcome = harness::Outcome::kError;
  m.message = message;
  return harness::make_cell_result(spec.key(), spec.platform,
                                   spec.dataset_name(), spec.algorithm_name(),
                                   spec.workers, spec.cores, spec.scale,
                                   spec.seed, m);
}

harness::CellResult run_once(const CellSpec& spec,
                             const datasets::Dataset& dataset,
                             std::uint32_t cell_parallelism) {
  const auto platform = algorithms::make_platform(spec.platform);
  if (platform == nullptr) {
    return error_result(spec, "unknown platform '" + spec.platform + "'");
  }
  const sim::ClusterConfig config = cluster_config_for(spec, cell_parallelism);
  auto params = harness::default_params(dataset);
  params.checkpoint_interval = spec.checkpoint_interval;
  const auto measurement = harness::run_cell(*platform, dataset,
                                             spec.algorithm, params, config);
  return harness::make_cell_result(spec.key(), spec.platform,
                                   spec.dataset_name(), spec.algorithm_name(),
                                   spec.workers, spec.cores, spec.scale,
                                   spec.seed, measurement);
}

}  // namespace

sim::ClusterConfig cluster_config_for(const CellSpec& spec,
                                      std::uint32_t cell_parallelism) {
  sim::ClusterConfig config;
  config.num_workers = spec.workers;
  config.cores_per_worker = spec.cores;
  config.parallelism = cell_parallelism;
  config.partitioner = spec.partitioner;
  if (spec.mem_budget_gb > 0.0) {
    const auto budget = static_cast<Bytes>(spec.mem_budget_gb * (1ull << 30));
    config.cost.heap_limit = budget;
    config.page_cache.budget_per_node = budget;
  }
  sim::FaultPlan faults;
  for (const auto& fault_spec : spec.faults) faults.add_spec(fault_spec);
  config.faults = faults;
  return config;
}

const harness::CellResult* CampaignResult::find(const std::string& key) const {
  for (const auto& cell : cells) {
    if (cell.key == key) return &cell;
  }
  return nullptr;
}

harness::CellResult run_cell_spec(const CellSpec& spec,
                                  datasets::DatasetCache& cache,
                                  std::uint32_t cell_parallelism,
                                  std::uint32_t max_attempts,
                                  std::uint32_t reps, std::uint32_t warmup) {
  if (max_attempts == 0) max_attempts = 1;
  if (reps == 0) reps = 1;
  try {
    const auto dataset = cache.get(spec.dataset, spec.scale, spec.seed);
    const auto execute = [&] {
      harness::CellResult result;
      std::uint32_t attempt = 0;
      do {
        ++attempt;
        result = run_once(spec, *dataset, cell_parallelism);
        result.attempts = attempt;
        // Retry is only meaningful when the failure came from injected
        // faults; a fault-free crash or timeout is the paper's result.
      } while (!result.ok() && !spec.faults.empty() &&
               attempt < max_attempts);
      return result;
    };
    if (reps == 1 && warmup == 0) {
      // Single-shot: the historical path, byte-identical records
      // (host_ms stays empty and absent from serialization).
      return execute();
    }

    // Methodology mode (DESIGN.md §15): warmup runs prime host caches
    // and are discarded; each timed repetition re-runs the full
    // bounded-retry execution. The simulated record must be
    // bit-identical across repetitions (the engine determinism
    // contract) — divergence fails the cell rather than being silently
    // averaged away.
    harness::CellResult canonical;
    bool have_canonical = false;
    bool diverged = false;
    const auto repeated = stats::repeat_measure(
        [&] {
          harness::CellResult r = execute();
          if (!have_canonical) {
            canonical = std::move(r);
            have_canonical = true;
            return;
          }
          diverged = diverged || r.outcome != canonical.outcome ||
                     r.makespan_sec != canonical.makespan_sec ||
                     r.computation_sec != canonical.computation_sec ||
                     r.iterations != canonical.iterations ||
                     r.output_hash != canonical.output_hash;
        },
        {.warmup = warmup, .reps = reps});
    if (diverged) {
      return error_result(spec,
                          "nondeterministic cell: simulated record diverged "
                          "across repetitions");
    }
    canonical.host_ms = repeated.times_ms;
    return canonical;
  } catch (const std::exception& e) {
    // Dataset generation failures, bad fault specs, engine invariant
    // violations: record the cell as "error" rather than losing the
    // whole campaign to one bad cell.
    return error_result(spec, e.what());
  }
}

CampaignResult run_campaign(const GridSpec& grid,
                            const RunnerOptions& options) {
  datasets::DatasetCache cache(options.cache_dir);
  return run_campaign(grid, options, cache);
}

CampaignResult run_campaign(const GridSpec& grid, const RunnerOptions& options,
                            datasets::DatasetCache& cache) {
  const std::vector<CellSpec> specs = grid.expand();

  // Resume: anything already journaled under its key is done.
  std::map<std::string, harness::CellResult> done;
  std::unique_ptr<Journal> journal;
  if (!options.journal_path.empty()) {
    done = Journal::read_latest(options.journal_path);
    journal = std::make_unique<Journal>(options.journal_path);
  }

  CampaignResult result;
  result.cells.resize(specs.size());
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (auto it = done.find(specs[i].key()); it != done.end()) {
      result.cells[i] = it->second;
      ++result.resumed;
    } else {
      todo.push_back(i);
    }
  }

  // Shard the missing cells over the campaign pool, one chunk per cell so
  // idle threads steal work as slow cells run long. Cells are mutually
  // independent and each is bit-identical at any host parallelism, so the
  // sharding affects wall-clock only; results land at their grid index.
  const auto run_one = [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; ++t) {
      const std::size_t i = todo[t];
      harness::CellResult cell = run_cell_spec(
          specs[i], cache, options.cell_parallelism, options.max_attempts,
          options.reps, options.warmup);
      if (journal) journal->append(cell);
      result.cells[i] = std::move(cell);
    }
  };
  if (!todo.empty()) {
    if (options.parallelism == 1) {
      run_one(0, 0, todo.size());
    } else {
      ThreadPool pool(options.parallelism);
      pool.parallel_chunks(todo.size(), todo.size(), run_one);
    }
  }
  result.executed = todo.size();
  result.dataset_loads = cache.loads();
  result.dataset_hits = cache.hits();

  // Roll metrics up in grid order — never completion order — so the
  // floating-point gauge sums are byte-stable across runs and resumes.
  obs::MetricsRollup rollup;
  for (const auto& cell : result.cells) rollup.add(cell.metrics);
  result.metrics = rollup.total();
  return result;
}

std::string campaign_report_json(const CampaignResult& result) {
  harness::JsonWriter json;
  json.begin_object();
  json.key("cells");
  json.begin_array();
  for (const auto& cell : result.cells) {
    harness::write_cell_result(json, cell);
  }
  json.end_array();
  json.key("rollup");
  json.begin_object();
  json.key("cells");
  json.value(static_cast<std::uint64_t>(result.cells.size()));
  json.key("counters");
  json.begin_object();
  for (const auto& [name, value] : result.metrics.counters) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  json.key("gauges");
  json.begin_object();
  for (const auto& [name, value] : result.metrics.gauges) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  json.end_object();
  // Host-time methodology section: per-cell mean ± 95% t-CI derived from
  // the journaled host_ms distributions. Empty object in single-shot
  // mode, so default reports stay byte-identical across parallelism and
  // resume; with --reps this is the one run-dependent section.
  json.key("host");
  json.begin_object();
  for (const auto& cell : result.cells) {
    if (cell.host_ms.empty()) continue;
    const auto repeated = stats::summarize_times(cell.host_ms);
    const auto ci = repeated.mean_ci();
    json.key(cell.key);
    json.begin_object();
    json.key("reps");
    json.value(static_cast<std::uint64_t>(repeated.times_ms.size()));
    json.key("mean_ms");
    json.value(repeated.stats.mean);
    json.key("sd_ms");
    json.value(repeated.stats.sd);
    json.key("min_ms");
    json.value(repeated.stats.min);
    json.key("max_ms");
    json.value(repeated.stats.max);
    json.key("ci95_lo_ms");
    json.value(ci.lo);
    json.key("ci95_hi_ms");
    json.value(ci.hi);
    json.key("outliers");
    json.value(static_cast<std::uint64_t>(repeated.outliers.size()));
    json.end_object();
  }
  json.end_object();
  json.end_object();
  return json.str();
}

}  // namespace gb::campaign
