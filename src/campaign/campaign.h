// Declarative campaign grids.
//
// The paper's result is not one measurement but a *campaign*: a grid of
// (platform × algorithm × dataset × cluster-size) cells whose shape — who
// wins, where crossovers and crashes fall — is the claim. A GridSpec
// declares the axes; expand() produces the concrete cells in a fixed,
// documented order (the "grid order" every report and rollup uses); each
// cell has a canonical key that names it in the journal and the baseline
// store.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datasets/catalog.h"
#include "partition/strategy.h"
#include "platforms/platform.h"

namespace gb::campaign {

/// One fully-specified cell. The paper's defaults (20 workers, 1 core,
/// catalog dataset scale, seed 42) mirror gb_run's.
struct CellSpec {
  std::string platform;  // make_platform() name
  datasets::DatasetId dataset = datasets::DatasetId::kKGS;
  platforms::Algorithm algorithm = platforms::Algorithm::kBfs;
  std::uint32_t workers = 20;
  std::uint32_t cores = 1;
  double scale = 0.0;          // dataset scale; 0 = catalog default
  std::uint64_t seed = 42;     // dataset generation seed
  std::vector<std::string> faults;  // FaultPlan::add_spec strings
  std::uint32_t checkpoint_interval = 0;
  partition::Strategy partitioner = partition::Strategy::kHash;
  /// Simulated RAM per node in GiB (DESIGN.md §12): sets the heap limit
  /// and enables the paged storage budget. 0 = default heap, paging off.
  double mem_budget_gb = 0.0;

  /// Canonical identity, e.g. "Giraph/KGS/BFS/w20/c1/x0.01/r42" with a
  /// "/f<spec>" suffix per fault, "/k<N>" when checkpointing is on,
  /// "/p<name>" for a non-default partitioner, and "/m<GiB>" for a
  /// non-default memory budget (all omitted at their defaults so
  /// pre-existing journals and baselines keep their keys).
  /// Two cells with equal keys would produce identical journal records,
  /// so expand() rejects duplicate keys.
  std::string key() const;

  std::string dataset_name() const { return datasets::info(dataset).name; }
  const char* algorithm_name() const {
    return platforms::algorithm_name(algorithm);
  }
};

/// Axes of a campaign. expand() is the cross product in row-major order:
/// dataset (outermost) → algorithm → workers → cores → mem-budget →
/// partitioner → platform (innermost). Dataset outermost groups cells
/// that share a graph, which is what lets a small runner window still hit
/// the shared cache.
struct GridSpec {
  std::vector<std::string> platforms;
  std::vector<datasets::DatasetId> datasets;
  std::vector<platforms::Algorithm> algorithms;
  std::vector<std::uint32_t> workers = {20};
  std::vector<std::uint32_t> cores = {1};
  std::vector<partition::Strategy> partitioners = {partition::Strategy::kHash};
  /// Memory-budget axis in GiB per node; 0 = default heap, paging off.
  std::vector<double> mem_budgets = {0.0};
  double scale = 0.0;
  std::uint64_t seed = 42;
  std::vector<std::string> faults;  // applied to every cell
  std::uint32_t checkpoint_interval = 0;

  /// All cells in grid order. Throws gb::Error on an empty axis, an
  /// unknown platform/dataset name, or duplicate cell keys.
  std::vector<CellSpec> expand() const;
};

/// The fig11/fig12 horizontal-scalability grid: BFS on the given dataset,
/// the six scalability platforms, 20 → 50 machines in steps of 5.
GridSpec horizontal_scalability_grid(datasets::DatasetId dataset,
                                     double scale = 0.0);

/// The fig13/fig14 vertical-scalability grid: BFS on the given dataset,
/// the six scalability platforms, 20 machines with 1-7 cores each.
GridSpec vertical_scalability_grid(datasets::DatasetId dataset,
                                   double scale = 0.0);

/// The Graphalytics-extension grid: PAGERANK, SSSP and LCC on the given
/// dataset across one engine per paradigm (Giraph, Hadoop, Stratosphere,
/// GraphLab, Neo4j), 20 machines with 1 core each.
GridSpec graphalytics_grid(datasets::DatasetId dataset, double scale = 0.0);

}  // namespace gb::campaign
