// Baseline regression store.
//
// A baseline is a saved campaign: one journal-schema record per cell, one
// line per record, in grid order. check_baseline() diffs a fresh campaign
// against it and reports *shape* regressions — the things the paper's
// figures claim: which cells succeed, which crash or time out, and
// roughly how long successful cells take. Makespans are simulated and
// deterministic, so the default tolerance exists to absorb intentional
// cost-model retuning, not measurement noise; outcome-class changes and
// output-hash changes are never tolerated.
#pragma once

#include <string>
#include <vector>

#include "harness/cell_result.h"

namespace gb::campaign {

struct BaselineTolerance {
  /// Allowed relative makespan drift for cells that are ok in both runs.
  double makespan_rel = 0.05;

  /// Absolute makespan floor (seconds) under the drift check. The allowed
  /// interval is max(makespan_abs, makespan_rel * baseline), so
  /// sub-second cells (where a fixed relative epsilon amplifies harmless
  /// cost-model retuning into failures) get a small absolute band, and a
  /// zero-makespan baseline no longer skips the check entirely.
  double makespan_abs = 0.01;

  /// Require bit-identical algorithm output (FNV digest) per cell.
  bool check_output_hash = true;

  /// Require identical iteration counts per cell.
  bool check_iterations = true;
};

/// Diff between a current campaign and a baseline. Empty findings = pass.
struct BaselineDiff {
  std::vector<std::string> findings;  // one human-readable line each

  bool ok() const { return findings.empty(); }
  std::string to_string() const;  // findings joined by newlines
};

/// Write `cells` (grid order) as a baseline file: one JSON record per
/// line, exactly the journal schema. Atomic: written to a temp file and
/// renamed. Throws gb::Error on I/O failure.
void save_baseline(const std::string& path,
                   const std::vector<harness::CellResult>& cells);

/// Read a baseline file. Unlike the journal reader this is strict: a
/// missing file or any malformed line throws (a baseline is a committed
/// artifact; damage to it must be loud, not silently tolerated).
std::vector<harness::CellResult> load_baseline(const std::string& path);

/// Diff `current` against `baseline`, matching cells by key. Reports
/// cells missing from the run, cells absent from the baseline, outcome
/// *class* changes, makespan drift beyond tolerance, and (per the
/// tolerance flags) iteration-count and output-hash mismatches.
BaselineDiff check_baseline(const std::vector<harness::CellResult>& baseline,
                            const std::vector<harness::CellResult>& current,
                            const BaselineTolerance& tolerance = {});

/// load_baseline() + check_baseline().
BaselineDiff check_baseline_file(
    const std::string& path, const std::vector<harness::CellResult>& current,
    const BaselineTolerance& tolerance = {});

}  // namespace gb::campaign
