// Baseline regression store.
//
// A baseline is a saved campaign: one journal-schema record per cell, one
// line per record, in grid order. check_baseline() diffs a fresh campaign
// against it and reports *shape* regressions — the things the paper's
// figures claim: which cells succeed, which crash or time out, and
// roughly how long successful cells take. Makespans are simulated and
// deterministic, so the default tolerance exists to absorb intentional
// cost-model retuning, not measurement noise; outcome-class changes and
// output-hash changes are never tolerated.
//
// Drift checks are interval-based (DESIGN.md §15): every numeric field
// gets a symmetric tolerance band on BOTH sides
// (stats::tolerance_interval), and drift means the bands are disjoint —
// not a one-sided fixed epsilon around the baseline. When both records
// carry host-time distributions (campaign --reps), the mean host times
// are additionally compared by Student-t confidence-interval overlap.
#pragma once

#include <string>
#include <vector>

#include "harness/cell_result.h"

namespace gb::campaign {

struct BaselineTolerance {
  /// Allowed relative makespan drift for cells that are ok in both runs.
  double makespan_rel = 0.05;

  /// Absolute makespan floor (seconds) under the drift check. Each
  /// side's band half-width is max(makespan_abs, makespan_rel * value),
  /// so sub-second cells (where a fixed relative epsilon amplifies
  /// harmless cost-model retuning into failures) get a small absolute
  /// band, and a zero-makespan baseline no longer skips the check
  /// entirely.
  double makespan_abs = 0.01;

  /// Allowed relative / absolute drift for computation_sec, under the
  /// same interval-overlap rule as makespan.
  double computation_rel = 0.05;
  double computation_abs = 0.01;

  /// Require bit-identical algorithm output (FNV digest) per cell.
  bool check_output_hash = true;

  /// Require identical iteration counts per cell.
  bool check_iterations = true;

  /// When both records carry >= 2 timed host repetitions (campaign
  /// --reps), require their t-CIs for the mean host time to overlap.
  /// Records without distributions skip this, so checking a --reps
  /// baseline against a single-shot run (or across machines where no
  /// one journaled host times) never flakes on wall-clock.
  bool check_host_time = true;

  /// Confidence level of the host-time intervals.
  double host_confidence = 0.95;
};

/// Diff between a current campaign and a baseline. Empty findings = pass.
struct BaselineDiff {
  std::vector<std::string> findings;  // one human-readable line each

  bool ok() const { return findings.empty(); }
  std::string to_string() const;  // findings joined by newlines
};

/// Write `cells` (grid order) as a baseline file: one JSON record per
/// line, exactly the journal schema. Atomic: written to a temp file and
/// renamed. Throws gb::Error on I/O failure.
void save_baseline(const std::string& path,
                   const std::vector<harness::CellResult>& cells);

/// Read a baseline file. Unlike the journal reader this is strict: a
/// missing file or any malformed line throws (a baseline is a committed
/// artifact; damage to it must be loud, not silently tolerated).
std::vector<harness::CellResult> load_baseline(const std::string& path);

/// Diff `current` against `baseline`, matching cells by key. Reports
/// cells missing from the run, cells absent from the baseline, outcome
/// *class* changes, makespan drift beyond tolerance, and (per the
/// tolerance flags) iteration-count and output-hash mismatches.
BaselineDiff check_baseline(const std::vector<harness::CellResult>& baseline,
                            const std::vector<harness::CellResult>& current,
                            const BaselineTolerance& tolerance = {});

/// load_baseline() + check_baseline().
BaselineDiff check_baseline_file(
    const std::string& path, const std::vector<harness::CellResult>& current,
    const BaselineTolerance& tolerance = {});

}  // namespace gb::campaign
