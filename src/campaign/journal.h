// Resumable on-disk campaign journal.
//
// One JSON object per line (JSONL), appended as cells finish. A campaign
// that is interrupted — killed mid-grid, or mid-append — leaves a valid
// journal: read() tolerates a truncated final line (the signature of a
// crash during append) by dropping it, so the interrupted cell simply
// re-runs on resume. Appends are serialized by a mutex and flushed per
// line; a record is either fully present or dropped, never half-applied.
// When the same key appears twice (a cell re-run after a transient host
// failure) the later record wins.
#pragma once

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "harness/cell_result.h"

namespace gb::campaign {

class Journal {
 public:
  /// Opens `path` for appending (creating parent directories and the file
  /// as needed). Throws gb::Error when the file cannot be opened.
  explicit Journal(const std::string& path);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Append one record and flush. Thread-safe.
  void append(const harness::CellResult& result);

  const std::string& path() const { return path_; }

  /// All complete records in `path`, in file order; later duplicates of a
  /// key override earlier ones in read_latest(). A missing file reads as
  /// empty. A line that does not parse is skipped when it is the final
  /// line (torn append); anywhere else it throws FormatError, because a
  /// corrupt middle line means the journal cannot be trusted.
  static std::vector<harness::CellResult> read(const std::string& path);

  /// read(), reduced to the newest record per key.
  static std::map<std::string, harness::CellResult> read_latest(
      const std::string& path);

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
};

}  // namespace gb::campaign
