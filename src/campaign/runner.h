// Campaign orchestrator.
//
// Expands a GridSpec, skips cells already recorded in the journal
// (resume), shards the remaining independent cells across a host thread
// pool, loads each dataset once per campaign through a shared
// DatasetCache, and journals every finished cell so an interrupted
// campaign re-runs only what is missing. The merged result — and the JSON
// report built from it — is assembled in grid order from journal-schema
// records, so it is byte-identical at every `parallelism` and regardless
// of how many interruptions preceded it.
//
// Determinism: each cell's simulated outcome is bit-identical at every
// host parallelism (the engine contract since PR 1), cells are mutually
// independent, and per-cell results are keyed — so sharding cells over
// threads changes wall-clock only. Cells run with their own serial inner
// pool by default (cell_parallelism = 1): campaign-level sharding is the
// better use of the cores, and nesting pools would oversubscribe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "datasets/dataset_cache.h"
#include "harness/cell_result.h"
#include "obs/metrics.h"
#include "sim/cluster.h"

namespace gb::campaign {

struct RunnerOptions {
  /// Cells in flight: 0 = hardware concurrency, 1 = serial (in grid
  /// order), N = a dedicated pool of N threads.
  std::uint32_t parallelism = 1;

  /// Host threads *inside* each cell (ClusterConfig::parallelism).
  /// Default 1: the campaign shards across cells instead.
  std::uint32_t cell_parallelism = 1;

  /// JSONL journal path; empty disables journaling (no resume).
  std::string journal_path;

  /// Bounded retry for cells that die on injected faults: a cell with a
  /// non-empty fault plan and a failed outcome re-runs until it succeeds
  /// or `max_attempts` runs are spent; the final record carries the
  /// attempt count. 1 = no retry. Fault-free failures (the paper's
  /// crashes and timeouts) are results, never retried.
  std::uint32_t max_attempts = 1;

  /// Timed repetitions per cell (DESIGN.md §15). 1 = the historical
  /// single-shot mode with byte-identical records. >1 re-runs each cell,
  /// asserts the simulated record is bit-identical across repetitions,
  /// and stores the host wall-clock of every timed run in
  /// CellResult::host_ms so reports carry mean ± CI instead of nothing.
  std::uint32_t reps = 1;

  /// Untimed warmup runs per cell before the first timed repetition.
  std::uint32_t warmup = 0;

  /// Disk cache directory for dataset generation (DatasetCache /
  /// load_or_generate); empty = $GB_CACHE_DIR or the default.
  std::string cache_dir;
};

struct CampaignResult {
  /// One record per grid cell, in grid-expansion order.
  std::vector<harness::CellResult> cells;

  /// Metrics rollup over all cells, merged in grid order.
  obs::MetricsSnapshot metrics;

  // Invocation statistics (not part of the report JSON: they differ
  // between an uninterrupted run and a resumed one by design).
  std::uint64_t executed = 0;       // cells run in this invocation
  std::uint64_t resumed = 0;        // cells taken from the journal
  std::uint64_t dataset_loads = 0;  // distinct datasets loaded
  std::uint64_t dataset_hits = 0;   // cache-served dataset requests

  /// Record by cell key; nullptr when absent.
  const harness::CellResult* find(const std::string& key) const;
};

/// The ClusterConfig a cell spec implies: workers, cores, partitioner,
/// faults, memory budget / paging, host parallelism. Shared between the
/// campaign runner and the multi-tenant serving executor (serve/), which
/// re-sizes the worker count to the scheduler's grant before running.
sim::ClusterConfig cluster_config_for(const CellSpec& spec,
                                      std::uint32_t cell_parallelism = 1);

/// Run one cell to completion (including bounded fault retries) and
/// package the journal-schema record. Does not journal; run_campaign
/// does. Exposed for gb_run-style single-cell reuse and tests.
/// With reps > 1 (or warmup > 0) the whole bounded-retry execution is
/// repeated — warmup runs untimed and discarded, then `reps` timed
/// repetitions whose host wall-clock lands in CellResult::host_ms. The
/// simulated record must be bit-identical across repetitions; divergence
/// produces an "error" record instead of a silently averaged lie.
harness::CellResult run_cell_spec(const CellSpec& spec,
                                  datasets::DatasetCache& cache,
                                  std::uint32_t cell_parallelism = 1,
                                  std::uint32_t max_attempts = 1,
                                  std::uint32_t reps = 1,
                                  std::uint32_t warmup = 0);

/// Run the whole grid with a private DatasetCache.
CampaignResult run_campaign(const GridSpec& grid,
                            const RunnerOptions& options = {});

/// Same, sharing a caller-owned DatasetCache (benches reuse graphs across
/// several grids).
CampaignResult run_campaign(const GridSpec& grid, const RunnerOptions& options,
                            datasets::DatasetCache& cache);

/// The campaign report: {"cells": [...], "rollup": {...}, "host": {...}}.
/// The simulated fields are run-independent, so an interrupted-and-
/// resumed campaign produces byte-identical bytes to an uninterrupted
/// one at any parallelism. The "host" section — per-cell host-time
/// mean / sd / 95% t-CI, derived deterministically from the journaled
/// host_ms distributions — is the one part that varies run to run; it is
/// an empty object in single-shot mode, preserving full byte identity.
std::string campaign_report_json(const CampaignResult& result);

}  // namespace gb::campaign
