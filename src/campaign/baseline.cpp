#include "campaign/baseline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>

#include "core/error.h"
#include "stats/stats.h"

namespace gb::campaign {
namespace {

std::string format_drift(double baseline, double current) {
  char buffer[96];
  const double rel =
      baseline != 0.0 ? (current - baseline) / baseline * 100.0 : 0.0;
  std::snprintf(buffer, sizeof(buffer), "%.6g s -> %.6g s (%+.1f%%)",
                baseline, current, rel);
  return buffer;
}

std::string format_interval(const stats::Interval& interval) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "[%.6g, %.6g]", interval.lo,
                interval.hi);
  return buffer;
}

}  // namespace

std::string BaselineDiff::to_string() const {
  std::string out;
  for (const auto& finding : findings) {
    if (!out.empty()) out += '\n';
    out += finding;
  }
  return out;
}

void save_baseline(const std::string& path,
                   const std::vector<harness::CellResult>& cells) {
  const std::filesystem::path target(path);
  if (!target.parent_path().empty()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  const std::filesystem::path temp = target.string() + ".tmp";
  {
    std::ofstream out(temp, std::ios::trunc);
    if (!out) throw Error("baseline: cannot write '" + temp.string() + "'");
    for (const auto& cell : cells) {
      out << harness::cell_result_to_json(cell) << '\n';
    }
    out.flush();
    if (!out) throw Error("baseline: write to '" + temp.string() + "' failed");
  }
  std::error_code ec;
  std::filesystem::rename(temp, target, ec);
  if (ec) {
    throw Error("baseline: cannot rename '" + temp.string() + "' to '" + path +
                "': " + ec.message());
  }
}

std::vector<harness::CellResult> load_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("baseline: cannot read '" + path + "'");
  std::vector<harness::CellResult> cells;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    try {
      cells.push_back(harness::cell_result_from_json(line));
    } catch (const FormatError& e) {
      throw FormatError("baseline: '" + path + "' line " +
                        std::to_string(line_number) + ": " + e.what());
    }
  }
  return cells;
}

BaselineDiff check_baseline(const std::vector<harness::CellResult>& baseline,
                            const std::vector<harness::CellResult>& current,
                            const BaselineTolerance& tolerance) {
  BaselineDiff diff;
  std::map<std::string, const harness::CellResult*> current_by_key;
  for (const auto& cell : current) current_by_key[cell.key] = &cell;

  for (const auto& base : baseline) {
    const auto it = current_by_key.find(base.key);
    if (it == current_by_key.end()) {
      diff.findings.push_back(base.key + ": in baseline but not in this run");
      continue;
    }
    const harness::CellResult& now = *it->second;
    current_by_key.erase(it);

    const std::string base_class = harness::outcome_class(base.outcome);
    const std::string now_class = harness::outcome_class(now.outcome);
    if (base_class != now_class) {
      diff.findings.push_back(base.key + ": outcome changed " + base_class +
                              " (" + base.outcome + ") -> " + now_class +
                              " (" + now.outcome + ")");
      continue;  // timing/output checks are meaningless across classes
    }
    if (!base.ok()) continue;  // both failed the same way: shape preserved

    // Interval-overlap drift checks (DESIGN.md §15): both sides get a
    // symmetric tolerance band — half-width max(abs floor, rel · value),
    // so the absolute floor keeps sub-second cells from failing on
    // harmless retuning while the relative band scales with the cell —
    // and drift means the two bands are disjoint.
    const auto drifted = [](double base_value, double now_value, double rel,
                            double abs_floor) {
      return !stats::overlaps(
          stats::tolerance_interval(base_value, rel, abs_floor),
          stats::tolerance_interval(now_value, rel, abs_floor));
    };
    if (drifted(base.makespan_sec, now.makespan_sec, tolerance.makespan_rel,
                tolerance.makespan_abs)) {
      diff.findings.push_back(
          base.key + ": makespan drift " +
          format_drift(base.makespan_sec, now.makespan_sec) +
          " (disjoint tolerance intervals)");
    }
    if (drifted(base.computation_sec, now.computation_sec,
                tolerance.computation_rel, tolerance.computation_abs)) {
      diff.findings.push_back(
          base.key + ": computation drift " +
          format_drift(base.computation_sec, now.computation_sec) +
          " (disjoint tolerance intervals)");
    }
    // Host-time gate: only when both records carry a distribution. With
    // n >= 2 on both sides the t-CIs carry real dispersion information;
    // anything less would turn wall-clock noise into a hard failure.
    if (tolerance.check_host_time && base.host_ms.size() >= 2 &&
        now.host_ms.size() >= 2) {
      const auto base_ci = stats::t_interval(
          std::span<const double>(base.host_ms), tolerance.host_confidence);
      const auto now_ci = stats::t_interval(
          std::span<const double>(now.host_ms), tolerance.host_confidence);
      if (!stats::overlaps(base_ci, now_ci)) {
        diff.findings.push_back(base.key + ": host-time CI " +
                                format_interval(base_ci) + " ms vs " +
                                format_interval(now_ci) +
                                " ms are disjoint");
      }
    }
    if (tolerance.check_iterations && base.iterations != now.iterations) {
      diff.findings.push_back(base.key + ": iterations changed " +
                              std::to_string(base.iterations) + " -> " +
                              std::to_string(now.iterations));
    }
    if (tolerance.check_output_hash && base.output_hash != now.output_hash) {
      diff.findings.push_back(base.key + ": output hash changed");
    }
  }
  for (const auto& [key, cell] : current_by_key) {
    (void)cell;
    diff.findings.push_back(key +
                            ": in this run but not in baseline "
                            "(re-save the baseline to accept new cells)");
  }
  return diff;
}

BaselineDiff check_baseline_file(const std::string& path,
                                 const std::vector<harness::CellResult>& current,
                                 const BaselineTolerance& tolerance) {
  return check_baseline(load_baseline(path), current, tolerance);
}

}  // namespace gb::campaign
