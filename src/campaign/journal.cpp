#include "campaign/journal.h"

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "core/error.h"

namespace gb::campaign {

Journal::Journal(const std::string& path) : path_(path) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  // A campaign killed mid-append leaves a torn final line. It must be cut
  // off *before* reopening for append — otherwise the first new record is
  // glued onto the torn bytes, turning a recoverable tail into a corrupt
  // middle line that poisons every later read.
  {
    std::ifstream existing(path, std::ios::binary);
    if (existing) {
      std::string contents((std::istreambuf_iterator<char>(existing)),
                           std::istreambuf_iterator<char>());
      if (!contents.empty() && contents.back() != '\n') {
        const auto last_newline = contents.find_last_of('\n');
        const std::uintmax_t keep =
            last_newline == std::string::npos ? 0 : last_newline + 1;
        std::error_code ec;
        std::filesystem::resize_file(path, keep, ec);
        if (ec) {
          throw Error("journal: cannot truncate torn record in '" + path +
                      "': " + ec.message());
        }
      }
    }
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    throw Error("journal: cannot open '" + path + "' for appending");
  }
}

Journal::~Journal() {
  if (file_ != nullptr) std::fclose(file_);
}

void Journal::append(const harness::CellResult& result) {
  const std::string line = harness::cell_result_to_json(result) + "\n";
  std::lock_guard lock(mutex_);
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    throw Error("journal: write to '" + path_ + "' failed");
  }
}

std::vector<harness::CellResult> Journal::read(const std::string& path) {
  std::vector<harness::CellResult> records;
  std::ifstream in(path);
  if (!in) return records;  // no journal yet: nothing done

  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    try {
      records.push_back(harness::cell_result_from_json(lines[i]));
    } catch (const FormatError&) {
      if (i + 1 == lines.size()) {
        // Torn final append from an interrupted campaign — drop it; the
        // cell is simply not done and will re-run.
        break;
      }
      throw FormatError("journal: corrupt record at line " +
                        std::to_string(i + 1) + " of '" + path + "'");
    }
  }
  return records;
}

std::map<std::string, harness::CellResult> Journal::read_latest(
    const std::string& path) {
  std::map<std::string, harness::CellResult> latest;
  for (auto& record : read(path)) {
    latest.insert_or_assign(record.key, std::move(record));
  }
  return latest;
}

}  // namespace gb::campaign
