#include "serve/trace.h"

#include <cmath>
#include <utility>

#include "algorithms/platform_suite.h"
#include "core/error.h"
#include "core/rng.h"
#include "core/strict_parse.h"
#include "datasets/catalog.h"
#include "platforms/platform.h"

namespace gb::serve {

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(text.substr(begin));
      return parts;
    }
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
}

MixEntry parse_mix_entry(const std::string& text, double scale) {
  const auto fields = split(text, ':');
  if (fields.size() < 3) {
    throw Error("trace mix entry '" + text +
                "': want Platform:Dataset:Algo[:wN][:xW][:qNAME][:mG]");
  }
  MixEntry entry;
  // Validate the platform name eagerly — a typo should fail at parse
  // time, not as a per-job error record deep into the trace.
  if (algorithms::make_platform(fields[0]) == nullptr) {
    throw Error("trace mix entry '" + text + "': unknown platform '" +
                fields[0] + "'");
  }
  entry.cell.platform = fields[0];
  const datasets::DatasetInfo* dataset = datasets::find_info(fields[1]);
  if (dataset == nullptr) {
    throw Error("trace mix entry '" + text + "': unknown dataset '" +
                fields[1] + "'");
  }
  entry.cell.dataset = dataset->id;
  const auto algorithm = platforms::parse_algorithm(fields[2]);
  if (!algorithm) {
    throw Error("trace mix entry '" + text + "': unknown algorithm '" +
                fields[2] + "'");
  }
  entry.cell.algorithm = *algorithm;
  entry.cell.scale = scale;
  for (std::size_t i = 3; i < fields.size(); ++i) {
    const std::string& field = fields[i];
    if (field.empty()) {
      throw Error("trace mix entry '" + text + "': empty field");
    }
    const std::string value = field.substr(1);
    switch (field[0]) {
      case 'w': {
        const auto workers = strict::parse_u32(value, 1);
        if (!workers) {
          throw Error("trace mix entry '" + text + "': bad worker count '" +
                      field + "'");
        }
        entry.cell.workers = *workers;
        break;
      }
      case 'x': {
        const auto weight = strict::parse_double(value);
        if (!weight || *weight <= 0.0) {
          throw Error("trace mix entry '" + text + "': bad weight '" + field +
                      "'");
        }
        entry.weight = *weight;
        break;
      }
      case 'q': {
        if (value.empty()) {
          throw Error("trace mix entry '" + text + "': empty queue name");
        }
        entry.queue = value;
        break;
      }
      case 'm': {
        const auto budget = strict::parse_double(value);
        if (!budget || *budget <= 0.0) {
          throw Error("trace mix entry '" + text + "': bad memory budget '" +
                      field + "'");
        }
        entry.cell.mem_budget_gb = *budget;
        break;
      }
      default:
        throw Error("trace mix entry '" + text + "': unknown field '" + field +
                    "'");
    }
  }
  return entry;
}

}  // namespace

std::vector<ServeJob> TraceSpec::expand() const {
  if (mix.empty()) throw Error("trace spec: empty mix");
  if (!(rate > 0.0)) throw Error("trace spec: rate must be > 0");
  double weight_sum = 0.0;
  for (const auto& entry : mix) {
    if (!(entry.weight > 0.0)) {
      throw Error("trace spec: mix weight must be > 0");
    }
    weight_sum += entry.weight;
  }

  std::vector<ServeJob> trace;
  trace.reserve(jobs);
  Xoshiro256 rng(seed);
  SimTime clock = 0.0;
  for (std::uint64_t i = 0; i < jobs; ++i) {
    // Exponential inter-arrival gap, mean 1/rate: the Poisson process.
    clock += -std::log(1.0 - rng.next_double()) / rate;
    double pick = rng.next_double() * weight_sum;
    const MixEntry* chosen = &mix.back();
    for (const auto& entry : mix) {
      pick -= entry.weight;
      if (pick < 0.0) {
        chosen = &entry;
        break;
      }
    }
    ServeJob job;
    job.cell = chosen->cell;
    job.arrival = clock;
    job.queue = chosen->queue;
    trace.push_back(std::move(job));
  }
  return trace;
}

TraceSpec parse_trace_spec(const std::string& text, double scale) {
  TraceSpec spec;
  bool saw_mix = false;
  for (const std::string& part : split(text, ';')) {
    if (part.empty()) continue;
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) {
      throw Error("trace spec: field '" + part + "' is not key=value");
    }
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    if (key == "rate") {
      const auto rate = strict::parse_double(value);
      if (!rate || *rate <= 0.0) {
        throw Error("trace spec: bad rate '" + value + "'");
      }
      spec.rate = *rate;
    } else if (key == "jobs") {
      const auto jobs = strict::parse_u64(value, 1);
      if (!jobs) throw Error("trace spec: bad job count '" + value + "'");
      spec.jobs = *jobs;
    } else if (key == "seed") {
      const auto seed = strict::parse_u64(value);
      if (!seed) throw Error("trace spec: bad seed '" + value + "'");
      spec.seed = *seed;
    } else if (key == "mix") {
      spec.mix.clear();
      for (const std::string& entry : split(value, ',')) {
        spec.mix.push_back(parse_mix_entry(entry, scale));
      }
      saw_mix = true;
    } else {
      throw Error("trace spec: unknown field '" + key + "'");
    }
  }
  if (!saw_mix || spec.mix.empty()) {
    throw Error("trace spec: missing mix=...");
  }
  return spec;
}

TraceSpec smoke_trace(double scale) {
  // Skewed on purpose: the heavy 16-slot batch jobs park at the head of a
  // FIFO line while 2-slot online jobs pile up behind them; fair-share
  // shrinks the batch grants and keeps the online tail flowing. BFS,
  // STATS and PAGERANK across Amazon, WikiTalk and KGS.
  TraceSpec spec;
  // One arrival per 2 simulated seconds: comparable to the ~10-16 s
  // service times, so the line actually forms. At this rate FIFO's
  // head-of-line batch jobs push p99 queue wait an order of magnitude
  // above fair-share's — the gap bench_serve's --check gates on.
  spec.rate = 0.5;
  spec.jobs = 24;
  spec.seed = 42;
  const auto entry = [scale](const char* platform, datasets::DatasetId dataset,
                             platforms::Algorithm algorithm,
                             std::uint32_t workers, double weight,
                             const char* queue) {
    MixEntry e;
    e.cell.platform = platform;
    e.cell.dataset = dataset;
    e.cell.algorithm = algorithm;
    e.cell.workers = workers;
    e.cell.scale = scale;
    e.weight = weight;
    e.queue = queue;
    return e;
  };
  using datasets::DatasetId;
  using platforms::Algorithm;
  spec.mix = {
      entry("Giraph", DatasetId::kAmazon, Algorithm::kBfs, 2, 4.0, "online"),
      entry("GraphLab", DatasetId::kWikiTalk, Algorithm::kBfs, 2, 3.0,
            "online"),
      entry("Hadoop", DatasetId::kAmazon, Algorithm::kStats, 2, 3.0, "online"),
      entry("Giraph", DatasetId::kKGS, Algorithm::kPageRank, 16, 1.0, "batch"),
      entry("GraphLab", DatasetId::kKGS, Algorithm::kPageRank, 16, 1.0,
            "batch"),
  };
  return spec;
}

}  // namespace gb::serve
