#include "serve/serving.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <utility>

#include "algorithms/platform_suite.h"
#include "campaign/journal.h"
#include "campaign/runner.h"
#include "core/error.h"
#include "core/thread_pool.h"
#include "harness/experiment.h"
#include "harness/json.h"
#include "obs/rollup.h"
#include "platforms/job.h"
#include "sim/event_queue.h"
#include "stats/stats.h"

namespace gb::serve {

double percentile(std::vector<double> values, double q) {
  // One rank rule repo-wide: stats::percentile implements the same
  // nearest-rank selection this helper always used (golden-tested on 1-,
  // 2- and ties-heavy inputs in tests/stats/), so the forwarding is
  // behavior-preserving by construction.
  return stats::percentile(std::move(values), q);
}

double jain_fairness(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : values) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

LatencyStats latency_stats(const std::vector<double>& values) {
  LatencyStats out;
  if (values.empty()) return out;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  out.p50 = stats::percentile_sorted(sorted, 0.50);
  out.p95 = stats::percentile_sorted(sorted, 0.95);
  out.p99 = stats::percentile_sorted(sorted, 0.99);
  const auto d = stats::describe(sorted);
  out.mean = d.mean;
  out.max = d.max;
  return out;
}

namespace {

/// Queue label the job's slots are billed to in the report and metrics.
/// Mirrors CapacityScheduler's mapping: a configured name sticks, an
/// unknown or empty one falls back to the first configured queue (or
/// "default" when no queues are configured).
std::string resolve_queue(const std::string& name,
                          const std::vector<sim::CapacityQueueSpec>& queues) {
  if (queues.empty()) return name.empty() ? "default" : name;
  for (const auto& queue : queues) {
    if (queue.name == name) return name;
  }
  return queues.front().name;
}

/// Worker count a grant of `slots` translates into — what the journaled
/// record must carry for a resume hit. Non-distributed platforms always
/// run one node, whatever they were granted.
std::uint32_t expected_workers(const campaign::CellSpec& spec,
                               std::uint32_t slots) {
  const auto platform = algorithms::make_platform(spec.platform);
  const bool distributed = platform == nullptr || platform->distributed();
  return distributed ? std::max(slots, 1u) : 1u;
}

struct Executed {
  harness::CellResult cell;
  std::vector<obs::TraceSpan> spans;
};

harness::CellResult error_cell(const std::string& key,
                               const campaign::CellSpec& spec,
                               std::uint32_t workers,
                               const std::string& message) {
  harness::Measurement m;
  m.outcome = harness::Outcome::kError;
  m.message = message;
  return harness::make_cell_result(key, spec.platform, spec.dataset_name(),
                                   spec.algorithm_name(), workers, spec.cores,
                                   spec.scale, spec.seed, m);
}

/// Run one admitted job on its private cluster, sized to the grant, with
/// the serve key stamped on every recorded span. Bounded fault retry
/// mirrors campaign::run_cell_spec; a fresh cluster per attempt, exactly
/// like an isolated run.
Executed execute_job(const ServeJob& job, const std::string& key,
                     std::uint32_t granted, const ServeOptions& options,
                     datasets::DatasetCache& cache) {
  const campaign::CellSpec& spec = job.cell;
  Executed out;
  try {
    const auto platform = algorithms::make_platform(spec.platform);
    if (platform == nullptr) {
      out.cell = error_cell(key, spec, expected_workers(spec, granted),
                            "unknown platform '" + spec.platform + "'");
      return out;
    }
    const auto dataset = cache.get(spec.dataset, spec.scale, spec.seed);
    const sim::ClusterConfig config = campaign::cluster_config_for(spec, 1);
    auto params = harness::default_params(*dataset);
    params.checkpoint_interval = spec.checkpoint_interval;
    const std::uint32_t max_attempts = std::max(options.max_attempts, 1u);
    harness::Measurement m;
    std::uint32_t workers_used = 1;
    std::uint32_t attempt = 0;
    do {
      ++attempt;
      const auto handle = platforms::make_job_handle(
          key, job.queue, spec.workers, granted, config, *dataset,
          platform->distributed());
      workers_used = handle.cluster->num_workers();
      m = harness::run_cell(*platform, *dataset, spec.algorithm, params,
                            *handle.cluster);
      if (options.collect_spans) out.spans = handle.cluster->trace().spans();
      // Retry only failures caused by injected faults (campaign rule): a
      // fault-free crash or timeout is the job's result.
    } while (!m.ok() && !spec.faults.empty() && attempt < max_attempts);
    out.cell = harness::make_cell_result(key, spec.platform,
                                         spec.dataset_name(),
                                         spec.algorithm_name(), workers_used,
                                         spec.cores, spec.scale, spec.seed, m);
    out.cell.attempts = attempt;
  } catch (const std::exception& e) {
    out.cell = error_cell(key, spec, expected_workers(spec, granted), e.what());
  }
  return out;
}

}  // namespace

ServeReport run_serve(const std::vector<ServeJob>& jobs,
                      const ServeOptions& options,
                      datasets::DatasetCache& cache) {
  auto scheduler = sim::make_scheduler(options.scheduler, options.total_slots,
                                       options.queues);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    if (jobs[i].arrival < jobs[i - 1].arrival) {
      throw Error("serve: trace must be sorted by arrival time");
    }
  }

  std::map<std::string, harness::CellResult> done;
  std::unique_ptr<campaign::Journal> journal;
  if (!options.journal_path.empty()) {
    done = campaign::Journal::read_latest(options.journal_path);
    journal = std::make_unique<campaign::Journal>(options.journal_path);
  }

  // Host pool for admitted batches. Scheduling stays on this thread; only
  // the (individually bit-identical) engine runs fan out.
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = nullptr;
  if (options.parallelism == 0) {
    pool = &ThreadPool::global();
  } else if (options.parallelism > 1) {
    owned_pool = std::make_unique<ThreadPool>(options.parallelism);
    pool = owned_pool.get();
  }

  ServeReport report;
  report.scheduler = sim::scheduler_policy_name(options.scheduler);
  report.total_slots = options.total_slots;
  report.jobs.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    auto& outcome = report.jobs[i];
    outcome.key = "j" + std::to_string(i) + ":" + jobs[i].cell.key();
    outcome.queue = resolve_queue(jobs[i].queue, options.queues);
    outcome.requested_slots = std::max(jobs[i].cell.workers, 1u);
    outcome.arrival = jobs[i].arrival;
  }

  obs::MetricsRegistry reg;
  std::uint32_t free_slots = options.total_slots;
  std::uint32_t in_use = 0;
  std::uint32_t peak_in_use = 0;
  double committed_gb = 0.0;
  double peak_committed_gb = 0.0;
  std::map<std::string, std::uint32_t> queue_used;
  std::map<std::string, std::uint32_t> queue_peak;
  // Slot-seconds integral for the utilization figure, advanced at every
  // state change. Serial event loop → deterministic accumulation order.
  double slot_seconds = 0.0;
  SimTime last_change = 0.0;
  const auto advance_to = [&](SimTime now) {
    slot_seconds += static_cast<double>(in_use) * (now - last_change);
    last_change = now;
  };

  sim::EventQueue queue;

  // Admission pump: runs after every arrival and completion. Everything
  // here is serial and a pure function of the submit/finish history, so
  // the schedule is bit-identical at every host parallelism.
  std::function<void()> pump = [&] {
    const auto grants = scheduler->admit(free_slots);
    if (grants.empty()) return;
    const SimTime now = queue.now();
    advance_to(now);

    struct Admitted {
      std::size_t job = 0;
      std::uint32_t slots = 0;
      std::uint32_t workers = 0;
    };
    std::vector<Admitted> batch;
    batch.reserve(grants.size());
    for (const auto& grant : grants) {
      const auto i = static_cast<std::size_t>(grant.id);
      auto& outcome = report.jobs[i];
      free_slots -= grant.slots;
      in_use += grant.slots;
      outcome.start = now;
      outcome.granted_slots = grant.slots;
      if (grant.slots <
          std::min(outcome.requested_slots, options.total_slots)) {
        reg.incr("serve.grants_shrunk");
      }
      const std::uint32_t workers = expected_workers(jobs[i].cell, grant.slots);
      auto& used = queue_used[outcome.queue];
      used += grant.slots;
      queue_peak[outcome.queue] = std::max(queue_peak[outcome.queue], used);
      committed_gb += jobs[i].cell.mem_budget_gb * workers;
      batch.push_back({i, grant.slots, workers});
    }
    peak_in_use = std::max(peak_in_use, in_use);
    peak_committed_gb = std::max(peak_committed_gb, committed_gb);

    // Journal hits skip execution — but only when the journaled record
    // was produced at the worker count this grant implies, so a resume
    // under a different scheduler or slot pool re-runs instead of lying.
    std::vector<std::size_t> to_run;
    for (std::size_t b = 0; b < batch.size(); ++b) {
      const auto it = done.find(report.jobs[batch[b].job].key);
      if (it != done.end() && it->second.workers == batch[b].workers) {
        report.jobs[batch[b].job].cell = it->second;
        ++report.resumed;
      } else {
        to_run.push_back(b);
      }
    }

    // Execute the misses host-parallel, one chunk per job. Each engine
    // run is bit-identical at any thread count, and results land at
    // their job index, so this is a pure wall-clock knob.
    std::vector<Executed> results(to_run.size());
    const auto run_range = [&](std::size_t, std::size_t begin,
                               std::size_t end) {
      for (std::size_t t = begin; t < end; ++t) {
        const Admitted& slot = batch[to_run[t]];
        results[t] = execute_job(jobs[slot.job], report.jobs[slot.job].key,
                                 slot.slots, options, cache);
      }
    };
    if (pool != nullptr && to_run.size() > 1) {
      pool->parallel_chunks(to_run.size(), to_run.size(), run_range);
    } else {
      run_range(0, 0, to_run.size());
    }
    for (std::size_t t = 0; t < to_run.size(); ++t) {
      auto& outcome = report.jobs[batch[to_run[t]].job];
      outcome.cell = std::move(results[t].cell);
      outcome.spans = std::move(results[t].spans);
      if (journal) journal->append(outcome.cell);
      ++report.executed;
    }

    // Completion events: service time is the job's own simulated
    // makespan, composed onto the shared clock. Failed runs carry no
    // makespan and release their slots immediately.
    for (const Admitted& slot : batch) {
      auto& outcome = report.jobs[slot.job];
      const SimTime service = outcome.cell.makespan_sec;
      const double job_gb = jobs[slot.job].cell.mem_budget_gb *
                            static_cast<double>(slot.workers);
      queue.schedule(now + service, [&, i = slot.job, slots = slot.slots,
                                     job_gb] {
        advance_to(queue.now());
        free_slots += slots;
        in_use -= slots;
        committed_gb -= job_gb;
        queue_used[report.jobs[i].queue] -= slots;
        report.jobs[i].finish = queue.now();
        scheduler->finish(static_cast<sim::JobId>(i));
        pump();
      });
    }
  };

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    queue.schedule(jobs[i].arrival, [&, i] {
      sim::JobRequest request;
      request.id = static_cast<sim::JobId>(i);
      request.slots = report.jobs[i].requested_slots;
      request.queue = jobs[i].queue;
      scheduler->submit(request);
      reg.incr("serve.jobs_submitted");
      pump();
    });
  }

  const SimTime end_time = queue.run();
  if (scheduler->pending() != 0 || scheduler->running() != 0) {
    throw Error("serve: trace did not drain — scheduler deadlock");
  }
  advance_to(end_time);
  report.makespan = end_time;

  std::vector<double> waits;
  std::vector<double> latencies;
  std::vector<double> slowdowns;
  waits.reserve(report.jobs.size());
  latencies.reserve(report.jobs.size());
  double wait_total = 0.0;
  obs::MetricsRollup rollup;
  for (const auto& outcome : report.jobs) {
    waits.push_back(outcome.queue_wait());
    latencies.push_back(outcome.latency());
    wait_total += outcome.queue_wait();
    if (outcome.cell.ok() && outcome.service() > 0.0) {
      slowdowns.push_back(outcome.latency() / outcome.service());
    }
    reg.incr(outcome.cell.ok() ? "serve.jobs_ok" : "serve.jobs_failed");
    if (outcome.cell.attempts > 1) {
      reg.incr("serve.retries", outcome.cell.attempts - 1);
    }
    rollup.add(outcome.cell.metrics);
  }
  report.queue_wait = latency_stats(waits);
  report.latency = latency_stats(latencies);
  report.fairness_jain = jain_fairness(slowdowns);
  report.utilization =
      (end_time > 0.0 && options.total_slots > 0)
          ? slot_seconds / (static_cast<double>(options.total_slots) * end_time)
          : 0.0;
  reg.set_gauge("serve.slots_peak", peak_in_use);
  reg.set_gauge("serve.mem_committed_peak_gb", peak_committed_gb);
  reg.add("serve.queue_wait_sec_total", wait_total);
  for (const auto& [name, peak] : queue_peak) {
    reg.set_gauge("serve.queue." + name + ".slots_peak", peak);
  }
  report.serve_metrics = reg.snapshot();
  report.rollup = rollup.total();
  return report;
}

namespace {

void write_latency_stats(harness::JsonWriter& json, const LatencyStats& s) {
  json.begin_object();
  json.key("p50");
  json.value(s.p50);
  json.key("p95");
  json.value(s.p95);
  json.key("p99");
  json.value(s.p99);
  json.key("mean");
  json.value(s.mean);
  json.key("max");
  json.value(s.max);
  json.end_object();
}

void write_snapshot(harness::JsonWriter& json,
                    const obs::MetricsSnapshot& snapshot) {
  json.begin_object();
  json.key("counters");
  json.begin_object();
  for (const auto& [name, value] : snapshot.counters) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  json.key("gauges");
  json.begin_object();
  for (const auto& [name, value] : snapshot.gauges) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  json.end_object();
}

}  // namespace

std::string serve_report_json(const ServeReport& report) {
  harness::JsonWriter json;
  json.begin_object();
  json.key("scheduler");
  json.value(report.scheduler);
  json.key("total_slots");
  json.value(std::uint64_t{report.total_slots});
  json.key("jobs");
  json.begin_array();
  for (const auto& outcome : report.jobs) {
    json.begin_object();
    json.key("key");
    json.value(outcome.key);
    json.key("queue");
    json.value(outcome.queue);
    json.key("requested_slots");
    json.value(std::uint64_t{outcome.requested_slots});
    json.key("granted_slots");
    json.value(std::uint64_t{outcome.granted_slots});
    json.key("arrival_sec");
    json.value(outcome.arrival);
    json.key("start_sec");
    json.value(outcome.start);
    json.key("finish_sec");
    json.value(outcome.finish);
    json.key("queue_wait_sec");
    json.value(outcome.queue_wait());
    json.key("latency_sec");
    json.value(outcome.latency());
    json.key("cell");
    harness::write_cell_result(json, outcome.cell);
    json.end_object();
  }
  json.end_array();
  json.key("makespan_sec");
  json.value(report.makespan);
  json.key("queue_wait");
  write_latency_stats(json, report.queue_wait);
  json.key("latency");
  write_latency_stats(json, report.latency);
  json.key("fairness_jain");
  json.value(report.fairness_jain);
  json.key("utilization");
  json.value(report.utilization);
  json.key("serve");
  write_snapshot(json, report.serve_metrics);
  json.key("rollup");
  write_snapshot(json, report.rollup);
  json.end_object();
  return json.str();
}

std::string serve_report_text(const ServeReport& report, bool per_job) {
  std::string out;
  char line[256];
  const std::uint64_t ok = report.serve_metrics.counter("serve.jobs_ok");
  const std::uint64_t failed =
      report.serve_metrics.counter("serve.jobs_failed");
  std::snprintf(line, sizeof(line),
                "serve: scheduler=%s slots=%u jobs=%zu ok=%llu failed=%llu\n",
                report.scheduler.c_str(), report.total_slots,
                report.jobs.size(), static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(failed));
  out += line;
  std::snprintf(line, sizeof(line),
                "makespan %.1f s   utilization %.1f%%   fairness(Jain) %.3f\n",
                report.makespan, report.utilization * 100.0,
                report.fairness_jain);
  out += line;
  std::snprintf(line, sizeof(line),
                "queue wait  p50 %.1f  p95 %.1f  p99 %.1f  max %.1f s\n",
                report.queue_wait.p50, report.queue_wait.p95,
                report.queue_wait.p99, report.queue_wait.max);
  out += line;
  std::snprintf(line, sizeof(line),
                "latency     p50 %.1f  p95 %.1f  p99 %.1f  max %.1f s\n",
                report.latency.p50, report.latency.p95, report.latency.p99,
                report.latency.max);
  out += line;
  for (const auto& [name, value] : report.serve_metrics.gauges) {
    if (name.rfind("serve.queue.", 0) == 0) {
      std::snprintf(line, sizeof(line), "%s %.0f\n", name.c_str(), value);
      out += line;
    }
  }
  if (per_job) {
    out += "--- per job ---\n";
    for (const auto& outcome : report.jobs) {
      std::snprintf(line, sizeof(line),
                    "%-48s q=%-8s slots=%2u/%2u wait %8.1f  latency %9.1f  "
                    "%s\n",
                    outcome.key.c_str(), outcome.queue.c_str(),
                    outcome.granted_slots, outcome.requested_slots,
                    outcome.queue_wait(), outcome.latency(),
                    outcome.cell.outcome.c_str());
      out += line;
    }
  }
  return out;
}

}  // namespace gb::serve
