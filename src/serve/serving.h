// Multi-tenant serving: concurrent jobs on one shared simulated cluster.
//
// run_serve() drives an open-loop job trace through a sim::JobScheduler
// over a fixed pool of worker slots (DESIGN.md §14). A serial
// discrete-event loop owns every scheduling decision — arrivals submit,
// completions release, and each event pumps the scheduler for new
// admissions — while the admitted jobs' engine runs execute host-parallel
// (one chunk per job). Each admitted job gets its own sim::Cluster sized
// to its granted slots with a clock starting at zero, so its result is
// bit-identical to the same cell run alone; the serving layer composes
// per-job service times (the cell's simulated makespan) onto the shared
// timeline. Consequences, all tested:
//
//   * the whole report is byte-identical at every host `parallelism`;
//   * per-job outputs (output_hash) match isolated single-job runs under
//     every scheduler, partitioner and paging setting;
//   * injected faults delay and retry only the job they hit.
//
// Failed runs (crash / timeout / error) release their slots immediately:
// the harness schema records no partial makespan for them, and the
// serving metrics count them separately.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "datasets/dataset_cache.h"
#include "harness/cell_result.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/trace.h"
#include "sim/scheduler.h"

namespace gb::serve {

/// Nearest-rank percentile (q in (0, 1]) of an unsorted sample; 0 when
/// empty. Exposed for tests and the bench gates.
double percentile(std::vector<double> values, double q);

/// Jain's fairness index (Σx)² / (n·Σx²) over a non-negative sample:
/// 1 when all equal, → 1/n under maximal skew. 1.0 for empty input.
double jain_fairness(const std::vector<double>& values);

struct LatencyStats {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

/// Stats over a sample of seconds (queue waits, latencies).
LatencyStats latency_stats(const std::vector<double>& values);

/// One job's fate on the shared cluster.
struct JobOutcome {
  std::string key;    // "j<i>:" + cell key — unique per trace position
  std::string queue;  // capacity queue the slots were billed to
  std::uint32_t requested_slots = 0;
  std::uint32_t granted_slots = 0;
  SimTime arrival = 0.0;
  SimTime start = 0.0;   // admission (= execution start; no ramp-up)
  SimTime finish = 0.0;  // completion on the shared clock
  /// The job's own run record, identical to an isolated run of the same
  /// cell at the granted worker count (key rewritten to the serve key).
  harness::CellResult cell;
  /// Engine phase spans, job-tagged; captured only when
  /// ServeOptions::collect_spans is set (for the merged timeline export).
  std::vector<obs::TraceSpan> spans;

  SimTime queue_wait() const { return start - arrival; }
  SimTime latency() const { return finish - arrival; }
  SimTime service() const { return finish - start; }
};

struct ServeOptions {
  sim::SchedulerPolicy scheduler = sim::SchedulerPolicy::kFifo;
  /// Capacity-queue configuration (capacity policy only; empty = one
  /// "default" queue owning the whole cluster).
  std::vector<sim::CapacityQueueSpec> queues;
  /// Worker slots shared by every concurrent job.
  std::uint32_t total_slots = 20;
  /// Host threads executing admitted batches: 0 = hardware concurrency,
  /// 1 = serial. Wall-clock only — the report is byte-identical at every
  /// setting.
  std::uint32_t parallelism = 1;
  /// JSONL journal for crash-resume (campaign::Journal schema keyed by
  /// serve job key); empty disables journaling. A journaled record is
  /// reused only when its worker count matches the grant this run makes.
  std::string journal_path;
  /// Bounded retry for jobs whose cell carries an injected-fault plan,
  /// exactly like campaign::RunnerOptions::max_attempts.
  std::uint32_t max_attempts = 1;
  /// Capture per-job engine spans into JobOutcome::spans (costs memory;
  /// gb_serve enables it only for --trace-out).
  bool collect_spans = false;
};

struct ServeReport {
  std::string scheduler;
  std::uint32_t total_slots = 0;
  /// Outcomes in trace (arrival) order.
  std::vector<JobOutcome> jobs;
  /// Final shared-clock time: last completion (0 for an empty trace).
  SimTime makespan = 0.0;
  LatencyStats queue_wait;
  LatencyStats latency;
  /// Jain index over per-job slowdowns latency/service (ok jobs only).
  double fairness_jain = 1.0;
  /// Slot-seconds in use / (total_slots × makespan).
  double utilization = 0.0;
  /// serve.* counters and gauges for this run.
  obs::MetricsSnapshot serve_metrics;
  /// Rollup of per-job cell metrics, merged in arrival order.
  obs::MetricsSnapshot rollup;

  // Invocation statistics (excluded from the JSON report: a resumed run
  // differs from an uninterrupted one here by design).
  std::uint64_t executed = 0;  // jobs actually run this invocation
  std::uint64_t resumed = 0;   // jobs served from the journal
};

/// Run the trace to completion under the configured scheduler. Jobs must
/// be sorted by arrival time (expand() output is). Throws gb::Error on a
/// bad configuration; per-job failures land in their outcome record.
ServeReport run_serve(const std::vector<ServeJob>& jobs,
                      const ServeOptions& options,
                      datasets::DatasetCache& cache);

/// The serving report as one compact JSON document. Contains only
/// run-independent data: byte-identical across reruns, parallelism
/// settings and journal resumes.
std::string serve_report_json(const ServeReport& report);

/// Human-readable summary: per-scheduler table plus optional per-job
/// lines (gb_serve --per-job).
std::string serve_report_text(const ServeReport& report, bool per_job = false);

}  // namespace gb::serve
