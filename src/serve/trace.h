// Open-loop serving workloads: seed-derived Poisson arrival traces over a
// weighted mix of (platform, dataset, algorithm) job templates.
//
// A TraceSpec is the declarative form gb_serve accepts on the command
// line: an arrival rate, a job count, a seed, and a mix of cell templates
// with relative weights and (optionally) capacity-queue names. expand()
// materializes it into concrete ServeJobs with exponential inter-arrival
// gaps drawn from the seed — open-loop, so arrivals never wait for the
// cluster (the load the paper's shared YARN deployments actually face).
// The same spec and seed always expand to the identical trace, which is
// what lets gb_serve promise byte-identical reports across reruns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "core/types.h"

namespace gb::serve {

/// One job of a serving trace: the cell to run, when it arrives on the
/// simulated clock, and which capacity queue its slots are billed to.
struct ServeJob {
  campaign::CellSpec cell;
  SimTime arrival = 0.0;
  /// Capacity-scheduler queue; empty means the first configured queue.
  /// FIFO and fair-share ignore it (it still labels the report).
  std::string queue;
};

/// One weighted entry of the workload mix.
struct MixEntry {
  campaign::CellSpec cell;
  double weight = 1.0;
  std::string queue;
};

struct TraceSpec {
  double rate = 0.01;        // mean arrivals per simulated second
  std::uint64_t jobs = 10;   // trace length
  std::uint64_t seed = 42;   // drives arrival gaps and mix draws
  std::vector<MixEntry> mix;

  /// Materialize the trace: job i arrives at the sum of i+1 exponential
  /// gaps (mean 1/rate) and draws its template from the mix by weight.
  /// Pure function of the spec — same spec, same trace, every time.
  std::vector<ServeJob> expand() const;
};

/// Parse the gb_serve --trace grammar:
///
///   rate=R;jobs=N;seed=S;mix=ENTRY,ENTRY,...
///
/// where ENTRY is Platform:Dataset:Algo with optional suffix fields in
/// any order: wN (requested worker slots), xW (mix weight, default 1),
/// qNAME (capacity queue), mG (per-node memory budget GiB, enables
/// paging). `scale` applies to every entry's dataset (0 = catalog
/// default). Throws gb::Error with a field-level message on anything
/// malformed or unknown.
TraceSpec parse_trace_spec(const std::string& text, double scale = 0.0);

/// The skewed smoke preset used by bench_serve and CI: many light
/// "online" jobs (BFS / STATS on the small graphs, 2 slots) punctuated by
/// heavy "batch" jobs (PAGERANK on KGS, 16 slots) whose full-width
/// requests block a FIFO line but not a fair-share one. Three algorithms
/// across three datasets, per the gb_serve acceptance trace.
TraceSpec smoke_trace(double scale = 0.0);

}  // namespace gb::serve
