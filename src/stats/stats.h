// Shared statistical methodology layer (DESIGN.md §15).
//
// Every measurement surface in this repo — campaign cells, serving
// percentiles, host-perf trajectories — reports numbers that back a
// claim, and the SoK on graph-benchmark faults calls out exactly the
// mistakes a hand-rolled helper invites: population variance on tiny
// samples, ad-hoc percentile rank rules that disagree between callers,
// and fixed-epsilon regression gates that ignore dispersion entirely.
// This library is the single implementation those surfaces share:
//
//   * descriptive statistics with the *sample* (n-1) variance;
//   * nearest-rank and linearly interpolated percentiles with one
//     documented rank rule (golden tests pin it on 1-, 2- and
//     ties-heavy inputs);
//   * Student-t and BCa-bootstrap confidence intervals, the bootstrap
//     driven by a seeded deterministic resampler whose replicate
//     streams are independent of host parallelism;
//   * interval-overlap comparison, the primitive behind every
//     dispersion-aware regression gate.
//
// Everything here is deterministic: same inputs (and seed) → bit-equal
// outputs, at every thread count.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace gb {
class ThreadPool;
}

namespace gb::stats {

/// Descriptive summary of a sample. `variance` is the unbiased sample
/// variance (divisor n-1); a single observation has zero variance by
/// convention (there is no spread information, not infinite spread).
struct Description {
  std::size_t n = 0;
  double mean = 0.0;
  double variance = 0.0;  // sample variance, divisor n-1
  double sd = 0.0;        // sqrt(variance)
  double min = 0.0;
  double max = 0.0;
};

Description describe(std::span<const double> values);

/// The one rank rule every percentile in this repo uses. Nearest-rank:
/// the q-th percentile of n sorted values is the value at (1-based) rank
/// ceil(q * n), clamped to [1, n] — the smallest value with at least
/// q·n of the sample at or below it. q <= 0 yields rank 1 (the min),
/// q >= 1 yields rank n (the max). Inline so gp_core's graph statistics
/// can share the rule without a link dependency on gp_stats.
inline std::size_t nearest_rank(std::size_t n, double q) {
  if (n == 0) return 0;
  if (q <= 0.0) return 1;
  if (q >= 1.0) return n;
  const auto rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  return std::clamp<std::size_t>(rank, 1, n);
}

/// Nearest-rank percentile of an already sorted sample; 0 when empty.
double percentile_sorted(std::span<const double> sorted, double q);

/// Nearest-rank percentile of an unsorted sample (sorts a copy).
double percentile(std::vector<double> values, double q);

/// Linearly interpolated percentile (the R-7 / NumPy "linear" rule:
/// index h = q * (n - 1), interpolate between floor(h) and ceil(h)).
/// Smoother than nearest-rank for small samples; used where a continuous
/// estimate matters (bootstrap replicate quantiles). 0 when empty.
double percentile_interpolated_sorted(std::span<const double> sorted, double q);
double percentile_interpolated(std::vector<double> values, double q);

/// A two-sided confidence interval around a point estimate.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  double center = 0.0;      // the point estimate the interval brackets
  double confidence = 0.0;  // e.g. 0.95
};

/// Closed-interval overlap: [a.lo, a.hi] ∩ [b.lo, b.hi] ≠ ∅. The
/// primitive behind the interval-based regression gates: two
/// measurements are compatible when their intervals intersect.
bool overlaps(const Interval& a, const Interval& b);

/// The symmetric tolerance interval [v - e, v + e] with
/// e = max(abs_floor, rel * |v|). This is how a deterministic scalar
/// (a simulated makespan) is given a comparison band: both sides of a
/// baseline check get one, and drift means the bands do not intersect.
Interval tolerance_interval(double value, double rel, double abs_floor);

/// Standard normal quantile Φ⁻¹(p), p in (0, 1). Acklam's rational
/// approximation, |relative error| < 1.15e-9 — more than enough for
/// bootstrap bias corrections.
double normal_quantile(double p);

/// Student-t quantile: the t with CDF_t(t; df) = p, p in (0, 1), df > 0.
/// Evaluated by bisection on the exact CDF (regularized incomplete
/// beta), so closed-form table values are reproduced to ~1e-10.
double student_t_quantile(double p, double df);

/// Student-t CDF (exposed for tests).
double student_t_cdf(double t, double df);

/// Two-sided Student-t confidence interval for the mean of a sample.
/// n < 2 yields the degenerate interval [mean, mean] — one observation
/// carries no dispersion information, and the gates treat a degenerate
/// interval as "no evidence of drift" only via the tolerance band.
Interval t_interval(const Description& d, double confidence = 0.95);
Interval t_interval(std::span<const double> values, double confidence = 0.95);

struct BootstrapOptions {
  std::size_t resamples = 1000;
  std::uint64_t seed = 42;
  double confidence = 0.95;
};

/// BCa (bias-corrected and accelerated) bootstrap confidence interval
/// for an arbitrary statistic. Replicate b draws its resample from an
/// RNG derived from (seed, b) alone, and replicates are merged in index
/// order — so the interval is bit-identical at every `pool` size,
/// including none. Degenerate inputs (n < 2, or a statistic that is
/// constant across replicates) collapse to [stat, stat].
Interval bootstrap_bca(
    std::span<const double> values,
    const std::function<double(std::span<const double>)>& statistic,
    const BootstrapOptions& options = {}, ThreadPool* pool = nullptr);

/// bootstrap_bca for the mean (the common case).
Interval bootstrap_mean(std::span<const double> values,
                        const BootstrapOptions& options = {},
                        ThreadPool* pool = nullptr);

}  // namespace gb::stats
