#include "stats/stats.h"

#include <cmath>
#include <limits>

#include "core/rng.h"
#include "core/thread_pool.h"

namespace gb::stats {
namespace {

/// Continued-fraction evaluation for the regularized incomplete beta
/// (Lentz's method, the classic betacf arrangement). Converges in a few
/// dozen iterations for every (a, b, x) the t CDF feeds it.
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-16;
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

/// Regularized incomplete beta I_x(a, b).
double incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the symmetry that keeps the continued fraction fast-converging.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

/// Per-replicate RNG stream: a SplitMix64 hash of (seed, index) seeds an
/// independent Xoshiro256 per bootstrap replicate, so replicate b draws
/// the same resample whichever thread runs it.
Xoshiro256 replicate_rng(std::uint64_t seed, std::uint64_t index) {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  return Xoshiro256(sm.next());
}

}  // namespace

Description describe(std::span<const double> values) {
  Description d;
  d.n = values.size();
  if (values.empty()) return d;
  d.min = values.front();
  d.max = values.front();
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
    d.min = std::min(d.min, v);
    d.max = std::max(d.max, v);
  }
  d.mean = sum / static_cast<double>(d.n);
  if (d.n > 1) {
    // Unbiased sample variance: divisor n-1. The population divisor n
    // understates spread at exactly the small rep counts the perf gates
    // run with, which makes ±k·sd bands too tight.
    double ss = 0.0;
    for (const double v : values) ss += (v - d.mean) * (v - d.mean);
    d.variance = ss / static_cast<double>(d.n - 1);
    d.sd = std::sqrt(d.variance);
  }
  return d;
}

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  return sorted[nearest_rank(sorted.size(), q) - 1];
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, q);
}

double percentile_interpolated_sorted(std::span<const double> sorted,
                                      double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(q, 0.0, 1.0);
  const double h = clamped * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile_interpolated(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return percentile_interpolated_sorted(values, q);
}

bool overlaps(const Interval& a, const Interval& b) {
  return a.lo <= b.hi && b.lo <= a.hi;
}

Interval tolerance_interval(double value, double rel, double abs_floor) {
  const double e = std::max(abs_floor, rel * std::fabs(value));
  Interval iv;
  iv.lo = value - e;
  iv.hi = value + e;
  iv.center = value;
  iv.confidence = 0.0;  // a tolerance band, not a statistical interval
  return iv;
}

double normal_quantile(double p) {
  // Acklam's inverse-normal rational approximation.
  if (!(p > 0.0 && p < 1.0)) {
    if (p <= 0.0) return -std::numeric_limits<double>::infinity();
    return std::numeric_limits<double>::infinity();
  }
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double student_t_cdf(double t, double df) {
  if (df <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (t == 0.0) return 0.5;
  const double x = df / (df + t * t);
  const double tail = 0.5 * incomplete_beta(0.5 * df, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

double student_t_quantile(double p, double df) {
  if (df <= 0.0 || !(p > 0.0 && p < 1.0)) {
    if (p <= 0.0) return -std::numeric_limits<double>::infinity();
    if (p >= 1.0) return std::numeric_limits<double>::infinity();
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (p == 0.5) return 0.0;
  // Symmetric, monotone CDF → bisection is exact enough (≈1e-12 wide
  // final bracket) and immune to the approximation-drift bugs of
  // closed-form inverses. The normal quantile seeds the bracket.
  const bool upper = p > 0.5;
  const double target = upper ? p : 1.0 - p;
  double lo = 0.0;
  double hi = std::max(2.0, 2.0 * std::fabs(normal_quantile(target)));
  while (student_t_cdf(hi, df) < target && hi < 1e12) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, df) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * std::max(1.0, hi)) break;
  }
  const double t = 0.5 * (lo + hi);
  return upper ? t : -t;
}

Interval t_interval(const Description& d, double confidence) {
  Interval iv;
  iv.center = d.mean;
  iv.confidence = confidence;
  if (d.n < 2 || d.sd == 0.0) {
    iv.lo = d.mean;
    iv.hi = d.mean;
    return iv;
  }
  const double alpha = 1.0 - confidence;
  const double t = student_t_quantile(1.0 - 0.5 * alpha,
                                      static_cast<double>(d.n - 1));
  const double half = t * d.sd / std::sqrt(static_cast<double>(d.n));
  iv.lo = d.mean - half;
  iv.hi = d.mean + half;
  return iv;
}

Interval t_interval(std::span<const double> values, double confidence) {
  return t_interval(describe(values), confidence);
}

Interval bootstrap_bca(
    std::span<const double> values,
    const std::function<double(std::span<const double>)>& statistic,
    const BootstrapOptions& options, ThreadPool* pool) {
  const std::size_t n = values.size();
  const double theta = n > 0 ? statistic(values) : 0.0;
  Interval iv;
  iv.center = theta;
  iv.confidence = options.confidence;
  iv.lo = theta;
  iv.hi = theta;
  if (n < 2 || options.resamples < 2) return iv;

  // Replicates, one RNG stream per index: chunking them over the pool
  // reorders only the work, never a draw, so the replicate vector — and
  // everything derived from it — is bit-identical at every parallelism.
  const std::size_t B = options.resamples;
  std::vector<double> replicates(B);
  run_chunks(
      pool, B,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        std::vector<double> resample(n);
        for (std::size_t b = begin; b < end; ++b) {
          auto rng = replicate_rng(options.seed, b);
          for (std::size_t i = 0; i < n; ++i) {
            resample[i] = values[rng.next_below(n)];
          }
          replicates[b] = statistic(resample);
        }
      },
      /*grain=*/16);

  std::vector<double> sorted = replicates;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.front() == sorted.back()) return iv;  // constant statistic

  // Bias correction z0: the normal quantile of the fraction of
  // replicates below the full-sample statistic (ties split evenly so a
  // heavily tied replicate set does not bias the correction).
  double below = 0.0;
  for (const double r : replicates) {
    if (r < theta) {
      below += 1.0;
    } else if (r == theta) {
      below += 0.5;
    }
  }
  double frac = below / static_cast<double>(B);
  frac = std::clamp(frac, 0.5 / static_cast<double>(B),
                    1.0 - 0.5 / static_cast<double>(B));
  const double z0 = normal_quantile(frac);

  // Acceleration from the jackknife skew of the statistic.
  std::vector<double> loo(n - 1);
  std::vector<double> jack(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t k = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) loo[k++] = values[j];
    }
    jack[i] = statistic(loo);
  }
  double jack_mean = 0.0;
  for (const double v : jack) jack_mean += v;
  jack_mean /= static_cast<double>(n);
  double num = 0.0;
  double den = 0.0;
  for (const double v : jack) {
    const double d = jack_mean - v;
    num += d * d * d;
    den += d * d;
  }
  const double accel =
      den > 0.0 ? num / (6.0 * std::pow(den, 1.5)) : 0.0;

  const double alpha = 1.0 - options.confidence;
  const auto adjusted = [&](double a) {
    const double z = normal_quantile(a);
    const double w = z0 + (z0 + z) / (1.0 - accel * (z0 + z));
    // Guard the degenerate accel * (z0 + z) -> 1 pole.
    if (!std::isfinite(w)) return a < 0.5 ? 0.0 : 1.0;
    // Φ(w) via the complementary error function.
    return 0.5 * std::erfc(-w / std::sqrt(2.0));
  };
  const double a1 = adjusted(0.5 * alpha);
  const double a2 = adjusted(1.0 - 0.5 * alpha);
  iv.lo = percentile_interpolated_sorted(sorted, a1);
  iv.hi = percentile_interpolated_sorted(sorted, a2);
  if (iv.lo > iv.hi) std::swap(iv.lo, iv.hi);
  return iv;
}

Interval bootstrap_mean(std::span<const double> values,
                        const BootstrapOptions& options, ThreadPool* pool) {
  return bootstrap_bca(
      values,
      [](std::span<const double> sample) {
        double sum = 0.0;
        for (const double v : sample) sum += v;
        return sample.empty() ? 0.0 : sum / static_cast<double>(sample.size());
      },
      options, pool);
}

}  // namespace gb::stats
