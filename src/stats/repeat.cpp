#include "stats/repeat.h"

#include <algorithm>
#include <chrono>

namespace gb::stats {

std::vector<std::size_t> flag_outliers(const std::vector<double>& values,
                                       double fence_k) {
  std::vector<std::size_t> flagged;
  if (values.size() < 4) return flagged;  // quartiles need a real sample
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double q1 = percentile_interpolated_sorted(sorted, 0.25);
  const double q3 = percentile_interpolated_sorted(sorted, 0.75);
  const double iqr = q3 - q1;
  const double lo = q1 - fence_k * iqr;
  const double hi = q3 + fence_k * iqr;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] < lo || values[i] > hi) flagged.push_back(i);
  }
  return flagged;
}

RepeatResult summarize_times(std::vector<double> times_ms, double fence_k) {
  RepeatResult result;
  result.times_ms = std::move(times_ms);
  result.outliers = flag_outliers(result.times_ms, fence_k);
  result.stats = describe(result.times_ms);
  return result;
}

RepeatResult repeat_measure(const std::function<void()>& fn,
                            const RepeatOptions& options) {
  for (std::uint32_t w = 0; w < options.warmup; ++w) fn();
  const std::uint32_t reps = std::max(options.reps, 1u);
  std::vector<double> times_ms;
  times_ms.reserve(reps);
  for (std::uint32_t r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    times_ms.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return summarize_times(std::move(times_ms), options.outlier_fence_k);
}

}  // namespace gb::stats
