// Controlled repeated measurement (DESIGN.md §15).
//
// LDBC Graphalytics prescribes the discipline every host wall-clock
// claim in this repo follows: N untimed warmup runs (faulting in caches,
// the allocator, and the branch predictor's opinion of the code) and M
// timed repetitions, reported as a dispersion-aware summary rather than
// a single number. RepeatedMeasurement is that discipline in one place;
// bench_hostperf and gb_campaign --reps both run through it.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "stats/stats.h"

namespace gb::stats {

struct RepeatOptions {
  /// Untimed warmup runs before the first timed repetition.
  std::uint32_t warmup = 1;
  /// Timed repetitions. 0 is coerced to 1 — a measurement with no timed
  /// run is not a measurement.
  std::uint32_t reps = 3;
  /// Tukey fence multiplier for outlier flagging: a repetition beyond
  /// [q1 - k·IQR, q3 + k·IQR] is flagged (never dropped — dropping data
  /// silently is the SoK's complaint, flagging it is the fix).
  double outlier_fence_k = 3.0;
};

/// The timed repetitions of one measured operation, in execution order,
/// plus the derived summary. Outliers are flagged, never removed:
/// `stats` and `mean_ci` summarize every timed repetition.
struct RepeatResult {
  std::vector<double> times_ms;        // one entry per timed repetition
  std::vector<std::size_t> outliers;   // indices into times_ms, ascending
  Description stats;                   // describe(times_ms)

  /// Student-t confidence interval for the mean host time. Degenerate
  /// ([mean, mean]) when reps < 2.
  Interval mean_ci(double confidence = 0.95) const {
    return t_interval(stats, confidence);
  }
};

/// Flag outliers on an existing sample with the Tukey fence rule
/// (quartiles by linear interpolation). Exposed so journaled host-time
/// distributions can be re-audited without re-running anything.
std::vector<std::size_t> flag_outliers(const std::vector<double>& values,
                                       double fence_k = 3.0);

/// Run `fn` warmup+reps times, timing the reps with a steady clock.
RepeatResult repeat_measure(const std::function<void()>& fn,
                            const RepeatOptions& options = {});

/// Summarize an already-collected host-time sample the same way
/// repeat_measure would (shared by journal-resumed campaign cells).
RepeatResult summarize_times(std::vector<double> times_ms,
                             double fence_k = 3.0);

}  // namespace gb::stats
