// Record-store and cache model for the graph database platform (Neo4j 1.5
// class). Captures the structural sources of its performance behaviour:
//
//  * on-disk stores of fixed-size node / relationship records,
//  * a two-level cache: file-buffer cache (page cache over store files)
//    and object cache (deserialized vertices/relationships on the heap),
//  * batch-transaction ingestion whose cost is dominated by per-node
//    bookkeeping (the paper's wildly dataset-dependent ingestion hours
//    track node counts, not edge counts),
//  * lazy reads: only records an algorithm touches are ever loaded.
#pragma once

#include <cstdint>

#include "core/graph.h"
#include "sim/cost_model.h"

namespace gb::storage {

struct RecordStoreConfig {
  // On-disk record sizes (Neo4j 1.x store format).
  Bytes node_record = 14;
  Bytes relationship_record = 33;
  Bytes page_size = Bytes{8} << 10;

  // Heap object footprints in the object cache. Relationship objects in
  // this generation of the database are an order of magnitude larger than
  // their disk records — that is what makes medium graphs blow the cache:
  // DotaLeague (50.9 M relationships, ~16 GB of objects) still fits the
  // 20 GiB heap, Synth (64 M, ~21.7 GB) no longer does.
  Bytes node_object = 500;
  Bytes relationship_object = 320;

  // Access costs.
  double object_hit_sec = 0.2e-6;   // traversal step on a cached object
  double buffer_hit_sec = 0.8e-6;   // record parse from the file buffer
  double page_fault_sec = 0.5e-3;   // random 8 KiB read from SATA disk (NCQ)

  // Batch-transaction ingestion (paper Section 3.1: 10 k vertex / 250 k
  // edge transactions). Per-record constants calibrated against Table 6.
  double node_insert_sec = 27e-3;
  double edge_insert_sec = 0.23e-3;
};

/// Derived sizing and cost math for one graph in the store.
class RecordStoreModel {
 public:
  RecordStoreModel(const Graph& graph, const sim::CostModel& cost,
                   double work_scale, RecordStoreConfig config = {});

  /// Stored relationship records. Undirected edges are stored once but
  /// linked from both endpoints' relationship chains.
  double relationship_records() const { return rel_records_; }
  double node_records() const { return node_records_; }

  Bytes store_bytes() const;
  /// Heap demand if every touched record were promoted to the object cache.
  Bytes object_cache_demand() const;

  /// Fraction of object-cache accesses that miss because the demand
  /// exceeds the heap (0 when everything fits — the "hot cache" regime).
  double object_miss_fraction() const;

  /// Cost of one traversal record access in the hot-cache regime.
  double hot_access_sec() const;

  /// Cost of one first-touch access in the cold-cache regime: page fault
  /// amortized over the records sharing the page (sequential locality
  /// factor in [0,1]; 1 = perfectly clustered chains, 0 = fully random).
  double cold_access_sec(double locality) const;

  /// Full-size byte coordinates in the paged store layout
  /// [node records][relationship records] (DESIGN.md §12). Scaled-graph
  /// indices are stretched by work_scale so the address space — and the
  /// page-cache behaviour over it — matches the full-size store.
  double node_coordinate(VertexId v) const {
    return static_cast<double>(v) * work_scale_ *
           static_cast<double>(config_.node_record);
  }
  double relationship_coordinate(EdgeId slot) const {
    return node_records_ * static_cast<double>(config_.node_record) +
           static_cast<double>(slot) * work_scale_ *
               static_cast<double>(config_.relationship_record);
  }

  /// Table 6: batch-transaction import of the whole graph.
  SimTime ingest_time() const;

  const RecordStoreConfig& config() const { return config_; }

 private:
  RecordStoreConfig config_;
  double work_scale_;
  double node_records_ = 0;
  double rel_records_ = 0;
  Bytes heap_limit_ = 0;
};

}  // namespace gb::storage
