#include "storage/page_cache.h"

#include <algorithm>

#include "core/error.h"

namespace gb::storage {

PageCache::PageCache(std::uint64_t capacity_pages, ReplacementPolicy policy)
    : capacity_(capacity_pages), policy_(policy) {
  frames_.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(capacity_pages, 1u << 20)));
}

bool PageCache::touch(std::uint64_t page) {
  if (capacity_ == 0) {
    // Degenerate budget: nothing stays resident, every access faults.
    ++stats_.misses;
    return false;
  }
  if (const auto it = table_.find(page); it != table_.end()) {
    ++stats_.hits;
    Frame& frame = frames_[it->second];
    frame.referenced = true;
    if (policy_ == ReplacementPolicy::kLru && lru_head_ != it->second) {
      lru_unlink(it->second);
      lru_push_front(it->second);
    }
    return true;
  }

  ++stats_.misses;
  std::uint32_t frame_id;
  if (frames_.size() < capacity_) {
    frame_id = static_cast<std::uint32_t>(frames_.size());
    frames_.emplace_back();
  } else {
    frame_id = pick_victim();
    ++stats_.evictions;
    table_.erase(frames_[frame_id].page);
    if (policy_ == ReplacementPolicy::kLru) lru_unlink(frame_id);
  }
  Frame& frame = frames_[frame_id];
  frame.page = page;
  frame.referenced = true;
  table_.emplace(page, frame_id);
  if (policy_ == ReplacementPolicy::kLru) lru_push_front(frame_id);
  return false;
}

void PageCache::touch_range(std::uint64_t first_page,
                            std::uint64_t last_page) {
  for (std::uint64_t page = first_page; page <= last_page; ++page) {
    touch(page);
  }
}

PageCacheStats PageCache::take_stats() {
  PageCacheStats delta;
  delta.hits = stats_.hits - taken_.hits;
  delta.misses = stats_.misses - taken_.misses;
  delta.evictions = stats_.evictions - taken_.evictions;
  taken_ = stats_;
  return delta;
}

std::uint32_t PageCache::pick_victim() {
  if (policy_ == ReplacementPolicy::kLru) return lru_tail_;
  // CLOCK: sweep the hand, clearing reference bits; the first frame found
  // unreferenced since its last sweep is the victim. Terminates within
  // two passes because the first pass clears every bit it crosses.
  for (;;) {
    Frame& frame = frames_[hand_];
    const std::uint32_t current = hand_;
    hand_ = (hand_ + 1 == frames_.size()) ? 0 : hand_ + 1;
    if (!frame.referenced) return current;
    frame.referenced = false;
  }
}

void PageCache::lru_unlink(std::uint32_t frame) {
  Frame& f = frames_[frame];
  if (f.prev != kNoFrame) frames_[f.prev].next = f.next;
  if (f.next != kNoFrame) frames_[f.next].prev = f.prev;
  if (lru_head_ == frame) lru_head_ = f.next;
  if (lru_tail_ == frame) lru_tail_ = f.prev;
  f.prev = f.next = kNoFrame;
}

void PageCache::lru_push_front(std::uint32_t frame) {
  Frame& f = frames_[frame];
  f.prev = kNoFrame;
  f.next = lru_head_;
  if (lru_head_ != kNoFrame) frames_[lru_head_].prev = frame;
  lru_head_ = frame;
  if (lru_tail_ == kNoFrame) lru_tail_ = frame;
}

PagedGraphView::PagedGraphView(const Graph& graph,
                               const PageCacheConfig& config,
                               double work_scale,
                               std::uint64_t capacity_pages,
                               double vertex_bytes, double edge_bytes)
    : graph_(graph),
      work_scale_(work_scale),
      vertex_bytes_(vertex_bytes),
      edge_bytes_(edge_bytes),
      page_size_(static_cast<double>(config.page_size)),
      cache_(capacity_pages, config.policy) {
  if (config.page_size == 0) throw Error("page cache: zero page size");
  const double n = static_cast<double>(graph.num_vertices());
  const double entries = static_cast<double>(graph.num_adjacency_entries());
  out_base_ = n * vertex_bytes_;
  // Undirected graphs alias in- onto out-adjacency (same as the CSR).
  in_base_ = out_base_ + entries * edge_bytes_;
  total_bytes_ = (in_base_ + (graph.directed() ? entries * edge_bytes_ : 0.0)) *
                 work_scale_;
}

std::uint64_t PagedGraphView::page_of(double coord) const {
  return static_cast<std::uint64_t>(coord * work_scale_ / page_size_);
}

void PagedGraphView::touch_vertex(VertexId v) {
  cache_.touch(page_of(static_cast<double>(v) * vertex_bytes_));
}

void PagedGraphView::touch_out_adjacency(VertexId v) {
  const auto begin = graph_.out_offset(v);
  const auto end = graph_.out_offset(v + 1);
  if (begin == end) return;
  cache_.touch_range(
      page_of(out_base_ + static_cast<double>(begin) * edge_bytes_),
      page_of(out_base_ + static_cast<double>(end - 1) * edge_bytes_));
}

void PagedGraphView::touch_in_adjacency(VertexId v) {
  const double base = graph_.directed() ? in_base_ : out_base_;
  const auto begin = graph_.in_offset(v);
  const auto end = graph_.in_offset(v + 1);
  if (begin == end) return;
  cache_.touch_range(page_of(base + static_cast<double>(begin) * edge_bytes_),
                     page_of(base + static_cast<double>(end - 1) * edge_bytes_));
}

void PagedGraphView::touch_all() {
  if (total_bytes_ <= 0.0) return;
  cache_.touch_range(0, page_of(total_bytes_ / work_scale_ - 1.0));
}

}  // namespace gb::storage
