#include "storage/record_store.h"

#include <algorithm>

namespace gb::storage {

RecordStoreModel::RecordStoreModel(const Graph& graph,
                                   const sim::CostModel& cost,
                                   double work_scale,
                                   RecordStoreConfig config)
    : config_(config), work_scale_(work_scale), heap_limit_(cost.heap_limit) {
  node_records_ = static_cast<double>(graph.num_vertices()) * work_scale;
  rel_records_ = static_cast<double>(graph.num_edges()) * work_scale;
}

Bytes RecordStoreModel::store_bytes() const {
  return static_cast<Bytes>(
      node_records_ * static_cast<double>(config_.node_record) +
      rel_records_ * static_cast<double>(config_.relationship_record));
}

Bytes RecordStoreModel::object_cache_demand() const {
  return static_cast<Bytes>(
      node_records_ * static_cast<double>(config_.node_object) +
      rel_records_ * static_cast<double>(config_.relationship_object));
}

double RecordStoreModel::object_miss_fraction() const {
  const double demand = static_cast<double>(object_cache_demand());
  const double capacity = static_cast<double>(heap_limit_);
  if (demand <= capacity) return 0.0;
  // Graph traversals are cyclic scans: once the working set no longer
  // fits, LRU evicts each object just before its next use, so the miss
  // rate jumps to ~1 rather than degrading proportionally (the paper's
  // 17-hour "hot" BFS on Synth, which exceeds the heap by only ~5%).
  return 0.9;
}

double RecordStoreModel::hot_access_sec() const {
  // Hot regime = every resident access is an object hit; the miss
  // fraction (graphs bigger than the heap) pays a page fault instead.
  const double miss = object_miss_fraction();
  return (1.0 - miss) * config_.object_hit_sec + miss * config_.page_fault_sec;
}

double RecordStoreModel::cold_access_sec(double locality) const {
  locality = std::clamp(locality, 0.0, 1.0);
  const double records_per_page =
      static_cast<double>(config_.page_size) /
      static_cast<double>(config_.relationship_record);
  // With perfect locality a fault brings in a whole page of useful
  // records; with none, every record costs its own fault.
  const double faults_per_record =
      locality / records_per_page + (1.0 - locality);
  return faults_per_record * config_.page_fault_sec + config_.buffer_hit_sec;
}

SimTime RecordStoreModel::ingest_time() const {
  return node_records_ * config_.node_insert_sec +
         rel_records_ * config_.edge_insert_sec;
}

}  // namespace gb::storage
