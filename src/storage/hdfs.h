// HDFS model.
//
// The paper stores every distributed platform's input in HDFS with a
// single replica and no compression (Section 3.1). This model captures
// what matters for the experiments: block layout, the single-stream
// ingestion path (Table 6), and data-local parallel reads/writes during
// job execution.
#pragma once

#include <cstdint>

#include "core/types.h"
#include "sim/cost_model.h"

namespace gb::storage {

struct HdfsConfig {
  Bytes block_size = Bytes{64} << 20;
  std::uint32_t replicas = 1;
  /// NameNode metadata round-trips + client setup per file operation.
  double file_overhead_sec = 0.8;
};

class Hdfs {
 public:
  Hdfs(const sim::CostModel& cost, HdfsConfig config = {})
      : cost_(cost), config_(config) {}

  const HdfsConfig& config() const { return config_; }

  std::uint64_t num_blocks(Bytes file_size) const {
    return (file_size + config_.block_size - 1) / config_.block_size;
  }

  /// Loading a local file into HDFS: one writer stream at local-disk
  /// read speed (the write lands on remote disks at least as fast, so the
  /// reader is the bottleneck), plus per-file NameNode overhead.
  SimTime ingest_time(Bytes file_size) const {
    return config_.file_overhead_sec +
           static_cast<double>(file_size * config_.replicas) /
               cost_.disk_read_bps;
  }

  /// A data-local parallel scan: each worker streams its share of blocks
  /// from the local disk.
  SimTime parallel_read_time(Bytes file_size, std::uint32_t workers) const {
    if (file_size == 0 || workers == 0) return 0.0;
    const Bytes share = file_size / workers + 1;
    return cost_.disk_read_time(share);
  }

  SimTime parallel_write_time(Bytes file_size, std::uint32_t workers) const {
    if (file_size == 0 || workers == 0) return 0.0;
    const Bytes share = (file_size * config_.replicas) / workers + 1;
    return cost_.disk_write_time(share);
  }

 private:
  sim::CostModel cost_;
  HdfsConfig config_;
};

}  // namespace gb::storage
