// Paged out-of-core storage in front of the CSR core.
//
// The engines hold their partition of the graph in simulated RAM; a
// dataset whose in-memory representation exceeds the per-node heap used
// to be a hard kOutOfMemory crash. PageCache models the alternative the
// TriCache line of work takes: the structure lives on fixed-size pages,
// a bounded number of frames stay resident, and every access outside the
// resident set charges a page-fault (seek + one page of sequential read)
// instead of aborting. Replacement is pluggable — CLOCK (the default,
// matching TriCache's second-chance eviction) or strict LRU.
//
// Everything here is deterministic: page ids derive from simulated byte
// coordinates, and callers touch pages from serial replay loops only, so
// hit/miss/eviction counts are bit-identical at every host parallelism.
//
// Layering: PageCacheConfig is header-only (core/types.h only) so
// sim::ClusterConfig can embed it without linking gp_storage; the cache
// and view implementations live in page_cache.cpp (gp_storage).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/graph.h"
#include "core/types.h"

namespace gb::storage {

enum class ReplacementPolicy {
  kClock,  // second-chance: evict the first frame the hand finds unref'd
  kLru,    // strict least-recently-used
};

inline const char* replacement_policy_name(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kClock: return "clock";
    case ReplacementPolicy::kLru: return "lru";
  }
  return "?";
}

inline std::optional<ReplacementPolicy> parse_replacement_policy(
    const std::string& name) {
  if (name == "clock") return ReplacementPolicy::kClock;
  if (name == "lru") return ReplacementPolicy::kLru;
  return std::nullopt;
}

/// Paging knobs carried by the cluster config. budget_per_node == 0 means
/// paging is off and over-heap structures crash exactly as before.
struct PageCacheConfig {
  Bytes page_size = Bytes{1} << 20;  // simulated page granularity
  Bytes budget_per_node = 0;         // resident bytes per node; 0 = off
  ReplacementPolicy policy = ReplacementPolicy::kClock;

  bool enabled() const { return budget_per_node > 0; }
};

struct PageCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// Fixed-capacity page cache: a page table mapping page id -> frame and a
/// replacement policy over the frames. Pages are abstract ids; the caller
/// decides what byte range a page covers.
class PageCache {
 public:
  PageCache(std::uint64_t capacity_pages, ReplacementPolicy policy);

  /// Access one page; returns true on hit. Misses install the page,
  /// evicting a victim when all frames are occupied.
  bool touch(std::uint64_t page);

  /// Access every page in [first_page, last_page] in ascending order.
  void touch_range(std::uint64_t first_page, std::uint64_t last_page);

  std::uint64_t capacity_pages() const { return capacity_; }
  std::uint64_t resident_pages() const { return frames_.size(); }
  ReplacementPolicy policy() const { return policy_; }

  /// Cumulative counters since construction.
  const PageCacheStats& stats() const { return stats_; }

  /// Counters accumulated since the previous take_stats() call (engines
  /// drain this per phase to charge fault time where it occurred).
  PageCacheStats take_stats();

 private:
  static constexpr std::uint32_t kNoFrame = ~std::uint32_t{0};

  std::uint32_t pick_victim();  // frame to evict (cache is full)

  struct Frame {
    std::uint64_t page = 0;
    bool referenced = false;  // clock second-chance bit
    std::uint32_t prev = kNoFrame;  // LRU intrusive list
    std::uint32_t next = kNoFrame;
  };

  void lru_unlink(std::uint32_t frame);
  void lru_push_front(std::uint32_t frame);

  std::uint64_t capacity_;
  ReplacementPolicy policy_;
  std::vector<Frame> frames_;
  // Page table: page id -> frame. Never iterated, so the unordered
  // container costs nothing in determinism.
  std::unordered_map<std::uint64_t, std::uint32_t> table_;
  std::uint32_t hand_ = 0;            // clock position
  std::uint32_t lru_head_ = kNoFrame;  // most recent
  std::uint32_t lru_tail_ = kNoFrame;  // least recent
  PageCacheStats stats_;
  PageCacheStats taken_;  // snapshot at last take_stats()
};

/// The CSR graph seen through a page cache, in the *engine's* memory
/// layout: per-vertex records of `vertex_bytes` and adjacency entries of
/// `edge_bytes`, laid out as [vertex records][out-adjacency][in-adjacency]
/// in full-size simulated byte space (scaled-down indices are multiplied
/// by work_scale before paging, so the paged footprint matches what the
/// heap check sees). Engines replay their access pattern against this
/// view from a serial prepass and charge the resulting miss count as
/// page-fault time.
class PagedGraphView {
 public:
  PagedGraphView(const Graph& graph, const PageCacheConfig& config,
                 double work_scale, std::uint64_t capacity_pages,
                 double vertex_bytes, double edge_bytes);

  void touch_vertex(VertexId v);
  void touch_out_adjacency(VertexId v);
  void touch_in_adjacency(VertexId v);

  /// Sequential sweep of every region (initial load / full scans).
  void touch_all();

  /// Total full-size bytes the paged structure spans.
  double footprint_bytes() const { return total_bytes_; }

  const PageCache& cache() const { return cache_; }
  PageCacheStats take_stats() { return cache_.take_stats(); }

 private:
  std::uint64_t page_of(double coord) const;

  const Graph& graph_;
  double work_scale_;
  double vertex_bytes_;
  double edge_bytes_;
  double page_size_;
  double out_base_;    // byte offset of the out-adjacency region
  double in_base_;     // byte offset of the in-adjacency region
  double total_bytes_;
  PageCache cache_;
};

}  // namespace gb::storage
