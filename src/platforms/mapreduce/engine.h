// MapReduce engine (Hadoop 0.20 class, with a YARN variant).
//
// Iterative graph algorithms on Hadoop follow the well-known pattern the
// paper describes: a driver submits one MapReduce job per iteration; every
// job re-reads the complete graph from HDFS, maps each vertex record
// (re-emitting the record itself plus messages to neighbors), sorts and
// spills map output to local scratch disks, shuffles it to reducers, and
// writes the complete updated graph back to HDFS. Convergence is detected
// by an additional lightweight job. This engine executes the user's
// map/reduce logic for real over in-memory state and charges every one of
// those data movements to the cost model.
//
// Crash semantics: map output that exceeds the local scratch disks fails
// the job (Hadoop's "no space left on device", the paper's STATS-on-
// DotaLeague crash). The YARN variant additionally models the 2.0-alpha
// ApplicationMaster instability on very large shuffles (the paper's
// YARN-on-Friendster crashes).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/graph.h"
#include "partition/partition.h"
#include "platforms/accounting.h"
#include "platforms/grouping.h"
#include "platforms/message_buffer.h"
#include "platforms/paging.h"
#include "platforms/partitioning.h"
#include "sim/cluster.h"
#include "sim/event_queue.h"
#include "storage/hdfs.h"

namespace gb::platforms::mapreduce {

struct MRConfig {
  bool yarn = false;
  /// HaLoop mode (Bu et al., VLDB'10 — the paper's related work, Table 8):
  /// loop-aware task scheduling plus caching of loop-invariant data. The
  /// graph structure is read from HDFS once and served from local reducer
  /// caches afterwards; only the mutable vertex state and messages move.
  bool haloop = false;
  /// PEGASUS mode (Kang et al., ICDM'09 — related work, Table 8): GIM-V
  /// with block encoding. The adjacency structure is stored and shuffled
  /// as compressed b x b blocks, dividing structure bytes by this factor.
  double block_compression = 1.0;
  /// Hadoop sometimes needs more than one MR job to express a single
  /// algorithm iteration (EVO needs two; Stratosphere's richer operators
  /// need one — Section 4.1.3).
  double jobs_per_iteration = 1.0;
  /// The driver's convergence check runs as an extra lightweight job per
  /// iteration (Section 3.1).
  bool convergence_job = true;
  /// Local spill space per node (DAS-4 nodes keep most of their disk for
  /// HDFS; STATS' terabyte-scale neighborhood exchange overflows this —
  /// the paper's Hadoop crash on DotaLeague).
  Bytes scratch_capacity = Bytes{64} << 30;
  /// hadoop-2.0.3-alpha AM instability: jobs whose per-iteration
  /// intermediate volume exceeds this limit die (YARN only).
  Bytes yarn_intermediate_limit = Bytes{16} << 30;
  double vertex_record_bytes = 24.0;  // key + state + serialization
  double message_record_bytes = 16.0;
  /// Maximum streams merged at once (the paper configures 80). A reducer
  /// pulling more map outputs than this needs extra on-disk merge passes.
  std::uint32_t io_sort_factor = 80;
  /// mapred.map.max.attempts: once a node has failed this many task
  /// attempts the JobTracker gives up and kills the job.
  std::uint32_t max_task_attempts = 4;
  /// Speculative execution: a backup copy of re-scheduled work starts
  /// immediately on a free slot, halving the serial re-execution tail.
  bool speculative = true;
  std::uint32_t max_iterations = 10'000;
};

template <typename Msg>
class MapEmitter {
 public:
  explicit MapEmitter(std::vector<std::pair<VertexId, Msg>>& out)
      : out_(out) {}
  void emit(VertexId target, const Msg& message) {
    out_.emplace_back(target, message);
  }

 private:
  std::vector<std::pair<VertexId, Msg>>& out_;
};

/// One iteration = map over every vertex, group messages, reduce every
/// vertex. reduce returns true when the vertex state changed (drives the
/// convergence job).
///
/// Job concept:
///   struct Job {
///     using State = ...; using Msg = ...;
///     void map(VertexId v, const State& s, const Graph& g,
///              MapEmitter<Msg>& out);
///     bool reduce(VertexId v, State& s, const Graph& g,
///                 std::span<const Msg> msgs);
///   };
struct MRStats {
  std::uint64_t iterations = 0;
};

namespace detail {

/// Per-iteration cost accounting shared by the iterative driver and the
/// single-pass jobs. input/output bytes default to the full graph text
/// (stock Hadoop re-reads and re-writes everything); HaLoop iterations
/// shrink them to the mutable state.
struct IterationVolume {
  double input_bytes = -1;        // < 0: use the graph's text size
  double map_output_records = 0;  // vertex records + messages
  double map_output_bytes = 0;
  double output_bytes = -1;       // < 0: use the graph's text size
  double compute_units = 0;  // user map/reduce work beyond record handling
};

/// Relative load of `worker` under the assignment (1.0 = perfectly
/// balanced). Reducer w serves partition w, so its task duration scales
/// with the partition's share of the total load.
inline double worker_share(const partition::PartitionAssignment* part,
                           std::uint32_t worker) {
  if (part == nullptr || part->quality.mean_load <= 0 ||
      worker >= part->loads.size()) {
    return 1.0;
  }
  return part->loads[worker] / part->quality.mean_load;
}

inline void charge_iteration(const Graph& graph, sim::Cluster& cluster,
                             PhaseRecorder& recorder, const MRConfig& config,
                             const storage::Hdfs& hdfs,
                             const IterationVolume& volume,
                             const std::string& label,
                             const partition::PartitionAssignment* part =
                                 nullptr) {
  const auto& cost = cluster.cost();
  const std::uint32_t workers = cluster.num_workers();
  const std::uint32_t slots = cluster.total_slots();
  const std::uint32_t cores = cluster.cores_per_worker();

  const double text_bytes = static_cast<double>(graph.text_size_bytes());
  const double graph_bytes = cluster.scale_bytes(
      volume.input_bytes >= 0 ? volume.input_bytes : text_bytes);
  const double write_bytes = cluster.scale_bytes(
      volume.output_bytes >= 0 ? volume.output_bytes : text_bytes);
  const double map_out_bytes = cluster.scale_bytes(volume.map_output_bytes);
  const double map_out_records =
      cluster.scale_units(volume.map_output_records);

  // Crash checks first. The YARN ApplicationMaster limit is the tighter
  // threshold, so it trips before the scratch disks fill.
  if (config.yarn &&
      map_out_bytes + graph_bytes >
          static_cast<double>(config.yarn_intermediate_limit) *
              static_cast<double>(workers) / 20.0) {
    throw PlatformError(PlatformError::Kind::kOutOfMemory,
                        "YARN ApplicationMaster failed handling a " +
                            std::to_string(static_cast<std::uint64_t>(
                                (map_out_bytes + graph_bytes) / (1 << 30))) +
                            " GiB shuffle (2.0-alpha instability)");
  }
  const double scratch_per_node = map_out_bytes / workers;
  if (scratch_per_node > static_cast<double>(config.scratch_capacity)) {
    throw PlatformError(
        PlatformError::Kind::kDiskFull,
        (config.yarn ? "YARN" : "Hadoop") + std::string(" map spill of ") +
            std::to_string(static_cast<std::uint64_t>(scratch_per_node / (1 << 30))) +
            " GiB/node exceeds local scratch space");
  }

  // Task-JVM residency. Hadoop is out-of-core by design — map output
  // beyond the sort buffer already streams through the scratch disks
  // (spill_time below) — so the resident demand is the JVM base plus the
  // sort buffer, bounded regardless of dataset size. It only trips when
  // the simulated per-node memory budget shrinks below the task
  // footprint; with paging enabled the sort buffer shrinks instead and
  // the displaced slice takes extra spill passes.
  const double sort_buffer = std::min(map_out_bytes / workers, 2.0e9);
  const double jvm_resident = 1.5e9 + sort_buffer;
  const double jvm_overflow = cluster.admit_resident(
      jvm_resident, (config.yarn ? "YARN" : "Hadoop") +
                        std::string(" task JVM working set"));

  // Job setup + task JVMs. Concurrent tasks per node contend for the one
  // local disk: streaming bandwidth is shared, seeks multiply.
  const double setup =
      (config.yarn ? cost.yarn_job_setup_sec : cost.mr_job_setup_sec) +
      (config.yarn ? cost.container_alloc_sec * 2.0 : 0.0);
  const double disk_contention_seeks = cost.disk_seek_sec * (cores - 1);

  // Map wave: read the full graph, run user map, sort + spill the output.
  const double read_time = graph_bytes / (cost.disk_read_bps * workers) +
                           cost.disk_seek_sec + disk_contention_seeks;
  const double parse_units = cluster.scale_units(
      static_cast<double>(graph.num_adjacency_entries() + graph.num_vertices()));
  const double map_cpu =
      cluster.jvm_compute_time(parse_units +
                               cluster.scale_units(volume.compute_units) * 0.5 +
                               map_out_records) /
      slots;
  // Each map task sorts its own share of the output before spilling.
  const double records_per_slot = std::max(map_out_records / slots, 1.0);
  const double sort_cpu = cluster.jvm_compute_time(
      records_per_slot * std::log2(records_per_slot + 2.0));
  const double spill_time = map_out_bytes / (cost.disk_write_bps * workers) +
                            disk_contention_seeks;

  const double map_task_duration =
      read_time + map_cpu + sort_cpu + spill_time;
  const std::vector<SimTime> map_tasks(slots, map_task_duration);
  const auto map_wave =
      sim::schedule_tasks(map_tasks, slots, cost.jvm_startup_sec);

  PhaseUsage map_usage;
  map_usage.worker_cpu_cores = cores;
  map_usage.worker_mem_bytes =
      std::min(map_out_bytes / workers + 1.5e9,
               static_cast<double>(cost.heap_limit));
  map_usage.master_cpu_cores = 0.02;
  recorder.phase(label + "/setup", setup, false,
                 PhaseUsage{.master_cpu_cores = 0.05});
  recorder.phase(label + "/map", map_wave.makespan, true, map_usage);
  paging::charge_spill(cluster, recorder, label, jvm_overflow * workers,
                       jvm_resident - jvm_overflow);

  // Shuffle: the serving side re-reads spills from disk. Stock Hadoop's
  // map tasks read location-agnostic HDFS splits, so (W-1)/W of their
  // output crosses the network whatever the reduce partitioner; HaLoop's
  // loop-aware scheduler pins map tasks to the reducer holding the cached
  // partition, so crossing traffic follows the assignment's edge-cut.
  const double cross =
      workers > 1 ? (config.haloop && part != nullptr
                         ? part->quality.edge_cut_fraction
                         : static_cast<double>(workers - 1) / workers)
                  : 0.0;
  const double shuffle_time =
      cost.network_time(static_cast<Bytes>(map_out_bytes * cross), workers) +
      map_out_bytes / (cost.disk_read_bps * workers);
  PhaseUsage shuffle_usage;
  shuffle_usage.worker_cpu_cores = 0.3;
  shuffle_usage.worker_mem_bytes = map_usage.worker_mem_bytes;
  shuffle_usage.worker_net_in_bps = cost.net_bps * 0.8;
  shuffle_usage.worker_net_out_bps = cost.net_bps * 0.8;
  recorder.phase(label + "/shuffle", shuffle_time, false, shuffle_usage);

  cluster.metrics().incr("tasks.scheduled", std::uint64_t{slots} * 2);
  cluster.metrics().add("shuffle.bytes", map_out_bytes * cross);

  // Reduce wave: merge, run user reduce, write the graph back to HDFS.
  // Each reducer merges one stream per map task; beyond io.sort.factor
  // streams it needs additional on-disk merge passes over its full input.
  const double streams_per_reducer = static_cast<double>(slots);
  std::uint32_t merge_passes = 1;
  for (double s = streams_per_reducer; s > config.io_sort_factor;
       s /= config.io_sort_factor) {
    ++merge_passes;
  }
  const double reduce_input_per_node = map_out_bytes / workers;
  const double extra_merge_io =
      merge_passes > 1
          ? (merge_passes - 1) *
                (reduce_input_per_node / cost.disk_read_bps +
                 reduce_input_per_node / cost.disk_write_bps)
          : 0.0;
  const double merge_cpu =
      cluster.jvm_compute_time(records_per_slot) * 2.0 * merge_passes;
  const double reduce_cpu =
      cluster.jvm_compute_time(cluster.scale_units(volume.compute_units) * 0.5 +
                               map_out_records) /
      slots;
  const double write_time = hdfs.parallel_write_time(
      static_cast<Bytes>(write_bytes), workers) / cores +
      disk_contention_seeks;
  // Skew-aware reduce wave: reducer w serves exactly partition w, so its
  // merge, reduce and write work scale with that partition's load share.
  // schedule_tasks then makes the wave as long as the slowest reducer —
  // the max-over-workers rule of DESIGN.md §11.
  const double reduce_base =
      merge_cpu + extra_merge_io / cores + reduce_cpu + write_time;
  std::vector<SimTime> reduce_tasks;
  reduce_tasks.reserve(slots);
  for (std::uint32_t w = 0; w < workers; ++w) {
    const double share = worker_share(part, w);
    for (std::uint32_t c = 0; c < cores; ++c) {
      reduce_tasks.push_back(reduce_base * share);
    }
  }
  const auto reduce_wave =
      sim::schedule_tasks(reduce_tasks, slots, cost.jvm_startup_sec);

  PhaseUsage reduce_usage;
  reduce_usage.worker_cpu_cores = cores * 0.8;
  reduce_usage.worker_mem_bytes = map_usage.worker_mem_bytes;
  recorder.phase(label + "/reduce", reduce_wave.makespan, true, reduce_usage);
}

inline void charge_convergence_job(const Graph& graph, sim::Cluster& cluster,
                                   PhaseRecorder& recorder,
                                   const MRConfig& config,
                                   const std::string& label) {
  const auto& cost = cluster.cost();
  const double graph_bytes =
      cluster.scale_bytes(static_cast<double>(graph.text_size_bytes()));
  const double setup =
      config.yarn ? cost.yarn_job_setup_sec : cost.mr_job_setup_sec;
  const double scan = graph_bytes / (cost.disk_read_bps * cluster.num_workers()) +
                      cost.disk_seek_sec + cost.jvm_startup_sec;
  PhaseUsage usage;
  usage.worker_cpu_cores = 0.4;
  usage.master_cpu_cores = 0.03;
  recorder.phase(label + "/convergence", setup + scan, false, usage);
}

/// Drain injected faults that fired during [span_begin, now) and charge
/// Hadoop's recovery for them. A dead TaskTracker is noticed after the
/// heartbeat timeout and its tasks re-run on the surviving nodes; a
/// transient task failure just re-launches that one attempt. `attempts`
/// counts failures per node — past max_task_attempts the job is killed
/// (mapred.map.max.attempts semantics).
inline void recover_from_faults(sim::Cluster& cluster, PhaseRecorder& recorder,
                                const MRConfig& config, SimTime span_begin,
                                const std::string& label,
                                std::vector<std::uint32_t>& attempts) {
  auto& faults = cluster.faults();
  if (!faults.enabled()) return;
  const auto& cost = cluster.cost();
  const std::uint32_t workers = std::max(1u, cluster.num_workers());
  const std::uint32_t slots = std::max(1u, cluster.total_slots());
  if (attempts.size() < workers) attempts.resize(workers, 0);
  while (const sim::FaultEvent* event = faults.take_before(recorder.now())) {
    auto& stats = faults.stats();
    const std::uint32_t node = event->worker % workers;
    if (++attempts[node] >= config.max_task_attempts) {
      throw PlatformError(
          PlatformError::Kind::kWorkerLost,
          (config.yarn ? "YARN" : "Hadoop") + std::string(" job killed: node ") +
              std::to_string(node) + " exhausted its " +
              std::to_string(config.max_task_attempts) + " task attempts");
    }
    const bool crash = event->kind == sim::FaultKind::kWorkerCrash;
    // Lost work. A dead node takes its completed map outputs with it, so
    // all its tasks for the current job re-run; each task spans a full
    // wave (tasks == slots), so the re-execution wave adds roughly the
    // elapsed span back onto the critical path. A transient failure only
    // re-runs the one attempt: a single slot's share.
    const SimTime span = std::max<SimTime>(0.0, recorder.now() - span_begin);
    const SimTime progress =
        std::clamp<SimTime>(event->time - span_begin, 0.0, span);
    const SimTime lost = crash ? progress : progress / slots;
    const SimTime rerun = (crash ? cost.failure_detection_sec : 0.0) +
                          cost.jvm_startup_sec +
                          (config.speculative ? lost * 0.5 : lost);
    stats.task_retries += crash ? cluster.cores_per_worker() : 1;
    stats.recomputed_sec += lost;
    stats.recovery_sec += rerun;
    cluster.metrics().incr("tasks.retried",
                           crash ? cluster.cores_per_worker() : 1);
    recorder.phase(label + (crash ? "/task_reexec" : "/task_retry"), rerun,
                   false,
                   PhaseUsage{.worker_cpu_cores = 1.0,
                              .master_cpu_cores = 0.05},
                   "recovery");
  }
}

}  // namespace detail

template <typename Job>
MRStats run_iterative(const Graph& graph, Job& job,
                      std::vector<typename Job::State>& state,
                      sim::Cluster& cluster, PhaseRecorder& recorder,
                      const MRConfig& config, std::uint32_t max_iterations,
                      SimTime time_limit) {
  using Msg = typename Job::Msg;
  const VertexId n = graph.num_vertices();
  const storage::Hdfs hdfs(cluster.cost());
  MRStats stats;
  // Shuffle keying: reducer w serves partition w of the configured
  // assignment; its quality drives shuffle crossing and reduce-wave skew.
  const partition::PartitionAssignment assignment =
      partition_graph(graph, cluster, recorder);

  FlatMessageBuffer<Msg> outbox;
  GroupedMessages<Msg> grouped;

  // Host-parallel map/reduce waves over the fixed plan_chunks(n) plan:
  // each chunk maps into a private outbox segment (segments in chunk
  // order = the serial emission order) and reduces its own disjoint state
  // range.
  const std::size_t chunks = ThreadPool::plan_chunks(n);
  std::vector<std::uint64_t> chunk_changed(chunks, 0);
  std::vector<std::uint32_t> attempts;  // per-node task failures

  for (std::uint32_t iter = 0; iter < max_iterations; ++iter) {
    const SimTime iter_begin = recorder.now();
    if (recorder.now() > time_limit) {
      throw PlatformError(PlatformError::Kind::kTimeout,
                          "MapReduce job exceeded the experiment time budget");
    }
    job.iteration = iter;
    outbox.reset(chunks);
    cluster.run_chunks(n, [&](std::size_t c, std::size_t begin,
                              std::size_t end) {
      MapEmitter<Msg> emitter(outbox.segment(c));
      for (std::size_t v = begin; v < end; ++v) {
        job.map(static_cast<VertexId>(v), state[v], graph, emitter);
      }
    });

    // Group messages by destination (the shuffle, executed for real) —
    // straight from the chunk segments, no concatenation pass.
    group_by_destination(outbox, n, grouped);
    const auto sent = static_cast<double>(outbox.count());

    std::uint64_t changed = 0;
    cluster.run_chunks(n, [&](std::size_t c, std::size_t begin,
                              std::size_t end) {
      std::uint64_t count = 0;
      for (std::size_t v = begin; v < end; ++v) {
        if (job.reduce(static_cast<VertexId>(v), state[v], graph,
                       grouped.for_vertex(static_cast<VertexId>(v)))) {
          ++count;
        }
      }
      chunk_changed[c] = count;
    });
    for (const std::uint64_t count : chunk_changed) changed += count;

    detail::IterationVolume volume;
    const double structure_bytes =
        static_cast<double>(graph.text_size_bytes()) /
        std::max(1.0, config.block_compression);
    volume.input_bytes = structure_bytes;
    volume.output_bytes = structure_bytes;
    volume.map_output_records = static_cast<double>(n) + sent;
    volume.map_output_bytes =
        structure_bytes + sent * config.message_record_bytes /
                              std::max(1.0, config.block_compression);
    volume.compute_units = sent;
    if (config.haloop && iter > 0) {
      // Loop-invariant graph structure is served from the reducer-local
      // cache: only mutable vertex state is read, shuffled and written.
      const double state_bytes =
          static_cast<double>(n) * config.vertex_record_bytes;
      volume.input_bytes = state_bytes;
      volume.output_bytes = state_bytes;
      volume.map_output_bytes =
          state_bytes + sent * config.message_record_bytes;
    }
    const std::string label = "iter_" + std::to_string(iter);
    for (std::uint32_t j = 0;
         j < static_cast<std::uint32_t>(config.jobs_per_iteration); ++j) {
      detail::charge_iteration(graph, cluster, recorder, config, hdfs, volume,
                               config.jobs_per_iteration > 1
                                   ? label + "_job" + std::to_string(j)
                                   : label,
                               &assignment);
    }
    // HaLoop evaluates the fixpoint inside the job; stock Hadoop needs
    // the extra convergence-check job (Section 3.1).
    if (config.convergence_job && !config.haloop) {
      detail::charge_convergence_job(graph, cluster, recorder, config, label);
    }
    detail::recover_from_faults(cluster, recorder, config, iter_begin, label,
                                attempts);
    ++stats.iterations;
    if (changed == 0) break;
  }
  return stats;
}

}  // namespace gb::platforms::mapreduce
