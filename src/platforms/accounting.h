// PhaseRecorder: shared bookkeeping for platform engines.
//
// Engines execute an algorithm phase by phase. For each phase they know
// its duration (from the cost model), whether it is computation or
// overhead (Figures 15/16 split), and the per-node resource intensity
// (Figures 5-10). PhaseRecorder accumulates the RunResult and mirrors
// every phase into the cluster's usage traces.
#pragma once

#include <string>

#include "platforms/platform.h"
#include "sim/cluster.h"

namespace gb::platforms {

struct PhaseUsage {
  double worker_cpu_cores = 0.0;   // busy cores per computing node
  double worker_mem_bytes = 0.0;   // resident bytes per computing node
  double worker_net_in_bps = 0.0;  // payload rates per computing node
  double worker_net_out_bps = 0.0;
  double master_cpu_cores = 0.0;
};

class PhaseRecorder {
 public:
  explicit PhaseRecorder(sim::Cluster& cluster) : cluster_(cluster) {}

  SimTime now() const { return result_.total_time; }

  /// Append a phase of `duration` seconds. Zero-duration phases are
  /// dropped. `computation` marks time spent making algorithmic progress
  /// (the paper's Tc); everything else is overhead. Injected straggler
  /// windows stretch the phase: one slow node holds up the whole
  /// bulk-synchronous step.
  ///
  /// `category` labels the span in the exported trace; when null it
  /// defaults to "computation"/"overhead" from the flag. Recovery work
  /// (task re-execution, checkpoint restarts) passes "recovery" so fault
  /// cost is visually separable on the timeline.
  void phase(const std::string& name, SimTime duration, bool computation,
             const PhaseUsage& usage, const char* category = nullptr) {
    if (duration <= 0) return;
    const SimTime begin = result_.total_time;
    duration = cluster_.faults().stretched(begin, duration);
    result_.add_phase(name, duration, computation);
    const SimTime end = result_.total_time;

    cluster_.trace().add_span(
        name, category != nullptr ? category
                                  : (computation ? "computation" : "overhead"),
        begin, end, computation, cluster_.num_workers());

    sim::UsageSegment seg;
    seg.begin = begin;
    seg.end = end;
    seg.cpu_cores = usage.worker_cpu_cores;
    seg.mem_bytes = usage.worker_mem_bytes;
    seg.net_in_bps = usage.worker_net_in_bps;
    seg.net_out_bps = usage.worker_net_out_bps;
    cluster_.record_all_workers(seg);

    if (usage.master_cpu_cores > 0) {
      sim::UsageSegment master;
      master.begin = begin;
      master.end = end;
      master.cpu_cores = usage.master_cpu_cores;
      cluster_.master_trace().add(master);
    }
  }

  /// Finish: returns the result with OS/service baselines applied.
  RunResult finish(AlgorithmOutput output, Bytes master_extra_mem = 0,
                   Bytes worker_extra_mem = 0) {
    result_.output = std::move(output);
    cluster_.add_baselines(result_.total_time, master_extra_mem,
                           worker_extra_mem);
    return std::move(result_);
  }

  const RunResult& result() const { return result_; }

  /// The cluster's metrics registry, for engines to count tasks,
  /// messages, retries, checkpoints etc. Simulated quantities only.
  obs::MetricsRegistry& metrics() { return cluster_.metrics(); }

 private:
  sim::Cluster& cluster_;
  RunResult result_;
};

}  // namespace gb::platforms
