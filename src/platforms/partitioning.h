// Shared engine entry point into the partitioning subsystem.
//
// Every engine calls partition_graph once per run, right where its real
// counterpart fixes data placement (Giraph ingress, GraphLab finalize,
// the first MapReduce job's shuffle keying, Stratosphere channel
// routing). The hook computes the cluster's configured assignment on the
// host pool, publishes the partition.* gauges plus the report summary,
// and charges the preprocessing pass: the greedy strategies do real work
// during ingress, while hash/range fall out of the load path for free
// and only leave a zero-length marker span on the timeline.
#pragma once

#include <cmath>
#include <string>

#include "core/graph.h"
#include "partition/partition.h"
#include "platforms/accounting.h"
#include "sim/cluster.h"

namespace gb::platforms {

inline partition::PartitionAssignment partition_graph(const Graph& graph,
                                                      sim::Cluster& cluster,
                                                      PhaseRecorder& recorder) {
  const partition::Strategy strategy = cluster.config().partitioner;
  partition::PartitionAssignment assignment = partition::compute_partition(
      graph, strategy, cluster.num_workers(), &cluster.pool());
  const partition::PartitionQuality& q = assignment.quality;

  // Preprocessing cost, in simulated time. Degree-balanced sorts the
  // vertex list by degree; the vertex-cut places every edge once. Both
  // run during parallel ingress, so the pass divides across the slots.
  double duration = 0.0;
  if (strategy == partition::Strategy::kDegreeBalanced) {
    const double n = static_cast<double>(graph.num_vertices());
    duration = cluster.native_compute_time(
                   cluster.scale_units(n * std::log2(n + 2.0))) /
               cluster.total_slots();
  } else if (strategy == partition::Strategy::kVertexCut) {
    duration = cluster.native_compute_time(cluster.scale_units(
                   static_cast<double>(graph.num_adjacency_entries()))) /
               cluster.total_slots();
  }

  const std::string span_name =
      std::string("partition/") + partition::strategy_name(strategy);
  if (duration > 0) {
    PhaseUsage usage;
    usage.worker_cpu_cores = cluster.cores_per_worker();
    recorder.phase(span_name, duration, false, usage, "partition");
  } else {
    // PhaseRecorder drops zero-duration phases; record the marker span
    // directly so the timeline still shows where placement was fixed.
    cluster.trace().add_span(span_name, "partition", recorder.now(),
                             recorder.now(), false, cluster.num_workers());
  }

  obs::MetricsRegistry& metrics = cluster.metrics();
  metrics.set_gauge("partition.parts",
                    static_cast<double>(assignment.num_parts));
  metrics.set_gauge("partition.edge_cut_fraction", q.edge_cut_fraction);
  metrics.set_gauge("partition.replication_factor", q.replication_factor);
  metrics.set_gauge("partition.imbalance", q.imbalance);
  cluster.set_partition_summary(assignment.summary());
  return assignment;
}

}  // namespace gb::platforms
