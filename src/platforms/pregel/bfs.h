// Direction-optimizing BFS specialization of the Pregel engine.
//
// run_bsp running BfsProgram is a pure frontier computation: superstep t
// activates exactly the vertices with an in-neighbor at level t-1, the
// new frontier is the unvisited subset, and every simulated quantity —
// active counts, message counts, per-worker inbox bytes, LALP savings —
// is a function of those sets. This path computes the sets with dense
// bitset frontiers (push claims through an atomic bitset; pull scans
// candidates' CSR in-adjacency with early exit) and derives the
// accounting directly, without materializing, concatenating or
// counting-sorting a single message object.
//
// Every charge, phase, metric and heap check replicates run_bsp +
// BfsProgram (no combiner) bit for bit: all sums are integer-valued
// doubles merged in a fixed order, so levels, supersteps, phase times and
// crash behaviour are identical at every host parallelism and under every
// partitioner. Only the host-side metric `host.chunks_executed` (a count
// of planned work chunks) differs, because the specialized path plans
// fewer chunked passes per superstep.
//
// The direction heuristic affects frontier *discovery* only. The
// per-worker inbox accounting always walks the new frontier's out-edges
// (the cost model observes each message's destination owner), so that
// pass is shared by both directions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/bitset.h"
#include "core/traversal.h"
#include "platforms/pregel/engine.h"

namespace gb::platforms::pregel {

inline constexpr std::uint64_t kBfsUnreached = ~std::uint64_t{0};

/// Specialized run_bsp for BfsProgram (levels from `source`, no
/// combiner). Returns the same BspOutcome as the generic engine: values
/// are BFS levels (kBfsUnreached where unreachable) and `supersteps`
/// counts every charged superstep, including the final empty one.
inline BspOutcome<std::uint64_t, std::uint64_t> run_bsp_bfs(
    const Graph& graph, VertexId source, sim::Cluster& cluster,
    PhaseRecorder& recorder, SimTime time_limit, EngineConfig config = {},
    TraversalMode mode = TraversalMode::kAuto,
    BfsTraversalTrace* trace = nullptr) {
  const auto& cost = cluster.cost();
  const std::uint32_t workers = cluster.num_workers();
  const VertexId n = graph.num_vertices();
  if (trace != nullptr) trace->levels.clear();

  const double partition_bytes =
      charge_setup_and_load(graph, cluster, recorder, config);
  // Paged view in the same JVM layout as the generic engine; the warm-up
  // sweep mirrors run_bsp so fault counts replicate bit for bit.
  const auto paged = paging::make_view(
      graph, cluster, static_cast<double>(config.vertex_overhead),
      static_cast<double>(config.edge_entry));
  if (paged) {
    paged->touch_all();
    paged->take_stats();
  }
  const partition::PartitionAssignment assignment =
      partition_graph(graph, cluster, recorder);
  const auto owner = [&assignment](VertexId v) {
    return assignment.owner_of(v);
  };
  const double imbalance = assignment.quality.imbalance;

  std::vector<std::uint64_t> values(n, kBfsUnreached);
  DenseBitset frontier_bits(n);  // F_{t-1}, the senders being expanded
  DenseBitset touched(n);        // distinct destinations, push passes
  std::vector<VertexId> frontier;
  std::vector<VertexId> next;

  const DirectionPolicy policy;
  bool pull = false;
  // Pull-cost proxy for the direction policy. The delivery pull can never
  // skip visited vertices (the active set includes re-activations), so
  // bottom-up cost does not shrink as the traversal progresses; the
  // static edge total is the honest stand-in, engaging pull only on
  // peak-frontier supersteps where early exits are immediate.
  const std::uint64_t pull_cost_edges = graph.num_adjacency_entries();

  // Per-chunk scratch, merged in ascending chunk order. Owner counts are
  // integers; inbox bytes become count * envelope, which equals the
  // generic engine's per-message double accumulation exactly (every
  // partial sum is an integer below 2^53).
  const std::size_t max_chunks = ThreadPool::plan_chunks(n);
  std::vector<std::vector<VertexId>> chunk_found(max_chunks);
  std::vector<std::uint64_t> chunk_active(max_chunks, 0);
  std::vector<std::uint64_t> chunk_edges(max_chunks, 0);
  std::vector<std::uint64_t> chunk_lalp(max_chunks, 0);
  std::vector<std::uint64_t> owner_counts(max_chunks * workers, 0);

  std::uint64_t outbox_count = 0;  // messages sent by the current step
  std::uint64_t supersteps = 0;
  SimTime last_checkpoint = 0.0;  // 0: recovery replays from job start

  for (std::uint32_t step = 0; step < config.max_supersteps; ++step) {
    if (recorder.now() > time_limit) {
      throw PlatformError(PlatformError::Kind::kTimeout,
                          "Giraph exceeded the experiment time budget");
    }
    std::uint64_t active = 0;
    const std::uint64_t received = outbox_count;
    next.clear();

    // Serial paged replay of the generic engine's active set: at step 0
    // every vertex computes; afterwards exactly the vertices with an
    // in-neighbor in F_{t-1} (the message receivers) re-activate. Same
    // ascending order as run_bsp's replay, so fault counts match it.
    if (paged) {
      for (VertexId v = 0; v < n; ++v) {
        if (step > 0) {
          bool act = false;
          for (const VertexId u : graph.in_neighbors(v)) {
            if (frontier_bits.test(u)) {
              act = true;
              break;
            }
          }
          if (!act) continue;
        }
        paged->touch_vertex(v);
        paged->touch_out_adjacency(v);
      }
    }

    if (step == 0) {
      // Superstep 0: every vertex computes (none halted yet); only the
      // source joins the frontier and broadcasts level 1.
      active = n;
      if (source < n) {
        values[source] = 0;
        next.push_back(source);
      }
    } else {
      // Delivery of last step's messages: the active set is the distinct
      // destinations of F_{t-1}'s out-edges; the unvisited ones adopt
      // level t and form F_t. Direction chosen by the standard heuristic
      // from exact frontier statistics (deterministic inputs).
      // currently_pull is pinned false: the hysteresis band exists for a
      // shrinking bottom-up scan, but here pull cost is static, so each
      // level is decided fresh by the edge-mass comparison.
      pull = policy.pull_for(mode, /*currently_pull=*/false, frontier.size(),
                             outbox_count, pull_cost_edges, n);
      if (trace != nullptr) {
        trace->levels.push_back(
            {step - 1, frontier.size(), outbox_count, pull});
      }
      if (pull) {
        // Each chunk owns a disjoint vertex range: no atomics, and the
        // in-adjacency scan stops at the first frontier parent for
        // visited and unvisited candidates alike.
        const std::size_t chunks = ThreadPool::plan_chunks(n);
        cluster.run_chunks(n, [&](std::size_t c, std::size_t begin,
                                  std::size_t end) {
          auto& found = chunk_found[c];
          found.clear();
          std::uint64_t act = 0;
          for (std::size_t i = begin; i < end; ++i) {
            const VertexId v = static_cast<VertexId>(i);
            for (const VertexId u : graph.in_neighbors(v)) {
              if (!frontier_bits.test(u)) continue;
              ++act;
              if (values[v] == kBfsUnreached) {
                values[v] = step;
                found.push_back(v);
              }
              break;
            }
          }
          chunk_active[c] = act;
        });
        for (std::size_t c = 0; c < chunks; ++c) {
          active += chunk_active[c];
          next.insert(next.end(), chunk_found[c].begin(),
                      chunk_found[c].end());
        }
      } else {
        // Push: the first atomic claim of `touched` owns the destination
        // — it alone counts the vertex as active and, if unvisited,
        // writes its level. Claim winners may vary between runs, but
        // every winner writes the same level, so outputs do not.
        touched.clear();
        const std::size_t chunks = ThreadPool::plan_chunks(frontier.size());
        cluster.run_chunks(
            frontier.size(),
            [&](std::size_t c, std::size_t begin, std::size_t end) {
              auto& found = chunk_found[c];
              found.clear();
              std::uint64_t act = 0;
              for (std::size_t i = begin; i < end; ++i) {
                for (const VertexId w : graph.out_neighbors(frontier[i])) {
                  // Relaxed-load pre-test before the claim: duplicate
                  // destinations (the common case on dense frontiers)
                  // skip the fetch_or entirely.
                  if (touched.test_atomic(w)) continue;
                  if (!touched.set_atomic(w)) continue;
                  ++act;
                  if (values[w] == kBfsUnreached) {
                    values[w] = step;
                    found.push_back(w);
                  }
                }
              }
              chunk_active[c] = act;
            });
        for (std::size_t c = 0; c < chunks; ++c) {
          active += chunk_active[c];
          next.insert(next.end(), chunk_found[c].begin(),
                      chunk_found[c].end());
        }
      }
    }

    // Frontier handoff: `next` (F_t) sends this superstep.
    for (const VertexId u : frontier) frontier_bits.reset(u);
    for (const VertexId u : next) frontier_bits.set(u);
    frontier.swap(next);

    // Sending pass over F_t: message count, LALP savings and the
    // per-worker destination histogram — the one inherently per-edge
    // quantity the cost model observes.
    outbox_count = 0;
    std::uint64_t lalp_saved_msgs = 0;
    std::vector<double> inbox_bytes(workers, 0.0);
    const double payload = static_cast<double>(sizeof(std::uint64_t));
    const double envelope =
        payload + static_cast<double>(config.message_overhead);
    {
      const std::size_t chunks = ThreadPool::plan_chunks(frontier.size());
      std::fill(owner_counts.begin(),
                owner_counts.begin() +
                    static_cast<std::ptrdiff_t>(chunks * workers),
                0);
      cluster.run_chunks(
          frontier.size(),
          [&](std::size_t c, std::size_t begin, std::size_t end) {
            std::uint64_t* counts = owner_counts.data() + c * workers;
            std::uint64_t edges = 0;
            std::uint64_t lalp = 0;
            for (std::size_t i = begin; i < end; ++i) {
              const VertexId u = frontier[i];
              const auto neighbors = graph.out_neighbors(u);
              edges += neighbors.size();
              if (config.lalp_threshold > 0 &&
                  neighbors.size() > config.lalp_threshold &&
                  neighbors.size() > workers) {
                lalp += neighbors.size() - workers;
              }
              for (const VertexId v : neighbors) ++counts[owner(v)];
            }
            chunk_edges[c] = edges;
            chunk_lalp[c] = lalp;
          });
      for (std::size_t c = 0; c < chunks; ++c) {
        outbox_count += chunk_edges[c];
        lalp_saved_msgs += chunk_lalp[c];
        const std::uint64_t* counts = owner_counts.data() + c * workers;
        for (std::uint32_t w = 0; w < workers; ++w) {
          inbox_bytes[w] += static_cast<double>(counts[w]) * envelope;
        }
      }
    }
    const double lalp_saved = static_cast<double>(lalp_saved_msgs);

    // ---- accounting: replicated from run_bsp (no combiner, no
    // adjacency broadcast, no extra units) ---------------------------------
    const double cross_fraction =
        workers > 1 ? assignment.quality.edge_cut_fraction : 0.0;
    const double cross_bytes =
        std::max(0.0, static_cast<double>(outbox_count) - lalp_saved) *
        payload * cross_fraction;
    if (lalp_saved > 0) {
      const double saved_per_worker = lalp_saved * envelope / workers;
      for (auto& b : inbox_bytes) b = std::max(0.0, b - saved_per_worker);
    }
    double max_inbox = 0.0;
    for (const double b : inbox_bytes) max_inbox = std::max(max_inbox, b);
    const double outbox_bytes = static_cast<double>(outbox_count) * envelope /
                                std::max<std::uint32_t>(workers, 1);
    const double scaled_inbox =
        cluster.scale_bytes(max_inbox + outbox_bytes) * config.buffer_factor;
    cluster.admit_resident(partition_bytes + scaled_inbox,
                           "Giraph superstep message buffers");
    const double heap = static_cast<double>(cost.heap_limit);
    const double resident_mem =
        std::min(partition_bytes + scaled_inbox, heap);
    const double buffer_spill =
        cluster.paging_enabled()
            ? std::max(0.0, scaled_inbox -
                                std::max(0.0, heap - std::min(partition_bytes,
                                                              heap)))
            : 0.0;

    const double message_units =
        (static_cast<double>(outbox_count) + static_cast<double>(received)) *
        config.units_per_message;
    const double compute_units =
        cluster.scale_units(static_cast<double>(active) + message_units);
    const double compute_time =
        cluster.jvm_compute_time(compute_units) * imbalance /
        cluster.total_slots();
    const double net_time =
        cost.network_time(static_cast<Bytes>(cluster.scale_bytes(cross_bytes)),
                          workers);

    const std::string label = "superstep_" + std::to_string(step);
    PhaseUsage compute_usage;
    compute_usage.worker_cpu_cores = cluster.cores_per_worker();
    compute_usage.worker_mem_bytes = resident_mem;
    recorder.phase(label + "/compute", compute_time, true, compute_usage);

    PhaseUsage comm_usage;
    comm_usage.worker_cpu_cores = 0.15;
    comm_usage.worker_mem_bytes = resident_mem;
    comm_usage.worker_net_in_bps = cost.net_bps * 0.5;
    comm_usage.worker_net_out_bps = cost.net_bps * 0.5;
    comm_usage.master_cpu_cores = 0.03;  // ZooKeeper barrier coordination
    recorder.phase(label + "/sync", net_time + cost.bsp_barrier_sec, false,
                   comm_usage);

    paging::charge_page_faults(cluster, recorder, label, paged.get(),
                               resident_mem);
    paging::charge_spill(cluster, recorder, label, buffer_spill * workers,
                         resident_mem);

    cluster.metrics().incr("pregel.supersteps");
    cluster.metrics().incr("messages.sent", outbox_count);
    cluster.metrics().add("messages.cross_worker_bytes",
                          cluster.scale_bytes(cross_bytes));

    const double checkpoint_bytes =
        cluster.scale_bytes(static_cast<double>(n) * 16.0 + max_inbox) /
        workers;
    if (config.checkpoint_interval > 0 &&
        (step + 1) % config.checkpoint_interval == 0) {
      const SimTime checkpoint_time =
          cost.disk_write_time(static_cast<Bytes>(checkpoint_bytes)) +
          cost.bsp_barrier_sec;
      recorder.phase(label + "/checkpoint", checkpoint_time, false,
                     PhaseUsage{.worker_cpu_cores = 0.3,
                                .worker_mem_bytes = partition_bytes});
      cluster.faults().stats().checkpoint_overhead_sec += checkpoint_time;
      cluster.metrics().incr("checkpoints.written");
      last_checkpoint = recorder.now();
    }
    handle_worker_loss(cluster, recorder, config, checkpoint_bytes,
                       partition_bytes, last_checkpoint, label);

    ++supersteps;
    // Every computing vertex votes to halt each superstep, so once the
    // frontier stops producing messages the generic engine's all-halted
    // test is necessarily true and the job ends on this superstep.
    if (outbox_count == 0) break;
  }

  charge_write(graph, cluster, recorder, partition_bytes);

  BspOutcome<std::uint64_t, std::uint64_t> outcome;
  outcome.values = std::move(values);
  outcome.supersteps = supersteps;
  outcome.aggregate = 0.0;
  return outcome;
}

}  // namespace gb::platforms::pregel
