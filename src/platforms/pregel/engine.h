// Pregel/BSP engine (Giraph class).
//
// Executes vertex programs in synchronous supersteps over a hash-
// partitioned graph held in memory, exactly like Giraph 0.2 on Hadoop map
// slots: one-time input load, dynamic active set (only vertices that are
// not halted or that received messages compute), message exchange between
// partitions, a global barrier per superstep, and a crash when a worker's
// message buffers exceed the heap.
//
// The algorithm runs for real: vertex values, messages and the active set
// are genuine. Simulated time and memory derive from counted work via the
// cluster's cost model; Java's per-object overheads are modeled through
// EngineConfig constants.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/graph.h"
#include "core/graph_stats.h"
#include "partition/partition.h"
#include "platforms/accounting.h"
#include "platforms/message_buffer.h"
#include "platforms/paging.h"
#include "platforms/partitioning.h"
#include "sim/cluster.h"

namespace gb::platforms::pregel {

struct EngineConfig {
  // JVM in-memory representation (bytes per element).
  Bytes vertex_overhead = 200;   // vertex object + value + bookkeeping
  Bytes edge_entry = 48;         // boxed edge in the adjacency list
  Bytes message_overhead = 64;   // boxed message + queue entry overhead
  /// Inbound message buffers are double-buffered across supersteps and
  /// serialized for the wire; this inflates resident bytes.
  double buffer_factor = 1.5;
  /// Work units charged per message at the sending and receiving side.
  double units_per_message = 2.0;
  /// Apply the program's message combiner at the *sending* worker, like
  /// Giraph's Combiner interface: per destination only one combined
  /// message survives, shrinking both network traffic and inbox heap.
  bool use_combiner = false;
  /// Re-enable the pre-flat-buffer host path: concatenate every chunk's
  /// outbox into one vector before accounting and grouping. Simulated
  /// output is bit-identical either way; this only restores the host-side
  /// copy so bench_hostperf can measure before/after in one process.
  bool legacy_message_buffers = false;
  /// Fault-tolerance checkpoints (paper Section 3.1: "Giraph uses
  /// periodic checkpoints"): every N supersteps each worker writes its
  /// partition state to HDFS. 0 disables checkpointing (the paper's
  /// effective configuration — no failures are injected).
  std::uint32_t checkpoint_interval = 0;
  /// GPS-style LALP (Salihoglu & Widom — the paper's Table 8): the
  /// adjacency lists of vertices above this degree are partitioned across
  /// workers, so a broadcast to all neighbors ships one message per
  /// worker instead of one per edge. 0 disables (Giraph's behaviour).
  EdgeId lalp_threshold = 0;
  std::uint32_t max_supersteps = 10'000;
};

/// Combiner concept (optional on a Program):
///   static Message combine(const Message& a, const Message& b);
template <typename Program, typename M>
concept HasCombiner = requires(const M& a, const M& b) {
  { Program::combine(a, b) } -> std::convertible_to<M>;
};

template <typename V, typename M>
class Context;

template <typename V, typename M>
struct BspOutcome {
  std::vector<V> values;
  std::uint64_t supersteps = 0;
  double aggregate = 0.0;  // final value of the sum aggregator
};

/// Runs `program` (see Context for the vertex API) to convergence.
/// Appends load / superstep / write phases to `recorder`.
template <typename V, typename M, typename Program>
BspOutcome<V, M> run_bsp(const Graph& graph, Program& program,
                         sim::Cluster& cluster, PhaseRecorder& recorder,
                         SimTime time_limit, const V& initial_value,
                         EngineConfig config = {});

/// The per-vertex API available inside Program::compute.
template <typename V, typename M>
class Context {
 public:
  VertexId id() const { return id_; }
  std::uint32_t superstep() const { return superstep_; }
  const Graph* graph() const { return graph_; }
  VertexId num_vertices() const { return graph_->num_vertices(); }
  std::span<const VertexId> out_neighbors() const {
    return graph_->out_neighbors(id_);
  }
  EdgeId out_degree() const { return graph_->out_degree(id_); }

  void send(VertexId target, const M& message) {
    outbox_->emplace_back(target, message);
  }

  void send_to_all_neighbors(const M& message) {
    const auto neighbors = graph_->out_neighbors(id_);
    for (const VertexId u : neighbors) {
      outbox_->emplace_back(u, message);
    }
    // LALP: a broadcast from a high-degree vertex crosses the wire once
    // per worker; the local replicas fan out for free. Delivery semantics
    // are unchanged — only the accounted traffic shrinks.
    if (lalp_threshold_ > 0 && neighbors.size() > lalp_threshold_ &&
        neighbors.size() > num_workers_) {
      *lalp_saved_messages_ +=
          static_cast<double>(neighbors.size() - num_workers_);
    }
  }

  /// Bulk primitive used by STATS: every vertex ships its out-edge list to
  /// each vertex that lists it as an out-neighbor (the text format carries
  /// both lists, so senders know their in-neighbors). The engine accounts
  /// the full id-list traffic but delivers next superstep as zero-copy
  /// adjacency spans.
  void send_adjacency_to_all_neighbors() { *adjacency_broadcast_ = true; }

  /// Adjacency lists received from an adjacency broadcast last superstep:
  /// one list per out-neighbor, which is what the LCC kernel intersects.
  bool adjacency_messages_available() const { return adjacency_delivered_; }
  std::span<const VertexId> adjacency_senders() const {
    return graph_->out_neighbors(id_);
  }
  std::span<const VertexId> adjacency_of(VertexId sender) const {
    return graph_->out_neighbors(sender);
  }

  void vote_to_halt() { *halt_ = true; }

  /// Charge extra compute work (e.g. neighborhood intersections) beyond
  /// the default per-vertex/per-message units.
  void charge(double units) { *extra_units_ += units; }

  /// Sum aggregator (one per job, like Giraph's LongSumAggregator).
  void aggregate(double value) { *aggregate_next_ += value; }
  double previous_aggregate() const { return aggregate_prev_; }

 private:
  template <typename V2, typename M2, typename P2>
  friend BspOutcome<V2, M2> run_bsp(const Graph&, P2&, sim::Cluster&,
                                    PhaseRecorder&, SimTime, const V2&,
                                    EngineConfig);

  const Graph* graph_ = nullptr;
  VertexId id_ = 0;
  std::uint32_t superstep_ = 0;
  bool adjacency_delivered_ = false;
  EdgeId lalp_threshold_ = 0;
  std::uint32_t num_workers_ = 1;
  std::vector<std::pair<VertexId, M>>* outbox_ = nullptr;
  bool* adjacency_broadcast_ = nullptr;
  bool* halt_ = nullptr;
  double* extra_units_ = nullptr;
  double* lalp_saved_messages_ = nullptr;
  double* aggregate_next_ = nullptr;
  double aggregate_prev_ = 0.0;
};

/// Charge the one-time JVM setup + input load (split read, parse, shuffle
/// of vertices to their owners) and return the resident partition size per
/// worker. Shared by run_bsp and the EVO accounting path.
inline double charge_setup_and_load(const Graph& graph, sim::Cluster& cluster,
                                    PhaseRecorder& recorder,
                                    const EngineConfig& config) {
  const auto& cost = cluster.cost();
  const std::uint32_t workers = cluster.num_workers();
  const VertexId n = graph.num_vertices();

  const double text_bytes = cluster.scale_bytes(
      static_cast<double>(graph.text_size_bytes()));
  const double parse_units =
      cluster.scale_units(static_cast<double>(graph.num_adjacency_entries()));
  const double load_read = cost.disk_read_time(
      static_cast<Bytes>(text_bytes / workers));
  const double load_parse =
      cluster.jvm_compute_time(parse_units) / cluster.total_slots();
  // Input splits are location-agnostic: (W-1)/W of the parsed vertices are
  // shipped to their owning worker.
  const double load_ship = cost.network_time(
      static_cast<Bytes>(text_bytes * (workers - 1) / workers), workers);

  const double partition_bytes =
      cluster.scale_bytes(static_cast<double>(n) *
                              static_cast<double>(config.vertex_overhead) +
                          static_cast<double>(graph.num_adjacency_entries()) *
                              static_cast<double>(config.edge_entry)) /
      workers;
  // With paging off an over-heap partition crashes here (the paper's
  // behaviour); with paging on the overflow lives on disk pages instead.
  const double overflow =
      cluster.admit_resident(partition_bytes, "Giraph graph partition");
  const double resident_bytes = partition_bytes - overflow;

  PhaseUsage load_usage;
  load_usage.worker_cpu_cores = cluster.cores_per_worker();
  load_usage.worker_mem_bytes = resident_bytes;
  load_usage.worker_net_in_bps = cost.net_bps * 0.6;
  load_usage.worker_net_out_bps = cost.net_bps * 0.6;
  load_usage.master_cpu_cores = 0.02;
  recorder.phase("setup", cost.jvm_startup_sec + cost.bsp_barrier_sec, false,
                 PhaseUsage{.worker_mem_bytes = resident_bytes * 0.05,
                            .master_cpu_cores = 0.05});
  recorder.phase("load", load_read + load_parse + load_ship, false, load_usage);
  // The overflow never fit in heap: it streams straight out to the page
  // store during load (write-only; re-reads are charged as faults later).
  paging::charge_spill(cluster, recorder, "load", overflow * workers,
                       resident_bytes, /*read_back=*/false);
  return partition_bytes;
}

/// Charge the result write-out. Shared by run_bsp and the EVO path.
inline void charge_write(const Graph& graph, sim::Cluster& cluster,
                         PhaseRecorder& recorder, double partition_bytes,
                         double bytes_per_vertex = 20.0) {
  const auto& cost = cluster.cost();
  const double out_bytes = cluster.scale_bytes(
      static_cast<double>(graph.num_vertices()) * bytes_per_vertex);
  PhaseUsage write_usage;
  write_usage.worker_cpu_cores = 0.3;
  write_usage.worker_mem_bytes = partition_bytes;
  recorder.phase(
      "write",
      cost.disk_write_time(static_cast<Bytes>(out_bytes / cluster.num_workers())),
      false, write_usage);
}

/// Giraph recovery semantics: any lost worker (a dead node or a failed
/// task attempt — Giraph workers are Hadoop map tasks) triggers a restart
/// from the last checkpoint. Every surviving worker re-reads its
/// checkpointed partition from HDFS and the lost supersteps re-run; with
/// checkpointing disabled (the paper's configuration) the job simply
/// fails. `last_checkpoint` is the simulated time of the newest completed
/// checkpoint; 0 means recovery replays from job start (setup + load
/// included). Shared by run_bsp and the EVO accounting path.
inline void handle_worker_loss(sim::Cluster& cluster, PhaseRecorder& recorder,
                               const EngineConfig& config,
                               double checkpoint_bytes, double partition_bytes,
                               SimTime& last_checkpoint,
                               const std::string& label) {
  auto& faults = cluster.faults();
  if (!faults.enabled()) return;
  const auto& cost = cluster.cost();
  while (const sim::FaultEvent* event = faults.take_before(recorder.now())) {
    if (config.checkpoint_interval == 0) {
      throw PlatformError(
          PlatformError::Kind::kWorkerLost,
          "Giraph worker " + std::to_string(event->worker) +
              " lost with checkpointing disabled; the job cannot recover");
    }
    auto& stats = faults.stats();
    const SimTime redo =
        std::max<SimTime>(0.0, recorder.now() - last_checkpoint);
    const SimTime restore =
        cost.failure_detection_sec + cost.jvm_startup_sec +
        cost.disk_read_time(static_cast<Bytes>(checkpoint_bytes)) +
        cost.bsp_barrier_sec;
    ++stats.checkpoint_restarts;
    stats.recomputed_sec += redo;
    stats.recovery_sec += restore + redo;
    cluster.metrics().incr("checkpoints.restarts");
    recorder.phase(label + "/restart", restore + redo, false,
                   PhaseUsage{.worker_cpu_cores = 0.5,
                              .worker_mem_bytes = partition_bytes,
                              .master_cpu_cores = 0.05},
                   "recovery");
  }
}

template <typename V, typename M, typename Program>
BspOutcome<V, M> run_bsp(const Graph& graph, Program& program,
                         sim::Cluster& cluster, PhaseRecorder& recorder,
                         SimTime time_limit, const V& initial_value,
                         EngineConfig config) {
  const auto& cost = cluster.cost();
  const std::uint32_t workers = cluster.num_workers();
  const VertexId n = graph.num_vertices();

  const double partition_bytes =
      charge_setup_and_load(graph, cluster, recorder, config);
  // Paged storage (DESIGN.md §12): the partition in JVM layout, viewed
  // through the page cache. The initial sequential load warms the cache
  // without charging faults (the load phase already paid for the read);
  // superstep replays below charge real thrash.
  const auto paged = paging::make_view(
      graph, cluster, static_cast<double>(config.vertex_overhead),
      static_cast<double>(config.edge_entry));
  if (paged) {
    paged->touch_all();
    paged->take_stats();
  }
  // Vertex ownership and the cross-worker traffic fraction come from the
  // pluggable assignment; the barrier waits for the most loaded worker,
  // so per-slot compute stretches by the assignment's imbalance.
  const partition::PartitionAssignment assignment =
      partition_graph(graph, cluster, recorder);
  const auto owner = [&assignment](VertexId v) { return assignment.owner_of(v); };
  const double imbalance = assignment.quality.imbalance;

  // ---- superstep loop ----------------------------------------------------
  std::vector<V> values(n, initial_value);
  std::vector<std::uint8_t> halted(n, 0);
  FlatMessageBuffer<M> outbox_buf;
  std::vector<std::pair<VertexId, M>> legacy_outbox;
  std::vector<M> inbox;                   // grouped by destination
  std::vector<EdgeId> inbox_offsets(n + 1, 0);

  // Host-parallel vertex compute: the vertex range is split by the fixed
  // plan_chunks(n) plan (never by pool size); each chunk owns a private
  // outbox segment and accumulator set, merged below in ascending chunk
  // order so every output — including the logical message order — matches
  // a serial sweep bit for bit.
  const std::size_t chunks = ThreadPool::plan_chunks(n);
  struct ChunkState {
    double aggregate = 0.0;
    double extra_units = 0.0;
    double lalp_saved = 0.0;
    std::uint64_t active = 0;
    std::uint64_t received = 0;
    bool adjacency_broadcast = false;
  };
  std::vector<ChunkState> chunk_states(chunks);

  // Combiner scratch (epoch-stamped so it resets in O(1) per superstep).
  std::vector<std::pair<VertexId, M>> combined;
  std::vector<std::uint32_t> combine_slot;
  std::vector<std::uint32_t> combine_epoch;
  if constexpr (HasCombiner<Program, M>) {
    if (config.use_combiner) {
      combine_slot.resize(n, 0);
      combine_epoch.resize(n, 0);
    }
  }
  bool have_inbox = false;
  bool adjacency_pending = false;
  double aggregate_prev = 0.0;
  std::uint64_t supersteps = 0;
  SimTime last_checkpoint = 0.0;  // 0: recovery replays from job start

  BspOutcome<V, M> outcome;

  for (std::uint32_t step = 0; step < config.max_supersteps; ++step) {
    if (recorder.now() > time_limit) {
      throw PlatformError(PlatformError::Kind::kTimeout,
                          "Giraph exceeded the experiment time budget");
    }
    // Serial replay of this superstep's structure accesses against the
    // paged view, using the same active predicate as the compute loop
    // below (evaluated before run_chunks mutates halted/values). Serial,
    // so fault counts are bit-identical at every host parallelism.
    if (paged) {
      for (VertexId v = 0; v < n; ++v) {
        const bool has_msgs =
            have_inbox && inbox_offsets[v] != inbox_offsets[v + 1];
        if (halted[v] && !has_msgs && !adjacency_pending) continue;
        paged->touch_vertex(v);
        paged->touch_out_adjacency(v);
      }
    }

    outbox_buf.reset(chunks);
    bool adjacency_broadcast = false;
    double aggregate_next = 0.0;
    double extra_units = 0.0;
    double lalp_saved = 0.0;
    std::uint64_t active = 0;
    std::uint64_t received = 0;

    cluster.run_chunks(n, [&](std::size_t c, std::size_t begin,
                              std::size_t end) {
      ChunkState& cs = chunk_states[c];
      cs.aggregate = 0.0;
      cs.extra_units = 0.0;
      cs.lalp_saved = 0.0;
      cs.active = 0;
      cs.received = 0;
      cs.adjacency_broadcast = false;

      Context<V, M> ctx;
      ctx.graph_ = &graph;
      ctx.superstep_ = step;
      ctx.adjacency_delivered_ = adjacency_pending;
      ctx.lalp_threshold_ = config.lalp_threshold;
      ctx.num_workers_ = workers;
      ctx.outbox_ = &outbox_buf.segment(c);
      ctx.adjacency_broadcast_ = &cs.adjacency_broadcast;
      ctx.extra_units_ = &cs.extra_units;
      ctx.lalp_saved_messages_ = &cs.lalp_saved;
      ctx.aggregate_next_ = &cs.aggregate;
      ctx.aggregate_prev_ = aggregate_prev;

      for (std::size_t i = begin; i < end; ++i) {
        const VertexId v = static_cast<VertexId>(i);
        const bool has_msgs =
            have_inbox && inbox_offsets[v] != inbox_offsets[v + 1];
        if (halted[v] && !has_msgs && !adjacency_pending) continue;
        halted[v] = 0;
        ++cs.active;
        bool halt = false;
        ctx.id_ = v;
        ctx.halt_ = &halt;
        std::span<const M> msgs;
        if (has_msgs) {
          msgs = {inbox.data() + inbox_offsets[v],
                  inbox.data() + inbox_offsets[v + 1]};
          cs.received += msgs.size();
        }
        program.compute(ctx, values[v], msgs);
        if (halt) halted[v] = 1;
      }
    });

    // Fixed-order merge of the scalar accumulators (ascending chunk
    // order). The message stream itself stays segmented — chunk segments
    // read in ascending order already ARE the serial sweep's order.
    for (ChunkState& cs : chunk_states) {
      aggregate_next += cs.aggregate;
      extra_units += cs.extra_units;
      lalp_saved += cs.lalp_saved;
      active += cs.active;
      received += cs.received;
      adjacency_broadcast |= cs.adjacency_broadcast;
    }
    if (config.legacy_message_buffers) {
      // Pre-flat-buffer host path: materialize the concatenation, then
      // hand it back as a single segment so the shared code below sees
      // the identical logical stream.
      legacy_outbox.clear();
      outbox_buf.for_each([&](VertexId dst, const M& msg) {
        legacy_outbox.emplace_back(dst, msg);
      });
      outbox_buf.adopt(legacy_outbox);
    }

    // ---- combiner --------------------------------------------------------
    // Collapse messages per destination before they are buffered or
    // shipped (approximates Giraph's sender-side combiner; combining here
    // is global, an upper bound on the per-worker benefit).
    if constexpr (HasCombiner<Program, M>) {
      if (config.use_combiner && !outbox_buf.empty()) {
        combined.clear();
        const auto epoch = static_cast<std::uint32_t>(step + 1);
        outbox_buf.for_each([&](VertexId dst, const M& msg) {
          if (combine_epoch[dst] != epoch) {
            combine_epoch[dst] = epoch;
            combine_slot[dst] = static_cast<std::uint32_t>(combined.size());
            combined.emplace_back(dst, msg);
          } else {
            auto& slot = combined[combine_slot[dst]].second;
            slot = Program::combine(slot, msg);
          }
        });
        outbox_buf.adopt(combined);
      }
    }
    const std::uint64_t outbox_count = outbox_buf.count();

    // ---- accounting ------------------------------------------------------
    // Message volume and cross-worker bytes; inbox heap demand per worker.
    const double payload = static_cast<double>(sizeof(M));
    const double envelope =
        payload + static_cast<double>(config.message_overhead);
    std::vector<double> inbox_bytes(workers, 0.0);
    outbox_buf.for_each([&](VertexId dst, const M&) {
      inbox_bytes[owner(dst)] += envelope;
    });
    // Cross-worker fraction: messages travel along edges, so the measured
    // edge-cut of the assignment is the fraction that crosses the wire
    // (for hash partitioning this lands near the old (W-1)/W estimate).
    const double cross_fraction =
        workers > 1 ? assignment.quality.edge_cut_fraction : 0.0;
    double cross_bytes =
        std::max(0.0, static_cast<double>(outbox_count) - lalp_saved) *
        payload * cross_fraction;
    // LALP also spares the receivers' buffers: replicas materialize from
    // one wire message per worker.
    if (lalp_saved > 0) {
      const double saved_per_worker = lalp_saved * envelope / workers;
      for (auto& b : inbox_bytes) b = std::max(0.0, b - saved_per_worker);
    }

    double adjacency_units = 0.0;
    if (adjacency_broadcast) {
      // Every vertex shipped its out-edge list to each of its
      // out-neighbors; senders serialize one entry per edge...
      for (VertexId v = 0; v < n; ++v) {
        adjacency_units += static_cast<double>(graph.out_degree(v));
      }
      // ...and each receiver buffers the full lists of its in-neighbors.
      // Accounted in O(V + E), then checked against the heap — the engine
      // crashes here for the paper's STATS-on-WikiTalk/DotaLeague cases
      // without materializing terabytes of payload.
      std::vector<VertexId> nbr_scratch;
      for (VertexId v = 0; v < n; ++v) {
        // v receives the adjacency list of each LCC-neighborhood member
        // (in/out union for directed graphs — the text format carries
        // both lists, so senders know both sides).
        double recv_bytes = 0.0;
        for (const VertexId u : lcc_neighborhood(graph, v, nbr_scratch)) {
          recv_bytes += static_cast<double>(graph.out_degree(u)) * 8.0 + envelope;
        }
        inbox_bytes[owner(v)] += recv_bytes;
        cross_bytes += recv_bytes * cross_fraction;
      }
    }

    double max_inbox = 0.0;
    for (const double b : inbox_bytes) max_inbox = std::max(max_inbox, b);
    // Across a superstep boundary, a worker holds both its serialized
    // outbound buffers and the incoming messages for the next superstep.
    // (Adjacency exchanges stream sender-side and are charged on the
    // receiver only.)
    const double outbox_bytes =
        adjacency_broadcast
            ? 0.0
            : static_cast<double>(outbox_count) * envelope /
                  std::max<std::uint32_t>(workers, 1);
    const double scaled_inbox =
        cluster.scale_bytes(max_inbox + outbox_bytes) * config.buffer_factor;
    cluster.admit_resident(partition_bytes + scaled_inbox,
                           "Giraph superstep message buffers");
    // Message buffers beyond the heap headroom left by the (resident part
    // of the) partition spill through disk this superstep. Structure
    // re-reads are charged separately via the paged view's fault count.
    const double heap = static_cast<double>(cost.heap_limit);
    const double resident_mem =
        std::min(partition_bytes + scaled_inbox, heap);
    const double buffer_spill =
        cluster.paging_enabled()
            ? std::max(0.0, scaled_inbox -
                                std::max(0.0, heap - std::min(partition_bytes,
                                                              heap)))
            : 0.0;

    const double message_units =
        (static_cast<double>(outbox_count) + static_cast<double>(received)) *
            config.units_per_message +
        adjacency_units * 2.0;
    const double compute_units =
        cluster.scale_units(static_cast<double>(active) + message_units +
                            extra_units);
    // Skew-aware: a superstep ends when the most loaded worker finishes,
    // so the balanced per-slot time stretches by max/mean load.
    const double compute_time =
        cluster.jvm_compute_time(compute_units) * imbalance /
        cluster.total_slots();
    const double net_time =
        cost.network_time(static_cast<Bytes>(cluster.scale_bytes(cross_bytes)),
                          workers);

    const std::string label = "superstep_" + std::to_string(step);
    PhaseUsage compute_usage;
    compute_usage.worker_cpu_cores = cluster.cores_per_worker();
    compute_usage.worker_mem_bytes = resident_mem;
    recorder.phase(label + "/compute", compute_time, true, compute_usage);

    PhaseUsage comm_usage;
    comm_usage.worker_cpu_cores = 0.15;
    comm_usage.worker_mem_bytes = resident_mem;
    comm_usage.worker_net_in_bps = cost.net_bps * 0.5;
    comm_usage.worker_net_out_bps = cost.net_bps * 0.5;
    comm_usage.master_cpu_cores = 0.03;  // ZooKeeper barrier coordination
    recorder.phase(label + "/sync", net_time + cost.bsp_barrier_sec, false,
                   comm_usage);

    paging::charge_page_faults(cluster, recorder, label, paged.get(),
                               resident_mem);
    paging::charge_spill(cluster, recorder, label, buffer_spill * workers,
                         resident_mem);

    cluster.metrics().incr("pregel.supersteps");
    cluster.metrics().incr("messages.sent", outbox_count);
    cluster.metrics().add("messages.cross_worker_bytes",
                          cluster.scale_bytes(cross_bytes));

    const double checkpoint_bytes =
        cluster.scale_bytes(static_cast<double>(n) * 16.0 + max_inbox) /
        workers;
    if (config.checkpoint_interval > 0 &&
        (step + 1) % config.checkpoint_interval == 0) {
      // Checkpoint: every worker writes its vertex values + pending
      // messages to HDFS, behind a barrier.
      const SimTime checkpoint_time =
          cost.disk_write_time(static_cast<Bytes>(checkpoint_bytes)) +
          cost.bsp_barrier_sec;
      recorder.phase(label + "/checkpoint", checkpoint_time, false,
                     PhaseUsage{.worker_cpu_cores = 0.3,
                                .worker_mem_bytes = partition_bytes});
      cluster.faults().stats().checkpoint_overhead_sec += checkpoint_time;
      cluster.metrics().incr("checkpoints.written");
      last_checkpoint = recorder.now();
    }
    handle_worker_loss(cluster, recorder, config, checkpoint_bytes,
                       partition_bytes, last_checkpoint, label);

    ++supersteps;
    aggregate_prev = aggregate_next;
    adjacency_pending = adjacency_broadcast;

    // ---- build next inbox --------------------------------------------------
    if (outbox_count == 0 && !adjacency_broadcast) {
      const bool all_halted =
          std::all_of(halted.begin(), halted.end(),
                      [](std::uint8_t h) { return h != 0; });
      if (all_halted) break;
      // No messages but some vertices still active: they run next step.
      have_inbox = false;
      continue;
    }

    // Segmented counting sort of the outbox into per-destination spans —
    // chunk segments visited in ascending order reproduce the serial
    // message order, so the inbox is byte-identical to the merged path.
    std::fill(inbox_offsets.begin(), inbox_offsets.end(), 0);
    outbox_buf.for_each(
        [&](VertexId dst, const M&) { ++inbox_offsets[dst + 1]; });
    for (VertexId v = 0; v < n; ++v) inbox_offsets[v + 1] += inbox_offsets[v];
    inbox.resize(outbox_count);
    {
      std::vector<EdgeId> cursor(inbox_offsets.begin(),
                                 inbox_offsets.end() - 1);
      outbox_buf.for_each(
          [&](VertexId dst, const M& msg) { inbox[cursor[dst]++] = msg; });
    }
    have_inbox = true;
  }

  charge_write(graph, cluster, recorder, partition_bytes);

  outcome.values = std::move(values);
  outcome.supersteps = supersteps;
  outcome.aggregate = aggregate_prev;
  return outcome;
}

}  // namespace gb::platforms::pregel
