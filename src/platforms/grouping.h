// Shared shuffle helper: group (destination, message) pairs into
// per-destination spans via counting sort. This *is* the real data
// movement of a shuffle — engines charge simulated cost for it separately.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/types.h"

namespace gb::platforms {

template <typename Msg>
struct GroupedMessages {
  std::vector<Msg> messages;       // contiguous, grouped by destination
  std::vector<EdgeId> offsets;     // n + 1 offsets into messages

  std::span<const Msg> for_vertex(VertexId v) const {
    return {messages.data() + offsets[v], messages.data() + offsets[v + 1]};
  }
};

template <typename Msg>
void group_by_destination(
    const std::vector<std::pair<VertexId, Msg>>& outbox, VertexId n,
    GroupedMessages<Msg>& out) {
  out.offsets.assign(n + 1, 0);
  for (const auto& [dst, msg] : outbox) {
    (void)msg;
    ++out.offsets[dst + 1];
  }
  for (VertexId v = 0; v < n; ++v) out.offsets[v + 1] += out.offsets[v];
  out.messages.resize(outbox.size());
  std::vector<EdgeId> cursor(out.offsets.begin(), out.offsets.end() - 1);
  for (const auto& [dst, msg] : outbox) {
    out.messages[cursor[dst]++] = msg;
  }
}

}  // namespace gb::platforms
