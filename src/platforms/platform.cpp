#include "platforms/platform.h"

namespace gb::platforms {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kStats:
      return "STATS";
    case Algorithm::kBfs:
      return "BFS";
    case Algorithm::kConn:
      return "CONN";
    case Algorithm::kCd:
      return "CD";
    case Algorithm::kEvo:
      return "EVO";
    case Algorithm::kPageRank:
      return "PAGERANK";
    case Algorithm::kSssp:
      return "SSSP";
    case Algorithm::kLcc:
      return "LCC";
  }
  return "?";
}

std::optional<Algorithm> parse_algorithm(const std::string& name) {
  if (name == "STATS") return Algorithm::kStats;
  if (name == "BFS") return Algorithm::kBfs;
  if (name == "CONN") return Algorithm::kConn;
  if (name == "CD") return Algorithm::kCd;
  if (name == "EVO") return Algorithm::kEvo;
  if (name == "PAGERANK") return Algorithm::kPageRank;
  if (name == "SSSP") return Algorithm::kSssp;
  if (name == "LCC") return Algorithm::kLcc;
  return std::nullopt;
}

}  // namespace gb::platforms
