#include "platforms/platform.h"

namespace gb::platforms {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kStats:
      return "STATS";
    case Algorithm::kBfs:
      return "BFS";
    case Algorithm::kConn:
      return "CONN";
    case Algorithm::kCd:
      return "CD";
    case Algorithm::kEvo:
      return "EVO";
    case Algorithm::kPageRank:
      return "PAGERANK";
  }
  return "?";
}

}  // namespace gb::platforms
