// Shared glue between the engines and the paged storage layer
// (storage/page_cache.h, DESIGN.md §12).
//
// Two degradation shapes cover all five engines:
//   - structure paging: the engine's graph partition exceeds the heap, so
//     a PagedGraphView (in the engine's own byte layout) replays the
//     access pattern and every miss charges one page fault;
//   - buffer spilling: a transient structure (message buffers, shuffle
//     intermediates, channel volume) overflows, and the overflow streams
//     through disk at sequential write+read cost.
// Both publish into the shared page_cache.* metrics so reports and the
// memory-ablation bench see one accounting scheme.
//
// Views must be touched from serial replay loops only (before any
// run_chunks over the same data) so miss counts — and therefore simulated
// time — stay bit-identical at every host parallelism.
#pragma once

#include <memory>
#include <string>

#include "platforms/accounting.h"
#include "sim/cluster.h"
#include "storage/page_cache.h"

namespace gb::platforms::paging {

/// Aggregate frame budget across the cluster: each node keeps
/// budget_per_node resident, and the engines' partitions together form
/// one paged address space.
inline std::uint64_t capacity_pages(const sim::Cluster& cluster) {
  const auto& pc = cluster.config().page_cache;
  if (pc.page_size == 0) return 0;
  return pc.budget_per_node / pc.page_size * cluster.num_workers();
}

/// A paged view of the graph in the engine's memory layout, or nullptr
/// when paging is off (the engine then skips all replay work).
inline std::unique_ptr<storage::PagedGraphView> make_view(
    const Graph& graph, const sim::Cluster& cluster, double vertex_bytes,
    double edge_bytes) {
  if (!cluster.paging_enabled()) return nullptr;
  return std::make_unique<storage::PagedGraphView>(
      graph, cluster.config().page_cache, cluster.config().work_scale,
      capacity_pages(cluster), vertex_bytes, edge_bytes);
}

/// Simulated cost of one page fault: a seek plus one page of sequential
/// read. Faults across the cluster happen on different nodes' disks, so
/// aggregate fault time divides by the worker count.
inline double fault_time(const sim::Cluster& cluster, std::uint64_t misses) {
  if (misses == 0) return 0.0;
  const auto& cost = cluster.cost();
  const double per_fault =
      cost.disk_seek_sec +
      static_cast<double>(cluster.config().page_cache.page_size) /
          cost.disk_read_bps;
  return static_cast<double>(misses) * per_fault /
         static_cast<double>(cluster.num_workers());
}

/// Drain the view's counters into metrics and charge the fault time as a
/// "<label>/page_faults" phase. No-op (and no phase) when nothing missed.
inline void charge_page_faults(sim::Cluster& cluster, PhaseRecorder& rec,
                               const std::string& label,
                               storage::PagedGraphView* view,
                               double resident_mem_bytes) {
  if (view == nullptr) return;
  const auto delta = view->take_stats();
  auto& metrics = cluster.metrics();
  if (delta.hits > 0) metrics.incr("page_cache.hits", delta.hits);
  if (delta.misses > 0) metrics.incr("page_cache.misses", delta.misses);
  if (delta.evictions > 0) {
    metrics.incr("page_cache.evictions", delta.evictions);
  }
  const double duration = fault_time(cluster, delta.misses);
  if (duration <= 0.0) return;
  PhaseUsage usage;
  usage.worker_cpu_cores = 0.05;  // fault handling is I/O-bound
  usage.worker_mem_bytes = resident_mem_bytes;
  rec.phase(label + "/page_faults", duration, false, usage, "paging");
}

/// Charge streaming an overflow of `spilled_bytes` (aggregate, full-size)
/// out to disk and back in as a "<label>/spill" phase; counts the pages
/// moved as misses so the shared accounting sees one unit. `read_back` is
/// false for write-only spills (initial load of an over-budget partition).
inline double charge_spill(sim::Cluster& cluster, PhaseRecorder& rec,
                           const std::string& label, double spilled_bytes,
                           double resident_mem_bytes, bool read_back = true) {
  if (spilled_bytes <= 0.0) return 0.0;
  const auto& cost = cluster.cost();
  const double workers = static_cast<double>(cluster.num_workers());
  double duration = spilled_bytes / (cost.disk_write_bps * workers);
  if (read_back) duration += spilled_bytes / (cost.disk_read_bps * workers);
  auto& metrics = cluster.metrics();
  metrics.incr("page_cache.spilled_bytes",
               static_cast<std::uint64_t>(spilled_bytes));
  const auto page_size =
      static_cast<double>(cluster.config().page_cache.page_size);
  if (page_size > 0) {
    metrics.incr("page_cache.misses",
                 static_cast<std::uint64_t>(spilled_bytes / page_size) + 1);
  }
  PhaseUsage usage;
  usage.worker_cpu_cores = 0.05;
  usage.worker_mem_bytes = resident_mem_bytes;
  rec.phase(label + "/spill", duration, false, usage, "paging");
  return duration;
}

}  // namespace gb::platforms::paging
