// Nephele execution engine for iterative PACT programs (Stratosphere 0.2).
//
// Differences from the Hadoop engine, mirroring why the paper measures
// Stratosphere up to an order of magnitude faster on iterative graph jobs:
//  * long-running TaskManagers — no per-task JVM startup;
//  * cheap per-iteration job deployment (a Nephele DAG, not a full
//    MapReduce job with slot scheduling);
//  * intermediates flow over network channels and in-memory channels
//    selected by the PACT compiler from user-code annotations — no spill
//    of the full map output to scratch disks;
//  * grouping is done in memory on the receiver side;
//  * no extra convergence-check job (the driver inspects the sink).
//
// Like Hadoop, the engine has no dynamic active set: every iteration
// streams the complete vertex data through the plan (Section 4.4: "Hadoop
// and Stratosphere need to traverse all vertices").
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/graph.h"
#include "partition/partition.h"
#include "platforms/accounting.h"
#include "platforms/dataflow/pact.h"
#include "platforms/grouping.h"
#include "platforms/message_buffer.h"
#include "platforms/paging.h"
#include "platforms/partitioning.h"
#include "sim/cluster.h"
#include "storage/hdfs.h"

namespace gb::platforms::dataflow {

struct DataflowConfig {
  double vertex_record_bytes = 24.0;
  double message_record_bytes = 16.0;
  /// TaskManagers pre-allocate their memory budget at startup; the memory
  /// trace is flat at this value (paper Fig. 9).
  Bytes preallocated_memory = Bytes{20} << 30;
  std::uint32_t max_iterations = 10'000;
};

struct DataflowStats {
  std::uint64_t iterations = 0;
};

namespace detail {

/// Charge one iteration of the compiled plan. Channel volumes are derived
/// from the two base record streams (vertex records and messages) scaled
/// through each operator's output-cardinality annotation.
inline void charge_plan_iteration(const Graph& graph, const JobGraph& dag,
                                  sim::Cluster& cluster,
                                  PhaseRecorder& recorder,
                                  const DataflowConfig& config,
                                  const storage::Hdfs& hdfs,
                                  double message_records, double extra_units,
                                  const std::string& label,
                                  const partition::PartitionAssignment* part =
                                      nullptr) {
  const auto& cost = cluster.cost();
  const std::uint32_t workers = cluster.num_workers();
  const std::uint32_t slots = cluster.total_slots();
  const SimTime stage_begin = recorder.now();

  const double vertex_records =
      cluster.scale_units(static_cast<double>(graph.num_vertices()));
  const double adjacency =
      cluster.scale_units(static_cast<double>(graph.num_adjacency_entries()));
  const double messages = cluster.scale_units(message_records);
  const double graph_bytes =
      cluster.scale_bytes(static_cast<double>(graph.text_size_bytes()));

  // Record volume entering each task: sources emit the graph, every other
  // task sees its inputs' volume scaled by the producers' cardinality.
  std::vector<double> task_output(dag.tasks.size(), 0.0);
  for (std::size_t i = 0; i < dag.tasks.size(); ++i) {
    const OperatorSpec& op = dag.tasks[i];
    double input_volume = 0.0;
    for (const std::uint32_t in : op.inputs) input_volume += task_output[in];
    switch (op.kind) {
      case OperatorKind::kSource:
        task_output[i] = vertex_records + messages * 0.0;
        break;
      default:
        task_output[i] = input_volume * op.annotations.output_cardinality;
        break;
    }
  }

  // The message stream rides on the channels that re-partition data.
  // Network channels route records to their key's owner, so the fraction
  // leaving the producing TaskManager is the assignment's measured
  // edge-cut (the historical (W-1)/W when no assignment is supplied).
  const double cross =
      workers > 1 ? (part != nullptr
                         ? part->quality.edge_cut_fraction
                         : static_cast<double>(workers - 1) / workers)
                  : 0.0;
  double network_bytes = 0.0;
  double sort_records = 0.0;
  double file_bytes = 0.0;
  double inmem_bytes = 0.0;
  for (const Channel& ch : dag.channels) {
    const double records = task_output[ch.from] + messages;
    const double bytes = records * config.message_record_bytes;
    switch (ch.type) {
      case ChannelType::kNetwork:
        network_bytes += bytes * cross;
        break;
      case ChannelType::kFile:
        file_bytes += bytes;
        break;
      case ChannelType::kInMemory:
        inmem_bytes += bytes;
        break;
    }
    if (ch.requires_sort) sort_records += records;
  }

  // TaskManager residency: the iteration's vertex state (the solution
  // set) plus the JVM base cannot be spilled by Stratosphere 0.2's memory
  // manager — a preallocation too small for it aborts the job. With the
  // paged budget enabled the shortfall instead streams through disk, and
  // in-memory channels that no longer fit the leftover preallocation
  // degrade to file channels at the same sequential cost.
  const double solution_bytes =
      vertex_records * config.vertex_record_bytes / workers;
  const double tm_resident = 1.5e9 + solution_bytes;
  const double tm_overflow = cluster.admit_resident(
      tm_resident, "Stratosphere TaskManager solution set");

  const double deploy = cost.dataflow_deploy_sec;
  const double read_time =
      hdfs.parallel_read_time(static_cast<Bytes>(graph_bytes), workers);
  const double compute_units = vertex_records + adjacency + messages +
                               cluster.scale_units(extra_units);
  // Skew-aware: a PACT stage completes when its most loaded TaskManager
  // drains its channel inputs, so per-slot compute stretches by max/mean.
  const double imbalance = part != nullptr ? part->quality.imbalance : 1.0;
  const double compute_time =
      cluster.jvm_compute_time(compute_units) * imbalance / slots;
  const double per_slot_sorted = std::max(sort_records / slots, 1.0);
  const double sort_time = cluster.jvm_compute_time(
      per_slot_sorted * std::log2(per_slot_sorted + 2.0));
  const double net_time =
      cost.network_time(static_cast<Bytes>(network_bytes), workers);
  const double file_time = file_bytes > 0
                               ? file_bytes / (cost.disk_write_bps * workers) +
                                     file_bytes / (cost.disk_read_bps * workers)
                               : 0.0;
  const double write_time =
      hdfs.parallel_write_time(static_cast<Bytes>(graph_bytes), workers);

  const double mem = std::min(static_cast<double>(config.preallocated_memory),
                              static_cast<double>(cost.heap_limit));
  double spill_per_node = tm_overflow;
  if (cluster.paging_enabled()) {
    const double leftover = std::max(0.0, mem - tm_resident);
    spill_per_node += std::max(0.0, inmem_bytes / workers - leftover);
  }
  recorder.phase(label + "/deploy", deploy, false,
                 PhaseUsage{.worker_mem_bytes = mem, .master_cpu_cores = 0.05});
  recorder.phase(label + "/read", read_time, false,
                 PhaseUsage{.worker_cpu_cores = 0.3, .worker_mem_bytes = mem});
  recorder.phase(
      label + "/compute", compute_time + sort_time, true,
      PhaseUsage{.worker_cpu_cores =
                     static_cast<double>(cluster.cores_per_worker()),
                 .worker_mem_bytes = mem});
  recorder.phase(label + "/channels", net_time + file_time, false,
                 PhaseUsage{.worker_cpu_cores = 0.2,
                            .worker_mem_bytes = mem,
                            .worker_net_in_bps = cost.net_bps * 0.9,
                            .worker_net_out_bps = cost.net_bps * 0.9});
  recorder.phase(label + "/write", write_time, false,
                 PhaseUsage{.worker_cpu_cores = 0.2, .worker_mem_bytes = mem});
  paging::charge_spill(cluster, recorder, label, spill_per_node * workers, mem);

  cluster.metrics().incr("tasks.scheduled", dag.tasks.size());
  cluster.metrics().add("shuffle.bytes", network_bytes);

  // Nephele recovery: intermediates are channel-resident, so a lost
  // TaskManager discards the running PACT stage — the JobManager redeploys
  // the stage and re-runs it from its HDFS inputs. A transient task
  // failure only re-runs that task's slice of the stage.
  auto& faults = cluster.faults();
  while (const sim::FaultEvent* event = faults.take_before(recorder.now())) {
    auto& stats = faults.stats();
    const bool crash = event->kind == sim::FaultKind::kWorkerCrash;
    const SimTime span = std::max<SimTime>(0.0, recorder.now() - stage_begin);
    const SimTime progress =
        std::clamp<SimTime>(event->time - stage_begin, 0.0, span);
    const SimTime lost = crash ? progress : progress / std::max(1u, slots);
    const SimTime rerun =
        (crash ? cost.failure_detection_sec : 0.0) + deploy + lost;
    ++stats.task_retries;
    stats.recomputed_sec += lost;
    stats.recovery_sec += rerun;
    cluster.metrics().incr("tasks.retried");
    recorder.phase(label + (crash ? "/restage" : "/task_retry"), rerun, false,
                   PhaseUsage{.worker_cpu_cores = 0.8,
                              .worker_mem_bytes = mem,
                              .master_cpu_cores = 0.05},
                   "recovery");
  }
}

}  // namespace detail

/// Iterative driver: executes `job` (same concept as the MapReduce engine's
/// Job) for real each iteration, charging costs from the compiled `plan`.
template <typename Job>
DataflowStats run_iterative(const Graph& graph, Job& job,
                            std::vector<typename Job::State>& state,
                            const Plan& plan, sim::Cluster& cluster,
                            PhaseRecorder& recorder,
                            const DataflowConfig& config,
                            std::uint32_t max_iterations, SimTime time_limit) {
  using Msg = typename Job::Msg;
  const VertexId n = graph.num_vertices();
  const storage::Hdfs hdfs(cluster.cost());
  const JobGraph dag = compile(plan);
  DataflowStats stats;
  // Channel routing keys records by the configured assignment's owners.
  const partition::PartitionAssignment assignment =
      partition_graph(graph, cluster, recorder);

  FlatMessageBuffer<Msg> outbox;
  GroupedMessages<Msg> grouped;
  class Emitter {
   public:
    explicit Emitter(std::vector<std::pair<VertexId, Msg>>& out) : out_(out) {}
    void emit(VertexId target, const Msg& message) {
      out_.emplace_back(target, message);
    }

   private:
    std::vector<std::pair<VertexId, Msg>>& out_;
  };

  // Host-parallel PACT waves, chunked like the MapReduce engine: private
  // per-chunk outbox segments (read in chunk order = the serial emission
  // order), disjoint reduce ranges with chunk-local changed counters.
  const std::size_t chunks = ThreadPool::plan_chunks(n);
  std::vector<std::uint64_t> chunk_changed(chunks, 0);

  for (std::uint32_t iter = 0; iter < max_iterations; ++iter) {
    if (recorder.now() > time_limit) {
      throw PlatformError(PlatformError::Kind::kTimeout,
                          "Stratosphere job exceeded the experiment time budget");
    }
    job.iteration = iter;
    outbox.reset(chunks);
    cluster.run_chunks(n, [&](std::size_t c, std::size_t begin,
                              std::size_t end) {
      Emitter emitter(outbox.segment(c));
      for (std::size_t v = begin; v < end; ++v) {
        job.map(static_cast<VertexId>(v), state[v], graph, emitter);
      }
    });
    group_by_destination(outbox, n, grouped);
    const auto sent = static_cast<double>(outbox.count());

    std::uint64_t changed = 0;
    cluster.run_chunks(n, [&](std::size_t c, std::size_t begin,
                              std::size_t end) {
      std::uint64_t count = 0;
      for (std::size_t v = begin; v < end; ++v) {
        if (job.reduce(static_cast<VertexId>(v), state[v], graph,
                       grouped.for_vertex(static_cast<VertexId>(v)))) {
          ++count;
        }
      }
      chunk_changed[c] = count;
    });
    for (const std::uint64_t count : chunk_changed) changed += count;

    detail::charge_plan_iteration(graph, dag, cluster, recorder, config, hdfs,
                                  sent, sent,
                                  "iter_" + std::to_string(iter), &assignment);
    ++stats.iterations;
    if (changed == 0) break;
  }
  return stats;
}

}  // namespace gb::platforms::dataflow
