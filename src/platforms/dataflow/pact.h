// PACT programming model and Nephele DAG compilation (Stratosphere 0.2).
//
// A PACT plan is a DAG of second-order operators (Map, Reduce, and the
// Stratosphere extensions Match, Cross, CoGroup) between data sources and
// sinks. The compiler turns a plan into a Nephele job graph: one task per
// operator with a channel per edge. Channel selection follows the
// platform's behaviour in the paper: network channels by default, with
// user code annotations letting the compiler keep pipelined stages
// in-memory and avoid spilling to files.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace gb::platforms::dataflow {

enum class OperatorKind { kSource, kMap, kReduce, kMatch, kCross, kCoGroup, kSink };

enum class ChannelType { kNetwork, kInMemory, kFile };

const char* operator_kind_name(OperatorKind kind);
const char* channel_type_name(ChannelType type);

/// User-code annotations (the paper's "PACT supports several user code
/// annotations" that let the compiler avoid shipping and sorting).
struct Annotations {
  bool same_key = false;        // output keeps the input key (no re-partition)
  bool super_key = false;       // output key refines the input key
  double output_cardinality = 1.0;  // records out per record in
};

struct OperatorSpec {
  OperatorKind kind = OperatorKind::kMap;
  std::string name;
  Annotations annotations;
  std::vector<std::uint32_t> inputs;  // operator indices
};

class Plan {
 public:
  std::uint32_t add_source(const std::string& name);
  std::uint32_t add(OperatorKind kind, const std::string& name,
                    std::vector<std::uint32_t> inputs,
                    Annotations annotations = {});
  std::uint32_t add_sink(const std::string& name, std::uint32_t input);

  const std::vector<OperatorSpec>& operators() const { return ops_; }

 private:
  std::vector<OperatorSpec> ops_;
};

/// One edge of the compiled Nephele job graph.
struct Channel {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  ChannelType type = ChannelType::kNetwork;
  bool requires_sort = false;  // receiver must group/sort its input
};

struct JobGraph {
  std::vector<OperatorSpec> tasks;  // same order as the plan
  std::vector<Channel> channels;
};

/// Compile a plan: pick channel types and grouping requirements.
/// - Map after anything: in-memory channel (pipelined, no re-partition).
/// - Reduce/CoGroup: needs grouping; if the producer's annotations prove
///   the key is preserved (same_key/super_key), data stays local on an
///   in-memory channel, otherwise a network re-partition with sorting.
/// - Match: network re-partition of both inputs unless key-preserving.
/// - Cross: network broadcast of the smaller input.
JobGraph compile(const Plan& plan);

}  // namespace gb::platforms::dataflow
