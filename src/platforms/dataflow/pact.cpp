#include "platforms/dataflow/pact.h"

#include "core/error.h"

namespace gb::platforms::dataflow {

const char* operator_kind_name(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kSource:
      return "Source";
    case OperatorKind::kMap:
      return "Map";
    case OperatorKind::kReduce:
      return "Reduce";
    case OperatorKind::kMatch:
      return "Match";
    case OperatorKind::kCross:
      return "Cross";
    case OperatorKind::kCoGroup:
      return "CoGroup";
    case OperatorKind::kSink:
      return "Sink";
  }
  return "?";
}

const char* channel_type_name(ChannelType type) {
  switch (type) {
    case ChannelType::kNetwork:
      return "network";
    case ChannelType::kInMemory:
      return "in-memory";
    case ChannelType::kFile:
      return "file";
  }
  return "?";
}

std::uint32_t Plan::add_source(const std::string& name) {
  ops_.push_back({OperatorKind::kSource, name, {}, {}});
  return static_cast<std::uint32_t>(ops_.size() - 1);
}

std::uint32_t Plan::add(OperatorKind kind, const std::string& name,
                        std::vector<std::uint32_t> inputs,
                        Annotations annotations) {
  if (kind == OperatorKind::kSource || kind == OperatorKind::kSink) {
    throw Error("use add_source/add_sink for " + name);
  }
  for (const std::uint32_t in : inputs) {
    if (in >= ops_.size()) throw Error("bad operator input index");
  }
  const std::size_t needed =
      (kind == OperatorKind::kMatch || kind == OperatorKind::kCross ||
       kind == OperatorKind::kCoGroup)
          ? 2
          : 1;
  if (inputs.size() != needed) {
    throw Error(std::string(operator_kind_name(kind)) + " '" + name +
                "' needs " + std::to_string(needed) + " input(s)");
  }
  ops_.push_back({kind, name, annotations, std::move(inputs)});
  return static_cast<std::uint32_t>(ops_.size() - 1);
}

std::uint32_t Plan::add_sink(const std::string& name, std::uint32_t input) {
  if (input >= ops_.size()) throw Error("bad operator input index");
  ops_.push_back({OperatorKind::kSink, name, {}, {input}});
  return static_cast<std::uint32_t>(ops_.size() - 1);
}

JobGraph compile(const Plan& plan) {
  JobGraph graph;
  graph.tasks = plan.operators();
  for (std::uint32_t i = 0; i < graph.tasks.size(); ++i) {
    const OperatorSpec& op = graph.tasks[i];
    for (const std::uint32_t input : op.inputs) {
      const OperatorSpec& producer = graph.tasks[input];
      Channel ch;
      ch.from = input;
      ch.to = i;
      const bool key_preserved =
          producer.annotations.same_key || producer.annotations.super_key;
      switch (op.kind) {
        case OperatorKind::kMap:
        case OperatorKind::kSink:
          ch.type = ChannelType::kInMemory;
          ch.requires_sort = false;
          break;
        case OperatorKind::kReduce:
        case OperatorKind::kCoGroup:
          ch.type = key_preserved ? ChannelType::kInMemory
                                  : ChannelType::kNetwork;
          ch.requires_sort = true;
          break;
        case OperatorKind::kMatch:
          ch.type = key_preserved ? ChannelType::kInMemory
                                  : ChannelType::kNetwork;
          ch.requires_sort = false;  // hash join
          break;
        case OperatorKind::kCross:
          ch.type = ChannelType::kNetwork;
          ch.requires_sort = false;
          break;
        case OperatorKind::kSource:
          throw Error("a source cannot have inputs");
      }
      graph.channels.push_back(ch);
    }
  }
  return graph;
}

}  // namespace gb::platforms::dataflow
