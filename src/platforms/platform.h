// Common contract for all six platform implementations.
//
// A Platform runs one of the five benchmark algorithms on a dataset over a
// simulated cluster and reports the paper's measurements: total job
// execution time T, computation time Tc (To = T - Tc), a named phase
// breakdown (Figures 15/16), and the algorithm's actual output so the test
// suite can validate every platform against the sequential references.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/types.h"
#include "datasets/catalog.h"
#include "sim/cluster.h"

namespace gb::platforms {

enum class Algorithm { kStats, kBfs, kConn, kCd, kEvo, kPageRank, kSssp, kLcc };

const char* algorithm_name(Algorithm a);

/// Inverse of algorithm_name ("BFS" -> kBfs); nullopt for unknown names.
/// Shared spec vocabulary for gb_run, gb_campaign and campaign grids.
std::optional<Algorithm> parse_algorithm(const std::string& name);

/// Parameters exactly as fixed in the paper's Section 3.2.
struct AlgorithmParams {
  // BFS: source chosen once per graph; directed graphs traverse out-edges.
  VertexId bfs_source = 0;

  // CD (Leung et al.): initial score 1.0, hop attenuation 0.1, 5 iterations.
  double cd_initial_score = 1.0;
  double cd_hop_attenuation = 0.1;
  std::uint32_t cd_max_iterations = 5;

  // EVO (Forest Fire): +0.1% vertices over 6 iterations, p = r = 0.5.
  double evo_growth = 0.001;
  std::uint32_t evo_iterations = 6;
  double evo_p_forward = 0.5;
  double evo_r_backward = 0.5;

  // Safety valve for CONN on pathological graphs.
  std::uint32_t conn_max_iterations = 10'000;

  // PageRank (library extension beyond the paper's five classes):
  // fixed-iteration power method, no dangling redistribution (GraphLab
  // toolkit semantics), so every platform computes bit-identical ranks.
  std::uint32_t pagerank_iterations = 10;
  double pagerank_damping = 0.85;

  // SSSP (Graphalytics extension): shares bfs_source; weights come from
  // the graph when stored, otherwise derived per-edge from `seed`
  // (core/graph.h EdgeWeights), so every engine sees identical weights.
  // sssp_delta is the reference delta-stepping bucket width (0 = auto);
  // it affects scheduling only, never the distances.
  std::uint64_t sssp_delta = 0;

  std::uint64_t seed = 1;

  /// Giraph fault tolerance: write a checkpoint every N supersteps
  /// (0 = disabled, the paper's effective configuration). Platforms
  /// without checkpointing ignore it.
  std::uint32_t checkpoint_interval = 0;

  /// Route BFS through the engines' direction-optimizing (push/pull)
  /// specializations where the execution model permits one (Pregel, GAS).
  /// Simulated results are bit-identical either way; false forces the
  /// generic vertex-program path (bench_hostperf's "before" side).
  bool direction_optimizing = true;

  /// Restore the engines' pre-flat-buffer host message staging (one
  /// concatenated outbox per superstep). Simulated results are
  /// bit-identical; only host wall-clock changes (bench_hostperf).
  bool legacy_host_buffers = false;

  /// Simulated-time budget after which the harness terminates the job,
  /// like the paper did with Stratosphere STATS (~4 h) and Neo4j (20 h).
  SimTime time_limit = 20.0 * 3600.0;
};

/// What the algorithm computed. vertex_values carries BFS levels, CONN
/// component labels, CD community labels, SSSP distances, or bit-encoded
/// PageRank/LCC doubles; the scalar carries STATS'/LCC's average LCC and
/// SSSP's reached count; EVO reports the evolved graph size.
struct AlgorithmOutput {
  std::vector<std::uint64_t> vertex_values;
  double scalar = 0.0;
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  std::uint64_t iterations = 0;
};

struct RunResult {
  SimTime total_time = 0.0;        // T: submission to completion
  SimTime computation_time = 0.0;  // Tc: progress on the algorithm itself
  std::vector<std::pair<std::string, SimTime>> phases;
  AlgorithmOutput output;

  SimTime overhead_time() const { return total_time - computation_time; }

  void add_phase(const std::string& name, SimTime duration, bool computation) {
    phases.emplace_back(name, duration);
    total_time += duration;
    if (computation) computation_time += duration;
  }
};

class Platform {
 public:
  virtual ~Platform() = default;

  virtual std::string name() const = 0;
  virtual bool distributed() const = 0;

  /// Execute `algorithm` on `dataset`. The input is assumed already
  /// ingested (HDFS / database import is measured separately, Table 6).
  /// Throws PlatformError for the crash/timeout outcomes the paper reports.
  virtual RunResult run(const datasets::Dataset& dataset, Algorithm algorithm,
                        const AlgorithmParams& params,
                        sim::Cluster& cluster) const = 0;
};

}  // namespace gb::platforms
