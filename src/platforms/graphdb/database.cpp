#include "platforms/graphdb/database.h"

#include <algorithm>

namespace gb::platforms::graphdb {

Database::Database(const Graph& graph, const sim::CostModel& cost,
                   double work_scale, DatabaseConfig config)
    : graph_(&graph),
      work_scale_(work_scale),
      config_(config),
      store_(graph, cost, work_scale, config.store) {
  if (config_.paging.enabled()) {
    paged_ = std::make_unique<storage::PageCache>(
        config_.paging.budget_per_node / config_.paging.page_size,
        config_.paging.policy);
    page_fault_sec_ =
        cost.disk_seek_sec +
        static_cast<double>(config_.paging.page_size) / cost.disk_read_bps;
  }
}

void Database::touch_node_page(VertexId v) {
  paged_->touch(static_cast<std::uint64_t>(
      store_.node_coordinate(v) /
      static_cast<double>(config_.paging.page_size)));
}

void Database::touch_out_chain(VertexId v) {
  const double page = static_cast<double>(config_.paging.page_size);
  const EdgeId begin = graph_->out_offset(v);
  const EdgeId end = graph_->out_offset(v + 1);
  if (begin >= end) return;
  paged_->touch_range(
      static_cast<std::uint64_t>(store_.relationship_coordinate(begin) / page),
      static_cast<std::uint64_t>(
          store_.relationship_coordinate(end - 1) / page));
}

void Database::touch_in_chain(std::span<const VertexId> neighbors) {
  // A vertex's incoming chain threads through relationship records stored
  // at their source's out-chain position — scattered single-record reads.
  const double page = static_cast<double>(config_.paging.page_size);
  for (const VertexId u : neighbors) {
    paged_->touch(static_cast<std::uint64_t>(
        store_.relationship_coordinate(graph_->out_offset(u)) / page));
  }
}

void Database::begin(CacheState cache) {
  cache_ = cache;
  elapsed_ = config_.query_setup_sec;
  if (cache_ == CacheState::kCold) {
    touched_.assign(graph_->num_vertices(), 0);
    // Every store page can fault at most once before the file buffer
    // holds it (the store always fits the buffer on this hardware).
    cold_page_budget_ =
        static_cast<double>(store_.store_bytes()) /
        static_cast<double>(config_.store.page_size) / work_scale_;
  } else {
    touched_.clear();
  }
}

std::span<const VertexId> Database::expand(VertexId v) {
  const auto neighbors = graph_->out_neighbors(v);
  if (paged_) {
    touch_node_page(v);
    touch_out_chain(v);
  }
  charge_expansion(v, neighbors);
  return neighbors;
}

std::span<const VertexId> Database::expand_in(VertexId v) {
  const auto neighbors = graph_->in_neighbors(v);
  if (paged_) {
    touch_node_page(v);
    touch_in_chain(neighbors);
  }
  charge_expansion(v, neighbors);
  return neighbors;
}

void Database::charge_expansion(VertexId v,
                                std::span<const VertexId> neighbors) {
  ++access_stats_.node_expansions;
  access_stats_.relationship_accesses += neighbors.size();
  const double scale = work_scale_;
  const double accesses = 1.0 + static_cast<double>(neighbors.size());
  if (paged_) {
    // Unified paged accounting: the caller already touched this
    // expansion's store pages; hits parse from the buffer, misses pay a
    // real sequential-page fault. Miss counts live in the full-size page
    // space (coordinates are work_scale-stretched), so they are not
    // extrapolated again.
    const auto delta = paged_->take_stats();
    page_stats_.hits += delta.hits;
    page_stats_.misses += delta.misses;
    page_stats_.evictions += delta.evictions;
    elapsed_ += static_cast<double>(delta.hits) * config_.store.buffer_hit_sec +
                static_cast<double>(delta.misses) * page_fault_sec_ +
                accesses * scale * config_.traversal_access_sec;
    return;
  }
  if (cache_ == CacheState::kHot) {
    // In the hot regime all records are object-cache residents — unless
    // the object footprint exceeds the heap, in which case the cyclic
    // scan defeats the LRU and most accesses fall through to disk
    // (store_.hot_access_sec folds that in).
    elapsed_ += accesses * scale *
                std::max(store_.hot_access_sec(), config_.traversal_access_sec *
                                                      (1.0 - store_.object_miss_fraction()));
    return;
  }
  // Cold: first touches fault store pages in (until the whole store is
  // buffer-resident) and build heap objects; re-touches (a relationship
  // seen from its other endpoint) hit the file buffer.
  double fresh = accesses;
  if (!touched_.empty()) {
    if (touched_[v]) fresh -= 1.0;
    touched_[v] = 1;
    double seen = 0.0;
    for (const VertexId u : neighbors) {
      if (touched_[u]) seen += 1.0;
    }
    fresh = std::max(0.0, fresh - seen);
  }
  const double refetch = accesses - fresh;
  const double locality = std::clamp(config_.chain_locality, 0.0, 1.0);
  const double records_per_page =
      static_cast<double>(config_.store.page_size) /
      static_cast<double>(config_.store.relationship_record);
  const double faults_wanted =
      fresh * (locality / records_per_page + (1.0 - locality));
  const double faults = std::min(faults_wanted, cold_page_budget_);
  cold_page_budget_ -= faults;
  elapsed_ += scale * (faults * config_.store.page_fault_sec +
                       fresh * (config_.store.buffer_hit_sec +
                                config_.object_build_sec) +
                       refetch * config_.store.buffer_hit_sec +
                       accesses * config_.traversal_access_sec);
}

void Database::access_properties(double count) {
  access_stats_.property_accesses += count;
  // Paged mode has no object cache to thrash: property records ride on
  // pages the expansion path already accounts, so only the Core-API cost
  // remains.
  const double miss_penalty =
      paged_ ? 0.0
             : store_.object_miss_fraction() * config_.store.page_fault_sec;
  elapsed_ += count * work_scale_ *
              (config_.property_access_sec + miss_penalty);
}

void Database::charge_user_compute(double units) {
  // User code runs on the JVM; reuse the traversal hot-path rate as the
  // per-operation cost of in-memory Java work.
  elapsed_ += units * work_scale_ * 55e-9;
}

}  // namespace gb::platforms::graphdb
