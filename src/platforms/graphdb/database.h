// Single-machine graph database engine (Neo4j 1.5 class).
//
// Algorithms run as real traversals over the CSR graph through a
// transactional-API cost layer: every node expansion and property access
// is charged through the two-level cache model (storage/record_store.h).
// The engine distinguishes cold-cache runs (first execution: every record
// is first read from the store files, lazily — only what the algorithm
// touches) from hot-cache runs (follow-ups: object-cache residency, unless
// the graph's object footprint exceeds the heap, in which case the LRU
// thrashes — the paper's 17-hour hot BFS on Synth).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/graph.h"
#include "sim/cost_model.h"
#include "storage/page_cache.h"
#include "storage/record_store.h"

namespace gb::platforms::graphdb {

struct DatabaseConfig {
  storage::RecordStoreConfig store;
  /// Per-hop cost of the optimized traversal framework (hot path).
  double traversal_access_sec = 2e-6;
  /// Per-access cost of reading/writing vertex properties through the
  /// transactional Core API (what CD and STATS hammer). An order of
  /// magnitude above raw traversal: property chains, transaction state,
  /// and GC pressure. Calibrated against the paper's ">20 h" outcomes.
  double property_access_sec = 80e-6;
  double query_setup_sec = 0.2;
  /// First-touch locality of relationship chains relative to the
  /// traversal order (0 = random, 1 = perfectly clustered).
  double chain_locality = 0.05;
  /// Building a heap object from a buffered record (deserialization).
  double object_build_sec = 4e-6;
  /// Unified paged storage (DESIGN.md §12). When enabled, the two-level
  /// cache collapses onto one page cache over the store files: the object
  /// cache is bypassed, every traversal access touches store pages, and
  /// misses pay a real page fault instead of the hot-regime LRU-thrash
  /// penalty. Disabled (budget 0) keeps the historical model bit for bit.
  storage::PageCacheConfig paging;
};

enum class CacheState { kCold, kHot };

/// Running totals of the traversal-API traffic a Database has served,
/// accumulated across queries for the observability layer. Counted from
/// real traversals, so identical at every host parallelism.
struct AccessStats {
  std::uint64_t node_expansions = 0;        // expand/expand_in calls
  std::uint64_t relationship_accesses = 0;  // neighbor records charged
  double property_accesses = 0.0;           // Core-API property reads/writes
};

class Database {
 public:
  Database(const Graph& graph, const sim::CostModel& cost, double work_scale,
           DatabaseConfig config = {});

  const Graph& graph() const { return *graph_; }
  const storage::RecordStoreModel& store() const { return store_; }
  const DatabaseConfig& config() const { return config_; }

  /// Start a traversal; resets the elapsed clock and, for cold runs, the
  /// touched set.
  void begin(CacheState cache);

  /// Expand a vertex: returns its neighbors (out-neighbors for directed
  /// graphs) and charges one node access plus one relationship access per
  /// neighbor. Lazy reads: nothing else is ever loaded.
  std::span<const VertexId> expand(VertexId v);

  /// Same along incoming relationships.
  std::span<const VertexId> expand_in(VertexId v);

  /// Charge `count` property reads/writes via the Core API.
  void access_properties(double count);

  /// Charge raw in-memory work (e.g. neighborhood intersections) that
  /// happens in user code between API calls.
  void charge_user_compute(double units);

  /// Add pre-computed simulated seconds (e.g. transactional writes during
  /// evolution); the caller is responsible for any scaling.
  void add_time(SimTime seconds) { elapsed_ += seconds; }

  /// Simulated seconds accumulated since begin().
  SimTime elapsed() const { return elapsed_; }

  SimTime ingest_time() const { return store_.ingest_time(); }

  const AccessStats& access_stats() const { return access_stats_; }

  /// True when the unified page cache is standing in for the two-level
  /// cache model.
  bool paged() const { return paged_ != nullptr; }

  /// Cumulative page-cache traffic across all queries (empty when not
  /// paged); published into the cluster metrics by the platform glue.
  const storage::PageCacheStats& page_stats() const { return page_stats_; }

 private:
  void charge_expansion(VertexId v, std::span<const VertexId> neighbors);
  void touch_node_page(VertexId v);
  void touch_out_chain(VertexId v);
  void touch_in_chain(std::span<const VertexId> neighbors);

  const Graph* graph_;
  double work_scale_;
  DatabaseConfig config_;
  storage::RecordStoreModel store_;
  CacheState cache_ = CacheState::kHot;
  AccessStats access_stats_;
  SimTime elapsed_ = 0.0;
  std::vector<std::uint8_t> touched_;
  /// Unified page cache (non-null only when config.paging is enabled);
  /// Neo4j is a single node, so its capacity is one node's budget.
  std::unique_ptr<storage::PageCache> paged_;
  storage::PageCacheStats page_stats_;
  double page_fault_sec_ = 0.0;
  /// Remaining store pages that can still fault during a cold run: once
  /// the whole store has been pulled through the file buffer, further
  /// first touches only pay deserialization.
  double cold_page_budget_ = 0.0;
};

}  // namespace gb::platforms::graphdb
