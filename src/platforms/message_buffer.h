// Flat, chunk-partitioned message buffer — the hot-path replacement for
// the engines' merge-into-one-vector message staging.
//
// Each compute chunk appends (destination, message) pairs to its own
// segment; the segments, read in ascending chunk order, ARE the message
// stream a serial vertex sweep would have produced, so no concatenation
// pass is needed before grouping or accounting. The host profiler
// (`--trace-host-profile`) showed the per-superstep concatenation of all
// chunk outboxes dominating the non-compute host time on message-heavy
// rounds; this buffer removes that copy entirely while keeping every
// observable byte identical (same entries, same order).
//
// Determinism: segment count comes from ThreadPool::plan_chunks (a pure
// function of the vertex count), each segment's append order is the serial
// order of its chunk's vertex range, and every consumer iterates segments
// in ascending index order — so the logical stream never depends on the
// thread schedule.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/types.h"
#include "platforms/grouping.h"

namespace gb::platforms {

template <typename Msg>
class FlatMessageBuffer {
 public:
  using Entry = std::pair<VertexId, Msg>;

  /// Start a new round with `chunks` segments. Segment storage (and its
  /// capacity) is reused across rounds; only the logical contents reset.
  void reset(std::size_t chunks) {
    if (segments_.size() < chunks) segments_.resize(chunks);
    active_ = chunks;
    for (std::size_t c = 0; c < chunks; ++c) segments_[c].clear();
  }

  /// Chunk c's private segment — the only one chunk c may touch while a
  /// parallel region is running.
  std::vector<Entry>& segment(std::size_t c) { return segments_[c]; }
  const std::vector<Entry>& segment(std::size_t c) const {
    return segments_[c];
  }

  std::size_t num_segments() const { return active_; }

  /// Total messages across all segments (replaces `outbox.size()` in the
  /// engines' accounting — an O(chunks) sum instead of a materialized
  /// vector).
  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < active_; ++c) total += segments_[c].size();
    return total;
  }

  bool empty() const {
    for (std::size_t c = 0; c < active_; ++c) {
      if (!segments_[c].empty()) return false;
    }
    return true;
  }

  /// Visit every entry as fn(destination, message) in the canonical order:
  /// ascending segment, then append order within the segment.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t c = 0; c < active_; ++c) {
      for (const Entry& e : segments_[c]) fn(e.first, e.second);
    }
  }

  /// Collapse to a single segment holding `entries` (used after a
  /// sender-side combiner pass rewrote the stream). Swaps storage, so the
  /// caller's vector becomes reusable scratch.
  void adopt(std::vector<Entry>& entries) {
    reset(1);
    segments_[0].swap(entries);
  }

 private:
  std::vector<std::vector<Entry>> segments_;
  std::size_t active_ = 0;
};

/// Segmented counting sort into per-destination spans — bit-identical to
/// concatenating the segments in ascending order and calling the flat
/// group_by_destination overload, without ever materializing the
/// concatenation.
template <typename Msg>
void group_by_destination(const FlatMessageBuffer<Msg>& buffer, VertexId n,
                          GroupedMessages<Msg>& out) {
  out.offsets.assign(n + 1, 0);
  buffer.for_each([&](VertexId dst, const Msg&) { ++out.offsets[dst + 1]; });
  for (VertexId v = 0; v < n; ++v) out.offsets[v + 1] += out.offsets[v];
  out.messages.resize(buffer.count());
  std::vector<EdgeId> cursor(out.offsets.begin(), out.offsets.end() - 1);
  buffer.for_each(
      [&](VertexId dst, const Msg& msg) { out.messages[cursor[dst]++] = msg; });
}

}  // namespace gb::platforms
