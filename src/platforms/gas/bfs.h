// Direction-optimizing BFS specialization of the GAS engine.
//
// run_sync executing BfsProgram is a frontier computation: iteration t
// activates exactly the out-neighbor union of the vertices that changed
// at t-1 (under scatter-out that is "has an in-neighbor that changed"),
// and the changed set is the unvisited subset of the active set. Every
// simulated quantity — active counts, gather/scatter edge work, mirror
// sync bytes — is a per-vertex function of those sets, so this path
// computes them with dense bitset frontiers (push claims through an
// atomic bitset; pull scans candidates' CSR in-adjacency with early exit)
// and never copies an O(V) snapshot, clears an O(V) activation array, or
// gathers over a vertex's full in-adjacency per iteration.
//
// All charges, phases, metrics and heap checks replicate run_sync bit for
// bit. The per-vertex sync and work terms are integer-valued doubles
// (GasConfig's byte constants are whole bytes; cut degrees and degrees
// are counts), so the sums are exact in any order — which makes the push
// phase's varying claim order unobservable. Only the host-side metric
// `host.chunks_executed` differs from the generic path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/bitset.h"
#include "core/traversal.h"
#include "platforms/gas/engine.h"

namespace gb::platforms::gas {

inline constexpr std::uint64_t kGasBfsUnreached = ~std::uint64_t{0};

/// Specialized run_sync for BfsProgram. `data` must arrive filled with
/// kGasBfsUnreached (as the platform suite initializes it); it leaves
/// holding BFS levels. Returns the same GasStats as the generic engine.
inline GasStats run_gas_bfs(const Graph& graph, VertexId source,
                            std::vector<std::uint64_t>& data,
                            sim::Cluster& cluster, PhaseRecorder& recorder,
                            const GasConfig& config, SimTime time_limit,
                            TraversalMode mode = TraversalMode::kAuto,
                            BfsTraversalTrace* trace = nullptr) {
  const auto& cost = cluster.cost();
  const std::uint32_t workers = cluster.num_workers();
  const VertexId n = graph.num_vertices();
  if (trace != nullptr) trace->levels.clear();

  const partition::PartitionAssignment assignment =
      partition_graph(graph, cluster, recorder);
  const double imbalance = assignment.quality.imbalance;
  const Placement placement =
      compute_placement(graph, cluster, assignment, config);
  const double partition_bytes = charge_startup_and_load(
      graph, placement.total_mirrors, cluster, recorder, config);

  GasStats stats;
  stats.replication_factor = n > 0 ? placement.total_mirrors / n : 1.0;

  // Paged view matching the generic engine's: vertex records inflated by
  // the replication factor, warm-up sweep discarded (the load phase
  // charged the initial read).
  const double rep = n > 0 ? placement.total_mirrors / static_cast<double>(n)
                           : 1.0;
  const auto paged = paging::make_view(
      graph, cluster, static_cast<double>(config.vertex_mem) * rep,
      static_cast<double>(config.edge_mem));
  if (paged) {
    paged->touch_all();
    paged->take_stats();
  }

  // Per-active-vertex mirror-sync bytes: (mirrors - 1) updates under a
  // vertex cut, one message per cut edge otherwise. Integer-valued, so
  // summing over the active set in any order matches the generic engine's
  // vertex-order chunk sums exactly.
  const double sync_unit =
      config.vertex_data_bytes + config.mirror_header_bytes;
  const auto sync_of = [&](VertexId v) {
    return placement.vertex_cut_mode
               ? (placement.mirrors[v] - 1) * sync_unit
               : placement.cut_degree[v] * sync_unit;
  };

  std::vector<VertexId> frontier;  // changed_{t-1}: scatter sources
  std::vector<VertexId> next;
  DenseBitset frontier_bits(n);
  DenseBitset touched(n);  // distinct activations, push passes

  const DirectionPolicy policy;
  bool pull = false;
  std::uint64_t scatter_edges = 0;  // sum out_degree(frontier)
  // Pull-cost proxy fed to the direction policy. Unlike the reference
  // BFS, the GAS pull phase can never skip visited vertices — activation
  // includes re-activations, so every vertex scans its in-adjacency until
  // a frontier hit — which means the bottom-up cost does NOT shrink as
  // the traversal progresses. The static edge total is the honest stand-in
  // for "edges a pull sweep may touch"; pull engages only when the
  // frontier's own edge mass approaches it (the peak level, where early
  // exits are immediate and push would pay an atomic per edge).
  const std::uint64_t pull_cost_edges = graph.num_adjacency_entries();

  const std::size_t max_chunks = ThreadPool::plan_chunks(n);
  struct ChunkState {
    std::uint64_t active = 0;
    std::uint64_t in_work = 0;
    std::uint64_t out_work = 0;
    double sync_bytes = 0.0;
  };
  std::vector<ChunkState> chunk_states(max_chunks);
  std::vector<std::vector<VertexId>> chunk_found(max_chunks);

  for (std::uint32_t iter = 0; iter < config.max_iterations; ++iter) {
    if (recorder.now() > time_limit) {
      throw PlatformError(PlatformError::Kind::kTimeout,
                          "GraphLab exceeded the experiment time budget");
    }
    std::uint64_t active_count = 0;
    std::uint64_t in_work = 0;
    std::uint64_t out_work = 0;
    double sync_bytes = 0.0;
    next.clear();

    // Serial replay of the generic engine's gather-side page accesses
    // (BfsProgram gathers over in-edges): the active set at iteration t is
    // exactly "has a changed_{t-1} in-neighbor", which frontier_bits holds
    // until the post-iteration swap. Same vertices, same ascending order,
    // so miss counts match the generic path bit for bit.
    if (paged) {
      if (iter == 0) {
        if (source < n) {
          paged->touch_vertex(source);
          paged->touch_in_adjacency(source);
        }
      } else {
        for (VertexId v = 0; v < n; ++v) {
          bool act = false;
          for (const VertexId u : graph.in_neighbors(v)) {
            if (frontier_bits.test(u)) {
              act = true;
              break;
            }
          }
          if (!act) continue;
          paged->touch_vertex(v);
          paged->touch_in_adjacency(v);
        }
      }
    }

    if (iter == 0) {
      // The caller activates only the source; apply() sets its level
      // unconditionally on iteration 0.
      if (source < n) {
        active_count = 1;
        in_work = graph.in_degree(source);
        sync_bytes = sync_of(source);
        data[source] = 0;
        next.push_back(source);
        out_work = graph.out_degree(source);
      }
    } else {
      // Activation from changed_{t-1}: active = has a changed in-neighbor
      // (scatter-out delivered a signal); changed = the unvisited subset,
      // which adopts level t. Direction chosen by the standard heuristic
      // from exact frontier statistics.
      // currently_pull is pinned false: the hysteresis band exists for a
      // shrinking bottom-up scan, but here pull cost is static, so each
      // level is decided fresh by the edge-mass comparison.
      pull = policy.pull_for(mode, /*currently_pull=*/false, frontier.size(),
                             scatter_edges, pull_cost_edges, n);
      if (trace != nullptr) {
        trace->levels.push_back(
            {iter - 1, frontier.size(), scatter_edges, pull});
      }
      if (pull) {
        // Disjoint vertex ranges, no atomics; the in-adjacency scan stops
        // at the first changed parent.
        const std::size_t chunks = ThreadPool::plan_chunks(n);
        cluster.run_chunks(n, [&](std::size_t c, std::size_t begin,
                                  std::size_t end) {
          ChunkState& cs = chunk_states[c];
          cs = ChunkState{};
          auto& found = chunk_found[c];
          found.clear();
          for (std::size_t i = begin; i < end; ++i) {
            const VertexId v = static_cast<VertexId>(i);
            for (const VertexId u : graph.in_neighbors(v)) {
              if (!frontier_bits.test(u)) continue;
              ++cs.active;
              cs.in_work += graph.in_degree(v);
              cs.sync_bytes += sync_of(v);
              if (data[v] == kGasBfsUnreached) {
                data[v] = iter;
                found.push_back(v);
                cs.out_work += graph.out_degree(v);
              }
              break;
            }
          }
        });
        for (std::size_t c = 0; c < chunks; ++c) {
          const ChunkState& cs = chunk_states[c];
          active_count += cs.active;
          in_work += cs.in_work;
          out_work += cs.out_work;
          sync_bytes += cs.sync_bytes;
          next.insert(next.end(), chunk_found[c].begin(),
                      chunk_found[c].end());
        }
      } else {
        // Push: the first atomic claim of `touched` owns the activation;
        // it alone accounts the vertex and, if unvisited, writes its
        // level. All accounted terms are commutative-exact integers, so
        // the varying claim order never shows in any output.
        touched.clear();
        const std::size_t chunks = ThreadPool::plan_chunks(frontier.size());
        cluster.run_chunks(
            frontier.size(),
            [&](std::size_t c, std::size_t begin, std::size_t end) {
              ChunkState& cs = chunk_states[c];
              cs = ChunkState{};
              auto& found = chunk_found[c];
              found.clear();
              for (std::size_t i = begin; i < end; ++i) {
                for (const VertexId w : graph.out_neighbors(frontier[i])) {
                  // Cheap relaxed-load pre-test: most edges point at an
                  // already-claimed vertex, and a plain load dodges the
                  // RMW that would otherwise dominate dense frontiers.
                  if (touched.test_atomic(w)) continue;
                  if (!touched.set_atomic(w)) continue;
                  ++cs.active;
                  cs.in_work += graph.in_degree(w);
                  cs.sync_bytes += sync_of(w);
                  if (data[w] == kGasBfsUnreached) {
                    data[w] = iter;
                    found.push_back(w);
                    cs.out_work += graph.out_degree(w);
                  }
                }
              }
            });
        for (std::size_t c = 0; c < chunks; ++c) {
          const ChunkState& cs = chunk_states[c];
          active_count += cs.active;
          in_work += cs.in_work;
          out_work += cs.out_work;
          sync_bytes += cs.sync_bytes;
          next.insert(next.end(), chunk_found[c].begin(),
                      chunk_found[c].end());
        }
      }
    }

    // The generic engine breaks before charging the empty iteration.
    if (active_count == 0) break;

    for (const VertexId u : frontier) frontier_bits.reset(u);
    for (const VertexId u : next) frontier_bits.set(u);
    frontier.swap(next);
    scatter_edges = out_work;

    const double edge_work =
        static_cast<double>(in_work) + static_cast<double>(out_work);
    const double compute_units = cluster.scale_units(
        static_cast<double>(active_count) + edge_work);
    const double compute_time =
        cluster.native_compute_time(compute_units) * imbalance /
        cluster.total_slots();
    const double sync_factor = placement.vertex_cut_mode ? 2.0 : 1.0;
    const double net_time = cost.network_time(
        static_cast<Bytes>(cluster.scale_bytes(sync_bytes * sync_factor)),
        workers);

    const std::string label = "iter_" + std::to_string(iter);
    recorder.phase(label + "/compute", compute_time, true,
                   PhaseUsage{.worker_cpu_cores = static_cast<double>(
                                  cluster.cores_per_worker()),
                              .worker_mem_bytes = partition_bytes});
    recorder.phase(label + "/sync", net_time + cost.net_latency_sec * 4.0,
                   false,
                   PhaseUsage{.worker_cpu_cores = 0.1,
                              .worker_mem_bytes = partition_bytes,
                              .worker_net_in_bps = cost.net_bps * 0.4,
                              .worker_net_out_bps = cost.net_bps * 0.4});
    paging::charge_page_faults(cluster, recorder, label, paged.get(),
                               partition_bytes);
    cluster.metrics().incr("gas.iterations");
    cluster.metrics().add("mirror.sync_bytes",
                          cluster.scale_bytes(sync_bytes * sync_factor));
    abort_on_worker_loss(cluster, recorder,
                         "iteration " + std::to_string(iter));
    ++stats.iterations;
  }

  charge_write(graph, cluster, recorder, partition_bytes);
  return stats;
}

}  // namespace gb::platforms::gas
