// Gather-Apply-Scatter engine (distributed GraphLab 2.1 class).
//
// Native C++ execution over an MPI-style deployment: a vertex-cut
// partitioner assigns edges to workers and replicates ("mirrors") vertices
// across every worker that holds one of their edges; each synchronous
// iteration gathers over one edge direction, applies, and scatters along
// the other, exchanging mirror updates over the network. The engine runs
// the user program for real; time derives from counted gather/scatter work
// (at native rates — GraphLab is C++, not JVM) and from genuinely counted
// mirror traffic.
//
// Loading reproduces the paper's two modes: the stock single-input-file
// loader (one machine streams and parses the whole file, then distributes
// — the horizontal-scalability bottleneck of Fig. 11) and the "mp" mode
// where the input is pre-split into one piece per MPI process.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/graph.h"
#include "partition/partition.h"
#include "platforms/accounting.h"
#include "platforms/paging.h"
#include "platforms/partitioning.h"
#include "sim/cluster.h"

namespace gb::platforms::gas {

enum class EdgeDir { kIn, kOut, kBoth };

/// Graph partitioning strategy. GraphLab 2.1 uses vertex-cuts (edges
/// hashed to workers, vertices mirrored); the classic alternative hashes
/// vertices and pays per-message traffic on every cut edge instead.
enum class Partitioning { kVertexCut, kEdgeCut };

struct GasConfig {
  bool multi_piece_loading = false;  // GraphLab(mp)
  Partitioning partitioning = Partitioning::kVertexCut;
  double vertex_data_bytes = 16.0;   // synced vertex value + version
  double mirror_header_bytes = 24.0;
  double text_parse_sec_per_byte = 6e-9;  // native text parsing (~170 MB/s)
  Bytes vertex_mem = 64;   // native in-memory vertex footprint
  Bytes edge_mem = 16;     // native in-memory edge footprint
  std::uint32_t max_iterations = 10'000;
};

struct GasStats {
  std::uint64_t iterations = 0;
  double replication_factor = 1.0;  // avg mirrors per vertex
};

/// Program concept:
///   struct Program {
///     using VData = ...;    // per-vertex state
///     using Gather = ...;   // gather accumulator
///     static constexpr EdgeDir kGatherDir = EdgeDir::kIn;
///     static constexpr EdgeDir kScatterDir = EdgeDir::kOut;
///     Gather gather_init() const;
///     void gather(VertexId v, VertexId nbr, const VData& nbr_data,
///                 Gather& acc) const;
///     // Returns true when the vertex changed and should scatter.
///     bool apply(VertexId v, VData& data, const Gather& acc,
///                std::uint32_t iteration) const;
///     // Extra compute units beyond one per gathered/scattered edge.
///     double extra_units(VertexId v) const { return 0; }
///   };
/// Charge MPI startup, graph loading (single-file or multi-piece) and the
/// finalize/partition pass; returns the per-worker resident partition
/// size. Shared by run_sync and the EVO accounting path.
inline double charge_startup_and_load(const Graph& graph, double total_mirrors,
                                      sim::Cluster& cluster,
                                      PhaseRecorder& recorder,
                                      const GasConfig& config) {
  const auto& cost = cluster.cost();
  const std::uint32_t workers = cluster.num_workers();

  const double text_bytes =
      cluster.scale_bytes(static_cast<double>(graph.text_size_bytes()));
  // Read, parse and edge distribution are pipelined stages; the slowest
  // one bounds the loading time.
  const auto pipelined = [&](double bytes) {
    return std::max({bytes / cost.disk_read_bps,
                     bytes * config.text_parse_sec_per_byte,
                     cost.network_time(static_cast<Bytes>(bytes), 1)});
  };
  double load_time = 0.0;
  if (config.multi_piece_loading) {
    // Each MPI process streams and parses its own piece. Within a machine
    // there is still a single loader thread per process (Section 4.3.2),
    // so extra cores do not parallelize loading.
    load_time = pipelined(text_bytes / workers);
  } else {
    // Stock loader: one process reads and parses the single input file and
    // distributes edges to their owners through its one NIC — the
    // horizontal-scalability bottleneck of Fig. 11.
    load_time = pipelined(text_bytes);
  }

  const double partition_bytes =
      cluster.scale_bytes(
          total_mirrors * static_cast<double>(config.vertex_mem) +
          static_cast<double>(graph.num_adjacency_entries()) *
              static_cast<double>(config.edge_mem)) /
      workers;
  const double overflow =
      cluster.admit_resident(partition_bytes, "GraphLab graph partition");
  const double resident_bytes = partition_bytes - overflow;

  recorder.phase("mpi_startup", cost.mpi_startup_sec, false,
                 PhaseUsage{.master_cpu_cores = 0.01});
  recorder.phase("load", load_time, false,
                 PhaseUsage{.worker_cpu_cores = 0.6,
                            .worker_mem_bytes = resident_bytes,
                            .worker_net_in_bps = cost.net_bps * 0.5,
                            .worker_net_out_bps = cost.net_bps * 0.5});
  // The slice beyond the budget streams straight to each node's local
  // spill files during finalize; iteration gathers page it back in.
  paging::charge_spill(cluster, recorder, "load", overflow * workers,
                       resident_bytes, /*read_back=*/false);
  const double finalize_units = cluster.scale_units(
      static_cast<double>(graph.num_adjacency_entries()));
  recorder.phase("finalize", cluster.native_compute_time(finalize_units) /
                                 cluster.total_slots(),
                 false,
                 PhaseUsage{.worker_cpu_cores =
                                static_cast<double>(cluster.cores_per_worker()),
                            .worker_mem_bytes = resident_bytes});
  return resident_bytes;
}

/// Charge gathering the distributed results and writing them out. Shared
/// by run_sync and the EVO path.
inline void charge_write(const Graph& graph, sim::Cluster& cluster,
                         PhaseRecorder& recorder, double partition_bytes) {
  const auto& cost = cluster.cost();
  const double out_bytes = cluster.scale_bytes(
      static_cast<double>(graph.num_vertices()) * 20.0);
  recorder.phase(
      "write",
      cost.disk_write_time(
          static_cast<Bytes>(out_bytes / cluster.num_workers())) +
          cost.network_time(static_cast<Bytes>(out_bytes),
                            cluster.num_workers()),
      false,
      PhaseUsage{.worker_cpu_cores = 0.2, .worker_mem_bytes = partition_bytes});
}

/// GraphLab recovery semantics: there is none in the deployed
/// configuration. A lost MPI process aborts the whole job — distributed
/// GraphLab 2.1's snapshot mechanism exists but the paper (like most
/// deployments) runs without it, so the run ends in a crash outcome.
/// The accounted recovery cost is only the detection window before the
/// abort propagates.
inline void abort_on_worker_loss(sim::Cluster& cluster,
                                 PhaseRecorder& recorder,
                                 const std::string& where) {
  if (const sim::FaultEvent* event =
          cluster.faults().take_before(recorder.now())) {
    cluster.faults().stats().recovery_sec +=
        cluster.cost().failure_detection_sec;
    cluster.metrics().incr("job.aborts");
    throw PlatformError(
        PlatformError::Kind::kWorkerLost,
        "GraphLab worker " + std::to_string(event->worker) + " lost during " +
            where + ": MPI aborts the whole job (no snapshots configured)");
  }
}

/// Mirror placement derived from the cluster's partitioning strategy.
/// Under the default hash strategy the engine keeps its native scheme
/// (GasConfig.partitioning): GraphLab's hashed vertex-cut — edges hashed
/// to workers, a vertex mirrored on every worker holding one of its edges
/// — or the classic hashed edge-cut. Any other cluster strategy comes
/// from the shared subsystem: kVertexCut supplies real greedy mirror
/// sets, the vertex partitioners run as edge-cuts with exactly counted
/// cut edges per the assignment's owners. Shared by run_sync and the
/// specialized BFS path so the two charge identical placement bytes.
struct Placement {
  std::vector<std::uint8_t> mirrors;
  std::vector<float> cut_degree;
  double total_mirrors = 0.0;
  bool vertex_cut_mode = false;
};

inline Placement compute_placement(
    const Graph& graph, sim::Cluster& cluster,
    const partition::PartitionAssignment& assignment,
    const GasConfig& config) {
  const std::uint32_t workers = cluster.num_workers();
  const VertexId n = graph.num_vertices();
  const partition::Strategy strategy = cluster.config().partitioner;
  Placement p;
  p.mirrors.assign(n, 1);
  p.cut_degree.assign(n, 0.0f);
  p.total_mirrors = static_cast<double>(n);
  if (strategy == partition::Strategy::kHash &&
      config.partitioning == Partitioning::kVertexCut) {
    p.vertex_cut_mode = true;
    std::vector<std::uint64_t> worker_mask(n, 0);
    for (VertexId v = 0; v < n; ++v) {
      for (const VertexId u : graph.out_neighbors(v)) {
        const std::uint64_t h = (static_cast<std::uint64_t>(v) << 32) | u;
        const std::uint32_t w =
            static_cast<std::uint32_t>((h * 0x9e3779b97f4a7c15ULL) >> 40) %
            workers;
        worker_mask[v] |= std::uint64_t{1} << (w % 64);
        worker_mask[u] |= std::uint64_t{1} << (w % 64);
      }
    }
    p.total_mirrors = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      const int m = std::max(1, __builtin_popcountll(worker_mask[v]));
      p.mirrors[v] = static_cast<std::uint8_t>(std::min(m, 255));
      p.total_mirrors += m;
    }
  } else if (strategy == partition::Strategy::kVertexCut) {
    p.vertex_cut_mode = true;
    p.total_mirrors = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      const std::uint32_t m = assignment.mirrors[v];
      p.mirrors[v] = static_cast<std::uint8_t>(std::min<std::uint32_t>(m, 255));
      p.total_mirrors += static_cast<double>(m);
    }
  } else {
    for (VertexId v = 0; v < n; ++v) {
      float cut = 0.0f;
      for (const VertexId u : graph.out_neighbors(v)) {
        if (assignment.owner_of(u) != assignment.owner_of(v)) cut += 1.0f;
      }
      p.cut_degree[v] = cut;
    }
  }
  return p;
}

template <typename Program>
GasStats run_sync(const Graph& graph, const Program& program,
                  std::vector<typename Program::VData>& data,
                  std::vector<std::uint8_t>& active, sim::Cluster& cluster,
                  PhaseRecorder& recorder, const GasConfig& config,
                  SimTime time_limit) {
  const auto& cost = cluster.cost();
  const std::uint32_t workers = cluster.num_workers();
  const VertexId n = graph.num_vertices();

  const partition::PartitionAssignment assignment =
      partition_graph(graph, cluster, recorder);
  const double imbalance = assignment.quality.imbalance;
  const Placement placement =
      compute_placement(graph, cluster, assignment, config);
  const std::vector<std::uint8_t>& mirrors = placement.mirrors;
  const std::vector<float>& cut_degree = placement.cut_degree;
  const double total_mirrors = placement.total_mirrors;
  const bool vertex_cut_mode = placement.vertex_cut_mode;

  const double partition_bytes =
      charge_startup_and_load(graph, total_mirrors, cluster, recorder, config);

  // Paged view in GraphLab's native layout; mirrors inflate the vertex
  // records by the replication factor. Warm-up sweep discarded: the load
  // phase already charged the initial sequential read.
  const double rep = n > 0 ? total_mirrors / static_cast<double>(n) : 1.0;
  const auto paged = paging::make_view(
      graph, cluster, static_cast<double>(config.vertex_mem) * rep,
      static_cast<double>(config.edge_mem));
  if (paged) {
    paged->touch_all();
    paged->take_stats();
  }

  // ---- synchronous GAS iterations ------------------------------------------
  GasStats stats;
  stats.replication_factor = n > 0 ? total_mirrors / n : 1.0;

  // Host-parallel iteration body: vertices are chunked by the fixed
  // plan_chunks(n) plan; each chunk gathers/applies over its own disjoint
  // vertex range against the shared read-only snapshot and keeps private
  // accumulators (all integer-valued, so the chunk-order merge is exact).
  // Scatter activation is the one cross-chunk write; it goes through a
  // relaxed atomic flag array — only the constant 1 is ever stored, so the
  // resulting active set is schedule-independent.
  const std::size_t chunks = ThreadPool::plan_chunks(n);
  struct ChunkState {
    std::uint64_t active_count = 0;
    double edge_work = 0.0;
    double extra = 0.0;
    double sync_bytes = 0.0;
  };
  std::vector<ChunkState> chunk_states(chunks);
  const std::unique_ptr<std::atomic<std::uint8_t>[]> next_active(
      n > 0 ? new std::atomic<std::uint8_t>[n] : nullptr);

  for (std::uint32_t iter = 0; iter < config.max_iterations; ++iter) {
    if (recorder.now() > time_limit) {
      throw PlatformError(PlatformError::Kind::kTimeout,
                          "GraphLab exceeded the experiment time budget");
    }
    std::uint64_t active_count = 0;
    double edge_work = 0.0;
    double extra = 0.0;
    double sync_bytes = 0.0;
    cluster.run_chunks(n, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t v = begin; v < end; ++v) {
        next_active[v].store(0, std::memory_order_relaxed);
      }
    });

    // Synchronous engine semantics: gathers observe the values from the
    // previous iteration, exactly like GraphLab's sync mode snapshots.
    const std::vector<typename Program::VData> snapshot = data;

    // Serial page-access replay of the gather side before the parallel
    // pass, so miss counts are identical at every host parallelism.
    if (paged) {
      for (VertexId v = 0; v < n; ++v) {
        if (!active[v]) continue;
        paged->touch_vertex(v);
        if constexpr (Program::kGatherDir != EdgeDir::kOut) {
          paged->touch_in_adjacency(v);
        }
        if constexpr (Program::kGatherDir != EdgeDir::kIn) {
          if (graph.directed() || Program::kGatherDir == EdgeDir::kOut) {
            paged->touch_out_adjacency(v);
          }
        }
      }
    }

    cluster.run_chunks(n, [&](std::size_t c, std::size_t begin,
                              std::size_t end) {
      ChunkState& cs = chunk_states[c];
      cs = ChunkState{};
      for (std::size_t i = begin; i < end; ++i) {
        const VertexId v = static_cast<VertexId>(i);
        if (!active[v]) continue;
        ++cs.active_count;
        auto acc = program.gather_init();
        if constexpr (Program::kGatherDir != EdgeDir::kOut) {
          for (const VertexId u : graph.in_neighbors(v)) {
            program.gather(v, u, snapshot[u], acc);
          }
          cs.edge_work += static_cast<double>(graph.in_degree(v));
        }
        if constexpr (Program::kGatherDir != EdgeDir::kIn) {
          if (graph.directed() || Program::kGatherDir == EdgeDir::kOut) {
            for (const VertexId u : graph.out_neighbors(v)) {
              program.gather(v, u, snapshot[u], acc);
            }
            cs.edge_work += static_cast<double>(graph.out_degree(v));
          }
        }
        cs.extra += program.extra_units(v);
        const bool changed = program.apply(v, data[v], acc, iter);
        if (vertex_cut_mode) {
          cs.sync_bytes +=
              (mirrors[v] - 1) *
              (config.vertex_data_bytes + config.mirror_header_bytes);
        } else {
          // Edge-cut: every cut edge of an active vertex carries a message.
          cs.sync_bytes +=
              cut_degree[v] *
              (config.vertex_data_bytes + config.mirror_header_bytes);
        }
        if (changed) {
          if constexpr (Program::kScatterDir != EdgeDir::kIn) {
            for (const VertexId u : graph.out_neighbors(v)) {
              next_active[u].store(1, std::memory_order_relaxed);
            }
            cs.edge_work += static_cast<double>(graph.out_degree(v));
          }
          if constexpr (Program::kScatterDir != EdgeDir::kOut) {
            if (graph.directed()) {
              for (const VertexId u : graph.in_neighbors(v)) {
                next_active[u].store(1, std::memory_order_relaxed);
              }
              cs.edge_work += static_cast<double>(graph.in_degree(v));
            }
          }
        }
      }
    });
    for (const ChunkState& cs : chunk_states) {
      active_count += cs.active_count;
      edge_work += cs.edge_work;
      extra += cs.extra;
      sync_bytes += cs.sync_bytes;
    }
    if (active_count == 0) break;

    const double compute_units =
        cluster.scale_units(static_cast<double>(active_count) + edge_work +
                            extra);
    // Skew-aware: the synchronous barrier waits for the worker with the
    // most assigned load, stretching per-slot compute by max/mean.
    const double compute_time =
        cluster.native_compute_time(compute_units) * imbalance /
        cluster.total_slots();
    // Vertex-cut: mirror synchronization happens twice per step (gather
    // partials up, updated values down). Edge-cut messages flow once.
    const double sync_factor = vertex_cut_mode ? 2.0 : 1.0;
    const double net_time = cost.network_time(
        static_cast<Bytes>(cluster.scale_bytes(sync_bytes * sync_factor)),
        workers);

    const std::string label = "iter_" + std::to_string(iter);
    recorder.phase(label + "/compute", compute_time, true,
                   PhaseUsage{.worker_cpu_cores = static_cast<double>(
                                  cluster.cores_per_worker()),
                              .worker_mem_bytes = partition_bytes});
    recorder.phase(label + "/sync", net_time + cost.net_latency_sec * 4.0,
                   false,
                   PhaseUsage{.worker_cpu_cores = 0.1,
                              .worker_mem_bytes = partition_bytes,
                              .worker_net_in_bps = cost.net_bps * 0.4,
                              .worker_net_out_bps = cost.net_bps * 0.4});
    paging::charge_page_faults(cluster, recorder, label, paged.get(),
                               partition_bytes);
    cluster.metrics().incr("gas.iterations");
    cluster.metrics().add("mirror.sync_bytes",
                          cluster.scale_bytes(sync_bytes * sync_factor));
    abort_on_worker_loss(cluster, recorder,
                         "iteration " + std::to_string(iter));
    ++stats.iterations;
    cluster.run_chunks(n, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t v = begin; v < end; ++v) {
        active[v] = next_active[v].load(std::memory_order_relaxed);
      }
    });
  }

  charge_write(graph, cluster, recorder, partition_bytes);
  return stats;
}

/// Asynchronous engine (GraphLab's native mode, which the paper disabled
/// to match the other platforms' synchronous execution): updates are
/// applied immediately and scheduled vertices are processed from a queue
/// with no global barriers. For monotone programs (BFS, CONN) this
/// converges to the same fixpoint with far fewer vertex updates; the cost
/// model charges per-update work and fine-grained (latency-dominated)
/// communication instead of per-iteration barriers.
///
/// Program concept: same as run_sync, except apply() receives the update
/// count so far instead of an iteration number, and the engine requires
/// idempotent, monotone updates (documented per program).
///
/// This engine is intentionally host-serial: its whole point is the
/// sequential work-queue semantics (each update observes every earlier
/// one), which has no deterministic chunk decomposition. The paper runs
/// GraphLab synchronously anyway; run_sync is the parallel path.
template <typename Program>
GasStats run_async(const Graph& graph, const Program& program,
                   std::vector<typename Program::VData>& data,
                   std::vector<std::uint8_t>& active, sim::Cluster& cluster,
                   PhaseRecorder& recorder, const GasConfig& config,
                   SimTime time_limit) {
  const auto& cost = cluster.cost();
  const std::uint32_t workers = cluster.num_workers();
  const VertexId n = graph.num_vertices();

  // Record placement quality for the report; async execution has no
  // barriers, so the max-over-workers stretch does not apply here.
  partition_graph(graph, cluster, recorder);
  const double partition_bytes = charge_startup_and_load(
      graph, static_cast<double>(n), cluster, recorder, config);
  const auto paged =
      paging::make_view(graph, cluster, static_cast<double>(config.vertex_mem),
                        static_cast<double>(config.edge_mem));
  if (paged) {
    paged->touch_all();
    paged->take_stats();
  }

  GasStats stats;
  std::vector<VertexId> queue;
  queue.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    if (active[v]) queue.push_back(v);
  }

  double updates = 0;
  double edge_work = 0;
  double signal_messages = 0;
  std::size_t cursor = 0;
  const double max_updates =
      static_cast<double>(config.max_iterations) * static_cast<double>(n);

  while (cursor < queue.size()) {
    if (updates > max_updates) {
      throw PlatformError(PlatformError::Kind::kTimeout,
                          "GraphLab async engine failed to converge");
    }
    const VertexId v = queue[cursor++];
    active[v] = 0;
    ++updates;

    // The async engine is host-serial by design, so page touches can sit
    // inline with the gathers they model.
    if (paged) {
      paged->touch_vertex(v);
      if constexpr (Program::kGatherDir != EdgeDir::kOut) {
        paged->touch_in_adjacency(v);
      }
      if constexpr (Program::kGatherDir != EdgeDir::kIn) {
        if (graph.directed() || Program::kGatherDir == EdgeDir::kOut) {
          paged->touch_out_adjacency(v);
        }
      }
    }

    auto acc = program.gather_init();
    if constexpr (Program::kGatherDir != EdgeDir::kOut) {
      for (const VertexId u : graph.in_neighbors(v)) {
        program.gather(v, u, data[u], acc);
      }
      edge_work += static_cast<double>(graph.in_degree(v));
    }
    if constexpr (Program::kGatherDir != EdgeDir::kIn) {
      if (graph.directed() || Program::kGatherDir == EdgeDir::kOut) {
        for (const VertexId u : graph.out_neighbors(v)) {
          program.gather(v, u, data[u], acc);
        }
        edge_work += static_cast<double>(graph.out_degree(v));
      }
    }
    const bool changed = program.apply(v, data[v], acc, 0);
    if (changed) {
      const auto signal = [&](VertexId u) {
        signal_messages += 1.0;
        if (!active[u]) {
          active[u] = 1;
          queue.push_back(u);
        }
      };
      if constexpr (Program::kScatterDir != EdgeDir::kIn) {
        for (const VertexId u : graph.out_neighbors(v)) signal(u);
        edge_work += static_cast<double>(graph.out_degree(v));
      }
      if constexpr (Program::kScatterDir != EdgeDir::kOut) {
        if (graph.directed()) {
          for (const VertexId u : graph.in_neighbors(v)) signal(u);
          edge_work += static_cast<double>(graph.in_degree(v));
        }
      }
    }
  }

  // No barriers: compute time is per-update work; communication is the
  // fine-grained signal/lock traffic (latency-bound small messages).
  const double compute_units = cluster.scale_units(updates + edge_work);
  const double compute_time =
      cluster.native_compute_time(compute_units) / cluster.total_slots();
  const double signal_bytes = cluster.scale_bytes(
      signal_messages * (config.vertex_data_bytes + config.mirror_header_bytes));
  const double net_time =
      cost.network_time(static_cast<Bytes>(signal_bytes), workers) +
      cost.net_latency_sec * 16.0;  // distributed-locking round trips

  recorder.phase("async/compute", compute_time, true,
                 PhaseUsage{.worker_cpu_cores =
                                static_cast<double>(cluster.cores_per_worker()),
                            .worker_mem_bytes = partition_bytes});
  recorder.phase("async/comm", net_time, false,
                 PhaseUsage{.worker_cpu_cores = 0.2,
                            .worker_mem_bytes = partition_bytes,
                            .worker_net_in_bps = cost.net_bps * 0.2,
                            .worker_net_out_bps = cost.net_bps * 0.2});
  paging::charge_page_faults(cluster, recorder, "async", paged.get(),
                             partition_bytes);
  charge_write(graph, cluster, recorder, partition_bytes);
  abort_on_worker_loss(cluster, recorder, "the async run");

  stats.iterations = static_cast<std::uint64_t>(
      updates / std::max<double>(1.0, static_cast<double>(n)));
  stats.replication_factor = 1.0;
  if (recorder.now() > time_limit) {
    throw PlatformError(PlatformError::Kind::kTimeout,
                        "GraphLab async run exceeded the time budget");
  }
  return stats;
}

}  // namespace gb::platforms::gas
