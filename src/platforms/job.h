// Job handles: platform execution without exclusive cluster ownership.
//
// Engines historically owned their Cluster outright — one run, one
// cluster, one report. Under multi-tenant serving (serve/serving.h) the
// physical cluster is a slot ledger owned by a sim::JobScheduler, and
// each admitted job executes against its own Cluster view sized to the
// slots it was granted, with the job key stamped on every span/instant
// the engines record (obs::TraceRecorder job tags). JobHandle is that
// view plus the job's identity: the engine-facing side of a JobGrant.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "datasets/catalog.h"
#include "sim/cluster.h"

namespace gb::platforms {

struct JobHandle {
  std::string key;    // serving job key, e.g. "j03:Giraph/KGS/BFS/..."
  std::string queue;  // capacity queue the job's slots are billed to
  std::uint32_t requested_slots = 0;  // what the job asked for
  std::uint32_t granted_slots = 0;    // what the scheduler allocated
  /// The job's private execution context, sized to granted_slots. Its
  /// clock starts at 0 like any single-job run: per-job simulated times
  /// are relative to the job's own start, which is what makes a job's
  /// result bit-identical whether it ran alone or under contention.
  std::unique_ptr<sim::Cluster> cluster;
};

/// Build the execution context for one admitted job. Applies the same
/// conventions as harness::run_cell's config overload: work_scale from
/// the dataset, one node for non-distributed platforms — plus the job
/// tag that threads the key into every recorded span.
inline JobHandle make_job_handle(std::string key, std::string queue,
                                 std::uint32_t requested_slots,
                                 std::uint32_t granted_slots,
                                 sim::ClusterConfig config,
                                 const datasets::Dataset& dataset,
                                 bool distributed) {
  JobHandle handle;
  handle.key = std::move(key);
  handle.queue = std::move(queue);
  handle.requested_slots = requested_slots;
  handle.granted_slots = granted_slots;
  config.num_workers = distributed ? std::max(granted_slots, 1u) : 1u;
  config.work_scale = dataset.extrapolation();
  config.job_tag = handle.key;
  handle.cluster = std::make_unique<sim::Cluster>(config);
  return handle;
}

}  // namespace gb::platforms
