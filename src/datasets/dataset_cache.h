// Cross-cell in-memory dataset cache.
//
// A campaign grid reuses the same few graphs across dozens of cells; the
// on-disk cache (load_or_generate) already avoids re-*generating* them,
// but each cell would still re-read and re-allocate its own copy — for
// Friendster-class graphs that is seconds of deserialization and gigabytes
// of duplicate memory per cell. DatasetCache memoizes per (id, scale,
// seed): the first requester loads (through the disk cache), every other
// requester — including concurrent ones on other campaign or serving
// threads — shares the same immutable Dataset. Engines never mutate their
// input graph, so sharing is safe by construction.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "datasets/catalog.h"

namespace gb::datasets {

class DatasetCache {
 public:
  /// cache_dir is forwarded to load_or_generate (empty = $GB_CACHE_DIR or
  /// the default directory).
  explicit DatasetCache(std::string cache_dir = "")
      : cache_dir_(std::move(cache_dir)) {}

  DatasetCache(const DatasetCache&) = delete;
  DatasetCache& operator=(const DatasetCache&) = delete;

  virtual ~DatasetCache() = default;

  /// Shared handle to the requested dataset; loads it on first use.
  /// Thread-safe: concurrent requests for the same key coalesce onto one
  /// in-flight load — exactly one attempt runs, and every requester that
  /// joined it observes that attempt's outcome: the same Dataset pointer
  /// on success, the same exception rethrown on failure. A failed attempt
  /// clears the slot, so a *later* call starts a fresh attempt (bounded
  /// retry stays with the caller). scale <= 0 selects the catalog
  /// default, exactly like load_or_generate.
  std::shared_ptr<const Dataset> get(DatasetId id, double scale = 0.0,
                                     std::uint64_t seed = 42);

  /// Distinct loads actually performed (== distinct keys requested when
  /// nothing failed; failed attempts are not counted).
  std::uint64_t loads() const;

  /// Requests served without starting a load: memory hits plus requests
  /// that joined an in-flight attempt.
  std::uint64_t hits() const;

 protected:
  /// The actual load, run outside the cache lock by exactly one thread
  /// per attempt. Tests override this to count, delay, or fail attempts;
  /// the default forwards to load_or_generate.
  virtual std::shared_ptr<const Dataset> load(DatasetId id, double scale,
                                              std::uint64_t seed);

 private:
  using Key = std::tuple<DatasetId, double, std::uint64_t>;

  /// One load attempt, shared between its loader and every waiter that
  /// joined before it resolved. Waiters keep the shared_ptr across the
  /// slot's erasure on failure, so all of them see this attempt's
  /// exception rather than racing to become new loaders.
  struct LoadState {
    std::shared_ptr<const Dataset> dataset;  // set on success
    std::exception_ptr error;                // set on failure
    bool done = false;
  };

  std::string cache_dir_;
  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::map<Key, std::shared_ptr<LoadState>> slots_;
  std::uint64_t loads_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace gb::datasets
