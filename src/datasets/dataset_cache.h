// Cross-cell in-memory dataset cache.
//
// A campaign grid reuses the same few graphs across dozens of cells; the
// on-disk cache (load_or_generate) already avoids re-*generating* them,
// but each cell would still re-read and re-allocate its own copy — for
// Friendster-class graphs that is seconds of deserialization and gigabytes
// of duplicate memory per cell. DatasetCache memoizes per (id, scale,
// seed): the first requester loads (through the disk cache), every other
// requester — including concurrent ones on other campaign threads — shares
// the same immutable Dataset. Engines never mutate their input graph, so
// sharing is safe by construction.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "datasets/catalog.h"

namespace gb::datasets {

class DatasetCache {
 public:
  /// cache_dir is forwarded to load_or_generate (empty = $GB_CACHE_DIR or
  /// the default directory).
  explicit DatasetCache(std::string cache_dir = "")
      : cache_dir_(std::move(cache_dir)) {}

  DatasetCache(const DatasetCache&) = delete;
  DatasetCache& operator=(const DatasetCache&) = delete;

  /// Shared handle to the requested dataset; loads it on first use.
  /// Thread-safe: concurrent requests for the same key block until the
  /// single loader finishes (a failed load rethrows on every waiter and
  /// clears the slot so a later call may retry). scale <= 0 selects the
  /// catalog default, exactly like load_or_generate.
  std::shared_ptr<const Dataset> get(DatasetId id, double scale = 0.0,
                                     std::uint64_t seed = 42);

  /// Distinct loads actually performed (== distinct keys requested when
  /// nothing failed).
  std::uint64_t loads() const;

  /// Requests served from memory without loading.
  std::uint64_t hits() const;

 private:
  using Key = std::tuple<DatasetId, double, std::uint64_t>;

  struct Slot {
    std::shared_ptr<const Dataset> dataset;  // set once ready
    bool loading = false;
  };

  std::string cache_dir_;
  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::map<Key, Slot> slots_;
  std::uint64_t loads_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace gb::datasets
