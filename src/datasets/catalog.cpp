#include "datasets/catalog.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "core/error.h"
#include "core/graph_stats.h"
#include "datasets/generators.h"

namespace gb::datasets {
namespace {

// Paper Table 2. Density column is stored unscaled (Table 2 lists x 1e-5).
const std::vector<DatasetInfo> kCatalog = {
    {DatasetId::kAmazon, "Amazon", true, 262'111, 1'234'877, 1.8e-5, 5, 1.0, -1.0},
    {DatasetId::kWikiTalk, "WikiTalk", true, 2'388'953, 5'018'445, 0.1e-5, 2, 1.0, -1.0},
    {DatasetId::kKGS, "KGS", false, 293'290, 16'558'839, 38.5e-5, 113, 1.0, -1.0},
    {DatasetId::kCitation, "Citation", true, 3'764'117, 16'511'742, 0.1e-5, 4, 1.0, 0.055},
    {DatasetId::kDotaLeague, "DotaLeague", false, 61'171, 50'870'316, 2719.0e-5, 1663, 1.0, -1.0},
    {DatasetId::kSynth, "Synth", false, 2'394'536, 64'152'015, 2.2e-5, 54, 1.0, -1.0},
    {DatasetId::kFriendster, "Friendster", false, 65'608'366, 1'806'067'135, 0.1e-5, 55, 0.01, -1.0},
};

Graph generate_raw(const DatasetInfo& meta, double scale, std::uint64_t seed) {
  const auto scaled_v = [&](double factor = 1.0) {
    return static_cast<VertexId>(
        std::llround(static_cast<double>(meta.paper_vertices) * scale * factor));
  };
  // Edge-generation budgets are calibrated so that the *deduplicated*
  // largest component matches the paper's #V/#E within a few percent
  // (verified by tests/datasets/catalog_test and Table 2 bench).
  switch (meta.id) {
    case DatasetId::kAmazon:
      // Forward-only catalog lattice; the rewiring window sets the BFS
      // depth (~n / window ~ 68 iterations, the paper's outlier).
      return copurchase_graph(scaled_v(), /*k=*/4.78, /*rewire_p=*/0.3,
                              /*window=*/static_cast<VertexId>(5600 * scale) + 8,
                              seed);
    case DatasetId::kWikiTalk:
      return hub_graph(scaled_v(1.07),
                       static_cast<EdgeId>(5.50e6 * scale),
                       /*hubs=*/std::max<VertexId>(4, scaled_v(8e-6)),
                       /*hub_in_fraction=*/0.25, /*hub_out_fraction=*/0.20,
                       /*welcome_fraction=*/0.95, seed);
    case DatasetId::kKGS:
      return weighted_pair_graph(
          scaled_v(1.02), static_cast<EdgeId>(17.0e6 * scale),
          /*skew=*/0.62, /*band_p=*/1.0,
          /*band_window=*/static_cast<VertexId>(20'000 * scale) + 16, seed);
    case DatasetId::kCitation:
      return citation_dag(scaled_v(), /*avg_refs=*/4.42,
                          /*window=*/static_cast<VertexId>(60'000 * scale) + 64,
                          /*copy_p=*/0.95, seed);
    case DatasetId::kDotaLeague:
      return match_clique_graph(
          scaled_v(1.01), /*matches=*/
          static_cast<std::uint64_t>(1.17e6 * scale),
          /*players_per_match=*/10, /*skew=*/0.35, /*band_p=*/1.0,
          /*band_window=*/static_cast<VertexId>(5'200 * scale) + 16, seed);
    case DatasetId::kSynth: {
      // Graph500 Kronecker parameters (A=0.57, B=0.19, C=0.19).
      const double target = 4.19e6 * scale;  // 2^22 at scale 1
      std::uint32_t sc = 1;
      while ((VertexId{1} << sc) < target) ++sc;
      return rmat(sc, static_cast<EdgeId>(67.0e6 * scale), 0.57, 0.19, 0.19,
                  /*directed=*/false, seed);
    }
    case DatasetId::kFriendster:
      return ring_community_graph(scaled_v(1.01), /*communities=*/46,
                                  /*avg_degree=*/55.5, /*local_p=*/0.80,
                                  /*neighbor_p=*/0.20, /*core_fraction=*/0.55,
                                  /*core_pull=*/0.45, seed);
  }
  throw Error("unknown dataset id");
}

std::string cache_path(const DatasetInfo& meta, double scale,
                       std::uint64_t seed, const std::string& cache_dir) {
  std::string dir = cache_dir;
  if (dir.empty()) {
    if (const char* env = std::getenv("GB_CACHE_DIR")) {
      dir = env;
    } else {
      dir = ".graphbench_cache";
    }
  }
  std::ostringstream name;
  name << meta.name << "_s" << scale << "_r" << seed << ".gbin";
  return (std::filesystem::path(dir) / name.str()).string();
}

// Publishes the cache file atomically: writers dump to a unique temp name
// in the same directory and rename() it into place, so a concurrent reader
// never observes a half-written file. POSIX rename is atomic; the last
// writer wins, and every winner wrote identical bytes (same id/scale/seed).
void publish_cache(const Graph& graph, const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
#ifndef _WIN32
  const auto pid = static_cast<std::uint64_t>(::getpid());
#else
  const std::uint64_t pid = 0;
#endif
  const std::string tmp = path + ".tmp." + std::to_string(pid) + "." +
                          std::to_string(counter.fetch_add(1));
  graph.save_binary(tmp);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    // Another process may have published first (e.g. on filesystems where
    // rename-over-existing fails); the cache is valid either way — just
    // drop our temp copy.
    std::filesystem::remove(tmp, ec);
  }
}

}  // namespace

const std::vector<DatasetId>& all_datasets() {
  static const std::vector<DatasetId> ids = [] {
    std::vector<DatasetId> v;
    for (const auto& meta : kCatalog) v.push_back(meta.id);
    return v;
  }();
  return ids;
}

const DatasetInfo& info(DatasetId id) {
  for (const auto& meta : kCatalog) {
    if (meta.id == id) return meta;
  }
  throw Error("unknown dataset id");
}

const DatasetInfo* find_info(const std::string& name) {
  for (const auto& meta : kCatalog) {
    if (meta.name == name) return &meta;
  }
  return nullptr;
}

Dataset generate(DatasetId id, double scale, std::uint64_t seed) {
  const DatasetInfo& meta = info(id);
  if (scale <= 0.0) scale = meta.default_scale;
  Graph raw = generate_raw(meta, scale, seed);
  Dataset ds;
  ds.id = id;
  ds.name = meta.name;
  ds.scale = scale;
  ds.graph = largest_component(raw);
  return ds;
}

Dataset load_or_generate(DatasetId id, double scale, std::uint64_t seed,
                         const std::string& cache_dir) {
  const DatasetInfo& meta = info(id);
  if (scale <= 0.0) scale = meta.default_scale;
  const std::string path = cache_path(meta, scale, seed, cache_dir);
  if (std::filesystem::exists(path)) {
    try {
      Dataset ds;
      ds.id = id;
      ds.name = meta.name;
      ds.scale = scale;
      ds.graph = Graph::load_binary(path);
      return ds;
    } catch (const FormatError&) {
      // Truncated, corrupt, or stale-format cache: treat as a miss and
      // regenerate rather than propagating the error to the caller.
    }
  }
  Dataset ds = generate(id, scale, seed);
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  publish_cache(ds.graph, path);
  return ds;
}

}  // namespace gb::datasets
