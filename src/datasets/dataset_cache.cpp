#include "datasets/dataset_cache.h"

namespace gb::datasets {

std::shared_ptr<const Dataset> DatasetCache::load(DatasetId id, double scale,
                                                  std::uint64_t seed) {
  return std::make_shared<const Dataset>(
      load_or_generate(id, scale, seed, cache_dir_));
}

std::shared_ptr<const Dataset> DatasetCache::get(DatasetId id, double scale,
                                                 std::uint64_t seed) {
  // Normalize the key the way load_or_generate does, so scale=0 and the
  // explicit catalog default share one slot.
  if (scale <= 0.0) scale = info(id).default_scale;
  const Key key{id, scale, seed};

  std::unique_lock lock(mutex_);
  auto it = slots_.find(key);
  if (it != slots_.end()) {
    // Join the existing attempt (or the published dataset). Holding the
    // state by shared_ptr means a failing loader can erase the slot for
    // future retries without yanking the outcome from under us.
    const std::shared_ptr<LoadState> state = it->second;
    ++hits_;
    ready_cv_.wait(lock, [&] { return state->done; });
    if (state->error) std::rethrow_exception(state->error);
    return state->dataset;
  }

  // First requester for this key: this thread is the attempt's loader.
  const auto state = std::make_shared<LoadState>();
  slots_[key] = state;
  lock.unlock();
  try {
    auto loaded = load(id, scale, seed);
    lock.lock();
    state->dataset = std::move(loaded);
    state->done = true;
    ++loads_;
    ready_cv_.notify_all();
    return state->dataset;
  } catch (...) {
    lock.lock();
    state->error = std::current_exception();
    state->done = true;
    // Clear the slot so a later call retries with a fresh attempt; the
    // waiters that already joined still hold this state and will rethrow
    // this attempt's exception.
    slots_.erase(key);
    ready_cv_.notify_all();
    throw;
  }
}

std::uint64_t DatasetCache::loads() const {
  std::lock_guard lock(mutex_);
  return loads_;
}

std::uint64_t DatasetCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

}  // namespace gb::datasets
