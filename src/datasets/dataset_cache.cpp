#include "datasets/dataset_cache.h"

namespace gb::datasets {

std::shared_ptr<const Dataset> DatasetCache::get(DatasetId id, double scale,
                                                 std::uint64_t seed) {
  // Normalize the key the way load_or_generate does, so scale=0 and the
  // explicit catalog default share one slot.
  if (scale <= 0.0) scale = info(id).default_scale;
  const Key key{id, scale, seed};

  std::unique_lock lock(mutex_);
  for (;;) {
    auto [it, inserted] = slots_.try_emplace(key);
    Slot& slot = it->second;
    if (slot.dataset != nullptr) {
      ++hits_;
      return slot.dataset;
    }
    if (!inserted && slot.loading) {
      // Another thread is loading this key; wait for it to publish or
      // fail (failure erases the slot, and we retry as the new loader).
      ready_cv_.wait(lock);
      continue;
    }
    slot.loading = true;
    lock.unlock();
    std::shared_ptr<const Dataset> loaded;
    try {
      loaded = std::make_shared<const Dataset>(
          load_or_generate(id, scale, seed, cache_dir_));
    } catch (...) {
      lock.lock();
      slots_.erase(key);
      ready_cv_.notify_all();
      throw;
    }
    lock.lock();
    Slot& publish = slots_[key];
    publish.dataset = std::move(loaded);
    publish.loading = false;
    ++loads_;
    ready_cv_.notify_all();
    return publish.dataset;
  }
}

std::uint64_t DatasetCache::loads() const {
  std::lock_guard lock(mutex_);
  return loads_;
}

std::uint64_t DatasetCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

}  // namespace gb::datasets
