#include "datasets/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/rng.h"

namespace gb::datasets {
namespace {

/// O(1) sampling from a fixed discrete distribution (Walker alias method).
/// Used for activity-skewed player/user selection.
class AliasSampler {
 public:
  explicit AliasSampler(const std::vector<double>& weights) {
    const std::size_t n = weights.size();
    prob_.resize(n);
    alias_.resize(n);
    double total = 0.0;
    for (double w : weights) total += w;
    std::vector<double> scaled(n);
    std::vector<std::uint32_t> small, large;
    for (std::size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / total;
      (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      const std::uint32_t s = small.back();
      small.pop_back();
      const std::uint32_t l = large.back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] = (scaled[l] + scaled[s]) - 1.0;
      if (scaled[l] < 1.0) {
        large.pop_back();
        small.push_back(l);
      }
    }
    for (std::uint32_t l : large) prob_[l] = 1.0;
    for (std::uint32_t s : small) prob_[s] = 1.0;
  }

  std::uint32_t sample(Xoshiro256& rng) const {
    const std::uint32_t i =
        static_cast<std::uint32_t>(rng.next_below(prob_.size()));
    return rng.next_double() < prob_[i] ? i : alias_[i];
  }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

std::vector<double> zipf_weights(VertexId n, double skew) {
  std::vector<double> w(n);
  for (VertexId i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i) + 1.0, skew);
  }
  return w;
}

}  // namespace

Graph rmat(std::uint32_t scale, EdgeId edges, double a, double b, double c,
           bool directed, std::uint64_t seed) {
  const VertexId n = VertexId{1} << scale;
  GraphBuilder builder(n, directed);
  Xoshiro256 rng(seed);
  const double ab = a + b;
  const double abc = a + b + c;
  for (EdgeId e = 0; e < edges; ++e) {
    VertexId u = 0;
    VertexId v = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: neither bit set
      } else if (r < ab) {
        v |= 1;
      } else if (r < abc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    builder.add_edge(u, v);
  }
  return builder.build();
}

Graph hub_graph(VertexId n, EdgeId edges, VertexId hubs,
                double hub_in_fraction, double hub_out_fraction,
                double welcome_fraction, std::uint64_t seed) {
  GraphBuilder builder(n, /*directed=*/true);
  Xoshiro256 rng(seed);
  // Welcome arcs: one admin-to-user arc for `welcome_fraction` of users
  // (every registered account gets a welcome message). Deterministic sweep
  // so the covered set is exactly that fraction.
  EdgeId welcome = std::min<EdgeId>(
      static_cast<EdgeId>(welcome_fraction * n), edges);
  for (EdgeId e = 0; e < welcome; ++e) {
    const auto user = static_cast<VertexId>(
        (e * 100003ULL) % n);  // coprime stride scatters welcomed users
    const VertexId admin = static_cast<VertexId>(user % hubs);
    if (admin != user) builder.add_edge(admin, user);
  }
  edges -= welcome;

  std::vector<VertexId> previous_dst;
  previous_dst.reserve(edges);
  for (EdgeId e = 0; e < edges; ++e) {
    const VertexId src =
        rng.next_bool(hub_out_fraction)
            ? static_cast<VertexId>(rng.next_below(hubs))
            : static_cast<VertexId>(rng.next_below(n));
    VertexId dst;
    if (rng.next_bool(hub_in_fraction)) {
      dst = static_cast<VertexId>(rng.next_below(hubs));
    } else if (!previous_dst.empty() && rng.next_bool(0.5)) {
      // Copy model: reusing an existing destination yields a power-law
      // in-degree tail without maintaining a weighted structure.
      dst = previous_dst[rng.next_below(previous_dst.size())];
    } else {
      dst = static_cast<VertexId>(rng.next_below(n));
    }
    if (src != dst) {
      builder.add_edge(src, dst);
      previous_dst.push_back(dst);
    }
  }
  return builder.build();
}

namespace {

/// Uniform vertex within +-window of `center`, clamped to [0, n).
VertexId banded_pick(Xoshiro256& rng, VertexId n, VertexId center,
                     VertexId window) {
  const VertexId lo = center > window ? center - window : 0;
  const VertexId hi = std::min<VertexId>(n - 1, center + window);
  return lo + static_cast<VertexId>(rng.next_below(hi - lo + 1));
}

}  // namespace

Graph weighted_pair_graph(VertexId n, EdgeId games, double skew,
                          double band_p, VertexId band_window,
                          std::uint64_t seed) {
  GraphBuilder builder(n, /*directed=*/false);
  Xoshiro256 rng(seed);
  const AliasSampler sampler(zipf_weights(n, skew));
  for (EdgeId g = 0; g < games; ++g) {
    const VertexId u = sampler.sample(rng);
    const VertexId v = rng.next_bool(band_p)
                           ? banded_pick(rng, n, u, band_window)
                           : sampler.sample(rng);
    if (u != v) builder.add_edge(u, v);
  }
  return builder.build();
}

Graph match_clique_graph(VertexId n, std::uint64_t matches,
                         std::uint32_t players_per_match, double skew,
                         double band_p, VertexId band_window,
                         std::uint64_t seed) {
  GraphBuilder builder(n, /*directed=*/false);
  Xoshiro256 rng(seed);
  const AliasSampler sampler(zipf_weights(n, skew));
  std::vector<VertexId> roster(players_per_match);
  for (std::uint64_t m = 0; m < matches; ++m) {
    if (rng.next_bool(band_p)) {
      // Rating-banded matchmaking: everyone near the sampled center.
      const VertexId center = sampler.sample(rng);
      for (auto& p : roster) p = banded_pick(rng, n, center, band_window);
    } else {
      for (auto& p : roster) p = sampler.sample(rng);
    }
    for (std::size_t i = 0; i < roster.size(); ++i) {
      for (std::size_t j = i + 1; j < roster.size(); ++j) {
        if (roster[i] != roster[j]) builder.add_edge(roster[i], roster[j]);
      }
    }
  }
  return builder.build();
}

Graph copurchase_graph(VertexId n, double k, double rewire_p, VertexId window,
                       std::uint64_t seed) {
  GraphBuilder builder(n, /*directed=*/true);
  Xoshiro256 rng(seed);
  const auto k_floor = static_cast<std::uint32_t>(k);
  const double k_frac = k - static_cast<double>(k_floor);
  for (VertexId v = 0; v < n; ++v) {
    const std::uint32_t kv = k_floor + (rng.next_bool(k_frac) ? 1 : 0);
    for (std::uint32_t i = 1; i <= kv; ++i) {
      VertexId target = static_cast<VertexId>((v + i) % n);
      if (rng.next_bool(rewire_p)) {
        // Related products sit nearby in the catalog: forward jump of at
        // most `window` positions.
        const VertexId jump =
            1 + static_cast<VertexId>(rng.next_below(std::max<VertexId>(window, 2)));
        target = static_cast<VertexId>((v + jump) % n);
      }
      if (target != v) builder.add_edge(v, target);
    }
  }
  return builder.build();
}

Graph citation_dag(VertexId n, double avg_refs, VertexId window, double copy_p,
                   std::uint64_t seed) {
  GraphBuilder builder(n, /*directed=*/true);
  Xoshiro256 rng(seed);
  // Circular buffer of recently cited patents: copying from it
  // concentrates references on a small set of landmark patents per era.
  std::vector<VertexId> recent;
  const std::size_t recent_cap = 1024;
  std::size_t recent_pos = 0;
  for (VertexId v = 1; v < n; ++v) {
    // Number of references: 1 + geometric keeps the mean at avg_refs with
    // a realistic long tail of heavily-citing patents.
    const double tail = std::max(avg_refs - 1.0, 0.0);
    const std::uint64_t refs =
        1 + (tail > 0.0 ? rng.next_geometric(1.0 / (tail + 1.0)) : 0);
    const VertexId reach = std::min<VertexId>(v, window);
    for (std::uint64_t r = 0; r < refs; ++r) {
      VertexId target;
      if (rng.next_bool(0.005) && v > 1) {
        // The occasional seminal reference far back in time: keeps BFS
        // depth near the paper's ~11 without inflating the closure (the
        // old targets are shared landmarks).
        target = static_cast<VertexId>(rng.next_below(v));
      } else if (!recent.empty() && rng.next_bool(copy_p)) {
        target = recent[rng.next_below(recent.size())];
      } else {
        // Squared uniform biases citations toward recent patents.
        const double u = rng.next_double();
        const VertexId back = static_cast<VertexId>(u * u * reach);
        target = v - 1 - std::min<VertexId>(back, v - 1);
      }
      if (target != v) {
        builder.add_edge(v, target);
        if (recent.size() < recent_cap) {
          recent.push_back(target);
        } else {
          recent[recent_pos] = target;
          recent_pos = (recent_pos + 1) % recent_cap;
        }
      }
    }
  }
  return builder.build();
}

Graph ring_community_graph(VertexId n, VertexId communities, double avg_degree,
                           double local_p, double neighbor_p,
                           double core_fraction, double core_pull,
                           std::uint64_t seed) {
  GraphBuilder builder(n, /*directed=*/false);
  Xoshiro256 rng(seed);
  // Vertices [0, core_size) form the metro core (community 0); the rest
  // are split evenly over communities 1..communities-1 along the ring.
  const VertexId core_size =
      std::max<VertexId>(1, static_cast<VertexId>(core_fraction * n));
  const VertexId tail = n - core_size;
  const VertexId tail_comms = communities > 1 ? communities - 1 : 1;
  const VertexId comm_size = (tail + tail_comms - 1) / tail_comms + 1;
  const auto community_of = [&](VertexId v) -> VertexId {
    if (v < core_size) return 0;
    return 1 + (v - core_size) / comm_size;
  };
  const auto random_in_community = [&](VertexId c) -> VertexId {
    if (c == 0) return static_cast<VertexId>(rng.next_below(core_size));
    const VertexId lo = core_size + (c - 1) * comm_size;
    const VertexId hi = std::min<VertexId>(lo + comm_size, n);
    return lo + static_cast<VertexId>(rng.next_below(hi - lo));
  };

  const EdgeId target_edges =
      static_cast<EdgeId>(avg_degree * static_cast<double>(n) / 2.0);
  for (EdgeId e = 0; e < target_edges; ++e) {
    // The metro core pulls in extra endpoints: redirect the source there
    // with probability `core_pull`, otherwise draw uniformly.
    const VertexId u = rng.next_bool(core_pull)
                           ? random_in_community(0)
                           : static_cast<VertexId>(rng.next_below(n));
    const VertexId cu = community_of(u);
    VertexId cv;
    const double r = rng.next_double();
    if (r < local_p) {
      cv = cu;
    } else if (r < local_p + neighbor_p) {
      // Step to an adjacent community on the ring.
      const VertexId nc = community_of(n - 1) + 1;
      cv = rng.next_bool(0.5) ? (cu + 1) % nc : (cu + nc - 1) % nc;
    } else {
      cv = community_of(static_cast<VertexId>(rng.next_below(n)));
    }
    const VertexId v = random_in_community(cv);
    if (u != v) builder.add_edge(u, v);
  }
  return builder.build();
}

Graph with_derived_weights(const Graph& g, std::uint64_t seed) {
  GraphBuilder builder(g.num_vertices(), g.directed());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.out_neighbors(v)) {
      if (!g.directed() && u < v) continue;  // each undirected edge once
      builder.add_edge(v, u, derive_edge_weight(v, u, g.directed(), seed));
    }
  }
  return builder.build();
}

}  // namespace gb::datasets
