// Catalog of the seven paper datasets (Table 2).
//
// Each catalog entry records the paper's published characteristics and
// knows how to synthesize a structurally matching graph at a chosen scale
// (scale 1.0 = paper size). Friendster defaults to 1/100 scale because its
// full 1.8 G edges exceed a single host; the cost model extrapolates
// counted work back to full size (see sim/cost_model.h and DESIGN.md §2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/graph.h"

namespace gb::datasets {

enum class DatasetId {
  kAmazon,
  kWikiTalk,
  kKGS,
  kCitation,
  kDotaLeague,
  kSynth,
  kFriendster,
};

/// Static metadata: the paper's Table 2 row plus our generation defaults.
struct DatasetInfo {
  DatasetId id;
  std::string name;
  bool directed;
  VertexId paper_vertices;
  EdgeId paper_edges;
  double paper_density;     // d in Table 2 (not the x 1e-5 scaled value)
  double paper_avg_degree;  // D in Table 2
  double default_scale;     // 1.0 except Friendster
  /// Where the paper's randomly-drawn BFS source fell, as a fraction of
  /// the (chronologically ordered) id space; < 0 means "any vertex".
  /// Matters only for Citation, whose 0.1 % coverage implies the drawn
  /// patent was early (its ancestor cone is bounded by its own age).
  double bfs_source_rank = -1.0;
};

/// A generated instance: the graph plus provenance.
struct Dataset {
  DatasetId id;
  std::string name;
  Graph graph;
  double scale = 1.0;

  /// Work multiplier applied by the cost model so that a scaled-down
  /// graph yields full-size simulated times and memory footprints.
  double extrapolation() const { return 1.0 / scale; }
};

const std::vector<DatasetId>& all_datasets();
const DatasetInfo& info(DatasetId id);
const DatasetInfo* find_info(const std::string& name);

/// Generate a dataset. scale <= 0 selects the catalog default.
/// The result is the largest connected component, densely renumbered,
/// exactly as the paper preprocesses its raw data.
Dataset generate(DatasetId id, double scale = 0.0, std::uint64_t seed = 42);

/// Same, but memoized on disk (cache_dir; default "$GB_CACHE_DIR" or
/// ".graphbench_cache"). Generating the large graphs takes tens of
/// seconds, so every bench binary shares one cache.
Dataset load_or_generate(DatasetId id, double scale = 0.0,
                         std::uint64_t seed = 42,
                         const std::string& cache_dir = "");

}  // namespace gb::datasets
