// Synthetic graph generators.
//
// Each generator reproduces the structural character of one dataset class
// from the paper's Table 2. The paper used real SNAP / Game Trace Archive
// data, which is not redistributable here; these generators are the
// documented substitution (see DESIGN.md §2) and are tuned so that vertex
// and edge counts, directivity, density and degree skew match the paper.
// All generators are deterministic in (parameters, seed).
#pragma once

#include <cstdint>

#include "core/graph.h"

namespace gb::datasets {

/// Graph500-style Kronecker / R-MAT generator (the paper's "Synth").
/// Samples `edges` arcs over 2^scale vertices with recursive quadrant
/// probabilities (a, b, c, d); the caller usually extracts the largest
/// component afterwards, like the paper does.
Graph rmat(std::uint32_t scale, EdgeId edges, double a, double b, double c,
           bool directed, std::uint64_t seed);

/// Hub-and-spokes directed communication graph (WikiTalk class): a small
/// set of hub vertices (admins) receives `hub_in_fraction` of the social
/// arcs and originates `hub_out_fraction` of them (admins both receive and
/// post enormously); the remainder follow a copy model. Additionally,
/// `welcome_fraction` of all users get one arc from an admin (the wiki
/// welcome-message bot), which is what makes out-edge BFS cover nearly the
/// whole graph in a handful of hops. The hubs' enormous out-lists are also
/// what makes the neighborhood-exchange STATS explode.
Graph hub_graph(VertexId n, EdgeId edges, VertexId hubs,
                double hub_in_fraction, double hub_out_fraction,
                double welcome_fraction, std::uint64_t seed);

/// Pairwise-game interaction graph (KGS class): `games` games, each an
/// undirected edge between two players drawn from a Zipf-like activity
/// distribution. With probability `band_p` the opponent comes from a
/// rating band of `band_window` ranks around the first player (rating-
/// matched games stretch the diameter like the real server's ladder).
/// Repeated pairings collapse to single edges.
Graph weighted_pair_graph(VertexId n, EdgeId games, double skew,
                          double band_p, VertexId band_window,
                          std::uint64_t seed);

/// Match-clique graph (DotaLeague class): `matches` matches with
/// `players_per_match` participants; with probability `band_p` a match is
/// rating-banded (all players within `band_window` ranks of a sampled
/// center), else open. All participants are pairwise connected. Produces
/// extremely dense undirected graphs (paper: avg degree 1663).
Graph match_clique_graph(VertexId n, std::uint64_t matches,
                         std::uint32_t players_per_match, double skew,
                         double band_p, VertexId band_window,
                         std::uint64_t seed);

/// Co-purchase graph (Amazon class): directed lattice over the product
/// catalog (each product points at ~`k` similar products, k may be
/// fractional), with probability `rewire_p` of rewiring an arc to a
/// product at most `window` positions ahead. Forward-only arcs over a
/// bounded window give the long BFS depth the paper measures (68
/// iterations on the smallest graph).
Graph copurchase_graph(VertexId n, double k, double rewire_p, VertexId window,
                       std::uint64_t seed);

/// Citation DAG (Citation class): vertex i cites `avg_refs` earlier
/// vertices inside a recency window of `window`; with probability `copy_p`
/// a reference is copied from another recent patent's bibliography, which
/// concentrates citations on a few landmark patents per era. The ancestor
/// closure (what out-edge BFS reaches) therefore stays tiny — the paper's
/// 0.1 % coverage.
Graph citation_dag(VertexId n, double avg_refs, VertexId window, double copy_p,
                   std::uint64_t seed);

/// Ring-of-communities social graph (Friendster class): `communities`
/// communities arranged on a ring; vertices connect mostly within their
/// community, sometimes to neighbor communities, rarely long-range. The
/// ring stretches the diameter so BFS needs ~20+ iterations, like the
/// real Friendster crawl. Community 0 is the "metro core" holding
/// `core_fraction` of all vertices: when a BFS wave reaches it, the
/// frontier explodes to a large share of the graph in one step — the
/// message burst that crashes in-memory platforms at full scale.
/// `core_pull` biases edge placement toward the core: with that
/// probability an edge's source is re-drawn from community 0 instead of
/// uniformly, concentrating endpoint mass there the way the crawl's
/// densely connected center does.
Graph ring_community_graph(VertexId n, VertexId communities, double avg_degree,
                           double local_p, double neighbor_p,
                           double core_fraction, double core_pull,
                           std::uint64_t seed);

/// Materialize seed-derived weights (derive_edge_weight) into a weighted
/// copy of `g`. The runtime SSSP path reads the same weights lazily
/// through EdgeWeights — this exists for weighted exports and for tests
/// pinning stored == derived; the structure is unchanged.
Graph with_derived_weights(const Graph& g, std::uint64_t seed);

}  // namespace gb::datasets
