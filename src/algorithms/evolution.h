// Graph evolution (EVO): the Forest Fire model of Leskovec et al.
//
// The burn process is inherently sequential per new vertex, so all six
// platform implementations share this kernel: it computes the exact set of
// created vertices/edges and, per evolution iteration, the work counts
// (burned edges, messages) that each platform engine converts into its own
// costs. The kernel is deterministic in (graph, params, seed), so every
// platform produces the identical evolved graph — which the tests check.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.h"

namespace gb::algorithms {

struct EvoParams {
  double growth = 0.001;        // fraction of new vertices (total)
  std::uint32_t iterations = 6;
  double p_forward = 0.5;       // forward burning probability
  double r_backward = 0.5;      // backward burning ratio
  std::uint64_t seed = 1;
  std::uint32_t max_burn_per_vertex = 10'000;  // safety valve
};

struct EvoIterationStats {
  std::uint64_t new_vertices = 0;
  std::uint64_t new_edges = 0;
  std::uint64_t burned_vertices = 0;  // vertices visited by the fire
};

struct EvoTrace {
  std::vector<EvoIterationStats> iterations;
  std::uint64_t total_new_vertices = 0;
  std::uint64_t total_new_edges = 0;
  /// New edges as (new vertex id, existing vertex id); new ids start at
  /// graph.num_vertices().
  std::vector<std::pair<VertexId, VertexId>> edges;
};

EvoTrace forest_fire_evolve(const Graph& g, const EvoParams& params);

/// Materialize the evolved graph: the original plus the trace's new
/// vertices and edges (what a platform's EVO output file contains).
Graph apply_evolution(const Graph& g, const EvoTrace& trace);

}  // namespace gb::algorithms
