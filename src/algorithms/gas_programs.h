// The benchmark algorithms as gather-apply-scatter vertex programs
// (platforms/gas/engine.h) — the shape they take on distributed GraphLab.
// Semantics match algorithms/reference.h.
#pragma once

#include <algorithm>
#include <cstdint>

#include "algorithms/reference.h"
#include "core/graph.h"
#include "core/graph_stats.h"
#include "platforms/gas/engine.h"

namespace gb::algorithms::gas {

using platforms::gas::EdgeDir;

// ---- BFS --------------------------------------------------------------------
// Gather: minimum level over in-neighbors; apply: adopt min + 1; scatter
// along out-edges when the level improved.
struct BfsProgram {
  using VData = std::uint64_t;  // level
  using Gather = std::uint64_t;
  static constexpr EdgeDir kGatherDir = EdgeDir::kIn;
  static constexpr EdgeDir kScatterDir = EdgeDir::kOut;

  VertexId source;

  Gather gather_init() const { return kUnreached; }
  void gather(VertexId v, VertexId nbr, const VData& nbr_data,
              Gather& acc) const {
    (void)v;
    (void)nbr;
    acc = std::min(acc, nbr_data);
  }
  bool apply(VertexId v, VData& data, const Gather& acc,
             std::uint32_t iteration) const {
    if (iteration == 0 && v == source) {
      data = 0;
      return true;
    }
    if (acc != kUnreached && acc + 1 < data) {
      data = acc + 1;
      return true;
    }
    return false;
  }
  double extra_units(VertexId) const { return 0; }
};

// ---- CONN -------------------------------------------------------------------
struct ConnProgram {
  using VData = std::uint64_t;  // label
  using Gather = std::uint64_t;
  static constexpr EdgeDir kGatherDir = EdgeDir::kBoth;
  static constexpr EdgeDir kScatterDir = EdgeDir::kBoth;

  Gather gather_init() const { return ~std::uint64_t{0}; }
  void gather(VertexId v, VertexId nbr, const VData& nbr_data,
              Gather& acc) const {
    (void)v;
    (void)nbr;
    acc = std::min(acc, nbr_data);
  }
  bool apply(VertexId v, VData& data, const Gather& acc,
             std::uint32_t iteration) const {
    (void)v;
    (void)iteration;
    if (acc < data) {
      data = acc;
      return true;
    }
    return false;
  }
  double extra_units(VertexId) const { return 0; }
};

// ---- CD ---------------------------------------------------------------------
struct CdData {
  std::uint64_t label = 0;
  CdScore score = 0;
};

struct CdProgram {
  using VData = CdData;
  using Gather = CdTally;
  static constexpr EdgeDir kGatherDir = EdgeDir::kIn;
  static constexpr EdgeDir kScatterDir = EdgeDir::kOut;

  CdParams params;

  Gather gather_init() const { return {}; }
  void gather(VertexId v, VertexId nbr, const VData& nbr_data,
              Gather& acc) const {
    (void)v;
    (void)nbr;
    acc.add(nbr_data.label, nbr_data.score);
  }
  bool apply(VertexId v, VData& data, const Gather& acc,
             std::uint32_t iteration) const {
    (void)v;
    if (acc.empty()) return iteration + 1 < params.iterations;
    const auto [label, max_score] = acc.choose();
    data.label = label;
    data.score = max_score > 0 ? max_score - 1 : 0;
    // CD runs a fixed budget: keep every vertex active until it is spent.
    return iteration + 1 < params.iterations;
  }
  double extra_units(VertexId) const { return 0; }
};

// ---- PageRank (extension) -----------------------------------------------------
struct PageRankProgram {
  using VData = double;  // rank
  using Gather = double;
  static constexpr EdgeDir kGatherDir = EdgeDir::kIn;
  static constexpr EdgeDir kScatterDir = EdgeDir::kOut;

  const Graph* graph = nullptr;
  PageRankParams params;

  Gather gather_init() const { return 0.0; }
  void gather(VertexId v, VertexId nbr, const VData& nbr_data,
              Gather& acc) const {
    (void)v;
    const EdgeId deg = graph->out_degree(nbr);
    if (deg > 0) acc += nbr_data / static_cast<double>(deg);
  }
  bool apply(VertexId v, VData& data, const Gather& acc,
             std::uint32_t iteration) const {
    (void)v;
    data = pagerank_update(acc, graph->num_vertices(), params.damping);
    return iteration + 1 < params.iterations;
  }
  double extra_units(VertexId) const { return 0; }
};

// ---- STATS ------------------------------------------------------------------
// GraphLab's CONN and triangle-count toolkits exist natively; STATS uses a
// gather over out-neighbors with full neighborhood intersection, charged
// via extra_units.
struct StatsProgram {
  using VData = double;  // local clustering coefficient
  using Gather = EdgeId;
  static constexpr EdgeDir kGatherDir = EdgeDir::kOut;
  static constexpr EdgeDir kScatterDir = EdgeDir::kOut;

  const Graph* graph = nullptr;

  Gather gather_init() const { return 0; }
  void gather(VertexId v, VertexId nbr, const VData& nbr_data,
              Gather& acc) const {
    (void)nbr_data;
    acc += sorted_intersection_count(graph->out_neighbors(v),
                                     graph->out_neighbors(nbr), v);
  }
  bool apply(VertexId v, VData& data, const Gather& acc,
             std::uint32_t iteration) const {
    (void)iteration;
    const double deg = static_cast<double>(graph->out_degree(v));
    data = deg >= 2 ? static_cast<double>(acc) / (deg * (deg - 1.0)) : 0.0;
    return false;  // single round, nothing to scatter
  }
  double extra_units(VertexId v) const {
    // Merge-intersection touches both sorted lists per neighbor pair.
    double units = 0;
    for (const VertexId u : graph->out_neighbors(v)) {
      units += static_cast<double>(graph->out_degree(v) + graph->out_degree(u));
    }
    return units;
  }
};

}  // namespace gb::algorithms::gas
