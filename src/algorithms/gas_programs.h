// The benchmark algorithms as gather-apply-scatter vertex programs
// (platforms/gas/engine.h) — the shape they take on distributed GraphLab.
// Semantics match algorithms/reference.h.
#pragma once

#include <algorithm>
#include <cstdint>

#include "algorithms/reference.h"
#include "core/graph.h"
#include "core/graph_stats.h"
#include "platforms/gas/engine.h"

namespace gb::algorithms::gas {

using platforms::gas::EdgeDir;

// ---- BFS --------------------------------------------------------------------
// Gather: minimum level over in-neighbors; apply: adopt min + 1; scatter
// along out-edges when the level improved.
struct BfsProgram {
  using VData = std::uint64_t;  // level
  using Gather = std::uint64_t;
  static constexpr EdgeDir kGatherDir = EdgeDir::kIn;
  static constexpr EdgeDir kScatterDir = EdgeDir::kOut;

  VertexId source;

  Gather gather_init() const { return kUnreached; }
  void gather(VertexId v, VertexId nbr, const VData& nbr_data,
              Gather& acc) const {
    (void)v;
    (void)nbr;
    acc = std::min(acc, nbr_data);
  }
  bool apply(VertexId v, VData& data, const Gather& acc,
             std::uint32_t iteration) const {
    if (iteration == 0 && v == source) {
      data = 0;
      return true;
    }
    if (acc != kUnreached && acc + 1 < data) {
      data = acc + 1;
      return true;
    }
    return false;
  }
  double extra_units(VertexId) const { return 0; }
};

// ---- CONN -------------------------------------------------------------------
struct ConnProgram {
  using VData = std::uint64_t;  // label
  using Gather = std::uint64_t;
  static constexpr EdgeDir kGatherDir = EdgeDir::kBoth;
  static constexpr EdgeDir kScatterDir = EdgeDir::kBoth;

  Gather gather_init() const { return ~std::uint64_t{0}; }
  void gather(VertexId v, VertexId nbr, const VData& nbr_data,
              Gather& acc) const {
    (void)v;
    (void)nbr;
    acc = std::min(acc, nbr_data);
  }
  bool apply(VertexId v, VData& data, const Gather& acc,
             std::uint32_t iteration) const {
    (void)v;
    (void)iteration;
    if (acc < data) {
      data = acc;
      return true;
    }
    return false;
  }
  double extra_units(VertexId) const { return 0; }
};

// ---- CD ---------------------------------------------------------------------
struct CdData {
  std::uint64_t label = 0;
  CdScore score = 0;
};

struct CdProgram {
  using VData = CdData;
  using Gather = CdTally;
  static constexpr EdgeDir kGatherDir = EdgeDir::kIn;
  static constexpr EdgeDir kScatterDir = EdgeDir::kOut;

  CdParams params;

  Gather gather_init() const { return {}; }
  void gather(VertexId v, VertexId nbr, const VData& nbr_data,
              Gather& acc) const {
    (void)v;
    (void)nbr;
    acc.add(nbr_data.label, nbr_data.score);
  }
  bool apply(VertexId v, VData& data, const Gather& acc,
             std::uint32_t iteration) const {
    (void)v;
    if (acc.empty()) return iteration + 1 < params.iterations;
    const auto [label, max_score] = acc.choose();
    data.label = label;
    data.score = max_score > 0 ? max_score - 1 : 0;
    // CD runs a fixed budget: keep every vertex active until it is spent.
    return iteration + 1 < params.iterations;
  }
  double extra_units(VertexId) const { return 0; }
};

// ---- PageRank (extension) -----------------------------------------------------
struct PageRankProgram {
  using VData = double;  // rank
  using Gather = double;
  static constexpr EdgeDir kGatherDir = EdgeDir::kIn;
  static constexpr EdgeDir kScatterDir = EdgeDir::kOut;

  const Graph* graph = nullptr;
  PageRankParams params;

  Gather gather_init() const { return 0.0; }
  void gather(VertexId v, VertexId nbr, const VData& nbr_data,
              Gather& acc) const {
    (void)v;
    const EdgeId deg = graph->out_degree(nbr);
    if (deg > 0) acc += nbr_data / static_cast<double>(deg);
  }
  bool apply(VertexId v, VData& data, const Gather& acc,
             std::uint32_t iteration) const {
    (void)v;
    data = pagerank_update(acc, graph->num_vertices(), params.damping);
    return iteration + 1 < params.iterations;
  }
  double extra_units(VertexId) const { return 0; }
};

// ---- SSSP (Graphalytics extension) ------------------------------------------
// Gather: minimum of in-neighbor distance + that edge's weight; apply:
// adopt when smaller; scatter along out-edges on improvement. Weights
// come through the EdgeWeights view (stored or seed-derived), identical
// on every engine.
struct SsspProgram {
  using VData = std::uint64_t;  // distance
  using Gather = std::uint64_t;
  static constexpr EdgeDir kGatherDir = EdgeDir::kIn;
  static constexpr EdgeDir kScatterDir = EdgeDir::kOut;

  VertexId source;
  EdgeWeights weights;

  Gather gather_init() const { return kUnreached; }
  void gather(VertexId v, VertexId nbr, const VData& nbr_data,
              Gather& acc) const {
    if (nbr_data == kUnreached) return;
    acc = std::min(acc, nbr_data + weights.weight(nbr, v));
  }
  bool apply(VertexId v, VData& data, const Gather& acc,
             std::uint32_t iteration) const {
    if (iteration == 0 && v == source) {
      data = 0;
      return true;
    }
    if (acc < data) {
      data = acc;
      return true;
    }
    return false;
  }
  double extra_units(VertexId) const { return 0; }
};

// ---- STATS / LCC ------------------------------------------------------------
// GraphLab's CONN and triangle-count toolkits exist natively; the gather
// pass models the neighborhood exchange over both edge directions while
// the apply computes the vertex's LCC with the shared kernel
// (core/graph_stats.h: in/out union neighborhood for directed graphs),
// charged via extra_units. The per-vertex values double as the LCC
// algorithm's output; STATS reduces them to an average.
struct StatsProgram {
  using VData = double;  // local clustering coefficient
  using Gather = EdgeId;
  static constexpr EdgeDir kGatherDir = EdgeDir::kBoth;
  static constexpr EdgeDir kScatterDir = EdgeDir::kOut;

  const Graph* graph = nullptr;

  Gather gather_init() const { return 0; }
  void gather(VertexId v, VertexId nbr, const VData& nbr_data,
              Gather& acc) const {
    // The exchange itself is charged by the engine per gathered edge; the
    // intersections happen in apply over the full union neighborhood.
    (void)v;
    (void)nbr;
    (void)nbr_data;
    (void)acc;
  }
  bool apply(VertexId v, VData& data, const Gather& acc,
             std::uint32_t iteration) const {
    (void)acc;
    (void)iteration;
    std::vector<VertexId> scratch;
    const auto nbrs = lcc_neighborhood(*graph, v, scratch);
    data = lcc_from_counts(lcc_links(*graph, nbrs, v), nbrs.size());
    return false;  // single round, nothing to scatter
  }
  double extra_units(VertexId v) const {
    // Merge-intersection touches the neighborhood and each member's list.
    std::vector<VertexId> scratch;
    return static_cast<double>(
        lcc_work_units(*graph, lcc_neighborhood(*graph, v, scratch)));
  }
};

}  // namespace gb::algorithms::gas
