// Graph500-style BFS validation and the TEPS metric.
//
// The paper positions its EPS metric as "a straightforward extension of
// the TEPS metric used by Graph500" (Section 2.1). This module provides
// the original: spec-style validation of a BFS result and traversed-edges
// -per-second over the searched component, so the Synth dataset can be
// exercised exactly the way Graph500 exercises its Kronecker graphs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/graph.h"

namespace gb::algorithms {

struct Graph500Validation {
  bool valid = true;
  std::string error;  // first violated rule, empty when valid
};

/// Validate a level array against the Graph500 result rules (adapted to
/// levels rather than parent pointers):
///  1. the source has level 0 and every other level is positive;
///  2. levels of adjacent reached vertices differ by at most 1;
///  3. every reached non-source vertex has a neighbor one level closer;
///  4. reachability is exact: a reached and an unreached vertex are never
///     adjacent (undirected graphs), and every vertex adjacent *from* a
///     reached vertex is reached (directed graphs).
Graph500Validation validate_bfs_levels(const Graph& g, VertexId source,
                                       const std::vector<std::uint64_t>& levels);

/// Edges within the searched component (what Graph500 counts as
/// "traversed"): edges with at least one reached endpoint.
EdgeId traversed_edges(const Graph& g,
                       const std::vector<std::uint64_t>& levels);

/// Traversed edges per second.
double teps(EdgeId edges, double seconds);

/// Harmonic mean of per-root TEPS values (the Graph500 aggregate).
double harmonic_mean_teps(const std::vector<double>& teps_values);

}  // namespace gb::algorithms
