// The five benchmark algorithms written against the Pregel vertex API
// (platforms/pregel/engine.h), the way the paper implemented them on
// Giraph. Semantics match algorithms/reference.h exactly.
#pragma once

#include <span>

#include "algorithms/reference.h"
#include "core/graph_stats.h"
#include "platforms/pregel/engine.h"

namespace gb::algorithms::pregel {

using platforms::pregel::Context;

// ---- BFS --------------------------------------------------------------------
// Value: current level (kUnreached until visited). Message: level + 1.
struct BfsProgram {
  VertexId source;

  /// Min-combiner: only the smallest proposed level per target matters.
  static std::uint64_t combine(std::uint64_t a, std::uint64_t b) {
    return std::min(a, b);
  }

  void compute(Context<std::uint64_t, std::uint64_t>& ctx,
               std::uint64_t& value, std::span<const std::uint64_t> msgs) {
    if (ctx.superstep() == 0) {
      if (ctx.id() == source) {
        value = 0;
        ctx.send_to_all_neighbors(1);
      }
      ctx.vote_to_halt();
      return;
    }
    std::uint64_t best = value;
    for (const std::uint64_t m : msgs) best = std::min(best, m);
    if (best < value) {
      value = best;
      ctx.send_to_all_neighbors(value + 1);
    }
    ctx.vote_to_halt();
  }
};

// ---- CONN -------------------------------------------------------------------
// Min-label propagation over both edge directions (weak connectivity).
struct ConnProgram {
  /// Min-combiner: only the smallest label per target matters.
  static std::uint64_t combine(std::uint64_t a, std::uint64_t b) {
    return std::min(a, b);
  }

  void compute(Context<std::uint64_t, std::uint64_t>& ctx,
               std::uint64_t& value, std::span<const std::uint64_t> msgs) {
    if (ctx.superstep() == 0) {
      value = ctx.id();
      broadcast(ctx, value);
      ctx.vote_to_halt();
      return;
    }
    std::uint64_t smallest = value;
    for (const std::uint64_t m : msgs) smallest = std::min(smallest, m);
    if (smallest < value) {
      value = smallest;
      broadcast(ctx, value);
    }
    ctx.vote_to_halt();
  }

 private:
  static void broadcast(Context<std::uint64_t, std::uint64_t>& ctx,
                        std::uint64_t label) {
    // Weak connectivity needs the label to flow against directed edges
    // too; Giraph implementations do this by messaging in-neighbors as
    // well (the input format carries both lists).
    ctx.send_to_all_neighbors(label);
    const auto& g = *ctx.graph();
    if (g.directed()) {
      for (const VertexId u : g.in_neighbors(ctx.id())) ctx.send(u, label);
    }
  }
};

// ---- CD ---------------------------------------------------------------------
struct CdValue {
  std::uint64_t label = 0;
  CdScore score = 0;
};

struct CdMessage {
  std::uint64_t label = 0;
  CdScore score = 0;
};

struct CdProgram {
  CdParams params;

  void compute(Context<CdValue, CdMessage>& ctx, CdValue& value,
               std::span<const CdMessage> msgs) {
    if (ctx.superstep() == 0) {
      value.label = ctx.id();
      value.score = params.initial_units();
    } else if (!msgs.empty()) {
      CdTally tally;
      for (const CdMessage& m : msgs) tally.add(m.label, m.score);
      const auto [label, max_score] = tally.choose();
      value.label = label;
      value.score = max_score > 0 ? max_score - 1 : 0;
    }
    // Every vertex re-broadcasts each round until the iteration budget is
    // spent — receivers tally *all* neighbors every round, exactly like
    // the reference implementation. Only then does the vertex halt.
    if (ctx.superstep() < params.iterations) {
      ctx.send_to_all_neighbors({value.label, value.score});
    } else {
      ctx.vote_to_halt();
    }
  }
};

// ---- PageRank (extension) -----------------------------------------------------
// Value: rank. Message: sender's rank / out-degree.
struct PageRankProgram {
  PageRankParams params;

  void compute(Context<double, double>& ctx, double& value,
               std::span<const double> msgs) {
    const VertexId n = ctx.num_vertices();
    if (ctx.superstep() == 0) {
      value = 1.0 / static_cast<double>(n);
    } else {
      double sum = 0.0;
      for (const double m : msgs) sum += m;
      value = pagerank_update(sum, n, params.damping);
    }
    if (ctx.superstep() < params.iterations) {
      const EdgeId deg = ctx.out_degree();
      if (deg > 0) {
        ctx.send_to_all_neighbors(value / static_cast<double>(deg));
      }
    } else {
      ctx.vote_to_halt();
    }
  }
};

// ---- SSSP (Graphalytics extension) ------------------------------------------
// Value: current distance (kUnreached until relaxed). Message: candidate
// distance through the sending edge. Each out-neighbor gets a different
// message (distance + that edge's weight), so there is no LALP broadcast
// to save — explicit per-edge sends, min-combined like BFS.
struct SsspProgram {
  VertexId source;
  EdgeWeights weights;

  /// Min-combiner: only the smallest proposed distance per target matters.
  static std::uint64_t combine(std::uint64_t a, std::uint64_t b) {
    return std::min(a, b);
  }

  void compute(Context<std::uint64_t, std::uint64_t>& ctx,
               std::uint64_t& value, std::span<const std::uint64_t> msgs) {
    if (ctx.superstep() == 0) {
      if (ctx.id() == source) {
        value = 0;
        relax(ctx, value);
      }
      ctx.vote_to_halt();
      return;
    }
    std::uint64_t best = value;
    for (const std::uint64_t m : msgs) best = std::min(best, m);
    if (best < value) {
      value = best;
      relax(ctx, value);
    }
    ctx.vote_to_halt();
  }

 private:
  void relax(Context<std::uint64_t, std::uint64_t>& ctx, std::uint64_t d) {
    const auto nbrs = ctx.out_neighbors();
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      ctx.send(nbrs[k], d + weights.out_weight(ctx.id(), k));
    }
  }
};

// ---- STATS / LCC ------------------------------------------------------------
// Superstep 0: broadcast adjacency lists (the engine charges the full
// neighborhood-exchange volume — the paper's STATS crash driver).
// Superstep 1: compute the vertex's LCC with the shared kernel
// (core/graph_stats.h: in/out union neighborhood for directed graphs) and
// aggregate it. The per-vertex values double as the LCC algorithm's
// output; STATS reads only the aggregate.
struct StatsProgram {
  void compute(Context<double, std::uint64_t>& ctx, double& value,
               std::span<const std::uint64_t> msgs) {
    (void)msgs;
    if (ctx.superstep() == 0) {
      ctx.send_adjacency_to_all_neighbors();
      ctx.vote_to_halt();
      return;
    }
    const Graph& g = *ctx.graph();
    std::vector<VertexId> scratch;
    const auto nbrs = lcc_neighborhood(g, ctx.id(), scratch);
    // Charge the platform cost of merging every received list against the
    // neighborhood even though the host kernel may shortcut via binary
    // probing.
    ctx.charge(static_cast<double>(lcc_work_units(g, nbrs)));
    value = lcc_from_counts(lcc_links(g, nbrs, ctx.id()), nbrs.size());
    ctx.aggregate(value);
    ctx.vote_to_halt();
  }
};

}  // namespace gb::algorithms::pregel
