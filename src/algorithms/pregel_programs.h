// The five benchmark algorithms written against the Pregel vertex API
// (platforms/pregel/engine.h), the way the paper implemented them on
// Giraph. Semantics match algorithms/reference.h exactly.
#pragma once

#include <span>

#include "algorithms/reference.h"
#include "core/graph_stats.h"
#include "platforms/pregel/engine.h"

namespace gb::algorithms::pregel {

using platforms::pregel::Context;

// ---- BFS --------------------------------------------------------------------
// Value: current level (kUnreached until visited). Message: level + 1.
struct BfsProgram {
  VertexId source;

  /// Min-combiner: only the smallest proposed level per target matters.
  static std::uint64_t combine(std::uint64_t a, std::uint64_t b) {
    return std::min(a, b);
  }

  void compute(Context<std::uint64_t, std::uint64_t>& ctx,
               std::uint64_t& value, std::span<const std::uint64_t> msgs) {
    if (ctx.superstep() == 0) {
      if (ctx.id() == source) {
        value = 0;
        ctx.send_to_all_neighbors(1);
      }
      ctx.vote_to_halt();
      return;
    }
    std::uint64_t best = value;
    for (const std::uint64_t m : msgs) best = std::min(best, m);
    if (best < value) {
      value = best;
      ctx.send_to_all_neighbors(value + 1);
    }
    ctx.vote_to_halt();
  }
};

// ---- CONN -------------------------------------------------------------------
// Min-label propagation over both edge directions (weak connectivity).
struct ConnProgram {
  /// Min-combiner: only the smallest label per target matters.
  static std::uint64_t combine(std::uint64_t a, std::uint64_t b) {
    return std::min(a, b);
  }

  void compute(Context<std::uint64_t, std::uint64_t>& ctx,
               std::uint64_t& value, std::span<const std::uint64_t> msgs) {
    if (ctx.superstep() == 0) {
      value = ctx.id();
      broadcast(ctx, value);
      ctx.vote_to_halt();
      return;
    }
    std::uint64_t smallest = value;
    for (const std::uint64_t m : msgs) smallest = std::min(smallest, m);
    if (smallest < value) {
      value = smallest;
      broadcast(ctx, value);
    }
    ctx.vote_to_halt();
  }

 private:
  static void broadcast(Context<std::uint64_t, std::uint64_t>& ctx,
                        std::uint64_t label) {
    // Weak connectivity needs the label to flow against directed edges
    // too; Giraph implementations do this by messaging in-neighbors as
    // well (the input format carries both lists).
    ctx.send_to_all_neighbors(label);
    const auto& g = *ctx.graph();
    if (g.directed()) {
      for (const VertexId u : g.in_neighbors(ctx.id())) ctx.send(u, label);
    }
  }
};

// ---- CD ---------------------------------------------------------------------
struct CdValue {
  std::uint64_t label = 0;
  CdScore score = 0;
};

struct CdMessage {
  std::uint64_t label = 0;
  CdScore score = 0;
};

struct CdProgram {
  CdParams params;

  void compute(Context<CdValue, CdMessage>& ctx, CdValue& value,
               std::span<const CdMessage> msgs) {
    if (ctx.superstep() == 0) {
      value.label = ctx.id();
      value.score = params.initial_units();
    } else if (!msgs.empty()) {
      CdTally tally;
      for (const CdMessage& m : msgs) tally.add(m.label, m.score);
      const auto [label, max_score] = tally.choose();
      value.label = label;
      value.score = max_score > 0 ? max_score - 1 : 0;
    }
    // Every vertex re-broadcasts each round until the iteration budget is
    // spent — receivers tally *all* neighbors every round, exactly like
    // the reference implementation. Only then does the vertex halt.
    if (ctx.superstep() < params.iterations) {
      ctx.send_to_all_neighbors({value.label, value.score});
    } else {
      ctx.vote_to_halt();
    }
  }
};

// ---- PageRank (extension) -----------------------------------------------------
// Value: rank. Message: sender's rank / out-degree.
struct PageRankProgram {
  PageRankParams params;

  void compute(Context<double, double>& ctx, double& value,
               std::span<const double> msgs) {
    const VertexId n = ctx.num_vertices();
    if (ctx.superstep() == 0) {
      value = 1.0 / static_cast<double>(n);
    } else {
      double sum = 0.0;
      for (const double m : msgs) sum += m;
      value = pagerank_update(sum, n, params.damping);
    }
    if (ctx.superstep() < params.iterations) {
      const EdgeId deg = ctx.out_degree();
      if (deg > 0) {
        ctx.send_to_all_neighbors(value / static_cast<double>(deg));
      }
    } else {
      ctx.vote_to_halt();
    }
  }
};

// ---- STATS ------------------------------------------------------------------
// Superstep 0: aggregate vertex/edge counts and broadcast adjacency lists.
// Superstep 1: intersect each in-neighbor's list with the own list and
// aggregate the local clustering coefficient.
struct StatsProgram {
  void compute(Context<double, std::uint64_t>& ctx, double& value,
               std::span<const std::uint64_t> msgs) {
    (void)msgs;
    if (ctx.superstep() == 0) {
      ctx.send_adjacency_to_all_neighbors();
      ctx.vote_to_halt();
      return;
    }
    const auto own = ctx.out_neighbors();
    EdgeId links = 0;
    double work = 0;
    for (const VertexId sender : ctx.adjacency_senders()) {
      const auto theirs = ctx.adjacency_of(sender);
      // Charge the platform cost of scanning both received lists even
      // though the host kernel may shortcut via binary probing.
      work += static_cast<double>(own.size() + theirs.size());
      links += sorted_intersection_count(own, theirs, ctx.id());
    }
    ctx.charge(work);
    const double deg = static_cast<double>(own.size());
    value = deg >= 2 ? static_cast<double>(links) / (deg * (deg - 1.0)) : 0.0;
    ctx.aggregate(value);
    ctx.vote_to_halt();
  }
};

}  // namespace gb::algorithms::pregel
