#include "algorithms/platform_suite.h"

#include <algorithm>
#include <cmath>

#include "algorithms/evolution.h"
#include "algorithms/gas_programs.h"
#include "algorithms/graphdb_algorithms.h"
#include "algorithms/mr_jobs.h"
#include "algorithms/pregel_programs.h"
#include "algorithms/reference.h"
#include "core/error.h"
#include "core/graph_stats.h"
#include "platforms/dataflow/engine.h"
#include "platforms/gas/bfs.h"
#include "platforms/mapreduce/engine.h"
#include "platforms/partitioning.h"
#include "platforms/pregel/bfs.h"

namespace gb::algorithms {
namespace {

using platforms::Algorithm;
using platforms::AlgorithmOutput;
using platforms::AlgorithmParams;
using platforms::PhaseRecorder;
using platforms::PhaseUsage;
using platforms::Platform;
using platforms::RunResult;

EvoParams evo_params_from(const AlgorithmParams& params) {
  EvoParams evo;
  evo.growth = params.evo_growth;
  evo.iterations = params.evo_iterations;
  evo.p_forward = params.evo_p_forward;
  evo.r_backward = params.evo_r_backward;
  evo.seed = params.seed;
  return evo;
}

CdParams cd_params_from(const AlgorithmParams& params) {
  CdParams cd;
  cd.initial_score = params.cd_initial_score;
  cd.hop_attenuation = params.cd_hop_attenuation;
  cd.iterations = params.cd_max_iterations;
  return cd;
}

PageRankParams pagerank_params_from(const AlgorithmParams& params) {
  PageRankParams pr;
  pr.iterations = params.pagerank_iterations;
  pr.damping = params.pagerank_damping;
  return pr;
}

AlgorithmOutput evo_output(const Graph& g, const EvoTrace& trace) {
  AlgorithmOutput out;
  out.vertices = g.num_vertices() + trace.total_new_vertices;
  out.edges = g.num_edges() + trace.total_new_edges;
  out.scalar = static_cast<double>(trace.total_new_edges);
  out.iterations = trace.iterations.size();
  return out;
}

/// STATS/LCC preflight volumes, all O(V + E log d) to compute: the id-list
/// exchange and the merge-intersection work the kernel would perform over
/// the Graphalytics union neighborhoods (plain out-lists when undirected —
/// those totals match the old sender-centric sweep exactly, because every
/// term is an integer-valued double and addition of exact integers
/// commutes).
struct StatsVolumes {
  double exchange_records = 0;  // one per received adjacency list
  double exchange_bytes = 0;
  double intersect_units = 0;
};

StatsVolumes stats_volumes(const Graph& g, ThreadPool* pool = nullptr) {
  StatsVolumes v;
  const VertexId n = g.num_vertices();
  // Chunked partial sums merged in chunk order; every term is an
  // integer-valued double, so the totals equal the serial sweep exactly.
  const std::size_t chunks = ThreadPool::plan_chunks(n);
  std::vector<StatsVolumes> partial(chunks);
  run_chunks(pool, n, [&](std::size_t c, std::size_t begin, std::size_t end) {
    StatsVolumes p;
    std::vector<VertexId> scratch;
    for (std::size_t i = begin; i < end; ++i) {
      const auto x = static_cast<VertexId>(i);
      const auto nbrs = lcc_neighborhood(g, x, scratch);
      // x receives the out-list of every neighborhood member.
      p.exchange_records += static_cast<double>(nbrs.size());
      for (const VertexId u : nbrs) {
        p.exchange_bytes += static_cast<double>(g.out_degree(u)) * 8.0 + 16.0;
      }
      p.intersect_units += static_cast<double>(lcc_work_units(g, nbrs));
    }
    partial[c] = p;
  });
  for (const StatsVolumes& p : partial) {
    v.exchange_records += p.exchange_records;
    v.exchange_bytes += p.exchange_bytes;
    v.intersect_units += p.intersect_units;
  }
  return v;
}

/// SSSP's scalar: how many vertices ended up reachable from the source.
double count_reached(const std::vector<std::uint64_t>& dist) {
  std::uint64_t reached = 0;
  for (const std::uint64_t d : dist) {
    if (d != kUnreached) ++reached;
  }
  return static_cast<double>(reached);
}

// ============================ Giraph =========================================

class GiraphPlatform final : public Platform {
 public:
  explicit GiraphPlatform(bool gps = false) : gps_(gps) {}

  std::string name() const override { return gps_ ? "GPS" : "Giraph"; }
  bool distributed() const override { return true; }

  RunResult run(const datasets::Dataset& dataset, Algorithm algorithm,
                const AlgorithmParams& params,
                sim::Cluster& cluster) const override {
    const Graph& g = dataset.graph;
    PhaseRecorder rec(cluster);
    platforms::pregel::EngineConfig config;
    config.checkpoint_interval = params.checkpoint_interval;
    config.legacy_message_buffers = params.legacy_host_buffers;
    if (gps_) {
      // GPS = Pregel + LALP (large-adjacency-list partitioning).
      config.lalp_threshold = 100;
    }
    AlgorithmOutput out;

    switch (algorithm) {
      case Algorithm::kBfs: {
        if (params.direction_optimizing) {
          // Direction-optimizing frontier specialization — bit-identical
          // simulated results, much less host work (no message objects).
          auto bsp = platforms::pregel::run_bsp_bfs(
              g, params.bfs_source, cluster, rec, params.time_limit, config);
          out.vertex_values = std::move(bsp.values);
          out.iterations = bsp.supersteps;
          break;
        }
        pregel::BfsProgram prog{params.bfs_source};
        auto bsp = platforms::pregel::run_bsp<std::uint64_t, std::uint64_t>(
            g, prog, cluster, rec, params.time_limit, kUnreached, config);
        out.vertex_values = std::move(bsp.values);
        out.iterations = bsp.supersteps;
        break;
      }
      case Algorithm::kConn: {
        pregel::ConnProgram prog;
        auto bsp = platforms::pregel::run_bsp<std::uint64_t, std::uint64_t>(
            g, prog, cluster, rec, params.time_limit, 0, config);
        out.vertex_values = std::move(bsp.values);
        out.iterations = bsp.supersteps;
        break;
      }
      case Algorithm::kCd: {
        pregel::CdProgram prog{cd_params_from(params)};
        auto bsp =
            platforms::pregel::run_bsp<pregel::CdValue, pregel::CdMessage>(
                g, prog, cluster, rec, params.time_limit, {}, config);
        out.vertex_values.reserve(bsp.values.size());
        for (const auto& v : bsp.values) out.vertex_values.push_back(v.label);
        out.iterations = bsp.supersteps;
        break;
      }
      case Algorithm::kStats: {
        pregel::StatsProgram prog;
        auto bsp = platforms::pregel::run_bsp<double, std::uint64_t>(
            g, prog, cluster, rec, params.time_limit, 0.0, config);
        out.scalar = g.num_vertices() > 0
                         ? bsp.aggregate / static_cast<double>(g.num_vertices())
                         : 0.0;
        out.vertices = g.num_vertices();
        out.edges = g.num_edges();
        out.iterations = bsp.supersteps;
        break;
      }
      case Algorithm::kPageRank: {
        pregel::PageRankProgram prog{pagerank_params_from(params)};
        auto bsp = platforms::pregel::run_bsp<double, double>(
            g, prog, cluster, rec, params.time_limit, 0.0, config);
        std::vector<double> ranks = std::move(bsp.values);
        out.vertex_values = encode_ranks(ranks);
        out.iterations = bsp.supersteps;
        break;
      }
      case Algorithm::kSssp: {
        pregel::SsspProgram prog{params.bfs_source, EdgeWeights(g, params.seed)};
        auto bsp = platforms::pregel::run_bsp<std::uint64_t, std::uint64_t>(
            g, prog, cluster, rec, params.time_limit, kUnreached, config);
        out.scalar = count_reached(bsp.values);
        out.vertex_values = std::move(bsp.values);
        out.iterations = bsp.supersteps;
        break;
      }
      case Algorithm::kLcc: {
        pregel::StatsProgram prog;
        auto bsp = platforms::pregel::run_bsp<double, std::uint64_t>(
            g, prog, cluster, rec, params.time_limit, 0.0, config);
        out.scalar = lcc_average(bsp.values);
        out.vertex_values = encode_ranks(bsp.values);
        out.iterations = bsp.supersteps;
        break;
      }
      case Algorithm::kEvo: {
        const EvoTrace trace = forest_fire_evolve(g, evo_params_from(params));
        const double partition = platforms::pregel::charge_setup_and_load(
            g, cluster, rec, config);
        const double imbalance =
            platforms::partition_graph(g, cluster, rec).quality.imbalance;
        const auto& cost = cluster.cost();
        // The EVO accounting loop writes no checkpoints, so a recovery
        // replays from job start.
        SimTime last_checkpoint = 0.0;
        std::size_t step = 0;
        for (const auto& iter : trace.iterations) {
          const double units = cluster.scale_units(
              static_cast<double>(iter.burned_vertices + iter.new_edges) *
              config.units_per_message);
          const double msg_bytes = cluster.scale_bytes(
              static_cast<double>(iter.new_edges) *
              (8.0 + static_cast<double>(config.message_overhead)));
          const std::string label = "superstep_" + std::to_string(step++);
          rec.phase(label + "/compute",
                    cluster.jvm_compute_time(units) * imbalance /
                        cluster.total_slots(),
                    true,
                    PhaseUsage{.worker_cpu_cores = static_cast<double>(
                                   cluster.cores_per_worker()),
                               .worker_mem_bytes = partition});
          rec.phase(label + "/sync",
                    cost.network_time(static_cast<Bytes>(msg_bytes),
                                      cluster.num_workers()) +
                        cost.bsp_barrier_sec,
                    false,
                    PhaseUsage{.worker_cpu_cores = 0.1,
                               .worker_mem_bytes = partition,
                               .master_cpu_cores = 0.03});
          platforms::pregel::handle_worker_loss(cluster, rec, config,
                                                partition, partition,
                                                last_checkpoint, label);
        }
        platforms::pregel::charge_write(g, cluster, rec, partition);
        out = evo_output(g, trace);
        break;
      }
    }
    return rec.finish(std::move(out), Bytes{200} << 20);
  }

 private:
  bool gps_;
};

// ======================== Hadoop / YARN ======================================

enum class MRVariant { kHadoop, kYarn, kHaLoop, kPegasus };

class MapReducePlatform final : public Platform {
 public:
  explicit MapReducePlatform(MRVariant variant) : variant_(variant) {}

  std::string name() const override {
    switch (variant_) {
      case MRVariant::kHadoop:
        return "Hadoop";
      case MRVariant::kYarn:
        return "YARN";
      case MRVariant::kHaLoop:
        return "HaLoop";
      case MRVariant::kPegasus:
        return "PEGASUS";
    }
    return "?";
  }
  bool distributed() const override { return true; }

  RunResult run(const datasets::Dataset& dataset, Algorithm algorithm,
                const AlgorithmParams& params,
                sim::Cluster& cluster) const override {
    const Graph& g = dataset.graph;
    PhaseRecorder rec(cluster);
    platforms::mapreduce::MRConfig config;
    config.yarn = variant_ == MRVariant::kYarn;
    config.haloop = variant_ == MRVariant::kHaLoop;
    if (variant_ == MRVariant::kPegasus) {
      // GIM-V over block-encoded matrices: structure compresses ~4x, and
      // only matrix-vector-shaped algorithms are expressible.
      config.block_compression = 4.0;
      // SSSP is GIM-V under the min-plus semiring; LCC (like STATS/CD) has
      // no matrix-vector shape and stays unsupported.
      if (algorithm != Algorithm::kBfs && algorithm != Algorithm::kConn &&
          algorithm != Algorithm::kPageRank && algorithm != Algorithm::kSssp) {
        throw PlatformError(PlatformError::Kind::kUnsupported,
                            "PEGASUS expresses only GIM-V algorithms (BFS, "
                            "CONN, SSSP, PageRank)");
      }
    }
    AlgorithmOutput out;

    switch (algorithm) {
      case Algorithm::kBfs: {
        mr::BfsJob job{params.bfs_source};
        std::vector<std::uint64_t> state(g.num_vertices(), kUnreached);
        const auto stats = platforms::mapreduce::run_iterative(
            g, job, state, cluster, rec, config, config.max_iterations,
            params.time_limit);
        out.vertex_values = std::move(state);
        out.iterations = stats.iterations;
        break;
      }
      case Algorithm::kConn: {
        mr::ConnJob job;
        std::vector<std::uint64_t> state(g.num_vertices());
        for (VertexId v = 0; v < g.num_vertices(); ++v) state[v] = v;
        const auto stats = platforms::mapreduce::run_iterative(
            g, job, state, cluster, rec, config, config.max_iterations,
            params.time_limit);
        out.vertex_values = std::move(state);
        out.iterations = stats.iterations;
        break;
      }
      case Algorithm::kCd: {
        mr::CommunityDetectionJob job{cd_params_from(params)};
        std::vector<mr::CdState> state(g.num_vertices());
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          state[v] = {v, job.params.initial_units()};
        }
        const auto stats = platforms::mapreduce::run_iterative(
            g, job, state, cluster, rec, config, job.params.iterations,
            params.time_limit);
        out.vertex_values.reserve(state.size());
        for (const auto& s : state) out.vertex_values.push_back(s.label);
        out.iterations = stats.iterations;
        break;
      }
      case Algorithm::kPageRank: {
        mr::PageRankJob job{pagerank_params_from(params)};
        std::vector<double> state(
            g.num_vertices(),
            g.num_vertices() > 0 ? 1.0 / static_cast<double>(g.num_vertices())
                                 : 0.0);
        const auto stats = platforms::mapreduce::run_iterative(
            g, job, state, cluster, rec, config, job.params.iterations,
            params.time_limit);
        out.vertex_values = encode_ranks(state);
        out.iterations = stats.iterations;
        break;
      }
      case Algorithm::kSssp: {
        mr::SsspJob job{EdgeWeights(g, params.seed)};
        std::vector<std::uint64_t> state(g.num_vertices(), kUnreached);
        if (params.bfs_source < g.num_vertices()) {
          state[params.bfs_source] = 0;  // source rides in the input split
        }
        const auto stats = platforms::mapreduce::run_iterative(
            g, job, state, cluster, rec, config, config.max_iterations,
            params.time_limit);
        out.scalar = count_reached(state);
        out.vertex_values = std::move(state);
        out.iterations = stats.iterations;
        break;
      }
      case Algorithm::kStats:
      case Algorithm::kLcc: {
        const storage::Hdfs hdfs(cluster.cost());
        const auto assignment = platforms::partition_graph(g, cluster, rec);
        const StatsVolumes volumes = stats_volumes(g, &cluster.pool());
        platforms::mapreduce::detail::IterationVolume volume;
        volume.map_output_records =
            static_cast<double>(g.num_vertices()) + volumes.exchange_records;
        volume.map_output_bytes =
            static_cast<double>(g.text_size_bytes()) + volumes.exchange_bytes;
        volume.compute_units = volumes.intersect_units;
        // Crash (scratch overflow) and cost checks happen before the
        // quadratic kernel ever runs.
        const char* label = algorithm == Algorithm::kStats ? "stats" : "lcc";
        const SimTime stats_begin = rec.now();
        platforms::mapreduce::detail::charge_iteration(
            g, cluster, rec, config, hdfs, volume, label, &assignment);
        std::vector<std::uint32_t> attempts;
        platforms::mapreduce::detail::recover_from_faults(
            cluster, rec, config, stats_begin, label, attempts);
        if (rec.now() > params.time_limit) {
          throw PlatformError(
              PlatformError::Kind::kTimeout,
              name() + " " + platforms::algorithm_name(algorithm) +
                  " exceeded the experiment time budget");
        }
        if (algorithm == Algorithm::kLcc) {
          const LccResult lcc = reference_lcc(g, &cluster.pool());
          out.scalar = lcc.average;
          out.vertex_values = encode_ranks(lcc.values);
        } else {
          const StatsResult stats = reference_stats(g, &cluster.pool());
          out.scalar = stats.average_lcc;
          out.vertices = stats.vertices;
          out.edges = stats.edges;
        }
        out.iterations = 1;
        break;
      }
      case Algorithm::kEvo: {
        const storage::Hdfs hdfs(cluster.cost());
        const auto assignment = platforms::partition_graph(g, cluster, rec);
        const EvoTrace trace = forest_fire_evolve(g, evo_params_from(params));
        std::vector<std::uint32_t> attempts;
        std::size_t step = 0;
        for (const auto& iter : trace.iterations) {
          const SimTime iter_begin = rec.now();
          platforms::mapreduce::detail::IterationVolume volume;
          volume.map_output_records =
              static_cast<double>(g.num_vertices()) +
              static_cast<double>(iter.burned_vertices + iter.new_edges);
          volume.map_output_bytes =
              static_cast<double>(g.text_size_bytes()) +
              static_cast<double>(iter.burned_vertices + iter.new_edges) *
                  config.message_record_bytes;
          volume.compute_units = static_cast<double>(iter.burned_vertices);
          const std::string label = "iter_" + std::to_string(step++);
          // Hadoop needs two MapReduce jobs per EVO iteration
          // (Section 4.1.3): ambassador selection + burn propagation.
          platforms::mapreduce::detail::charge_iteration(
              g, cluster, rec, config, hdfs, volume, label + "_select",
              &assignment);
          platforms::mapreduce::detail::charge_iteration(
              g, cluster, rec, config, hdfs, volume, label + "_burn",
              &assignment);
          platforms::mapreduce::detail::recover_from_faults(
              cluster, rec, config, iter_begin, label, attempts);
        }
        out = evo_output(g, trace);
        break;
      }
    }
    return rec.finish(std::move(out), Bytes{200} << 20);
  }

 private:
  MRVariant variant_;
};

// ========================= Stratosphere ======================================

class StratospherePlatform final : public Platform {
 public:
  std::string name() const override { return "Stratosphere"; }
  bool distributed() const override { return true; }

  RunResult run(const datasets::Dataset& dataset, Algorithm algorithm,
                const AlgorithmParams& params,
                sim::Cluster& cluster) const override {
    const Graph& g = dataset.graph;
    PhaseRecorder rec(cluster);
    platforms::dataflow::DataflowConfig config;
    AlgorithmOutput out;

    using platforms::dataflow::OperatorKind;
    using platforms::dataflow::Plan;

    const auto iterative_plan = [] {
      Plan plan;
      const auto src = plan.add_source("vertices");
      const auto expand = plan.add(OperatorKind::kMap, "expand", {src});
      const auto update = plan.add(OperatorKind::kReduce, "update", {expand});
      plan.add_sink("out", update);
      return plan;
    };

    switch (algorithm) {
      case Algorithm::kBfs: {
        mr::BfsJob job{params.bfs_source};
        std::vector<std::uint64_t> state(g.num_vertices(), kUnreached);
        const auto stats = platforms::dataflow::run_iterative(
            g, job, state, iterative_plan(), cluster, rec, config,
            config.max_iterations, params.time_limit);
        out.vertex_values = std::move(state);
        out.iterations = stats.iterations;
        break;
      }
      case Algorithm::kConn: {
        mr::ConnJob job;
        std::vector<std::uint64_t> state(g.num_vertices());
        for (VertexId v = 0; v < g.num_vertices(); ++v) state[v] = v;
        const auto stats = platforms::dataflow::run_iterative(
            g, job, state, iterative_plan(), cluster, rec, config,
            config.max_iterations, params.time_limit);
        out.vertex_values = std::move(state);
        out.iterations = stats.iterations;
        break;
      }
      case Algorithm::kCd: {
        mr::CommunityDetectionJob job{cd_params_from(params)};
        std::vector<mr::CdState> state(g.num_vertices());
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          state[v] = {v, job.params.initial_units()};
        }
        const auto stats = platforms::dataflow::run_iterative(
            g, job, state, iterative_plan(), cluster, rec, config,
            job.params.iterations, params.time_limit);
        out.vertex_values.reserve(state.size());
        for (const auto& s : state) out.vertex_values.push_back(s.label);
        out.iterations = stats.iterations;
        break;
      }
      case Algorithm::kPageRank: {
        mr::PageRankJob job{pagerank_params_from(params)};
        std::vector<double> state(
            g.num_vertices(),
            g.num_vertices() > 0 ? 1.0 / static_cast<double>(g.num_vertices())
                                 : 0.0);
        const auto stats = platforms::dataflow::run_iterative(
            g, job, state, iterative_plan(), cluster, rec, config,
            job.params.iterations, params.time_limit);
        out.vertex_values = encode_ranks(state);
        out.iterations = stats.iterations;
        break;
      }
      case Algorithm::kSssp: {
        mr::SsspJob job{EdgeWeights(g, params.seed)};
        std::vector<std::uint64_t> state(g.num_vertices(), kUnreached);
        if (params.bfs_source < g.num_vertices()) {
          state[params.bfs_source] = 0;  // source rides in the input split
        }
        const auto stats = platforms::dataflow::run_iterative(
            g, job, state, iterative_plan(), cluster, rec, config,
            config.max_iterations, params.time_limit);
        out.scalar = count_reached(state);
        out.vertex_values = std::move(state);
        out.iterations = stats.iterations;
        break;
      }
      case Algorithm::kStats:
      case Algorithm::kLcc: {
        // Plan: vertices -> Map (key by neighbor) -> Match (adjacency
        // join) -> Reduce (intersect + LCC) -> sink.
        Plan plan;
        const auto src = plan.add_source("vertices");
        const auto pairs = plan.add(OperatorKind::kMap, "pair", {src});
        const auto join =
            plan.add(OperatorKind::kMatch, "adjacency_join", {pairs, src});
        const auto lcc = plan.add(OperatorKind::kReduce, "lcc", {join});
        plan.add_sink("out", lcc);

        const storage::Hdfs hdfs(cluster.cost());
        const auto assignment = platforms::partition_graph(g, cluster, rec);
        const StatsVolumes volumes = stats_volumes(g, &cluster.pool());
        // The Match's probe side materializes one candidate record per
        // shipped adjacency id — sum(deg^2) records flow through the plan.
        platforms::dataflow::detail::charge_plan_iteration(
            g, platforms::dataflow::compile(plan), cluster, rec, config, hdfs,
            volumes.exchange_bytes / 8.0, volumes.intersect_units,
            algorithm == Algorithm::kStats ? "stats" : "lcc", &assignment);
        // The paper's operators terminated this configuration after ~4
        // hours without success; reproduce that patience threshold before
        // attempting the quadratic kernel.
        const SimTime patience = std::min(params.time_limit, 4.0 * 3600.0);
        if (rec.now() > patience) {
          throw PlatformError(
              PlatformError::Kind::kTimeout,
              std::string("Stratosphere ") +
                  platforms::algorithm_name(algorithm) +
                  " terminated after exceeding the operators' patience "
                  "(paper: ~4 hours without success)");
        }
        if (algorithm == Algorithm::kLcc) {
          const LccResult lcc = reference_lcc(g, &cluster.pool());
          out.scalar = lcc.average;
          out.vertex_values = encode_ranks(lcc.values);
        } else {
          const StatsResult stats = reference_stats(g, &cluster.pool());
          out.scalar = stats.average_lcc;
          out.vertices = stats.vertices;
          out.edges = stats.edges;
        }
        out.iterations = 1;
        break;
      }
      case Algorithm::kEvo: {
        // Single map-reduce-reduce plan per iteration (Section 4.1.3).
        Plan plan;
        const auto src = plan.add_source("vertices");
        const auto select = plan.add(OperatorKind::kMap, "select", {src});
        const auto burn = plan.add(OperatorKind::kReduce, "burn", {select});
        const auto link = plan.add(
            OperatorKind::kReduce, "link", {burn},
            {.same_key = true, .super_key = false, .output_cardinality = 1.0});
        plan.add_sink("out", link);
        const auto dag = platforms::dataflow::compile(plan);

        const storage::Hdfs hdfs(cluster.cost());
        const auto assignment = platforms::partition_graph(g, cluster, rec);
        const EvoTrace trace = forest_fire_evolve(g, evo_params_from(params));
        std::size_t step = 0;
        for (const auto& iter : trace.iterations) {
          platforms::dataflow::detail::charge_plan_iteration(
              g, dag, cluster, rec, config, hdfs,
              static_cast<double>(iter.burned_vertices + iter.new_edges),
              static_cast<double>(iter.burned_vertices),
              "iter_" + std::to_string(step++), &assignment);
        }
        out = evo_output(g, trace);
        break;
      }
    }
    return rec.finish(std::move(out), Bytes{400} << 20);
  }
};

// =========================== GraphLab ========================================

class GraphLabPlatform final : public Platform {
 public:
  explicit GraphLabPlatform(bool multi_piece) : multi_piece_(multi_piece) {}

  std::string name() const override {
    return multi_piece_ ? "GraphLab(mp)" : "GraphLab";
  }
  bool distributed() const override { return true; }

  RunResult run(const datasets::Dataset& dataset, Algorithm algorithm,
                const AlgorithmParams& params,
                sim::Cluster& cluster) const override {
    const Graph& g = dataset.graph;
    PhaseRecorder rec(cluster);
    platforms::gas::GasConfig config;
    config.multi_piece_loading = multi_piece_;
    AlgorithmOutput out;

    switch (algorithm) {
      case Algorithm::kBfs: {
        std::vector<std::uint64_t> data(g.num_vertices(), kUnreached);
        if (params.direction_optimizing) {
          const auto stats = platforms::gas::run_gas_bfs(
              g, params.bfs_source, data, cluster, rec, config,
              params.time_limit);
          out.vertex_values = std::move(data);
          out.iterations = stats.iterations;
          break;
        }
        gas::BfsProgram prog{params.bfs_source};
        std::vector<std::uint8_t> active(g.num_vertices(), 0);
        if (params.bfs_source < g.num_vertices()) {
          active[params.bfs_source] = 1;
        }
        const auto stats = platforms::gas::run_sync(
            g, prog, data, active, cluster, rec, config, params.time_limit);
        out.vertex_values = std::move(data);
        out.iterations = stats.iterations;
        break;
      }
      case Algorithm::kConn: {
        gas::ConnProgram prog;
        std::vector<std::uint64_t> data(g.num_vertices());
        for (VertexId v = 0; v < g.num_vertices(); ++v) data[v] = v;
        std::vector<std::uint8_t> active(g.num_vertices(), 1);
        const auto stats = platforms::gas::run_sync(
            g, prog, data, active, cluster, rec, config, params.time_limit);
        out.vertex_values = std::move(data);
        out.iterations = stats.iterations;
        break;
      }
      case Algorithm::kCd: {
        gas::CdProgram prog{cd_params_from(params)};
        std::vector<gas::CdData> data(g.num_vertices());
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          data[v] = {v, prog.params.initial_units()};
        }
        std::vector<std::uint8_t> active(g.num_vertices(), 1);
        const auto stats = platforms::gas::run_sync(
            g, prog, data, active, cluster, rec, config, params.time_limit);
        out.vertex_values.reserve(data.size());
        for (const auto& d : data) out.vertex_values.push_back(d.label);
        out.iterations = stats.iterations;
        break;
      }
      case Algorithm::kPageRank: {
        gas::PageRankProgram prog{&g, pagerank_params_from(params)};
        std::vector<double> data(
            g.num_vertices(),
            g.num_vertices() > 0 ? 1.0 / static_cast<double>(g.num_vertices())
                                 : 0.0);
        std::vector<std::uint8_t> active(g.num_vertices(), 1);
        const auto stats = platforms::gas::run_sync(
            g, prog, data, active, cluster, rec, config, params.time_limit);
        out.vertex_values = encode_ranks(data);
        out.iterations = stats.iterations;
        break;
      }
      case Algorithm::kSssp: {
        gas::SsspProgram prog{params.bfs_source, EdgeWeights(g, params.seed)};
        std::vector<std::uint64_t> data(g.num_vertices(), kUnreached);
        std::vector<std::uint8_t> active(g.num_vertices(), 0);
        if (params.bfs_source < g.num_vertices()) {
          active[params.bfs_source] = 1;
        }
        const auto stats = platforms::gas::run_sync(
            g, prog, data, active, cluster, rec, config, params.time_limit);
        out.scalar = count_reached(data);
        out.vertex_values = std::move(data);
        out.iterations = stats.iterations;
        break;
      }
      case Algorithm::kStats: {
        gas::StatsProgram prog{&g};
        std::vector<double> data(g.num_vertices(), 0.0);
        std::vector<std::uint8_t> active(g.num_vertices(), 1);
        const auto stats = platforms::gas::run_sync(
            g, prog, data, active, cluster, rec, config, params.time_limit);
        double lcc_sum = 0.0;
        for (const double d : data) lcc_sum += d;
        out.scalar = g.num_vertices() > 0
                         ? lcc_sum / static_cast<double>(g.num_vertices())
                         : 0.0;
        out.vertices = g.num_vertices();
        out.edges = g.num_edges();
        out.iterations = stats.iterations;
        break;
      }
      case Algorithm::kLcc: {
        gas::StatsProgram prog{&g};
        std::vector<double> data(g.num_vertices(), 0.0);
        std::vector<std::uint8_t> active(g.num_vertices(), 1);
        const auto stats = platforms::gas::run_sync(
            g, prog, data, active, cluster, rec, config, params.time_limit);
        out.scalar = lcc_average(data);
        out.vertex_values = encode_ranks(data);
        out.iterations = stats.iterations;
        break;
      }
      case Algorithm::kEvo: {
        const EvoTrace trace = forest_fire_evolve(g, evo_params_from(params));
        const double imbalance =
            platforms::partition_graph(g, cluster, rec).quality.imbalance;
        const double partition = platforms::gas::charge_startup_and_load(
            g, static_cast<double>(g.num_vertices()), cluster, rec, config);
        const auto& cost = cluster.cost();
        std::size_t step = 0;
        for (const auto& iter : trace.iterations) {
          const double units = cluster.scale_units(
              static_cast<double>(iter.burned_vertices + iter.new_edges));
          const double sync_bytes = cluster.scale_bytes(
              static_cast<double>(iter.new_edges) *
              (config.vertex_data_bytes + config.mirror_header_bytes));
          const std::string label = "iter_" + std::to_string(step++);
          rec.phase(label + "/compute",
                    cluster.native_compute_time(units) * imbalance /
                        cluster.total_slots(),
                    true,
                    PhaseUsage{.worker_cpu_cores = static_cast<double>(
                                   cluster.cores_per_worker()),
                               .worker_mem_bytes = partition});
          rec.phase(label + "/sync",
                    cost.network_time(static_cast<Bytes>(sync_bytes),
                                      cluster.num_workers()) +
                        cost.net_latency_sec * 4.0,
                    false,
                    PhaseUsage{.worker_cpu_cores = 0.1,
                               .worker_mem_bytes = partition});
          platforms::gas::abort_on_worker_loss(
              cluster, rec, "EVO iteration " + std::to_string(step - 1));
        }
        platforms::gas::charge_write(g, cluster, rec, partition);
        out = evo_output(g, trace);
        break;
      }
    }
    return rec.finish(std::move(out), Bytes{0});
  }

 private:
  bool multi_piece_;
};

// ============================ Neo4j ==========================================

class Neo4jPlatform final : public Platform {
 public:
  std::string name() const override { return "Neo4j"; }
  bool distributed() const override { return false; }

  RunResult run(const datasets::Dataset& dataset, Algorithm algorithm,
                const AlgorithmParams& params,
                sim::Cluster& cluster) const override {
    const Graph& g = dataset.graph;
    PhaseRecorder rec(cluster);
    // Neo4j is a single node: the assignment degenerates to one part
    // (edge-cut 0, imbalance 1), reported for cross-platform consistency.
    platforms::partition_graph(g, cluster, rec);
    platforms::graphdb::DatabaseConfig db_config;
    db_config.paging = cluster.config().page_cache;
    platforms::graphdb::Database db(g, cluster.cost(),
                                    cluster.config().work_scale, db_config);
    db.begin(platforms::graphdb::CacheState::kHot);
    AlgorithmOutput out;

    switch (algorithm) {
      case Algorithm::kBfs: {
        auto result = graphdb::db_bfs(db, params.bfs_source, params.time_limit);
        out.vertex_values = std::move(result.values);
        out.iterations = result.iterations;
        break;
      }
      case Algorithm::kConn: {
        auto result = graphdb::db_conn(db, params.time_limit);
        out.vertex_values = std::move(result.values);
        out.iterations = result.iterations;
        break;
      }
      case Algorithm::kCd: {
        auto result = graphdb::db_cd(db, cd_params_from(params),
                                     params.time_limit, &cluster.pool());
        out.vertex_values = std::move(result.values);
        out.iterations = result.iterations;
        break;
      }
      case Algorithm::kPageRank: {
        auto result = graphdb::db_pagerank(db, pagerank_params_from(params),
                                           params.time_limit, &cluster.pool());
        out.vertex_values = encode_ranks(result.ranks);
        out.iterations = result.iterations;
        break;
      }
      case Algorithm::kSssp: {
        auto result = graphdb::db_sssp(db, params.bfs_source, params.seed,
                                       params.time_limit);
        out.scalar = count_reached(result.values);
        out.vertex_values = std::move(result.values);
        out.iterations = result.iterations;
        break;
      }
      case Algorithm::kStats: {
        auto result =
            graphdb::db_stats(db, params.time_limit, &cluster.pool());
        out.scalar = result.stats.average_lcc;
        out.vertices = result.stats.vertices;
        out.edges = result.stats.edges;
        out.iterations = 1;
        break;
      }
      case Algorithm::kLcc: {
        auto result = graphdb::db_lcc(db, params.time_limit, &cluster.pool());
        out.scalar = result.average;
        out.vertex_values = encode_ranks(result.values);
        out.iterations = 1;
        break;
      }
      case Algorithm::kEvo: {
        const EvoTrace trace = forest_fire_evolve(g, evo_params_from(params));
        // Burning traverses relationships through the object cache;
        // created vertices and edges are transactional writes through the
        // record store (same path as ingestion).
        const double scale = cluster.config().work_scale;
        for (const auto& iter : trace.iterations) {
          db.access_properties(static_cast<double>(iter.burned_vertices));
          db.charge_user_compute(static_cast<double>(iter.burned_vertices));
          db.add_time(scale *
                      (static_cast<double>(iter.new_edges) *
                           db.store().config().edge_insert_sec +
                       static_cast<double>(iter.new_vertices) *
                           db.store().config().node_insert_sec));
        }
        out = evo_output(g, trace);
        break;
      }
    }

    // Single-machine accounting: setup is overhead, the rest computation.
    const auto& db_stats = db.access_stats();
    cluster.metrics().incr("db.node_expansions", db_stats.node_expansions);
    cluster.metrics().incr("db.relationship_accesses",
                           db_stats.relationship_accesses);
    cluster.metrics().add("db.property_accesses", db_stats.property_accesses);
    if (db.paged()) {
      const auto& pages = db.page_stats();
      if (pages.hits > 0) cluster.metrics().incr("page_cache.hits", pages.hits);
      if (pages.misses > 0) {
        cluster.metrics().incr("page_cache.misses", pages.misses);
      }
      if (pages.evictions > 0) {
        cluster.metrics().incr("page_cache.evictions", pages.evictions);
      }
    }
    const SimTime setup = db.config().query_setup_sec;
    const double mem = std::min(
        static_cast<double>(db.store().object_cache_demand()),
        static_cast<double>(cluster.cost().heap_limit));
    rec.phase("setup", setup, false, PhaseUsage{.worker_mem_bytes = mem});
    rec.phase("query", std::max(0.0, db.elapsed() - setup), true,
              PhaseUsage{.worker_cpu_cores = 1.0, .worker_mem_bytes = mem});
    // Neo4j recovery: a fault kills the embedded JVM mid-query. On restart
    // the store replays its transaction log (ACID — committed writes
    // survive, the in-flight transaction rolls back) and the query re-runs
    // from scratch: a traversal has no partial progress to salvage.
    while (const sim::FaultEvent* event =
               cluster.faults().take_before(rec.now())) {
      auto& fstats = cluster.faults().stats();
      const SimTime lost = std::clamp<SimTime>(event->time, 0.0, rec.now());
      const SimTime restart = db.config().query_setup_sec * 2.0;
      ++fstats.task_retries;
      fstats.recomputed_sec += lost;
      fstats.recovery_sec += restart + lost;
      cluster.metrics().incr("tasks.retried");
      rec.phase("recovery", restart + lost, false,
                PhaseUsage{.worker_cpu_cores = 1.0, .worker_mem_bytes = mem},
                "recovery");
    }
    if (rec.now() > params.time_limit) {
      throw PlatformError(PlatformError::Kind::kTimeout,
                          "Neo4j exceeded the experiment time budget");
    }
    return rec.finish(std::move(out), Bytes{0});
  }
};

}  // namespace

std::unique_ptr<Platform> make_hadoop() {
  return std::make_unique<MapReducePlatform>(MRVariant::kHadoop);
}
std::unique_ptr<Platform> make_yarn() {
  return std::make_unique<MapReducePlatform>(MRVariant::kYarn);
}
std::unique_ptr<Platform> make_haloop() {
  return std::make_unique<MapReducePlatform>(MRVariant::kHaLoop);
}
std::unique_ptr<Platform> make_pegasus() {
  return std::make_unique<MapReducePlatform>(MRVariant::kPegasus);
}
std::unique_ptr<Platform> make_stratosphere() {
  return std::make_unique<StratospherePlatform>();
}
std::unique_ptr<Platform> make_giraph() {
  return std::make_unique<GiraphPlatform>();
}
std::unique_ptr<Platform> make_gps() {
  return std::make_unique<GiraphPlatform>(/*gps=*/true);
}
std::unique_ptr<Platform> make_graphlab(bool multi_piece) {
  return std::make_unique<GraphLabPlatform>(multi_piece);
}
std::unique_ptr<Platform> make_neo4j() {
  return std::make_unique<Neo4jPlatform>();
}

std::vector<std::unique_ptr<Platform>> make_all_platforms() {
  std::vector<std::unique_ptr<Platform>> platforms;
  platforms.push_back(make_giraph());
  platforms.push_back(make_stratosphere());
  platforms.push_back(make_hadoop());
  platforms.push_back(make_yarn());
  platforms.push_back(make_graphlab(false));
  platforms.push_back(make_neo4j());
  return platforms;
}

std::unique_ptr<Platform> make_platform(const std::string& name) {
  if (name == "Hadoop") return make_hadoop();
  if (name == "YARN") return make_yarn();
  if (name == "HaLoop") return make_haloop();
  if (name == "PEGASUS") return make_pegasus();
  if (name == "GPS") return make_gps();
  if (name == "Stratosphere") return make_stratosphere();
  if (name == "Giraph") return make_giraph();
  if (name == "GraphLab") return make_graphlab(false);
  if (name == "GraphLab(mp)") return make_graphlab(true);
  if (name == "Neo4j") return make_neo4j();
  return nullptr;
}

const std::vector<std::string>& platform_names() {
  static const std::vector<std::string> names = {
      "Hadoop", "YARN",     "HaLoop",        "PEGASUS", "GPS",
      "Stratosphere", "Giraph", "GraphLab", "GraphLab(mp)", "Neo4j"};
  return names;
}

}  // namespace gb::algorithms
