// The benchmark algorithms as single-machine traversals over the graph
// database engine (platforms/graphdb/database.h). Each node expansion and
// property access is charged through the database's cache model; the
// functions throw PlatformError(kTimeout) when the simulated clock passes
// `time_limit`, mirroring the paper's manually terminated >20 h Neo4j runs.
#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/reference.h"
#include "core/types.h"
#include "platforms/graphdb/database.h"

namespace gb::algorithms::graphdb {

using platforms::graphdb::Database;

struct TraversalResult {
  std::vector<std::uint64_t> values;
  std::uint64_t iterations = 0;
  SimTime elapsed = 0;
};

/// BFS, CONN and SSSP stay host-serial: their host work is one comparison
/// per charged expansion, so there is nothing to win by splitting them, and
/// the traversal-charge sequence must stay in vertex order anyway.
TraversalResult db_bfs(Database& db, VertexId source, SimTime time_limit);
TraversalResult db_conn(Database& db, SimTime time_limit);

/// SSSP as synchronous Bellman-Ford rounds over incoming relationships
/// (db_conn's shape). Each round charges one expansion per vertex plus one
/// relationship-property read per in-edge (the weight); distances converge
/// to the unique min-plus fixpoint, so the output matches every other
/// engine bit for bit. Weights come from the store when the graph is
/// weighted, otherwise derived from `weight_seed`.
TraversalResult db_sssp(Database& db, VertexId source,
                        std::uint64_t weight_seed, SimTime time_limit);

/// CD, PageRank and STATS split their pure compute (tallies, rank sums,
/// neighborhood intersections) over the pool with the deterministic
/// plan_chunks plan; all simulated charging stays a serial sweep in vertex
/// order, so `elapsed` is bit-identical at every pool size.
TraversalResult db_cd(Database& db, const CdParams& params, SimTime time_limit,
                      ThreadPool* pool = nullptr);

struct DbPageRankResult {
  std::vector<double> ranks;
  std::uint64_t iterations = 0;
  SimTime elapsed = 0;
};

DbPageRankResult db_pagerank(Database& db, const PageRankParams& params,
                             SimTime time_limit, ThreadPool* pool = nullptr);

struct DbStatsResult {
  StatsResult stats;
  SimTime elapsed = 0;
};

/// STATS: before touching the store, a cost preflight estimates the total
/// access volume over the Graphalytics union neighborhoods; if it already
/// exceeds the time limit the run is aborted without executing the
/// quadratic kernel (the paper's ">20 hours, not shown" cells).
DbStatsResult db_stats(Database& db, SimTime time_limit,
                       ThreadPool* pool = nullptr);

struct DbLccResult {
  std::vector<double> values;  // per-vertex clustering coefficient
  double average = 0.0;        // lcc_average(values)
  SimTime elapsed = 0;
};

/// LCC: STATS' charging (preflight + per-vertex neighborhood re-fetches)
/// but the per-vertex coefficients are the output, computed chunked over
/// the pool with the shared core/graph_stats.h kernel.
DbLccResult db_lcc(Database& db, SimTime time_limit,
                   ThreadPool* pool = nullptr);

}  // namespace gb::algorithms::graphdb
