#include "algorithms/evolution.h"

#include <algorithm>
#include <unordered_set>

#include "core/rng.h"

namespace gb::algorithms {

EvoTrace forest_fire_evolve(const Graph& g, const EvoParams& params) {
  EvoTrace trace;
  const VertexId n = g.num_vertices();
  if (n == 0) return trace;

  Xoshiro256 rng(params.seed);
  const std::uint64_t total_new = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(params.growth * static_cast<double>(n)));

  std::vector<VertexId> burned;          // current fire's visit order
  std::vector<std::uint8_t> burned_mark(n, 0);
  std::vector<VertexId> candidates;

  VertexId next_id = n;
  for (std::uint32_t iter = 0; iter < params.iterations; ++iter) {
    EvoIterationStats stats;
    // Spread the growth budget evenly; the last iteration takes the rest.
    const std::uint64_t share =
        iter + 1 == params.iterations
            ? total_new - trace.total_new_vertices
            : total_new / params.iterations;

    for (std::uint64_t i = 0; i < share; ++i) {
      const VertexId w = next_id++;
      ++stats.new_vertices;

      // Choose an ambassador and burn outward from it.
      const VertexId ambassador = static_cast<VertexId>(rng.next_below(n));
      burned.clear();
      burned.push_back(ambassador);
      burned_mark[ambassador] = 1;

      std::size_t cursor = 0;
      while (cursor < burned.size() &&
             burned.size() < params.max_burn_per_vertex) {
        const VertexId b = burned[cursor++];
        // x forward links, y backward links (geometric draws with means
        // (1-p)^-1 and (1-rp)^-1, per Leskovec et al.).
        const std::uint64_t x = rng.next_geometric(1.0 - params.p_forward);
        const std::uint64_t y = rng.next_geometric(
            1.0 - params.r_backward * params.p_forward);

        const auto burn_from = [&](std::span<const VertexId> nbrs,
                                   std::uint64_t quota) {
          // Stay under the per-fire cap even mid-wave.
          const std::uint64_t room =
              params.max_burn_per_vertex - burned.size();
          quota = std::min(quota, room);
          if (quota == 0 || nbrs.empty()) return;
          candidates.clear();
          for (const VertexId u : nbrs) {
            if (!burned_mark[u]) candidates.push_back(u);
          }
          for (std::uint64_t k = 0; k < quota && !candidates.empty(); ++k) {
            const std::size_t pick = rng.next_below(candidates.size());
            const VertexId u = candidates[pick];
            candidates[pick] = candidates.back();
            candidates.pop_back();
            burned_mark[u] = 1;
            burned.push_back(u);
          }
        };
        burn_from(g.out_neighbors(b), x);
        if (g.directed()) burn_from(g.in_neighbors(b), y);
      }

      // Link the new vertex to every burned vertex.
      for (const VertexId b : burned) {
        trace.edges.emplace_back(w, b);
        ++stats.new_edges;
        burned_mark[b] = 0;  // reset for the next fire
      }
      stats.burned_vertices += burned.size();
    }

    trace.total_new_vertices += stats.new_vertices;
    trace.total_new_edges += stats.new_edges;
    trace.iterations.push_back(stats);
  }
  return trace;
}

Graph apply_evolution(const Graph& g, const EvoTrace& trace) {
  const VertexId n = g.num_vertices() +
                     static_cast<VertexId>(trace.total_new_vertices);
  GraphBuilder builder(n, g.directed());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.out_neighbors(v)) {
      if (!g.directed() && u < v) continue;  // emit undirected edges once
      builder.add_edge(v, u);
    }
  }
  for (const auto& [w, b] : trace.edges) builder.add_edge(w, b);
  return builder.build();
}

}  // namespace gb::algorithms
