#include "algorithms/graphdb_algorithms.h"

#include <algorithm>

#include "core/error.h"
#include "core/graph_stats.h"

namespace gb::algorithms::graphdb {
namespace {

void check_limit(const Database& db, SimTime time_limit, const char* what) {
  if (db.elapsed() > time_limit) {
    throw PlatformError(PlatformError::Kind::kTimeout,
                        std::string(what) +
                            " exceeded the experiment time budget on Neo4j");
  }
}

}  // namespace

TraversalResult db_bfs(Database& db, VertexId source, SimTime time_limit) {
  const Graph& g = db.graph();
  TraversalResult result;
  result.values.assign(g.num_vertices(), kUnreached);
  if (source >= g.num_vertices()) return result;

  std::vector<VertexId> frontier{source};
  std::vector<VertexId> next;
  result.values[source] = 0;
  std::uint64_t depth = 0;

  while (!frontier.empty()) {
    for (const VertexId v : frontier) {
      for (const VertexId u : db.expand(v)) {
        if (result.values[u] == kUnreached) {
          result.values[u] = depth + 1;
          next.push_back(u);
        }
      }
    }
    check_limit(db, time_limit, "BFS");
    if (next.empty()) break;
    ++depth;
    frontier.swap(next);
    next.clear();
  }
  result.iterations = depth;
  result.elapsed = db.elapsed();
  return result;
}

TraversalResult db_conn(Database& db, SimTime time_limit) {
  const Graph& g = db.graph();
  const VertexId n = g.num_vertices();
  TraversalResult result;
  result.values.resize(n);
  for (VertexId v = 0; v < n; ++v) result.values[v] = v;

  bool changed = true;
  while (changed) {
    changed = false;
    ++result.iterations;
    for (VertexId v = 0; v < n; ++v) {
      std::uint64_t smallest = result.values[v];
      for (const VertexId u : db.expand_in(v)) {
        smallest = std::min(smallest, result.values[u]);
      }
      if (g.directed()) {
        for (const VertexId u : db.expand(v)) {
          smallest = std::min(smallest, result.values[u]);
        }
      }
      if (smallest < result.values[v]) {
        result.values[v] = smallest;
        changed = true;
      }
    }
    check_limit(db, time_limit, "CONN");
  }
  result.elapsed = db.elapsed();
  return result;
}

TraversalResult db_sssp(Database& db, VertexId source,
                        std::uint64_t weight_seed, SimTime time_limit) {
  const Graph& g = db.graph();
  const VertexId n = g.num_vertices();
  TraversalResult result;
  result.values.assign(n, kUnreached);
  if (source >= n) {
    result.elapsed = db.elapsed();
    return result;
  }
  const EdgeWeights weights(g, weight_seed);
  result.values[source] = 0;

  bool changed = true;
  while (changed) {
    changed = false;
    ++result.iterations;
    for (VertexId v = 0; v < n; ++v) {
      const auto senders = db.expand_in(v);
      // One relationship-property read per in-edge: the weight.
      db.access_properties(static_cast<double>(senders.size()));
      std::uint64_t best = result.values[v];
      for (std::size_t k = 0; k < senders.size(); ++k) {
        const std::uint64_t du = result.values[senders[k]];
        if (du == kUnreached) continue;
        best = std::min(best, du + weights.in_weight(v, k));
      }
      if (best < result.values[v]) {
        result.values[v] = best;
        changed = true;
      }
    }
    check_limit(db, time_limit, "SSSP");
  }
  result.elapsed = db.elapsed();
  return result;
}

TraversalResult db_cd(Database& db, const CdParams& params, SimTime time_limit,
                      ThreadPool* pool) {
  const Graph& g = db.graph();
  const VertexId n = g.num_vertices();
  std::vector<std::uint64_t> labels(n);
  std::vector<CdScore> scores(n, params.initial_units());
  for (VertexId v = 0; v < n; ++v) labels[v] = v;
  std::vector<std::uint64_t> next_labels(n);
  std::vector<CdScore> next_scores(n);

  TraversalResult result;
  for (std::uint32_t iter = 0; iter < params.iterations; ++iter) {
    // Serial charging sweep, in the exact per-vertex order of the original
    // single-loop implementation so `elapsed` stays bit-identical: one
    // expansion, two property reads per sender, and a label+score
    // write-back for every vertex with incoming edges.
    for (VertexId v = 0; v < n; ++v) {
      const auto senders = db.expand_in(v);
      db.access_properties(static_cast<double>(senders.size()) * 2.0);
      if (!senders.empty()) db.access_properties(2.0);
    }
    // Pure compute over disjoint output ranges; reads only the previous
    // iteration's labels/scores, so chunks are independent.
    run_chunks(pool, n, [&](std::size_t, std::size_t begin, std::size_t end) {
      CdTally tally;
      for (std::size_t i = begin; i < end; ++i) {
        const auto v = static_cast<VertexId>(i);
        const auto senders = g.in_neighbors(v);
        if (senders.empty()) {
          next_labels[v] = labels[v];
          next_scores[v] = scores[v];
          continue;
        }
        tally.clear();
        for (const VertexId u : senders) tally.add(labels[u], scores[u]);
        const auto [label, max_score] = tally.choose();
        next_labels[v] = label;
        next_scores[v] = max_score > 0 ? max_score - 1 : 0;
      }
    });
    labels.swap(next_labels);
    scores.swap(next_scores);
    ++result.iterations;
    check_limit(db, time_limit, "CD");
  }
  result.values = std::move(labels);
  result.elapsed = db.elapsed();
  return result;
}

DbPageRankResult db_pagerank(Database& db, const PageRankParams& params,
                             SimTime time_limit, ThreadPool* pool) {
  const Graph& g = db.graph();
  const VertexId n = g.num_vertices();
  DbPageRankResult result;
  if (n == 0) return result;
  std::vector<double> ranks(n, 1.0 / static_cast<double>(n));
  std::vector<double> shares(n, 0.0);
  std::vector<double> next(n, 0.0);

  for (std::uint32_t iter = 0; iter < params.iterations; ++iter) {
    run_chunks(pool, n, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const auto v = static_cast<VertexId>(i);
        const EdgeId deg = g.out_degree(v);
        shares[v] = deg > 0 ? ranks[v] / static_cast<double>(deg) : 0.0;
      }
    });
    db.access_properties(static_cast<double>(n));  // read all ranks
    // Charge the expansions serially in vertex order (keeps `elapsed`
    // bit-identical), then fold shares in parallel. Each vertex's sum is
    // still accumulated left-to-right over its own in-list, so the ranks
    // match the serial run bit for bit.
    for (VertexId v = 0; v < n; ++v) db.expand_in(v);
    run_chunks(pool, n, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const auto v = static_cast<VertexId>(i);
        double sum = 0.0;
        for (const VertexId u : g.in_neighbors(v)) sum += shares[u];
        next[v] = pagerank_update(sum, n, params.damping);
      }
    });
    db.access_properties(static_cast<double>(n));  // write all ranks
    ranks.swap(next);
    ++result.iterations;
    check_limit(db, time_limit, "PageRank");
  }
  result.ranks = std::move(ranks);
  result.elapsed = db.elapsed();
  return result;
}

namespace {

// Preflight shared by STATS and LCC: the neighborhood re-fetch volume is
// sum(|N(v)|^2) over the Graphalytics union neighborhoods (plain out-lists
// for undirected graphs); if charging it alone blows the budget, abort
// before executing the quadratic kernel. The per-vertex terms are
// integer-valued doubles, so the chunked partial sums merge to exactly the
// serial total.
void lcc_preflight(const Database& db, SimTime time_limit, ThreadPool* pool,
                   const char* what) {
  const Graph& g = db.graph();
  const VertexId n = g.num_vertices();
  const std::size_t chunks = ThreadPool::plan_chunks(n);
  std::vector<double> partial(chunks, 0.0);
  run_chunks(pool, n, [&](std::size_t c, std::size_t begin, std::size_t end) {
    double sum = 0.0;
    std::vector<VertexId> scratch;
    for (std::size_t i = begin; i < end; ++i) {
      const double d = static_cast<double>(
          lcc_neighborhood(g, static_cast<VertexId>(i), scratch).size());
      sum += d * d + d + 1.0;
    }
    partial[c] = sum;
  });
  double accesses = 0;
  for (const double sum : partial) accesses += sum;
  const double predicted =
      accesses * db.config().traversal_access_sec +
      static_cast<double>(n) * db.config().property_access_sec;
  if (predicted > time_limit) {
    throw PlatformError(PlatformError::Kind::kTimeout,
                        std::string(what) +
                            " exceeded the experiment time budget on Neo4j");
  }
}

// Serial charging sweep in vertex order: one expansion per vertex (both
// directions when directed — the union neighborhood needs both lists), a
// re-fetch per neighborhood member when a triangle count is needed, one
// property write. For undirected graphs `elapsed` is bit-identical to the
// original fused loop because the compute it interleaved with never
// charged anything.
void lcc_charge_sweep(Database& db, SimTime time_limit, const char* what) {
  const Graph& g = db.graph();
  const VertexId n = g.num_vertices();
  std::vector<VertexId> scratch;
  for (VertexId v = 0; v < n; ++v) {
    db.expand(v);
    if (g.directed()) db.expand_in(v);
    const auto nbrs = lcc_neighborhood(g, v, scratch);
    if (nbrs.size() >= 2) {
      for (const VertexId u : nbrs) db.expand(u);
    }
    db.access_properties(1.0);
    check_limit(db, time_limit, what);
  }
}

}  // namespace

DbStatsResult db_stats(Database& db, SimTime time_limit, ThreadPool* pool) {
  const Graph& g = db.graph();
  lcc_preflight(db, time_limit, pool, "STATS");
  DbStatsResult result;
  lcc_charge_sweep(db, time_limit, "STATS");
  // The triangle counting itself is pure compute: reuse the chunked LCC
  // average, which matches the old serial accumulation exactly (vertices
  // with degree < 2 contribute +0.0, which cannot perturb the sum).
  result.stats.vertices = g.num_vertices();
  result.stats.edges = g.num_edges();
  result.stats.average_lcc = average_lcc(g, pool);
  result.elapsed = db.elapsed();
  return result;
}

DbLccResult db_lcc(Database& db, SimTime time_limit, ThreadPool* pool) {
  const Graph& g = db.graph();
  const VertexId n = g.num_vertices();
  lcc_preflight(db, time_limit, pool, "LCC");
  DbLccResult result;
  lcc_charge_sweep(db, time_limit, "LCC");
  // Pure compute over disjoint output ranges with the shared kernel; the
  // scalar funnels through lcc_average so it matches every other engine.
  result.values.assign(n, 0.0);
  run_chunks(pool, n, [&](std::size_t, std::size_t begin, std::size_t end) {
    std::vector<VertexId> scratch;
    for (std::size_t i = begin; i < end; ++i) {
      const auto v = static_cast<VertexId>(i);
      const auto nbrs = lcc_neighborhood(g, v, scratch);
      result.values[v] = lcc_from_counts(lcc_links(g, nbrs, v), nbrs.size());
    }
  });
  result.average = lcc_average(result.values);
  result.elapsed = db.elapsed();
  return result;
}

}  // namespace gb::algorithms::graphdb
