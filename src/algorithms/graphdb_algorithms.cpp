#include "algorithms/graphdb_algorithms.h"

#include <algorithm>

#include "core/error.h"
#include "core/graph_stats.h"

namespace gb::algorithms::graphdb {
namespace {

void check_limit(const Database& db, SimTime time_limit, const char* what) {
  if (db.elapsed() > time_limit) {
    throw PlatformError(PlatformError::Kind::kTimeout,
                        std::string(what) +
                            " exceeded the experiment time budget on Neo4j");
  }
}

}  // namespace

TraversalResult db_bfs(Database& db, VertexId source, SimTime time_limit) {
  const Graph& g = db.graph();
  TraversalResult result;
  result.values.assign(g.num_vertices(), kUnreached);
  if (source >= g.num_vertices()) return result;

  std::vector<VertexId> frontier{source};
  std::vector<VertexId> next;
  result.values[source] = 0;
  std::uint64_t depth = 0;

  while (!frontier.empty()) {
    for (const VertexId v : frontier) {
      for (const VertexId u : db.expand(v)) {
        if (result.values[u] == kUnreached) {
          result.values[u] = depth + 1;
          next.push_back(u);
        }
      }
    }
    check_limit(db, time_limit, "BFS");
    if (next.empty()) break;
    ++depth;
    frontier.swap(next);
    next.clear();
  }
  result.iterations = depth;
  result.elapsed = db.elapsed();
  return result;
}

TraversalResult db_conn(Database& db, SimTime time_limit) {
  const Graph& g = db.graph();
  const VertexId n = g.num_vertices();
  TraversalResult result;
  result.values.resize(n);
  for (VertexId v = 0; v < n; ++v) result.values[v] = v;

  bool changed = true;
  while (changed) {
    changed = false;
    ++result.iterations;
    for (VertexId v = 0; v < n; ++v) {
      std::uint64_t smallest = result.values[v];
      for (const VertexId u : db.expand_in(v)) {
        smallest = std::min(smallest, result.values[u]);
      }
      if (g.directed()) {
        for (const VertexId u : db.expand(v)) {
          smallest = std::min(smallest, result.values[u]);
        }
      }
      if (smallest < result.values[v]) {
        result.values[v] = smallest;
        changed = true;
      }
    }
    check_limit(db, time_limit, "CONN");
  }
  result.elapsed = db.elapsed();
  return result;
}

TraversalResult db_cd(Database& db, const CdParams& params,
                      SimTime time_limit) {
  const Graph& g = db.graph();
  const VertexId n = g.num_vertices();
  std::vector<std::uint64_t> labels(n);
  std::vector<CdScore> scores(n, params.initial_units());
  for (VertexId v = 0; v < n; ++v) labels[v] = v;
  std::vector<std::uint64_t> next_labels(n);
  std::vector<CdScore> next_scores(n);

  TraversalResult result;
  CdTally tally;
  for (std::uint32_t iter = 0; iter < params.iterations; ++iter) {
    for (VertexId v = 0; v < n; ++v) {
      const auto senders = db.expand_in(v);
      // Label and score of each neighbor are vertex properties read
      // through the Core API.
      db.access_properties(static_cast<double>(senders.size()) * 2.0);
      if (senders.empty()) {
        next_labels[v] = labels[v];
        next_scores[v] = scores[v];
        continue;
      }
      tally.clear();
      for (const VertexId u : senders) tally.add(labels[u], scores[u]);
      const auto [label, max_score] = tally.choose();
      next_labels[v] = label;
      next_scores[v] = max_score > 0 ? max_score - 1 : 0;
      db.access_properties(2.0);  // write back label + score
    }
    labels.swap(next_labels);
    scores.swap(next_scores);
    ++result.iterations;
    check_limit(db, time_limit, "CD");
  }
  result.values = std::move(labels);
  result.elapsed = db.elapsed();
  return result;
}

DbPageRankResult db_pagerank(Database& db, const PageRankParams& params,
                             SimTime time_limit) {
  const Graph& g = db.graph();
  const VertexId n = g.num_vertices();
  DbPageRankResult result;
  if (n == 0) return result;
  std::vector<double> ranks(n, 1.0 / static_cast<double>(n));
  std::vector<double> shares(n, 0.0);
  std::vector<double> next(n, 0.0);

  for (std::uint32_t iter = 0; iter < params.iterations; ++iter) {
    for (VertexId v = 0; v < n; ++v) {
      const EdgeId deg = g.out_degree(v);
      shares[v] = deg > 0 ? ranks[v] / static_cast<double>(deg) : 0.0;
    }
    db.access_properties(static_cast<double>(n));  // read all ranks
    for (VertexId v = 0; v < n; ++v) {
      double sum = 0.0;
      for (const VertexId u : db.expand_in(v)) sum += shares[u];
      next[v] = pagerank_update(sum, n, params.damping);
    }
    db.access_properties(static_cast<double>(n));  // write all ranks
    ranks.swap(next);
    ++result.iterations;
    check_limit(db, time_limit, "PageRank");
  }
  result.ranks = std::move(ranks);
  result.elapsed = db.elapsed();
  return result;
}

DbStatsResult db_stats(Database& db, SimTime time_limit) {
  const Graph& g = db.graph();
  // Preflight: the neighborhood-exchange volume is sum(deg^2); if charging
  // it alone blows the budget, abort before executing the kernel.
  double accesses = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const double d = static_cast<double>(g.out_degree(v));
    accesses += d * d + d + 1.0;
  }
  const double predicted =
      accesses * db.config().traversal_access_sec +
      static_cast<double>(g.num_vertices()) * db.config().property_access_sec;
  if (predicted > time_limit) {
    throw PlatformError(PlatformError::Kind::kTimeout,
                        "STATS exceeded the experiment time budget on Neo4j");
  }

  DbStatsResult result;
  double lcc_sum = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    db.expand(v);
    const double deg = static_cast<double>(g.out_degree(v));
    if (deg >= 2) {
      // Neighbor lists are re-fetched per pair; charge and compute.
      for (const VertexId u : g.out_neighbors(v)) db.expand(u);
      lcc_sum += local_clustering_coefficient(g, v);
    }
    db.access_properties(1.0);
    check_limit(db, time_limit, "STATS");
  }
  result.stats.vertices = g.num_vertices();
  result.stats.edges = g.num_edges();
  result.stats.average_lcc =
      g.num_vertices() > 0
          ? lcc_sum / static_cast<double>(g.num_vertices())
          : 0.0;
  result.elapsed = db.elapsed();
  return result;
}

}  // namespace gb::algorithms::graphdb
