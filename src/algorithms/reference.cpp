#include "algorithms/reference.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "core/graph_stats.h"

namespace gb::algorithms {

BfsResult reference_bfs_topdown(const Graph& g, VertexId source,
                                ThreadPool* pool) {
  BfsResult result;
  result.levels.assign(g.num_vertices(), kUnreached);
  if (source >= g.num_vertices()) return result;

  std::vector<VertexId> frontier{source};
  std::vector<VertexId> next;
  result.levels[source] = 0;
  result.visited = 1;
  std::uint64_t depth = 0;
  std::vector<std::vector<VertexId>> candidates;

  while (!frontier.empty()) {
    next.clear();
    // Phase 1 (parallel): scan the frontier read-only and collect
    // newly-reachable candidates per chunk. Chunks may rediscover the
    // same vertex; dedup happens in phase 2.
    const std::size_t chunks = ThreadPool::plan_chunks(frontier.size());
    candidates.resize(chunks);
    run_chunks(pool, frontier.size(),
               [&](std::size_t c, std::size_t begin, std::size_t end) {
                 auto& out = candidates[c];
                 out.clear();
                 for (std::size_t i = begin; i < end; ++i) {
                   for (const VertexId u : g.out_neighbors(frontier[i])) {
                     if (result.levels[u] == kUnreached) out.push_back(u);
                   }
                 }
               });
    // Phase 2 (serial, ascending chunk order): the first claim wins, which
    // reproduces the discovery order of a plain serial frontier scan, so
    // levels, visit counts and next-frontier order are all bit-identical.
    for (std::size_t c = 0; c < chunks; ++c) {
      for (const VertexId u : candidates[c]) {
        if (result.levels[u] == kUnreached) {
          result.levels[u] = depth + 1;
          next.push_back(u);
          ++result.visited;
        }
      }
    }
    if (next.empty()) break;
    ++depth;
    frontier.swap(next);
  }
  result.iterations = depth;
  return result;
}

ConnResult reference_conn(const Graph& g, ThreadPool* pool) {
  ConnResult result;
  const VertexId n = g.num_vertices();
  result.labels.resize(n);
  for (VertexId v = 0; v < n; ++v) result.labels[v] = v;

  // Chunked hybrid Gauss-Seidel: each chunk propagates labels in-place
  // within its own range (fast convergence) but reads the previous
  // iteration's snapshot for vertices owned by other chunks (no races,
  // and no dependence on which chunk happens to finish first). With one
  // chunk this is exactly the classic sequential sweep.
  const std::size_t chunks = ThreadPool::plan_chunks(n);
  std::vector<std::uint64_t> snapshot;
  std::vector<std::uint8_t> chunk_changed(chunks, 0);

  bool changed = true;
  while (changed) {
    changed = false;
    ++result.iterations;
    snapshot = result.labels;
    std::fill(chunk_changed.begin(), chunk_changed.end(), 0);
    run_chunks(pool, n, [&](std::size_t c, std::size_t begin,
                            std::size_t end) {
      auto& labels = result.labels;
      const auto read = [&](VertexId u) {
        return (u >= begin && u < end) ? labels[u] : snapshot[u];
      };
      bool any = false;
      for (std::size_t v = begin; v < end; ++v) {
        std::uint64_t smallest = labels[v];
        for (const VertexId u : g.in_neighbors(static_cast<VertexId>(v))) {
          smallest = std::min(smallest, read(u));
        }
        if (g.directed()) {
          for (const VertexId u :
               g.out_neighbors(static_cast<VertexId>(v))) {
            smallest = std::min(smallest, read(u));
          }
        }
        if (smallest < labels[v]) {
          labels[v] = smallest;
          any = true;
        }
      }
      if (any) chunk_changed[c] = 1;
    });
    for (const std::uint8_t flag : chunk_changed) changed |= (flag != 0);
  }
  result.components = count_distinct(result.labels);
  return result;
}

std::pair<std::uint64_t, CdScore> CdTally::choose() const {
  std::uint64_t best_label = 0;
  std::uint64_t best_weight = 0;
  CdScore best_max = 0;
  bool first = true;
  for (const auto& [label, entry] : sums_) {
    if (first || entry.first > best_weight ||
        (entry.first == best_weight && label < best_label)) {
      best_label = label;
      best_weight = entry.first;
      best_max = entry.second;
      first = false;
    }
  }
  return {best_label, best_max};
}

std::uint64_t cd_step(const Graph& g, const CdParams& params,
                      const std::vector<std::uint64_t>& labels_in,
                      const std::vector<CdScore>& scores_in,
                      std::vector<std::uint64_t>& labels_out,
                      std::vector<CdScore>& scores_out, ThreadPool* pool) {
  const VertexId n = g.num_vertices();
  labels_out.resize(n);
  scores_out.resize(n);

  const std::size_t chunks = ThreadPool::plan_chunks(n);
  std::vector<std::uint64_t> partial(chunks, 0);
  run_chunks(pool, n, [&](std::size_t c, std::size_t begin, std::size_t end) {
    CdTally tally;
    std::uint64_t chunk_changed = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const VertexId v = static_cast<VertexId>(i);
      const auto senders = g.in_neighbors(v);
      if (senders.empty()) {
        labels_out[v] = labels_in[v];
        scores_out[v] = scores_in[v];
        continue;
      }
      tally.clear();
      for (const VertexId u : senders) tally.add(labels_in[u], scores_in[u]);
      const auto [best_label, best_max] = tally.choose();
      labels_out[v] = best_label;
      scores_out[v] = best_max > 0 ? best_max - 1 : 0;
      if (best_label != labels_in[v]) ++chunk_changed;
    }
    partial[c] = chunk_changed;
  });
  (void)params;
  std::uint64_t changed = 0;
  for (const std::uint64_t count : partial) changed += count;
  return changed;
}

CdResult reference_cd(const Graph& g, const CdParams& params,
                      ThreadPool* pool) {
  CdResult result;
  const VertexId n = g.num_vertices();
  std::vector<std::uint64_t> labels(n);
  std::vector<CdScore> scores(n, params.initial_units());
  for (VertexId v = 0; v < n; ++v) labels[v] = v;

  std::vector<std::uint64_t> next_labels;
  std::vector<CdScore> next_scores;
  // The paper fixes the iteration budget (5) and runs it out even without
  // convergence; stopping early on "no label changed" would diverge from
  // the message-passing implementations, whose scores keep attenuating.
  for (std::uint32_t iter = 0; iter < params.iterations; ++iter) {
    cd_step(g, params, labels, scores, next_labels, next_scores, pool);
    labels.swap(next_labels);
    scores.swap(next_scores);
    ++result.iterations;
  }
  result.labels = std::move(labels);
  result.communities = count_distinct(result.labels);
  return result;
}

StatsResult reference_stats(const Graph& g, ThreadPool* pool) {
  StatsResult result;
  result.vertices = g.num_vertices();
  result.edges = g.num_edges();
  result.average_lcc = average_lcc(g, pool);
  return result;
}

std::uint64_t count_distinct(const std::vector<std::uint64_t>& labels) {
  std::unordered_set<std::uint64_t> distinct(labels.begin(), labels.end());
  return distinct.size();
}

PageRankResult reference_pagerank(const Graph& g,
                                  const PageRankParams& params,
                                  ThreadPool* pool) {
  PageRankResult result;
  const VertexId n = g.num_vertices();
  if (n == 0) return result;
  std::vector<double> ranks(n, 1.0 / static_cast<double>(n));
  std::vector<double> shares(n, 0.0);  // rank / out-degree, previous round
  std::vector<double> next(n, 0.0);

  // Each vertex's contribution sum stays a single serial loop over its
  // in-neighbors, so chunking never reorders a floating-point sum — ranks
  // are bit-identical to the sequential sweep at any pool size.
  for (std::uint32_t iter = 0; iter < params.iterations; ++iter) {
    run_chunks(pool, n,
               [&](std::size_t, std::size_t begin, std::size_t end) {
                 for (std::size_t v = begin; v < end; ++v) {
                   const EdgeId deg = g.out_degree(static_cast<VertexId>(v));
                   shares[v] =
                       deg > 0 ? ranks[v] / static_cast<double>(deg) : 0.0;
                 }
               });
    run_chunks(pool, n,
               [&](std::size_t, std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   const VertexId v = static_cast<VertexId>(i);
                   double sum = 0.0;
                   for (const VertexId u : g.in_neighbors(v)) sum += shares[u];
                   next[v] = pagerank_update(sum, n, params.damping);
                 }
               });
    ranks.swap(next);
    ++result.iterations;
  }
  result.ranks = std::move(ranks);
  return result;
}

std::vector<std::uint64_t> encode_ranks(const std::vector<double>& ranks) {
  std::vector<std::uint64_t> encoded;
  encoded.reserve(ranks.size());
  for (const double r : ranks) {
    std::uint64_t bits;
    std::memcpy(&bits, &r, sizeof(bits));
    encoded.push_back(bits);
  }
  return encoded;
}

}  // namespace gb::algorithms
