#include "algorithms/reference.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "core/bitset.h"
#include "core/graph_stats.h"

namespace gb::algorithms {

BfsResult reference_bfs_topdown(const Graph& g, VertexId source,
                                ThreadPool* pool) {
  BfsResult result;
  result.levels.assign(g.num_vertices(), kUnreached);
  if (source >= g.num_vertices()) return result;

  std::vector<VertexId> frontier{source};
  std::vector<VertexId> next;
  result.levels[source] = 0;
  result.visited = 1;
  std::uint64_t depth = 0;
  std::vector<std::vector<VertexId>> candidates;

  while (!frontier.empty()) {
    next.clear();
    // Phase 1 (parallel): scan the frontier read-only and collect
    // newly-reachable candidates per chunk. Chunks may rediscover the
    // same vertex; dedup happens in phase 2.
    const std::size_t chunks = ThreadPool::plan_chunks(frontier.size());
    candidates.resize(chunks);
    run_chunks(pool, frontier.size(),
               [&](std::size_t c, std::size_t begin, std::size_t end) {
                 auto& out = candidates[c];
                 out.clear();
                 for (std::size_t i = begin; i < end; ++i) {
                   for (const VertexId u : g.out_neighbors(frontier[i])) {
                     if (result.levels[u] == kUnreached) out.push_back(u);
                   }
                 }
               });
    // Phase 2 (serial, ascending chunk order): the first claim wins, which
    // reproduces the discovery order of a plain serial frontier scan, so
    // levels, visit counts and next-frontier order are all bit-identical.
    for (std::size_t c = 0; c < chunks; ++c) {
      for (const VertexId u : candidates[c]) {
        if (result.levels[u] == kUnreached) {
          result.levels[u] = depth + 1;
          next.push_back(u);
          ++result.visited;
        }
      }
    }
    if (next.empty()) break;
    ++depth;
    frontier.swap(next);
  }
  result.iterations = depth;
  return result;
}

ConnResult reference_conn(const Graph& g, ThreadPool* pool) {
  ConnResult result;
  const VertexId n = g.num_vertices();
  result.labels.resize(n);
  for (VertexId v = 0; v < n; ++v) result.labels[v] = v;

  // Chunked hybrid Gauss-Seidel: each chunk propagates labels in-place
  // within its own range (fast convergence) but reads the previous
  // iteration's snapshot for vertices owned by other chunks (no races,
  // and no dependence on which chunk happens to finish first). With one
  // chunk this is exactly the classic sequential sweep.
  const std::size_t chunks = ThreadPool::plan_chunks(n);
  std::vector<std::uint64_t> snapshot;
  std::vector<std::uint8_t> chunk_changed(chunks, 0);

  bool changed = true;
  while (changed) {
    changed = false;
    ++result.iterations;
    snapshot = result.labels;
    std::fill(chunk_changed.begin(), chunk_changed.end(), 0);
    run_chunks(pool, n, [&](std::size_t c, std::size_t begin,
                            std::size_t end) {
      auto& labels = result.labels;
      const auto read = [&](VertexId u) {
        return (u >= begin && u < end) ? labels[u] : snapshot[u];
      };
      bool any = false;
      for (std::size_t v = begin; v < end; ++v) {
        std::uint64_t smallest = labels[v];
        for (const VertexId u : g.in_neighbors(static_cast<VertexId>(v))) {
          smallest = std::min(smallest, read(u));
        }
        if (g.directed()) {
          for (const VertexId u :
               g.out_neighbors(static_cast<VertexId>(v))) {
            smallest = std::min(smallest, read(u));
          }
        }
        if (smallest < labels[v]) {
          labels[v] = smallest;
          any = true;
        }
      }
      if (any) chunk_changed[c] = 1;
    });
    for (const std::uint8_t flag : chunk_changed) changed |= (flag != 0);
  }
  result.components = count_distinct(result.labels);
  return result;
}

std::pair<std::uint64_t, CdScore> CdTally::choose() const {
  std::uint64_t best_label = 0;
  std::uint64_t best_weight = 0;
  CdScore best_max = 0;
  bool first = true;
  for (const auto& [label, entry] : sums_) {
    if (first || entry.first > best_weight ||
        (entry.first == best_weight && label < best_label)) {
      best_label = label;
      best_weight = entry.first;
      best_max = entry.second;
      first = false;
    }
  }
  return {best_label, best_max};
}

std::uint64_t cd_step(const Graph& g, const CdParams& params,
                      const std::vector<std::uint64_t>& labels_in,
                      const std::vector<CdScore>& scores_in,
                      std::vector<std::uint64_t>& labels_out,
                      std::vector<CdScore>& scores_out, ThreadPool* pool) {
  const VertexId n = g.num_vertices();
  labels_out.resize(n);
  scores_out.resize(n);

  const std::size_t chunks = ThreadPool::plan_chunks(n);
  std::vector<std::uint64_t> partial(chunks, 0);
  run_chunks(pool, n, [&](std::size_t c, std::size_t begin, std::size_t end) {
    CdTally tally;
    std::uint64_t chunk_changed = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const VertexId v = static_cast<VertexId>(i);
      const auto senders = g.in_neighbors(v);
      if (senders.empty()) {
        labels_out[v] = labels_in[v];
        scores_out[v] = scores_in[v];
        continue;
      }
      tally.clear();
      for (const VertexId u : senders) tally.add(labels_in[u], scores_in[u]);
      const auto [best_label, best_max] = tally.choose();
      labels_out[v] = best_label;
      scores_out[v] = best_max > 0 ? best_max - 1 : 0;
      if (best_label != labels_in[v]) ++chunk_changed;
    }
    partial[c] = chunk_changed;
  });
  (void)params;
  std::uint64_t changed = 0;
  for (const std::uint64_t count : partial) changed += count;
  return changed;
}

CdResult reference_cd(const Graph& g, const CdParams& params,
                      ThreadPool* pool) {
  CdResult result;
  const VertexId n = g.num_vertices();
  std::vector<std::uint64_t> labels(n);
  std::vector<CdScore> scores(n, params.initial_units());
  for (VertexId v = 0; v < n; ++v) labels[v] = v;

  std::vector<std::uint64_t> next_labels;
  std::vector<CdScore> next_scores;
  // The paper fixes the iteration budget (5) and runs it out even without
  // convergence; stopping early on "no label changed" would diverge from
  // the message-passing implementations, whose scores keep attenuating.
  for (std::uint32_t iter = 0; iter < params.iterations; ++iter) {
    cd_step(g, params, labels, scores, next_labels, next_scores, pool);
    labels.swap(next_labels);
    scores.swap(next_scores);
    ++result.iterations;
  }
  result.labels = std::move(labels);
  result.communities = count_distinct(result.labels);
  return result;
}

StatsResult reference_stats(const Graph& g, ThreadPool* pool) {
  StatsResult result;
  result.vertices = g.num_vertices();
  result.edges = g.num_edges();
  result.average_lcc = average_lcc(g, pool);
  return result;
}

std::uint64_t count_distinct(const std::vector<std::uint64_t>& labels) {
  std::unordered_set<std::uint64_t> distinct(labels.begin(), labels.end());
  return distinct.size();
}

PageRankResult reference_pagerank(const Graph& g,
                                  const PageRankParams& params,
                                  ThreadPool* pool) {
  PageRankResult result;
  const VertexId n = g.num_vertices();
  if (n == 0) return result;
  std::vector<double> ranks(n, 1.0 / static_cast<double>(n));
  std::vector<double> shares(n, 0.0);  // rank / out-degree, previous round
  std::vector<double> next(n, 0.0);

  // Each vertex's contribution sum stays a single serial loop over its
  // in-neighbors, so chunking never reorders a floating-point sum — ranks
  // are bit-identical to the sequential sweep at any pool size.
  for (std::uint32_t iter = 0; iter < params.iterations; ++iter) {
    run_chunks(pool, n,
               [&](std::size_t, std::size_t begin, std::size_t end) {
                 for (std::size_t v = begin; v < end; ++v) {
                   const EdgeId deg = g.out_degree(static_cast<VertexId>(v));
                   shares[v] =
                       deg > 0 ? ranks[v] / static_cast<double>(deg) : 0.0;
                 }
               });
    run_chunks(pool, n,
               [&](std::size_t, std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   const VertexId v = static_cast<VertexId>(i);
                   double sum = 0.0;
                   for (const VertexId u : g.in_neighbors(v)) sum += shares[u];
                   next[v] = pagerank_update(sum, n, params.damping);
                 }
               });
    ranks.swap(next);
    ++result.iterations;
  }
  result.ranks = std::move(ranks);
  return result;
}

std::vector<std::uint64_t> encode_ranks(const std::vector<double>& ranks) {
  std::vector<std::uint64_t> encoded;
  encoded.reserve(ranks.size());
  for (const double r : ranks) {
    std::uint64_t bits;
    std::memcpy(&bits, &r, sizeof(bits));
    encoded.push_back(bits);
  }
  return encoded;
}

namespace {

/// Lock-free min on a plain uint64 slot; true when this call lowered it.
/// Relaxed ordering suffices: the per-round frontier snapshot is the only
/// cross-thread read, and run_chunks joins before it is taken.
bool atomic_fetch_min(std::uint64_t& slot, std::uint64_t value) {
  std::atomic_ref<std::uint64_t> ref(slot);
  std::uint64_t current = ref.load(std::memory_order_relaxed);
  while (value < current) {
    if (ref.compare_exchange_weak(current, value,
                                  std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

}  // namespace

SsspResult reference_sssp(const Graph& g, const SsspParams& params,
                          ThreadPool* pool) {
  SsspResult result;
  const VertexId n = g.num_vertices();
  result.dist.assign(n, kUnreached);
  if (params.source >= n) return result;
  const EdgeWeights weights(g, params.weight_seed);
  // Auto width: a few weight classes per bucket keeps re-relaxation small
  // while still batching enough vertices to fill the pool.
  const std::uint64_t delta =
      params.delta != 0 ? params.delta : kMaxEdgeWeight / 4;

  result.dist[params.source] = 0;
  // `active` holds reached-but-unsettled vertices. With positive weights a
  // relaxation from bucket k can only land in bucket >= k, so settled
  // vertices (dist below the current bucket) never reactivate.
  DenseBitset active(n);
  active.set(params.source);
  std::uint64_t active_count = 1;

  DenseBitset improved(n);
  std::vector<VertexId> frontier;
  std::vector<std::uint64_t> frontier_dist;

  while (active_count > 0) {
    // Lowest bucket holding an active vertex.
    std::uint64_t bucket = kUnreached;
    active.for_each_set([&](std::size_t v) {
      bucket = std::min(bucket, result.dist[v] / delta);
    });

    // Drain the bucket with synchronized relaxation rounds: a member whose
    // distance improves mid-bucket re-enters the frontier next round.
    while (true) {
      frontier.clear();
      active.for_each_set([&](std::size_t v) {
        if (result.dist[v] / delta == bucket) {
          frontier.push_back(static_cast<VertexId>(v));
        }
      });
      if (frontier.empty()) break;
      for (const VertexId v : frontier) active.reset(v);
      active_count -= frontier.size();

      // Snapshot frontier distances: the relaxation reads only the
      // snapshot, so a same-round improvement of a frontier member cannot
      // race the proposals (it is simply reprocessed next round).
      frontier_dist.resize(frontier.size());
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        frontier_dist[i] = result.dist[frontier[i]];
      }
      improved.clear();
      run_chunks(pool, frontier.size(),
                 [&](std::size_t, std::size_t begin, std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) {
                     const VertexId v = frontier[i];
                     const std::uint64_t d = frontier_dist[i];
                     const auto nbrs = g.out_neighbors(v);
                     for (std::size_t k = 0; k < nbrs.size(); ++k) {
                       const std::uint64_t nd = d + weights.out_weight(v, k);
                       if (atomic_fetch_min(result.dist[nbrs[k]], nd)) {
                         improved.set_atomic(nbrs[k]);
                       }
                     }
                   }
                 });
      ++result.iterations;
      // Membership is an OR of claims and the scan is ascending, so the
      // next frontier is bit-identical at every pool size.
      improved.for_each_set([&](std::size_t v) {
        if (!active.test(v)) {
          active.set(v);
          ++active_count;
        }
      });
    }
  }

  for (const std::uint64_t d : result.dist) {
    if (d != kUnreached) ++result.reached;
  }
  return result;
}

SsspResult reference_sssp_dijkstra(const Graph& g, const SsspParams& params) {
  SsspResult result;
  const VertexId n = g.num_vertices();
  result.dist.assign(n, kUnreached);
  if (params.source >= n) return result;
  const EdgeWeights weights(g, params.weight_seed);

  using Item = std::pair<std::uint64_t, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  result.dist[params.source] = 0;
  heap.emplace(0, params.source);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d != result.dist[v]) continue;  // stale (lazily deleted) entry
    ++result.reached;
    ++result.iterations;  // settle operations, the serial unit of progress
    const auto nbrs = g.out_neighbors(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const std::uint64_t nd = d + weights.out_weight(v, k);
      if (nd < result.dist[nbrs[k]]) {
        result.dist[nbrs[k]] = nd;
        heap.emplace(nd, nbrs[k]);
      }
    }
  }
  return result;
}

LccResult reference_lcc(const Graph& g, ThreadPool* pool) {
  LccResult result;
  const VertexId n = g.num_vertices();
  if (n == 0) return result;
  result.values.assign(n, 0.0);
  run_chunks(pool, n, [&](std::size_t, std::size_t begin, std::size_t end) {
    std::vector<VertexId> scratch;
    for (std::size_t v = begin; v < end; ++v) {
      const auto nbrs = lcc_neighborhood(g, static_cast<VertexId>(v), scratch);
      result.values[v] = lcc_from_counts(
          lcc_links(g, nbrs, static_cast<VertexId>(v)), nbrs.size());
    }
  });
  result.average = lcc_average(result.values);
  return result;
}

double lcc_average(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace gb::algorithms
