// Direction-optimizing BFS (Beamer, Asanović & Patterson, SC'12).
//
// Push levels expand the frontier's out-edges and claim newly reached
// vertices through an atomic dense bitset (one fetch_or per discovery —
// no duplicate candidate queues, no serial dedup pass). Pull levels scan
// the unvisited vertices' in-adjacency for a frontier parent and stop at
// the first hit; they write only their own disjoint chunk range, so they
// need no atomics at all. The DirectionPolicy picks the direction per
// level from exact frontier statistics.
//
// Determinism: the set of vertices discovered at each depth — and hence
// levels, the visit count and the depth — is a property of the graph, not
// of the schedule. The only schedule-dependent artifact is which chunk
// claims a contended vertex, which can permute the *order* of the next
// frontier; no output quantity depends on that order. All counters are
// integer sums merged in ascending chunk order.

#include <cstddef>
#include <vector>

#include "algorithms/reference.h"
#include "core/bitset.h"
#include "core/traversal.h"

namespace gb::algorithms {

BfsResult reference_bfs(const Graph& g, VertexId source, ThreadPool* pool,
                        TraversalMode mode, BfsTraversalTrace* trace) {
  BfsResult result;
  const VertexId n = g.num_vertices();
  result.levels.assign(n, kUnreached);
  if (trace != nullptr) trace->levels.clear();
  if (source >= n) return result;

  result.levels[source] = 0;
  result.visited = 1;

  DenseBitset visited(n);
  visited.set(source);
  DenseBitset frontier_bits(n);
  frontier_bits.set(source);
  std::vector<VertexId> frontier{source};
  std::vector<VertexId> next;

  const std::uint64_t total_out_edges = g.num_adjacency_entries();
  std::uint64_t frontier_edges = g.out_degree(source);
  std::uint64_t unexplored_edges = total_out_edges - frontier_edges;
  std::uint64_t depth = 0;
  bool pull = false;

  const DirectionPolicy policy;
  std::vector<std::vector<VertexId>> chunk_found;
  std::vector<std::uint64_t> chunk_edges;

  while (!frontier.empty()) {
    pull = policy.pull_for(mode, pull, frontier.size(), frontier_edges,
                           unexplored_edges, n);
    if (trace != nullptr) {
      trace->levels.push_back(
          {depth, frontier.size(), frontier_edges, pull});
    }

    next.clear();
    std::uint64_t next_edges = 0;
    if (pull) {
      // Bottom-up: each chunk owns a disjoint vertex range; it reads and
      // writes levels only inside that range and marks discoveries in the
      // shared visited bitset with atomic ORs (word boundaries are shared
      // between adjacent chunks).
      const std::size_t chunks = ThreadPool::plan_chunks(n);
      chunk_found.resize(chunks);
      chunk_edges.assign(chunks, 0);
      run_chunks(pool, n,
                 [&](std::size_t c, std::size_t begin, std::size_t end) {
                   auto& found = chunk_found[c];
                   found.clear();
                   std::uint64_t edges = 0;
                   for (std::size_t i = begin; i < end; ++i) {
                     const VertexId v = static_cast<VertexId>(i);
                     if (result.levels[v] != kUnreached) continue;
                     for (const VertexId u : g.in_neighbors(v)) {
                       if (!frontier_bits.test(u)) continue;
                       result.levels[v] = depth + 1;
                       visited.set_atomic(v);
                       found.push_back(v);
                       edges += g.out_degree(v);
                       break;
                     }
                   }
                   chunk_edges[c] = edges;
                 });
      for (std::size_t c = 0; c < chunks; ++c) {
        next.insert(next.end(), chunk_found[c].begin(), chunk_found[c].end());
        next_edges += chunk_edges[c];
      }
    } else {
      // Top-down: expand the frontier's out-edges; the first fetch_or
      // claims the vertex, and only the claimant writes its level.
      const std::size_t chunks = ThreadPool::plan_chunks(frontier.size());
      chunk_found.resize(chunks);
      chunk_edges.assign(chunks, 0);
      run_chunks(pool, frontier.size(),
                 [&](std::size_t c, std::size_t begin, std::size_t end) {
                   auto& found = chunk_found[c];
                   found.clear();
                   std::uint64_t edges = 0;
                   for (std::size_t i = begin; i < end; ++i) {
                     for (const VertexId w : g.out_neighbors(frontier[i])) {
                       if (visited.test_atomic(w)) continue;
                       if (!visited.set_atomic(w)) continue;
                       result.levels[w] = depth + 1;
                       found.push_back(w);
                       edges += g.out_degree(w);
                     }
                   }
                   chunk_edges[c] = edges;
                 });
      for (std::size_t c = 0; c < chunks; ++c) {
        next.insert(next.end(), chunk_found[c].begin(), chunk_found[c].end());
        next_edges += chunk_edges[c];
      }
    }

    // Maintain the frontier membership bitset incrementally — resetting
    // only the outgoing frontier's bits keeps the whole run O(V) instead
    // of O(V * depth) on deep graphs.
    for (const VertexId u : frontier) frontier_bits.reset(u);
    for (const VertexId u : next) frontier_bits.set(u);

    result.visited += next.size();
    unexplored_edges -= next_edges;
    if (next.empty()) break;
    ++depth;
    frontier.swap(next);
    frontier_edges = next_edges;
  }
  result.iterations = depth;
  return result;
}

}  // namespace gb::algorithms
