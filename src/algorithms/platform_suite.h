// The six benchmarked platforms, assembled: each class binds one execution
// engine to the five algorithm implementations and exposes the common
// Platform interface the harness drives.
//
//   Hadoop        — platforms/mapreduce, per-iteration MR jobs
//   YARN          — same engine, container-based resource manager variant
//   Stratosphere  — platforms/dataflow, PACT plans on Nephele
//   Giraph        — platforms/pregel, BSP vertex programs
//   GraphLab      — platforms/gas, GAS programs (optionally "(mp)" loading)
//   Neo4j         — platforms/graphdb, single-machine traversals
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "platforms/platform.h"

namespace gb::algorithms {

std::unique_ptr<platforms::Platform> make_hadoop();
std::unique_ptr<platforms::Platform> make_yarn();
std::unique_ptr<platforms::Platform> make_stratosphere();
std::unique_ptr<platforms::Platform> make_giraph();
std::unique_ptr<platforms::Platform> make_graphlab(bool multi_piece = false);
std::unique_ptr<platforms::Platform> make_neo4j();

// Related-work platforms (the paper's Table 8), built on the MapReduce
// engine: HaLoop caches loop-invariant data between iterations; PEGASUS
// runs GIM-V over block-compressed matrices (BFS/CONN/PageRank only).
std::unique_ptr<platforms::Platform> make_haloop();
std::unique_ptr<platforms::Platform> make_pegasus();
/// GPS (Salihoglu & Widom): Pregel plus large-adjacency-list partitioning.
std::unique_ptr<platforms::Platform> make_gps();

/// All six platforms in the paper's presentation order (GraphLab in stock
/// single-file loading mode).
std::vector<std::unique_ptr<platforms::Platform>> make_all_platforms();

/// Factory by CLI / campaign-spec name ("Hadoop", "GraphLab(mp)", ...).
/// Returns nullptr for unknown names; platform_names() lists the valid
/// ones. Shared by gb_run, gb_campaign and the campaign runner so the
/// cell-spec vocabulary cannot drift between entry points.
std::unique_ptr<platforms::Platform> make_platform(const std::string& name);

/// Every name make_platform accepts, in presentation order.
const std::vector<std::string>& platform_names();

}  // namespace gb::algorithms
