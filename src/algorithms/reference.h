// Sequential reference implementations of the five benchmark algorithms.
//
// These define the exact semantics every platform implementation must
// reproduce — the test suite cross-validates each platform's output
// against them on every dataset class.
//
// Semantics fixed here (and mirrored by all platform programs):
//  * BFS: levels from a source; directed graphs traverse out-edges only
//    (paper Section 3.2), unreached vertices keep kUnreached.
//  * CONN (Wu & Du label propagation): labels start as vertex ids and take
//    the minimum over in- AND out-neighbors until a fixpoint; the final
//    label is the smallest id in the (weakly) connected component.
//  * CD (Leung et al.): synchronized label propagation with scores.
//    Vertices broadcast (label, score) along out-edges; receivers pick the
//    label with the greatest score sum (ties: smaller label) and adopt
//    max-score-of-chosen-label minus the hop attenuation. Fixed iteration
//    budget (paper: 5).
//  * STATS: vertex/edge counts and the average local clustering
//    coefficient.
//
// Every entry point takes an optional ThreadPool. The hot loops are
// chunked with ThreadPool::plan_chunks — a pure function of the problem
// size — and per-chunk results are merged in ascending chunk order, so the
// output is bit-identical for every pool size (null pool = same plan run
// inline). The pool only changes wall-clock time.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/graph.h"
#include "core/thread_pool.h"
#include "core/traversal.h"

namespace gb::algorithms {

inline constexpr std::uint64_t kUnreached = ~std::uint64_t{0};

struct BfsResult {
  std::vector<std::uint64_t> levels;  // kUnreached where not visited
  std::uint64_t iterations = 0;       // BFS depth (number of frontiers)
  std::uint64_t visited = 0;
  double coverage() const {
    return levels.empty() ? 0.0
                          : static_cast<double>(visited) /
                                static_cast<double>(levels.size());
  }
};

// BfsLevelTrace / BfsTraversalTrace live in core/traversal.h (the engines
// record them too); re-exported here for the reference API's callers.
using gb::BfsLevelTrace;
using gb::BfsTraversalTrace;

/// Direction-optimizing (push/pull-switching, Beamer-style) BFS over the
/// CSR: top-down expansion claims vertices through an atomic bitset;
/// bottom-up scans unvisited vertices' in-adjacency for a frontier
/// parent. The result — levels, depth, visit count — is bit-identical to
/// reference_bfs_topdown at every pool size and under every `mode`
/// (levels are unique whatever the traversal order).
BfsResult reference_bfs(const Graph& g, VertexId source,
                        ThreadPool* pool = nullptr,
                        TraversalMode mode = TraversalMode::kAuto,
                        BfsTraversalTrace* trace = nullptr);

/// The pre-direction-optimizing top-down implementation (per-chunk
/// candidate queues, serial first-claim-wins merge). Kept as the
/// bench_hostperf "before" baseline and the oracle the property suite
/// compares against.
BfsResult reference_bfs_topdown(const Graph& g, VertexId source,
                                ThreadPool* pool = nullptr);

struct ConnResult {
  std::vector<std::uint64_t> labels;
  std::uint64_t iterations = 0;
  std::uint64_t components = 0;
};

ConnResult reference_conn(const Graph& g, ThreadPool* pool = nullptr);

struct CdParams {
  double initial_score = 1.0;
  double hop_attenuation = 0.1;
  std::uint32_t iterations = 5;

  // Scores are kept in fixed-point units of one hop attenuation so that
  // score sums are integers — identical regardless of the order in which
  // a platform's messages arrive (float sums would differ in the last ulp
  // and could flip label ties between platforms).
  std::uint32_t initial_units() const {
    return static_cast<std::uint32_t>(initial_score / hop_attenuation + 0.5);
  }
};

/// Fixed-point score type (units of one hop attenuation).
using CdScore = std::uint32_t;

struct CdResult {
  std::vector<std::uint64_t> labels;
  std::uint64_t iterations = 0;
  std::uint64_t communities = 0;
};

CdResult reference_cd(const Graph& g, const CdParams& params,
                      ThreadPool* pool = nullptr);

/// One synchronized CD update step; shared by the reference and by every
/// platform implementation so the semantics cannot drift. Reads the
/// previous labels/scores, writes the new ones, returns #changed labels.
std::uint64_t cd_step(const Graph& g, const CdParams& params,
                      const std::vector<std::uint64_t>& labels_in,
                      const std::vector<CdScore>& scores_in,
                      std::vector<std::uint64_t>& labels_out,
                      std::vector<CdScore>& scores_out,
                      ThreadPool* pool = nullptr);

/// Receiver-side CD tally, shared by the message-passing implementations
/// (Pregel, GAS): accumulates per-label score sums and maxima. Because
/// sums are integers, the choice is independent of message arrival order.
class CdTally {
 public:
  void add(std::uint64_t label, CdScore score) {
    auto& entry = sums_[label];
    entry.first += score;
    entry.second = std::max(entry.second, score);
  }
  void clear() { sums_.clear(); }
  bool empty() const { return sums_.empty(); }

  /// Chosen label (max score sum; ties to the smaller label) and the
  /// maximum score seen for it.
  std::pair<std::uint64_t, CdScore> choose() const;

 private:
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, CdScore>> sums_;
};

struct StatsResult {
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  double average_lcc = 0.0;
};

StatsResult reference_stats(const Graph& g, ThreadPool* pool = nullptr);

/// Count distinct community labels (shared helper).
std::uint64_t count_distinct(const std::vector<std::uint64_t>& labels);

// ---- PageRank (library extension) -------------------------------------------
//
// Fixed-iteration power method with damping, *without* dangling-mass
// redistribution (GraphLab toolkit semantics). Semantics are pinned so
// every platform reproduces bit-identical ranks: contributions are summed
// in ascending in-neighbor order, which is exactly the arrival order on
// every engine in this library.
struct PageRankParams {
  std::uint32_t iterations = 10;
  double damping = 0.85;
};

struct PageRankResult {
  std::vector<double> ranks;
  std::uint64_t iterations = 0;
};

PageRankResult reference_pagerank(const Graph& g, const PageRankParams& params,
                                  ThreadPool* pool = nullptr);

/// One synchronized PageRank update for vertex v given the previous ranks
/// divided by out-degree (shared so no implementation drifts).
inline double pagerank_update(double contribution_sum, VertexId n,
                              double damping) {
  return (1.0 - damping) / static_cast<double>(n) +
         damping * contribution_sum;
}

/// Bit-exact encoding of ranks into AlgorithmOutput::vertex_values.
std::vector<std::uint64_t> encode_ranks(const std::vector<double>& ranks);

// ---- SSSP (Graphalytics extension) ------------------------------------------
//
// Single-source shortest paths over integer edge weights (stored, or
// seed-derived through the EdgeWeights view — see core/graph.h). Directed
// graphs relax out-edges only, like BFS. Because distances are uint64
// min-plus sums, the fixpoint is unique whatever the relaxation order, so
// every engine, partitioner, and pool size produces bit-identical
// distances.
struct SsspParams {
  VertexId source = 0;
  /// Seed for derived weights on unweighted graphs (ignored when the
  /// graph stores weights). Engines take it from AlgorithmParams::seed.
  std::uint64_t weight_seed = 1;
  /// Delta-stepping bucket width; 0 picks a width from kMaxEdgeWeight.
  /// Only affects scheduling (and the round count), never the distances.
  std::uint64_t delta = 0;
};

struct SsspResult {
  std::vector<std::uint64_t> dist;  // kUnreached where not reachable
  std::uint64_t iterations = 0;     // relaxation rounds across all buckets
  std::uint64_t reached = 0;
};

/// Bucketed delta-stepping: vertices are settled in distance buckets of
/// width delta; inside a bucket, synchronized relaxation rounds run until
/// the bucket drains (re-relaxing members whose distance improves), with
/// the frontier tracked in DenseBitsets and relaxations chunked over the
/// pool (atomic min on the distance array — order-independent).
SsspResult reference_sssp(const Graph& g, const SsspParams& params,
                          ThreadPool* pool = nullptr);

/// Serial binary-heap Dijkstra with lazy deletion: the bench_hostperf
/// "before" baseline and the oracle the property suite compares against.
SsspResult reference_sssp_dijkstra(const Graph& g, const SsspParams& params);

// ---- LCC (Graphalytics extension) -------------------------------------------
//
// Per-vertex local clustering coefficient (core/graph_stats.h semantics:
// in/out union neighborhood with directed link counting). Integer link
// counts and a single division make each value bit-identical on every
// engine; the scalar average is computed by lcc_average — one serial
// left-to-right sum shared by all engines — so it is too.
struct LccResult {
  std::vector<double> values;
  double average = 0.0;
};

LccResult reference_lcc(const Graph& g, ThreadPool* pool = nullptr);

/// Serial left-to-right mean of the per-vertex values (0 for an empty
/// graph). Every engine funnels its scalar through this exact sum.
double lcc_average(const std::vector<double>& values);

}  // namespace gb::algorithms
