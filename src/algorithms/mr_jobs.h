// The benchmark algorithms expressed as iterative map/reduce jobs: the
// driver pattern the paper used on Hadoop and YARN (and, with a richer
// per-iteration plan, on Stratosphere). The map side emits messages keyed
// by destination vertex; the reduce side folds the grouped messages into
// the vertex state. Both engines execute these jobs for real.
//
// map() is generic over the emitter so the same job runs on the Hadoop
// engine (MapEmitter) and on the Nephele executor.
#pragma once

#include <algorithm>
#include <span>

#include "algorithms/reference.h"
#include "core/graph.h"

namespace gb::algorithms::mr {

// ---- BFS --------------------------------------------------------------------
struct BfsJob {
  using State = std::uint64_t;  // level, kUnreached until visited
  using Msg = std::uint64_t;    // proposed level

  VertexId source;
  std::uint32_t iteration = 0;  // maintained by the driver

  template <typename Emitter>
  void map(VertexId v, const State& s, const Graph& g, Emitter& out) {
    if (iteration == 0) {
      if (v == source) {
        for (const VertexId u : g.out_neighbors(v)) out.emit(u, 1);
      }
      return;
    }
    // Only vertices that joined the frontier last round propagate.
    if (s == iteration) {
      for (const VertexId u : g.out_neighbors(v)) out.emit(u, s + 1);
    }
  }

  bool reduce(VertexId v, State& s, const Graph& g, std::span<const Msg> msgs) {
    (void)g;
    if (iteration == 0 && v == source && s != 0) {
      s = 0;
      return true;
    }
    std::uint64_t best = s;
    for (const Msg m : msgs) best = std::min(best, m);
    if (best < s) {
      s = best;
      return true;
    }
    return false;
  }
};

// ---- CONN -------------------------------------------------------------------
struct ConnJob {
  using State = std::uint64_t;  // component label
  using Msg = std::uint64_t;

  std::uint32_t iteration = 0;

  template <typename Emitter>
  void map(VertexId v, const State& s, const Graph& g, Emitter& out) {
    // Label flows along both directions for weak connectivity. Emitting
    // every round mirrors the Hadoop implementation, which cannot keep an
    // active set between jobs.
    for (const VertexId u : g.out_neighbors(v)) out.emit(u, s);
    if (g.directed()) {
      for (const VertexId u : g.in_neighbors(v)) out.emit(u, s);
    }
  }

  bool reduce(VertexId v, State& s, const Graph& g, std::span<const Msg> msgs) {
    (void)v;
    (void)g;
    std::uint64_t smallest = s;
    for (const Msg m : msgs) smallest = std::min(smallest, m);
    if (smallest < s) {
      s = smallest;
      return true;
    }
    return false;
  }
};

// ---- SSSP (Graphalytics extension) ------------------------------------------
struct SsspJob {
  using State = std::uint64_t;  // distance, kUnreached until relaxed
  using Msg = std::uint64_t;    // proposed distance

  // The driver seeds state[source] = 0 before round 0 (Hadoop carries the
  // source's distance in the input split, not in a message).
  EdgeWeights weights;
  std::uint32_t iteration = 0;  // maintained by the driver

  template <typename Emitter>
  void map(VertexId v, const State& s, const Graph& g, Emitter& out) {
    // Unlike BFS, a vertex cannot tell from its distance alone whether it
    // changed last round, so every reached vertex re-emits each round —
    // the classic Hadoop SSSP shape (no active set between jobs). The
    // fixpoint is a min, so re-emission never changes the result.
    if (s == kUnreached) return;
    const auto nbrs = g.out_neighbors(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      out.emit(nbrs[k], s + weights.out_weight(v, k));
    }
  }

  bool reduce(VertexId v, State& s, const Graph& g, std::span<const Msg> msgs) {
    (void)v;
    (void)g;
    std::uint64_t best = s;
    for (const Msg m : msgs) best = std::min(best, m);
    if (best < s) {
      s = best;
      return true;
    }
    return false;
  }
};

// ---- CD ---------------------------------------------------------------------
struct CdState {
  std::uint64_t label = 0;
  CdScore score = 0;
};

struct CdMsg {
  std::uint64_t label = 0;
  CdScore score = 0;
};

struct CommunityDetectionJob {
  using State = CdState;
  using Msg = CdMsg;

  CdParams params;
  std::uint32_t iteration = 0;

  template <typename Emitter>
  void map(VertexId v, const State& s, const Graph& g, Emitter& out) {
    for (const VertexId u : g.out_neighbors(v)) out.emit(u, {s.label, s.score});
  }

  bool reduce(VertexId v, State& s, const Graph& g, std::span<const Msg> msgs) {
    (void)v;
    (void)g;
    // CD runs its fixed iteration budget even when no label flips: the
    // attenuating scores can still flip labels in a later round, and the
    // reference implementation runs the full budget too.
    const bool budget_left = iteration + 1 < params.iterations;
    if (msgs.empty()) return budget_left;
    CdTally tally;
    for (const Msg& m : msgs) tally.add(m.label, m.score);
    const auto [label, max_score] = tally.choose();
    s.label = label;
    s.score = max_score > 0 ? max_score - 1 : 0;
    return budget_left;
  }
};

// ---- PageRank (extension) -----------------------------------------------------
struct PageRankJob {
  using State = double;  // rank
  using Msg = double;    // share = rank / out-degree

  PageRankParams params;
  std::uint32_t iteration = 0;

  template <typename Emitter>
  void map(VertexId v, const State& s, const Graph& g, Emitter& out) {
    const EdgeId deg = g.out_degree(v);
    if (deg == 0) return;
    const double share = s / static_cast<double>(deg);
    for (const VertexId u : g.out_neighbors(v)) out.emit(u, share);
  }

  bool reduce(VertexId v, State& s, const Graph& g, std::span<const Msg> msgs) {
    (void)v;
    double sum = 0.0;
    for (const Msg m : msgs) sum += m;
    s = pagerank_update(sum, g.num_vertices(), params.damping);
    // Fixed budget: the driver stops after params.iterations rounds.
    return iteration + 1 < params.iterations;
  }
};

}  // namespace gb::algorithms::mr
