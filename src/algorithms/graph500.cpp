#include "algorithms/graph500.h"

#include <cmath>

#include "algorithms/reference.h"

namespace gb::algorithms {

Graph500Validation validate_bfs_levels(
    const Graph& g, VertexId source,
    const std::vector<std::uint64_t>& levels) {
  Graph500Validation result;
  const auto fail = [&result](std::string message) {
    result.valid = false;
    result.error = std::move(message);
    return result;
  };

  if (levels.size() != g.num_vertices()) {
    return fail("level array size mismatch");
  }
  if (source >= g.num_vertices() || levels[source] != 0) {
    return fail("source level is not zero");
  }

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (levels[v] == kUnreached) continue;
    if (v != source && levels[v] == 0) {
      return fail("non-source vertex at level 0: " + std::to_string(v));
    }
    bool has_parent_level = v == source;
    for (const VertexId u : g.out_neighbors(v)) {
      if (levels[u] == kUnreached) {
        // Rule 4 (directed): everything out-adjacent to a reached vertex
        // must be reached.
        return fail("unreached vertex adjacent from reached vertex " +
                    std::to_string(v));
      }
      // Rule 2 applies in the direction BFS can traverse.
      if (levels[u] + 1 < levels[v] && !g.directed()) {
        return fail("level gap of more than one across edge (" +
                    std::to_string(v) + "," + std::to_string(u) + ")");
      }
      if (levels[u] > levels[v] + 1) {
        return fail("missed shortcut across edge (" + std::to_string(v) +
                    "," + std::to_string(u) + ")");
      }
    }
    if (!has_parent_level) {
      for (const VertexId u : g.in_neighbors(v)) {
        if (levels[u] != kUnreached && levels[u] + 1 == levels[v]) {
          has_parent_level = true;
          break;
        }
      }
      if (!has_parent_level) {
        return fail("vertex " + std::to_string(v) +
                    " has no neighbor one level closer to the source");
      }
    }
  }
  return result;
}

EdgeId traversed_edges(const Graph& g,
                       const std::vector<std::uint64_t>& levels) {
  EdgeId entries = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (levels[v] == kUnreached) continue;
    entries += g.out_degree(v);
  }
  // Undirected adjacency double-counts component-internal edges; edges
  // out of the component (impossible when levels are valid) would be
  // counted once, which matches Graph500's "at least one endpoint".
  return g.directed() ? entries : (entries + 1) / 2;
}

double teps(EdgeId edges, double seconds) {
  return seconds > 0 ? static_cast<double>(edges) / seconds : 0.0;
}

double harmonic_mean_teps(const std::vector<double>& teps_values) {
  if (teps_values.empty()) return 0.0;
  double inverse_sum = 0.0;
  for (const double t : teps_values) {
    if (t <= 0) return 0.0;
    inverse_sum += 1.0 / t;
  }
  return static_cast<double>(teps_values.size()) / inverse_sum;
}

}  // namespace gb::algorithms
