#include "sim/faults.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "core/error.h"
#include "core/rng.h"
#include "core/strict_parse.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gb::sim {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWorkerCrash:
      return "worker_crash";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kTransientTask:
      return "transient_task";
  }
  return "?";
}

namespace {

std::vector<std::string> split(const std::string& spec, char sep) {
  std::vector<std::string> parts;
  std::istringstream in(spec);
  std::string part;
  while (std::getline(in, part, sep)) parts.push_back(part);
  // getline drops a trailing empty field — "worker:10:" would otherwise
  // parse as a complete two-field spec. Keep the empty field so it fails
  // validation like any other malformed field.
  if (!spec.empty() && spec.back() == sep) parts.emplace_back();
  return parts;
}

// Both field parsers wrap the shared strict parsers (core/strict_parse.h)
// and only add the fault-spec error message: no fault time, slowdown or
// duration is meaningfully partial ("1.5x") or infinite ("inf", "nan").
double parse_number(const std::string& text, const std::string& spec) {
  const auto parsed = strict::parse_double(text);
  if (!parsed) {
    throw Error("malformed fault spec '" + spec + "': bad number '" + text +
                "'");
  }
  return *parsed;
}

// Worker indices are digit strings, not doubles: routing them through
// parse_number and casting would silently truncate "2.5" to worker 2 and
// wrap "-1" into a huge index that matches no worker.
std::uint32_t parse_worker(const std::string& text, const std::string& spec) {
  const auto parsed = strict::parse_u32(text);
  if (!parsed) {
    throw Error("malformed fault spec '" + spec + "': bad worker index '" +
                text + "'");
  }
  return *parsed;
}

}  // namespace

void FaultPlan::add_spec(const std::string& spec) {
  const auto parts = split(spec, ':');
  if (parts.empty()) throw Error("empty fault spec");
  FaultEvent event;
  const std::string& kind = parts.front();
  if (kind == "worker" || kind == "task") {
    event.kind = kind == "worker" ? FaultKind::kWorkerCrash
                                  : FaultKind::kTransientTask;
    if (parts.size() < 2 || parts.size() > 3) {
      throw Error("malformed fault spec '" + spec + "': expected " + kind +
                  ":<t>[:<worker>]");
    }
    event.time = parse_number(parts[1], spec);
    if (parts.size() == 3) {
      event.worker = parse_worker(parts[2], spec);
    }
  } else if (kind == "straggler") {
    event.kind = FaultKind::kStraggler;
    if (parts.size() < 4 || parts.size() > 5) {
      throw Error("malformed fault spec '" + spec +
                  "': expected straggler:<t>:<factor>:<dur>[:<worker>]");
    }
    event.time = parse_number(parts[1], spec);
    event.slowdown = parse_number(parts[2], spec);
    event.duration = parse_number(parts[3], spec);
    if (event.slowdown < 1.0) {
      throw Error("straggler slowdown must be >= 1 in '" + spec + "'");
    }
    if (parts.size() == 5) {
      event.worker = parse_worker(parts[4], spec);
    }
  } else {
    throw Error("unknown fault kind '" + kind + "' in '" + spec +
                "' (expected worker|task|straggler)");
  }
  if (event.time < 0.0) {
    throw Error("fault time must be >= 0 in '" + spec + "'");
  }
  add(event);
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::uint32_t num_workers,
                            SimTime horizon, std::uint32_t events) {
  FaultPlan plan;
  Xoshiro256 rng(seed);
  for (std::uint32_t i = 0; i < events; ++i) {
    FaultEvent event;
    const std::uint64_t kind = rng.next_below(3);
    event.kind = kind == 0   ? FaultKind::kWorkerCrash
                 : kind == 1 ? FaultKind::kStraggler
                             : FaultKind::kTransientTask;
    event.time = rng.next_double() * horizon;
    event.worker = num_workers > 0
                       ? static_cast<std::uint32_t>(rng.next_below(num_workers))
                       : 0;
    if (event.kind == FaultKind::kStraggler) {
      event.slowdown = 1.5 + rng.next_double() * 2.5;
      event.duration = horizon * (0.05 + rng.next_double() * 0.15);
    }
    plan.add(event);
  }
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events()) {
    if (event.kind == FaultKind::kStraggler) {
      stragglers_.push_back(event);
    } else {
      events_.push_back(event);
    }
  }
  const auto by_time = [](const FaultEvent& a, const FaultEvent& b) {
    return a.time < b.time;
  };
  std::stable_sort(events_.begin(), events_.end(), by_time);
  std::stable_sort(stragglers_.begin(), stragglers_.end(), by_time);
  straggler_seen_.assign(stragglers_.size(), 0);
}

const FaultEvent* FaultInjector::take_before(SimTime now) {
  if (next_ >= events_.size() || events_[next_].time >= now) return nullptr;
  const FaultEvent* event = &events_[next_++];
  ++stats_.injected;
  if (event->kind == FaultKind::kWorkerCrash) {
    ++stats_.worker_crashes;
  } else {
    ++stats_.transient_failures;
  }
  if (trace_ != nullptr) {
    trace_->add_instant(fault_kind_name(event->kind), "fault", event->time,
                        event->worker);
  }
  if (metrics_ != nullptr) {
    metrics_->incr("faults.injected");
    metrics_->incr(event->kind == FaultKind::kWorkerCrash
                       ? "faults.worker_crashes"
                       : "faults.transient_failures");
  }
  return event;
}

const FaultEvent* FaultInjector::peek_before(SimTime now) const {
  if (next_ >= events_.size() || events_[next_].time >= now) return nullptr;
  return &events_[next_];
}

SimTime FaultInjector::stretched(SimTime begin, SimTime duration) {
  if (stragglers_.empty() || duration <= 0.0) return duration;
  const SimTime end = begin + duration;
  SimTime extra = 0.0;
  for (std::size_t i = 0; i < stragglers_.size(); ++i) {
    const FaultEvent& s = stragglers_[i];
    if (s.time >= end) break;  // sorted by time
    const SimTime overlap =
        std::min(end, s.time + s.duration) - std::max(begin, s.time);
    if (overlap <= 0.0) continue;
    extra += overlap * (s.slowdown - 1.0);
    if (!straggler_seen_[i]) {
      straggler_seen_[i] = 1;
      ++stats_.injected;
      ++stats_.stragglers;
      if (trace_ != nullptr) {
        trace_->add_instant(fault_kind_name(s.kind), "fault", s.time, s.worker);
      }
      if (metrics_ != nullptr) {
        metrics_->incr("faults.injected");
        metrics_->incr("faults.stragglers");
      }
    }
  }
  stats_.straggler_delay_sec += extra;
  if (metrics_ != nullptr && extra > 0.0) {
    metrics_->add("faults.straggler_delay_sec", extra);
  }
  return duration + extra;
}

}  // namespace gb::sim
