// Simulated DAS-4-style cluster.
//
// A Cluster is instantiated per experiment run: N computing nodes (each
// with a configurable core count) plus one master node, mirroring the
// paper's deployment (master services on an extra machine). Platform
// engines account their phases against it: converting counted work into
// time via the cost model, recording resource-usage segments for the
// monitoring figures, and enforcing the per-node heap limit that causes
// the paper's crashes.
//
// `work_scale` extrapolates counted work on a scaled-down dataset back to
// full size (Friendster is generated at 1/100; see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "core/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/strategy.h"
#include "sim/cost_model.h"
#include "sim/faults.h"
#include "sim/monitor.h"
#include "storage/page_cache.h"

namespace gb::sim {

struct ClusterConfig {
  std::uint32_t num_workers = 20;
  std::uint32_t cores_per_worker = 1;
  CostModel cost;
  double work_scale = 1.0;
  /// Host threads driving the engines: 0 = hardware concurrency,
  /// 1 = serial, N = a dedicated pool of N. Affects wall-clock only —
  /// results and simulated times are bit-identical at every setting.
  std::uint32_t parallelism = 0;
  /// Faults to inject at simulated times (empty = none). Keyed to
  /// simulated time, so the schedule is bit-identical at any parallelism.
  FaultPlan faults;
  /// How engines distribute the graph over the workers (DESIGN.md §11).
  /// kHash reproduces the historical hardwired v % W placement.
  partition::Strategy partitioner = partition::Strategy::kHash;
  /// Paged out-of-core storage (DESIGN.md §12). When budget_per_node > 0
  /// the engines admit over-heap structures through a page cache and
  /// charge fault/spill time; when 0 (the default) an over-heap structure
  /// crashes with kOutOfMemory exactly as before.
  storage::PageCacheConfig page_cache;
  /// Serving-layer job this cluster executes (DESIGN.md §14). Every span
  /// and instant the run records is stamped with it, so a multi-tenant
  /// timeline stays attributable per job. Empty for single-job runs.
  std::string job_tag;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config)
      : config_(config), faults_(config.faults) {
    worker_traces_.resize(config.num_workers);
    faults_.bind_observers(&trace_, &metrics_);
    trace_.set_job_tag(config.job_tag);
  }

  const ClusterConfig& config() const { return config_; }
  const CostModel& cost() const { return config_.cost; }
  std::uint32_t num_workers() const { return config_.num_workers; }
  std::uint32_t cores_per_worker() const { return config_.cores_per_worker; }

  /// Total execution slots across the cluster.
  std::uint32_t total_slots() const {
    return config_.num_workers * config_.cores_per_worker;
  }

  /// Host thread pool the engines run their per-partition work on,
  /// selected by `config.parallelism`. Engines must route any
  /// order-sensitive work through run_chunks so that this is a pure
  /// wall-clock knob (see DESIGN.md, "Parallel execution & determinism").
  ThreadPool& pool() const;

  /// Fault schedule for this run: engines poll it at their recovery
  /// boundaries and charge their platform's recovery semantics.
  FaultInjector& faults() { return faults_; }
  const FaultInjector& faults() const { return faults_; }

  /// Per-run span/instant timeline, filled by PhaseRecorder and the
  /// fault injector; exported by obs/trace_json.h. Keyed to simulated
  /// time, so identical at every host parallelism.
  obs::TraceRecorder& trace() { return trace_; }
  const obs::TraceRecorder& trace() const { return trace_; }

  /// Per-run named counters/gauges. Engines record only simulated
  /// quantities here (see obs/metrics.h); snapshots go into reports.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Deterministically chunked loop over this cluster's host pool; same
  /// contract as gb::run_chunks. Engines call this instead of the free
  /// function so the host-pool chunk count lands in metrics().
  void run_chunks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
      std::size_t grain = ThreadPool::kDefaultGrain);

  /// Extrapolate a count of work units (ops, records) to full-size work.
  double scale_units(double units) const { return units * config_.work_scale; }

  /// Extrapolate a logical byte count to full-size bytes.
  double scale_bytes(double bytes) const { return bytes * config_.work_scale; }

  /// Seconds of one core to process `units` of platform code work
  /// (already-scaled units).
  double jvm_compute_time(double scaled_units) const {
    return scaled_units * cost().jvm_sec_per_unit;
  }
  double native_compute_time(double scaled_units) const {
    return scaled_units * cost().native_sec_per_unit;
  }

  /// Throw PlatformError(kOutOfMemory) when a node's (scaled) resident
  /// bytes exceed the configured heap. `what` names the allocation in the
  /// crash report, e.g. "Giraph superstep message buffers".
  void check_heap(double scaled_bytes, const std::string& what) const;

  /// True when the paged-storage budget is set and over-heap structures
  /// degrade instead of crashing.
  bool paging_enabled() const { return config_.page_cache.enabled(); }

  /// Admit a node's (scaled) resident bytes against the heap. Returns the
  /// per-node overflow beyond the heap (0 when it fits); callers charge
  /// page-fault or spill time for the overflow. With paging disabled an
  /// overflow throws kOutOfMemory exactly like check_heap.
  double admit_resident(double scaled_bytes, const std::string& what);

  UsageTrace& master_trace() { return master_trace_; }
  UsageTrace& worker_trace(std::uint32_t worker) {
    return worker_traces_.at(worker);
  }
  const UsageTrace& master_trace() const { return master_trace_; }
  const UsageTrace& worker_trace(std::uint32_t worker) const {
    return worker_traces_.at(worker);
  }

  /// Record the same usage segment on every worker.
  void record_all_workers(const UsageSegment& segment) {
    for (auto& trace : worker_traces_) trace.add(segment);
  }

  /// Add the OS + platform-services baseline (Figures 5-10 include it)
  /// across the whole run.
  void add_baselines(SimTime total_time, Bytes master_extra_mem,
                     Bytes worker_extra_mem);

  /// Quality summary of the partition the engine actually used, recorded
  /// by platforms::partition_graph; `.valid` stays false when the run
  /// never reached the partitioning step.
  const partition::PartitionSummary& partition_summary() const {
    return partition_summary_;
  }
  void set_partition_summary(const partition::PartitionSummary& summary) {
    partition_summary_ = summary;
  }

 private:
  ClusterConfig config_;
  FaultInjector faults_;
  obs::TraceRecorder trace_;
  obs::MetricsRegistry metrics_;
  UsageTrace master_trace_;
  std::vector<UsageTrace> worker_traces_;
  partition::PartitionSummary partition_summary_;
  // Lazily created when parallelism names an explicit size (> 1); the
  // 0 / 1 settings use the shared global() / serial() pools instead.
  mutable std::unique_ptr<ThreadPool> own_pool_;
};

}  // namespace gb::sim
