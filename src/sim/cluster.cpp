#include "sim/cluster.h"

#include <algorithm>
#include <sstream>

#include "core/error.h"

namespace gb::sim {

ThreadPool& Cluster::pool() const {
  if (config_.parallelism == 1) return ThreadPool::serial();
  if (config_.parallelism == 0) return ThreadPool::global();
  if (!own_pool_) {
    own_pool_ = std::make_unique<ThreadPool>(config_.parallelism);
  }
  return *own_pool_;
}

void Cluster::run_chunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  metrics_.incr("host.chunks_executed", ThreadPool::plan_chunks(n, grain));
  gb::run_chunks(&pool(), n, fn, grain);
}

void Cluster::check_heap(double scaled_bytes, const std::string& what) const {
  if (scaled_bytes <= static_cast<double>(cost().heap_limit)) return;
  std::ostringstream msg;
  msg << what << ": " << static_cast<std::uint64_t>(scaled_bytes / (1 << 20))
      << " MiB exceeds the " << (cost().heap_limit >> 30)
      << " GiB per-node heap";
  throw PlatformError(PlatformError::Kind::kOutOfMemory, msg.str());
}

double Cluster::admit_resident(double scaled_bytes, const std::string& what) {
  const double heap = static_cast<double>(cost().heap_limit);
  if (scaled_bytes <= heap) return 0.0;
  if (!paging_enabled()) check_heap(scaled_bytes, what);  // throws
  const double overflow = scaled_bytes - heap;
  metrics_.max_gauge("page_cache.overcommit_bytes", overflow);
  return overflow;
}

void Cluster::add_baselines(SimTime total_time, Bytes master_extra_mem,
                            Bytes worker_extra_mem) {
  if (total_time <= 0) return;
  UsageSegment master;
  master.begin = 0;
  master.end = total_time;
  master.cpu_cores = 0.002;  // heartbeats and job management (Fig. 5)
  master.mem_bytes =
      static_cast<double>(cost().os_baseline_master + master_extra_mem);
  master.net_in_bps = 20e3;  // sub-Mbit/s chatter (Fig. 7)
  master.net_out_bps = 20e3;
  master_trace_.add(master);

  UsageSegment worker;
  worker.begin = 0;
  worker.end = total_time;
  worker.cpu_cores = 0.001;
  worker.mem_bytes =
      static_cast<double>(cost().os_baseline_worker + worker_extra_mem);
  record_all_workers(worker);

  // With baselines applied the traces are final: publish per-node peaks.
  const UsageSample master_peak = master_trace_.peak();
  metrics_.max_gauge("master.peak_mem_bytes", master_peak.mem_bytes);
  metrics_.max_gauge("master.peak_cpu_cores", master_peak.cpu_cores);
  double worker_mem = 0.0, worker_cpu = 0.0, worker_net = 0.0;
  for (const UsageTrace& trace : worker_traces_) {
    const UsageSample p = trace.peak();
    worker_mem = std::max(worker_mem, p.mem_bytes);
    worker_cpu = std::max(worker_cpu, p.cpu_cores);
    worker_net = std::max(worker_net, p.net_in_bps + p.net_out_bps);
  }
  metrics_.max_gauge("worker.peak_mem_bytes", worker_mem);
  metrics_.max_gauge("worker.peak_cpu_cores", worker_cpu);
  metrics_.max_gauge("worker.peak_net_bps", worker_net);
}

}  // namespace gb::sim
