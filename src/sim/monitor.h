// Ganglia-style resource monitoring for the simulated cluster.
//
// Platform engines append usage segments (a time interval plus CPU, memory
// and network intensity) per node while they account simulated time. The
// monitor turns segment soup into the per-second samples the paper plots
// (Figures 5-10), including the normalization of the x-axis to 100 points.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace gb::sim {

/// One interval of resource usage on a node. Overlapping segments add up
/// (e.g. OS baseline + platform phase).
struct UsageSegment {
  SimTime begin = 0;
  SimTime end = 0;
  double cpu_cores = 0;      // busy cores during the interval
  double mem_bytes = 0;      // resident memory attributable to the segment
  double net_in_bps = 0;     // ingress payload rate
  double net_out_bps = 0;    // egress payload rate
};

struct UsageSample {
  SimTime time = 0;
  double cpu_cores = 0;
  double mem_bytes = 0;
  double net_in_bps = 0;
  double net_out_bps = 0;
};

class UsageTrace {
 public:
  void add(const UsageSegment& segment);

  /// Instantaneous usage at time t (sum of covering segments).
  UsageSample at(SimTime t) const;

  /// Periodic samples over [0, horizon] with the given interval
  /// (default 1 s, the paper's Ganglia setting).
  std::vector<UsageSample> sample(SimTime horizon, SimTime interval = 1.0) const;

  /// The paper's figure normalization: `points` samples spread over the
  /// full execution, x expressed in percent of total time.
  std::vector<UsageSample> normalized(SimTime total_time, int points = 100) const;

  /// Per-channel maxima over the whole trace (each channel peaks
  /// independently; the returned time is the cpu peak's). Zero sample
  /// for an empty trace.
  UsageSample peak() const;

  bool empty() const { return segments_.empty(); }
  const std::vector<UsageSegment>& segments() const { return segments_; }

 private:
  /// Cumulative usage on the half-open interval [time, next boundary).
  struct Boundary {
    SimTime time = 0;
    double cpu_cores = 0;
    double mem_bytes = 0;
    double net_in_bps = 0;
    double net_out_bps = 0;
  };

  void build_boundaries() const;

  std::vector<UsageSegment> segments_;
  /// Lazily built sorted boundary sweep over the segment soup: queries
  /// binary-search it instead of scanning every segment. Invalidated by
  /// add(); rebuilding costs O(S log S) once per query burst.
  mutable std::vector<Boundary> boundaries_;
  mutable bool boundaries_valid_ = false;
};

}  // namespace gb::sim
