#include "sim/cost_config.h"

#include <charconv>
#include <cstdlib>

#include "core/error.h"

namespace gb::sim {
namespace {

struct Param {
  const char* name;
  double CostModel::* field;
};

struct BytesParam {
  const char* name;
  Bytes CostModel::* field;
};

constexpr Param kDoubleParams[] = {
    {"jvm_sec_per_unit", &CostModel::jvm_sec_per_unit},
    {"native_sec_per_unit", &CostModel::native_sec_per_unit},
    {"disk_read_bps", &CostModel::disk_read_bps},
    {"disk_write_bps", &CostModel::disk_write_bps},
    {"disk_seek_sec", &CostModel::disk_seek_sec},
    {"net_bps", &CostModel::net_bps},
    {"net_latency_sec", &CostModel::net_latency_sec},
    {"jvm_startup_sec", &CostModel::jvm_startup_sec},
    {"mr_job_setup_sec", &CostModel::mr_job_setup_sec},
    {"yarn_job_setup_sec", &CostModel::yarn_job_setup_sec},
    {"container_alloc_sec", &CostModel::container_alloc_sec},
    {"bsp_barrier_sec", &CostModel::bsp_barrier_sec},
    {"mpi_startup_sec", &CostModel::mpi_startup_sec},
    {"dataflow_deploy_sec", &CostModel::dataflow_deploy_sec},
    {"failure_detection_sec", &CostModel::failure_detection_sec},
};

constexpr BytesParam kByteParams[] = {
    {"node_memory", &CostModel::node_memory},
    {"heap_limit", &CostModel::heap_limit},
    {"os_baseline_master", &CostModel::os_baseline_master},
    {"os_baseline_worker", &CostModel::os_baseline_worker},
};

}  // namespace

std::vector<std::string> cost_parameter_names() {
  std::vector<std::string> names;
  for (const auto& p : kDoubleParams) names.emplace_back(p.name);
  for (const auto& p : kByteParams) names.emplace_back(p.name);
  return names;
}

double cost_parameter(const CostModel& cost, std::string_view name) {
  for (const auto& p : kDoubleParams) {
    if (name == p.name) return cost.*(p.field);
  }
  for (const auto& p : kByteParams) {
    if (name == p.name) return static_cast<double>(cost.*(p.field));
  }
  throw Error("unknown cost parameter '" + std::string(name) + "'");
}

void set_cost_parameter(CostModel& cost, std::string_view name, double value) {
  if (value <= 0) {
    throw Error("cost parameter '" + std::string(name) +
                "' must be positive");
  }
  for (const auto& p : kDoubleParams) {
    if (name == p.name) {
      cost.*(p.field) = value;
      return;
    }
  }
  for (const auto& p : kByteParams) {
    if (name == p.name) {
      cost.*(p.field) = static_cast<Bytes>(value);
      return;
    }
  }
  throw Error("unknown cost parameter '" + std::string(name) + "'");
}

void apply_cost_override(CostModel& cost, std::string_view assignment) {
  const std::size_t eq = assignment.find('=');
  if (eq == std::string_view::npos || eq == 0 ||
      eq + 1 >= assignment.size()) {
    throw Error("cost override must be name=value, got '" +
                std::string(assignment) + "'");
  }
  const std::string_view name = assignment.substr(0, eq);
  const std::string value_str(assignment.substr(eq + 1));
  char* end = nullptr;
  const double value = std::strtod(value_str.c_str(), &end);
  if (end == value_str.c_str() || *end != '\0') {
    throw Error("bad numeric value in cost override '" +
                std::string(assignment) + "'");
  }
  set_cost_parameter(cost, name, value);
}

}  // namespace gb::sim
