// Cost model: converts counted work (operations, bytes moved, phases) into
// simulated time on DAS-4-class hardware.
//
// The constants describe one DAS-4 node as used by the paper: dual
// quad-core Xeon E5620 2.4 GHz, 24 GB RAM, enterprise SATA disk, 1 Gbit/s
// Ethernet for data traffic (HDFS replication disabled). They are
// calibration inputs, not measurements; EXPERIMENTS.md compares resulting
// curve *shapes* with the paper, never absolute values.
#pragma once

#include "core/types.h"

namespace gb::sim {

struct CostModel {
  // --- compute -----------------------------------------------------------
  /// Seconds of one core per abstract work unit. A "unit" is roughly one
  /// edge or message touched by interpreted/managed platform code. JVM
  /// platforms pay more per unit than native C++ (GraphLab).
  double jvm_sec_per_unit = 55e-9;
  double native_sec_per_unit = 9e-9;

  // --- memory ------------------------------------------------------------
  Bytes node_memory = Bytes{24} << 30;   // physical RAM per node
  Bytes heap_limit = Bytes{20} << 30;    // usable by the platform process
  Bytes os_baseline_master = Bytes{8} << 30;   // Fig. 6: OS + HDFS services
  Bytes os_baseline_worker = Bytes{2} << 30;

  // --- disk --------------------------------------------------------------
  double disk_read_bps = 110e6;   // sequential read, B/s
  double disk_write_bps = 95e6;   // sequential write, B/s
  double disk_seek_sec = 8e-3;

  // --- network (1 Gbit/s Ethernet payload) --------------------------------
  double net_bps = 117e6;         // B/s per NIC
  double net_latency_sec = 150e-6;

  // --- platform fixed costs ------------------------------------------------
  double jvm_startup_sec = 2.5;       // per JVM (Hadoop task, Giraph worker)
  double mr_job_setup_sec = 6.0;      // Hadoop job submit / init / cleanup
  double yarn_job_setup_sec = 5.0;    // container negotiation is cheaper
  double container_alloc_sec = 0.6;   // YARN per-container allocation
  double bsp_barrier_sec = 0.12;      // Giraph superstep barrier (ZooKeeper)
  double mpi_startup_sec = 1.0;       // GraphLab mpiexec launch
  double dataflow_deploy_sec = 2.0;   // Nephele DAG deployment

  // --- fault tolerance -----------------------------------------------------
  /// Time before the master notices a dead or failed worker and acts
  /// (missed heartbeats / ZooKeeper session expiry; Hadoop's default task
  /// timeout is far longer, but the paper-era clusters tuned it down).
  double failure_detection_sec = 30.0;

  /// Time to ship `bytes` over the network fabric when `nodes` NICs move
  /// data concurrently (all-to-all shuffle / message exchange).
  double network_time(Bytes bytes, std::uint32_t nodes) const {
    if (bytes == 0) return 0.0;
    return static_cast<double>(bytes) / (net_bps * nodes) + net_latency_sec;
  }

  double disk_read_time(Bytes bytes) const {
    return bytes == 0 ? 0.0
                      : disk_seek_sec + static_cast<double>(bytes) / disk_read_bps;
  }

  double disk_write_time(Bytes bytes) const {
    return bytes == 0 ? 0.0
                      : disk_seek_sec + static_cast<double>(bytes) / disk_write_bps;
  }
};

}  // namespace gb::sim
