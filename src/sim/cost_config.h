// Named, string-settable cost-model parameters.
//
// Every calibration constant in CostModel can be overridden by name —
// "disk_read_bps=200e6" — which is how the CLI and calibration sweeps
// explore what-if scenarios (faster disks, InfiniBand-class networks,
// bigger heaps) without recompiling.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/cost_model.h"

namespace gb::sim {

/// All overridable parameter names.
std::vector<std::string> cost_parameter_names();

/// Current value of a parameter by name. Throws gb::Error for unknown names.
double cost_parameter(const CostModel& cost, std::string_view name);

/// Set one parameter by name. Throws gb::Error for unknown names or
/// non-positive values.
void set_cost_parameter(CostModel& cost, std::string_view name, double value);

/// Apply a "name=value" assignment (the CLI syntax).
void apply_cost_override(CostModel& cost, std::string_view assignment);

}  // namespace gb::sim
