// Deterministic fault injection for the simulated cluster.
//
// The paper's platform survey (Table 3) ranks fault-tolerance mechanisms
// — Hadoop task re-execution, Giraph checkpoint/restart, GraphLab
// snapshots, Neo4j transactional recovery — but its evaluation only ever
// *observes* crashes. This subsystem makes failure behaviour a measurable
// axis: a FaultPlan schedules faults at simulated times (worker crash,
// straggler slowdown, transient task failure), the Cluster hands engines a
// FaultInjector over that plan, and each engine applies its platform's
// recovery semantics, accounting the recovery cost like any other phase.
//
// Everything is keyed to *simulated* time, so the same plan produces a
// bit-identical fault schedule — and bit-identical reports — at every host
// `parallelism` setting (the PR 1 determinism contract).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace gb::obs {
class TraceRecorder;
class MetricsRegistry;
}  // namespace gb::obs

namespace gb::sim {

enum class FaultKind {
  kWorkerCrash,    // a computing node dies and does not come back
  kStraggler,      // a node runs slower than its peers for a while
  kTransientTask,  // one task attempt fails; the task itself is retryable
};

const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kWorkerCrash;
  SimTime time = 0.0;          // simulated time at which the fault fires
  std::uint32_t worker = 0;    // affected computing node
  double slowdown = 2.0;       // straggler only: relative slowdown factor
  SimTime duration = 300.0;    // straggler only: length of the slow window
};

/// An immutable, ordered schedule of faults. Built explicitly (tests,
/// benches), parsed from CLI specs (gb_run --fault), or drawn
/// deterministically from a seed.
class FaultPlan {
 public:
  FaultPlan() = default;

  void add(const FaultEvent& event) { events_.push_back(event); }
  bool empty() const { return events_.empty(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Parse one CLI spec and append it:
  ///   worker:<t>[:<worker>]            crash node <worker> at time t
  ///   task:<t>[:<worker>]              transient task failure at time t
  ///   straggler:<t>:<factor>:<dur>[:<worker>]
  /// Throws gb::Error on malformed specs.
  void add_spec(const std::string& spec);

  /// Seed-driven schedule: `events` faults drawn uniformly over
  /// (0, horizon) with kinds and workers derived from the seed. The same
  /// seed always yields the same plan (Xoshiro256**, no host state).
  static FaultPlan random(std::uint64_t seed, std::uint32_t num_workers,
                          SimTime horizon, std::uint32_t events);

 private:
  std::vector<FaultEvent> events_;
};

/// What fault handling did to a run; serialized as the report's `faults`
/// section. All-zero for a run with an empty plan.
struct FaultStats {
  std::uint64_t injected = 0;          // events that actually fired
  std::uint64_t worker_crashes = 0;
  std::uint64_t transient_failures = 0;
  std::uint64_t stragglers = 0;
  std::uint64_t task_retries = 0;      // re-executed tasks/stages
  std::uint64_t checkpoint_restarts = 0;
  SimTime recomputed_sec = 0.0;        // work redone after a failure
  SimTime checkpoint_overhead_sec = 0.0;  // steady-state checkpoint writes
  SimTime straggler_delay_sec = 0.0;   // phase stretch from slow nodes
  SimTime recovery_sec = 0.0;          // total recovery phase time
};

/// Per-run consumption state over a FaultPlan. Engines poll it at their
/// recovery boundaries (job / superstep / stage / query): `take_before`
/// hands out each crash or task fault exactly once, in schedule order, as
/// simulated time passes it. Stragglers are not consumed; they stretch
/// phases through `stretched`.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultPlan& plan);

  /// Attach observability sinks (owned by the Cluster): every consumed
  /// fault and first-seen straggler window is mirrored as a trace instant
  /// and a `faults.*` metric. Either pointer may be null. All emitted
  /// data is keyed to simulated time, preserving the determinism
  /// contract.
  void bind_observers(obs::TraceRecorder* trace, obs::MetricsRegistry* metrics) {
    trace_ = trace;
    metrics_ = metrics;
  }

  bool enabled() const { return !events_.empty(); }

  /// Next unconsumed crash/transient event with time < now, or nullptr.
  /// Consumes the event and counts it in stats().
  const FaultEvent* take_before(SimTime now);

  /// Same, without consuming.
  const FaultEvent* peek_before(SimTime now) const;

  /// Stretch a phase spanning [begin, begin + duration) by the straggler
  /// windows it overlaps: in a bulk-synchronous phase one slow node holds
  /// up the barrier, so overlap seconds are multiplied by the slowdown
  /// factor (first order: overlap is measured against the unstretched
  /// window). Counts the added seconds in stats().
  SimTime stretched(SimTime begin, SimTime duration);

  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }

 private:
  std::vector<FaultEvent> events_;  // crash + transient, sorted by time
  std::vector<FaultEvent> stragglers_;
  std::size_t next_ = 0;
  std::vector<std::uint8_t> straggler_seen_;
  FaultStats stats_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace gb::sim
