#include "sim/scheduler.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "core/error.h"

namespace gb::sim {

const char* scheduler_policy_name(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFifo:
      return "fifo";
    case SchedulerPolicy::kFair:
      return "fair";
    case SchedulerPolicy::kCapacity:
      return "capacity";
  }
  return "?";
}

std::optional<SchedulerPolicy> parse_scheduler_policy(const std::string& name) {
  if (name == "fifo") return SchedulerPolicy::kFifo;
  if (name == "fair") return SchedulerPolicy::kFair;
  if (name == "capacity") return SchedulerPolicy::kCapacity;
  return std::nullopt;
}

namespace {

/// FIFO: strict head-of-line. The oldest pending job is granted its full
/// request (capped at the cluster size) as soon as that many slots are
/// free; nothing behind it may jump the queue, so start order always
/// equals arrival order — YARN's FIFO scheduler without backfill.
class FifoScheduler final : public JobScheduler {
 public:
  explicit FifoScheduler(std::uint32_t total_slots) : total_(total_slots) {}

  const char* name() const override { return "fifo"; }

  void submit(const JobRequest& job) override { pending_.push_back(job); }

  void finish(JobId id) override { running_.erase(id); }

  std::vector<JobGrant> admit(std::uint32_t free_slots) override {
    std::vector<JobGrant> grants;
    while (!pending_.empty()) {
      const std::uint32_t want =
          std::max(1u, std::min(pending_.front().slots, total_));
      if (want > free_slots) break;  // head blocks the line
      grants.push_back({pending_.front().id, want});
      running_.insert(pending_.front().id);
      pending_.pop_front();
      free_slots -= want;
    }
    return grants;
  }

  std::size_t pending() const override { return pending_.size(); }
  std::size_t running() const override { return running_.size(); }

 private:
  std::uint32_t total_;
  std::deque<JobRequest> pending_;
  std::set<JobId> running_;
};

/// Fair-share: admissions stay in arrival order, but each grant is capped
/// at the instantaneous fair share total / demand, where demand counts
/// every running and pending job (clamped to the cluster size so the
/// share never rounds below one slot). Under sustained load — pending
/// alone at or above the cluster size — the share is exactly one slot, so
/// every concurrently admitted job holds the same allocation and the
/// max/min allocated-slot ratio is 1. Shrunken grants mean a wide request
/// never blocks the line: small jobs behind it keep flowing, which is
/// what buys the p99 win over FIFO on skewed traces.
class FairShareScheduler final : public JobScheduler {
 public:
  explicit FairShareScheduler(std::uint32_t total_slots)
      : total_(total_slots) {}

  const char* name() const override { return "fair"; }

  void submit(const JobRequest& job) override { pending_.push_back(job); }

  void finish(JobId id) override { running_.erase(id); }

  std::vector<JobGrant> admit(std::uint32_t free_slots) override {
    std::vector<JobGrant> grants;
    while (!pending_.empty()) {
      const std::uint64_t demand = running_.size() + pending_.size();
      const std::uint32_t share = std::max<std::uint32_t>(
          1, total_ / static_cast<std::uint32_t>(std::min<std::uint64_t>(
                          std::max<std::uint64_t>(demand, 1), total_)));
      const std::uint32_t want =
          std::max(1u, std::min({pending_.front().slots, share, total_}));
      if (want > free_slots) break;
      grants.push_back({pending_.front().id, want});
      running_.insert(pending_.front().id);
      pending_.pop_front();
      free_slots -= want;
    }
    return grants;
  }

  std::size_t pending() const override { return pending_.size(); }
  std::size_t running() const override { return running_.size(); }

 private:
  std::uint32_t total_;
  std::deque<JobRequest> pending_;
  std::set<JobId> running_;
};

/// Capacity queues: each named queue owns a hard share of the slots
/// (max(1, floor(share * total))) and runs FIFO within itself. admit()
/// sweeps the queues in configured order repeatedly until no queue can
/// make progress, so one saturated queue never starves the others, and a
/// queue's in-use slots never exceed its cap — the YARN CapacityScheduler
/// without elasticity.
class CapacityScheduler final : public JobScheduler {
 public:
  CapacityScheduler(std::uint32_t total_slots,
                    const std::vector<CapacityQueueSpec>& specs)
      : total_(total_slots) {
    std::vector<CapacityQueueSpec> normalized = specs;
    if (normalized.empty()) normalized.push_back({"default", 1.0});
    double share_sum = 0.0;
    for (const auto& spec : normalized) {
      if (!(spec.share > 0.0)) {
        throw Error("capacity scheduler: queue '" + spec.name +
                    "' has non-positive share");
      }
      share_sum += spec.share;
    }
    for (const auto& spec : normalized) {
      if (by_name_.count(spec.name) != 0) {
        throw Error("capacity scheduler: duplicate queue '" + spec.name + "'");
      }
      Queue q;
      q.name = spec.name;
      q.cap = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(
                 static_cast<double>(total_) * (spec.share / share_sum)));
      q.cap = std::min(q.cap, total_);
      by_name_[spec.name] = queues_.size();
      queues_.push_back(std::move(q));
    }
  }

  const char* name() const override { return "capacity"; }

  void submit(const JobRequest& job) override {
    const auto it = by_name_.find(job.queue);
    const std::size_t index = it == by_name_.end() ? 0 : it->second;
    queues_[index].pending.push_back(job);
    ++pending_;
  }

  void finish(JobId id) override {
    const auto it = running_.find(id);
    if (it == running_.end()) return;
    queues_[it->second.queue].used -= it->second.slots;
    running_.erase(it);
  }

  std::vector<JobGrant> admit(std::uint32_t free_slots) override {
    std::vector<JobGrant> grants;
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t qi = 0; qi < queues_.size(); ++qi) {
        Queue& q = queues_[qi];
        if (q.pending.empty()) continue;
        const std::uint32_t want =
            std::max(1u, std::min(q.pending.front().slots, q.cap));
        if (q.used + want > q.cap) continue;  // queue at its hard share
        if (want > free_slots) continue;      // other queues may still fit
        grants.push_back({q.pending.front().id, want});
        running_[q.pending.front().id] = {qi, want};
        q.used += want;
        free_slots -= want;
        q.pending.pop_front();
        --pending_;
        progress = true;
      }
    }
    return grants;
  }

  std::size_t pending() const override { return pending_; }
  std::size_t running() const override { return running_.size(); }

 private:
  struct Queue {
    std::string name;
    std::uint32_t cap = 1;
    std::uint32_t used = 0;
    std::deque<JobRequest> pending;
  };
  struct Placement {
    std::size_t queue = 0;
    std::uint32_t slots = 0;
  };

  std::uint32_t total_;
  std::vector<Queue> queues_;
  std::map<std::string, std::size_t> by_name_;
  std::map<JobId, Placement> running_;
  std::size_t pending_ = 0;
};

}  // namespace

std::unique_ptr<JobScheduler> make_scheduler(
    SchedulerPolicy policy, std::uint32_t total_slots,
    const std::vector<CapacityQueueSpec>& queues) {
  if (total_slots == 0) throw Error("scheduler: total_slots must be >= 1");
  switch (policy) {
    case SchedulerPolicy::kFifo:
      return std::make_unique<FifoScheduler>(total_slots);
    case SchedulerPolicy::kFair:
      return std::make_unique<FairShareScheduler>(total_slots);
    case SchedulerPolicy::kCapacity:
      return std::make_unique<CapacityScheduler>(total_slots, queues);
  }
  throw Error("scheduler: unknown policy");
}

}  // namespace gb::sim
