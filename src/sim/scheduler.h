// Pluggable job schedulers for the multi-tenant simulated cluster.
//
// A JobScheduler decides which pending jobs get admitted onto a fixed
// pool of worker slots and how many slots each admission is granted —
// the three policies YARN actually ships (FIFO, fair-share, capacity
// queues). The serving layer (serve/serving.h) drives a scheduler from
// its discrete-event loop: submit() on arrival, admit() after every
// arrival/completion, finish() when a job's completion event fires.
//
// Determinism contract: a scheduler's grant sequence is a pure function
// of its submit/finish call history — no host state, no randomness —
// so a replayed trace produces a bit-identical schedule at every host
// `parallelism` setting. Grants only ever shrink a job's request (never
// below one slot), which keeps every job admissible on an idle cluster.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace gb::sim {

enum class SchedulerPolicy { kFifo, kFair, kCapacity };

/// "fifo", "fair", "capacity" — stable CLI vocabulary.
const char* scheduler_policy_name(SchedulerPolicy policy);

/// Inverse of scheduler_policy_name; nullopt for unknown names.
std::optional<SchedulerPolicy> parse_scheduler_policy(const std::string& name);

/// Serving-layer job identity: the index of the job in its trace.
using JobId = std::uint64_t;

struct JobRequest {
  JobId id = 0;
  /// Worker slots the job asks for (>= 1). Grants are capped by policy
  /// (total slots, fair share, queue capacity) but never below one.
  std::uint32_t slots = 1;
  /// Capacity-scheduler queue name; other policies ignore it. Unknown
  /// or empty names fall back to the first configured queue.
  std::string queue;
};

struct JobGrant {
  JobId id = 0;
  std::uint32_t slots = 1;  // granted slots, 1..min(request, policy cap)
};

/// One named capacity queue and its hard share of the cluster. Shares
/// are normalized over the configured queues; each queue's slot cap is
/// max(1, floor(normalized_share * total_slots)) and is never exceeded.
struct CapacityQueueSpec {
  std::string name;
  double share = 1.0;
};

class JobScheduler {
 public:
  virtual ~JobScheduler() = default;

  virtual const char* name() const = 0;

  /// A job entered the pending queue. Arrival order is call order; ties
  /// in simulated arrival time are broken by the caller's event order.
  virtual void submit(const JobRequest& job) = 0;

  /// A running job completed and released its granted slots.
  virtual void finish(JobId id) = 0;

  /// Admissions possible right now given `free_slots` currently free on
  /// the cluster. The caller owns the slot ledger: it subtracts each
  /// grant from its free count and returns slots via finish(). May
  /// return empty (nothing pending, or nothing fits).
  virtual std::vector<JobGrant> admit(std::uint32_t free_slots) = 0;

  virtual std::size_t pending() const = 0;
  virtual std::size_t running() const = 0;
};

/// Policy factory. `total_slots` must be >= 1. `queues` configures the
/// capacity policy (ignored by the others); empty means one "default"
/// queue owning the whole cluster. Throws gb::Error on a non-positive
/// share or a duplicate queue name.
std::unique_ptr<JobScheduler> make_scheduler(
    SchedulerPolicy policy, std::uint32_t total_slots,
    const std::vector<CapacityQueueSpec>& queues = {});

}  // namespace gb::sim
