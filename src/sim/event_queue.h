// Discrete-event primitives.
//
// EventQueue is a classic DES core (time-ordered callbacks, FIFO among
// equal timestamps). SlotScheduler answers the question every batch engine
// asks: given T independent tasks and S execution slots, when does each
// task finish and when does the wave end? Hadoop map/reduce waves and
// Nephele task deployment both reduce to it.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/types.h"

namespace gb::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute time `when` (must be >= now()).
  void schedule(SimTime when, Callback fn);

  /// Run events until the queue drains. Returns the final clock.
  SimTime run();

  /// Run events with time <= horizon; later events stay queued.
  SimTime run_until(SimTime horizon);

  SimTime now() const { return now_; }
  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

/// Result of scheduling a set of task durations onto a fixed slot count.
struct ScheduleResult {
  std::vector<SimTime> finish_times;  // per task, same order as input
  SimTime makespan = 0;
};

/// Greedy FIFO assignment of tasks onto `slots` identical slots starting at
/// time 0; each slot additionally pays `per_task_overhead` before each task
/// (e.g. JVM spin-up in Hadoop).
ScheduleResult schedule_tasks(const std::vector<SimTime>& durations,
                              std::uint32_t slots,
                              SimTime per_task_overhead = 0.0);

}  // namespace gb::sim
