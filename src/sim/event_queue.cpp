#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>

#include "core/error.h"

namespace gb::sim {

void EventQueue::schedule(SimTime when, Callback fn) {
  if (when < now_) throw Error("EventQueue: scheduling into the past");
  events_.push(Event{when, next_seq_++, std::move(fn)});
}

SimTime EventQueue::run() {
  while (!events_.empty()) {
    // Moving out of a priority_queue requires the const_cast idiom; the
    // element is popped immediately afterwards.
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = ev.when;
    ev.fn();
  }
  return now_;
}

SimTime EventQueue::run_until(SimTime horizon) {
  while (!events_.empty() && events_.top().when <= horizon) {
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = ev.when;
    ev.fn();
  }
  now_ = std::max(now_, horizon);
  return now_;
}

ScheduleResult schedule_tasks(const std::vector<SimTime>& durations,
                              std::uint32_t slots, SimTime per_task_overhead) {
  ScheduleResult result;
  result.finish_times.resize(durations.size(), 0.0);
  if (durations.empty()) return result;
  if (slots == 0) throw Error("schedule_tasks: zero slots");

  // Min-heap of slot free times.
  std::priority_queue<SimTime, std::vector<SimTime>, std::greater<>> free_at;
  for (std::uint32_t s = 0; s < slots; ++s) free_at.push(0.0);

  for (std::size_t i = 0; i < durations.size(); ++i) {
    const SimTime start = free_at.top();
    free_at.pop();
    const SimTime finish = start + per_task_overhead + durations[i];
    result.finish_times[i] = finish;
    result.makespan = std::max(result.makespan, finish);
    free_at.push(finish);
  }
  return result;
}

}  // namespace gb::sim
