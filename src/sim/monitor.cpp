#include "sim/monitor.h"

#include <algorithm>

namespace gb::sim {

void UsageTrace::add(const UsageSegment& segment) {
  if (segment.end <= segment.begin) return;  // zero-length: nothing to record
  segments_.push_back(segment);
}

UsageSample UsageTrace::at(SimTime t) const {
  UsageSample s;
  s.time = t;
  for (const auto& seg : segments_) {
    if (t >= seg.begin && t < seg.end) {
      s.cpu_cores += seg.cpu_cores;
      s.mem_bytes += seg.mem_bytes;
      s.net_in_bps += seg.net_in_bps;
      s.net_out_bps += seg.net_out_bps;
    }
  }
  return s;
}

std::vector<UsageSample> UsageTrace::sample(SimTime horizon,
                                            SimTime interval) const {
  std::vector<UsageSample> samples;
  if (horizon <= 0 || interval <= 0) return samples;
  samples.reserve(static_cast<std::size_t>(horizon / interval) + 1);
  for (SimTime t = 0; t <= horizon; t += interval) {
    samples.push_back(at(t));
  }
  return samples;
}

std::vector<UsageSample> UsageTrace::normalized(SimTime total_time,
                                                int points) const {
  std::vector<UsageSample> samples;
  if (total_time <= 0 || points <= 0) return samples;
  samples.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    // Sample at the middle of each percent bucket so that short phases at
    // either end are still visible.
    const SimTime t =
        total_time * (static_cast<double>(i) + 0.5) / static_cast<double>(points);
    UsageSample s = at(t);
    s.time = 100.0 * (static_cast<double>(i) + 0.5) / static_cast<double>(points);
    samples.push_back(s);
  }
  return samples;
}

}  // namespace gb::sim
