#include "sim/monitor.h"

#include <algorithm>

namespace gb::sim {

void UsageTrace::add(const UsageSegment& segment) {
  if (segment.end <= segment.begin) return;  // zero-length: nothing to record
  segments_.push_back(segment);
  boundaries_valid_ = false;
}

void UsageTrace::build_boundaries() const {
  boundaries_.clear();
  if (!segments_.empty()) {
    // Signed deltas at every segment edge; a prefix sum in time order
    // yields the cumulative cover of each interval between boundaries.
    struct Event {
      SimTime time;
      double cpu_cores, mem_bytes, net_in_bps, net_out_bps;
    };
    std::vector<Event> events;
    events.reserve(segments_.size() * 2);
    for (const auto& seg : segments_) {
      events.push_back({seg.begin, seg.cpu_cores, seg.mem_bytes,
                        seg.net_in_bps, seg.net_out_bps});
      events.push_back({seg.end, -seg.cpu_cores, -seg.mem_bytes,
                        -seg.net_in_bps, -seg.net_out_bps});
    }
    // Stable: ties keep insertion order, so the float summation order —
    // and with it the samples — is independent of how std::sort breaks
    // ties on this toolchain.
    std::stable_sort(
        events.begin(), events.end(),
        [](const Event& a, const Event& b) { return a.time < b.time; });

    Boundary running;
    for (const Event& e : events) {
      running.cpu_cores += e.cpu_cores;
      running.mem_bytes += e.mem_bytes;
      running.net_in_bps += e.net_in_bps;
      running.net_out_bps += e.net_out_bps;
      running.time = e.time;
      if (!boundaries_.empty() && boundaries_.back().time == e.time) {
        boundaries_.back() = running;
      } else {
        boundaries_.push_back(running);
      }
    }
  }
  boundaries_valid_ = true;
}

UsageSample UsageTrace::at(SimTime t) const {
  UsageSample s;
  s.time = t;
  if (!boundaries_valid_) build_boundaries();
  // The covering boundary is the last one with time <= t; segments are
  // half-open [begin, end), which the begin/end deltas encode exactly.
  const auto it = std::upper_bound(
      boundaries_.begin(), boundaries_.end(), t,
      [](SimTime time, const Boundary& b) { return time < b.time; });
  if (it == boundaries_.begin()) return s;
  const Boundary& b = *(it - 1);
  s.cpu_cores = b.cpu_cores;
  s.mem_bytes = b.mem_bytes;
  s.net_in_bps = b.net_in_bps;
  s.net_out_bps = b.net_out_bps;
  return s;
}

std::vector<UsageSample> UsageTrace::sample(SimTime horizon,
                                            SimTime interval) const {
  std::vector<UsageSample> samples;
  if (horizon <= 0 || interval <= 0) return samples;
  samples.reserve(static_cast<std::size_t>(horizon / interval) + 1);
  // t = i * interval, not t += interval: the accumulated rounding of
  // repeated addition drifts the sample grid off the segment boundaries
  // on long traces.
  for (std::size_t i = 0;; ++i) {
    const SimTime t = static_cast<SimTime>(i) * interval;
    if (t > horizon) break;
    samples.push_back(at(t));
  }
  return samples;
}

UsageSample UsageTrace::peak() const {
  UsageSample s;
  if (!boundaries_valid_) build_boundaries();
  for (const Boundary& b : boundaries_) {
    if (b.cpu_cores > s.cpu_cores) {
      s.cpu_cores = b.cpu_cores;
      s.time = b.time;
    }
    s.mem_bytes = std::max(s.mem_bytes, b.mem_bytes);
    s.net_in_bps = std::max(s.net_in_bps, b.net_in_bps);
    s.net_out_bps = std::max(s.net_out_bps, b.net_out_bps);
  }
  return s;
}

std::vector<UsageSample> UsageTrace::normalized(SimTime total_time,
                                                int points) const {
  std::vector<UsageSample> samples;
  if (total_time <= 0 || points <= 0) return samples;
  samples.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    // Sample at the middle of each percent bucket so that short phases at
    // either end are still visible.
    const SimTime t =
        total_time * (static_cast<double>(i) + 0.5) / static_cast<double>(points);
    UsageSample s = at(t);
    s.time = 100.0 * (static_cast<double>(i) + 0.5) / static_cast<double>(points);
    samples.push_back(s);
  }
  return samples;
}

}  // namespace gb::sim
