// Extension experiment (beyond the paper's five classes): PageRank across
// all six platforms on the two "important vertices" workloads the survey
// motivates — a web-like directed graph (WikiTalk class) and the dense
// gaming graph (DotaLeague).
#include "bench_common.h"

int main() {
  using namespace gb;
  const auto platforms_list = algorithms::make_all_platforms();

  harness::Table table("Extension: PageRank (10 iterations), 20 nodes");
  std::vector<std::string> header{"Dataset"};
  for (const auto& p : platforms_list) header.push_back(p->name());
  table.set_header(header);

  const datasets::DatasetId ids[] = {
      datasets::DatasetId::kWikiTalk,
      datasets::DatasetId::kDotaLeague,
  };
  for (const auto id : ids) {
    const auto ds = bench::load(id);
    std::vector<std::string> row{ds.name};
    for (const auto& p : platforms_list) {
      const auto m = bench::run(*p, ds, platforms::Algorithm::kPageRank);
      row.push_back(harness::format_measurement(m));
    }
    table.add_row(row);
  }
  bench::write_table(table, "ext_pagerank.csv");
  return 0;
}
