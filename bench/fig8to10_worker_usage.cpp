// Figures 8-10: CPU utilization, memory usage and network traffic of a
// computing node while the distributed platforms run BFS on DotaLeague.
// Prints terminal charts of each platform's traces and writes the full
// 100-point series to results/.
#include "bench_common.h"

#include "harness/ascii_chart.h"

int main() {
  using namespace gb;
  const auto ds = bench::load(datasets::DatasetId::kDotaLeague);
  const auto platform_list = algorithms::make_all_platforms();

  harness::Table table(
      "Figures 8-10: computing-node resource usage, BFS on DotaLeague "
      "(normalized time; 10-point summary, full series in results/)");
  table.set_header({"Platform", "t[%]", "CPU [%]", "Memory [GB]",
                    "Net in [Mbit/s]", "Net out [Mbit/s]"});

  for (const auto& p : platform_list) {
    if (!p->distributed()) continue;
    sim::ClusterConfig cfg = bench::paper_cluster();
    cfg.work_scale = ds.extrapolation();
    sim::Cluster cluster(cfg);
    const auto m = harness::run_cell(*p, ds, platforms::Algorithm::kBfs,
                                     harness::default_params(ds), cluster);
    if (!m.ok()) continue;
    // The paper plots the worker closest to the average; all simulated
    // workers carry the average by construction, so worker 0 is exact.
    const auto points =
        cluster.worker_trace(0).normalized(m.result.total_time, 100);
    harness::Table csv("fig8to10_" + p->name());
    csv.set_header({"t_percent", "cpu_percent", "mem_gb", "net_in_mbps",
                    "net_out_mbps"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& s = points[i];
      char t[16], cpu[16], mem[16], in[16], outr[16];
      std::snprintf(t, sizeof(t), "%.1f", s.time);
      std::snprintf(cpu, sizeof(cpu), "%.2f", 100.0 * s.cpu_cores / 8.0);
      std::snprintf(mem, sizeof(mem), "%.2f", s.mem_bytes / (1 << 30));
      std::snprintf(in, sizeof(in), "%.2f", s.net_in_bps * 8.0 / 1e6);
      std::snprintf(outr, sizeof(outr), "%.2f", s.net_out_bps * 8.0 / 1e6);
      csv.add_row({t, cpu, mem, in, outr});
      if (i % 10 == 4) {
        table.add_row({p->name(), t, cpu, mem, in, outr});
      }
    }
    bench::write_csv_only(csv, "fig8to10_worker_" + p->name() + ".csv");

    // Terminal rendering of the CPU and memory traces (Figs. 8 and 9).
    std::vector<double> cpu_series;
    std::vector<double> mem_series;
    cpu_series.reserve(points.size());
    for (const auto& s : points) {
      cpu_series.push_back(100.0 * s.cpu_cores / 8.0);
      mem_series.push_back(s.mem_bytes / (1 << 30));
    }
    harness::ChartOptions cpu_chart;
    cpu_chart.height = 6;
    cpu_chart.y_label = p->name() + " worker CPU [%] over normalized time";
    std::cout << harness::ascii_chart(harness::downsample(cpu_series, 60),
                                      cpu_chart);
    harness::ChartOptions mem_chart;
    mem_chart.height = 6;
    mem_chart.y_max = 24.0;
    mem_chart.y_label = p->name() + " worker memory [GB] over normalized time";
    std::cout << harness::ascii_chart(harness::downsample(mem_series, 60),
                                      mem_chart)
              << "\n";
  }
  table.print(std::cout);
  return 0;
}
