// Figure 15: execution time breakdown — computation time Tc versus
// overhead time To — for BFS on DotaLeague across the platforms,
// including GraphLab(mp).
#include "bench_common.h"

int main() {
  using namespace gb;
  const auto ds = bench::load(datasets::DatasetId::kDotaLeague);

  std::vector<std::unique_ptr<platforms::Platform>> list;
  list.push_back(algorithms::make_hadoop());
  list.push_back(algorithms::make_yarn());
  list.push_back(algorithms::make_stratosphere());
  list.push_back(algorithms::make_giraph());
  list.push_back(algorithms::make_graphlab(false));
  list.push_back(algorithms::make_graphlab(true));

  harness::Table table(
      "Figure 15: execution time breakdown, BFS on DotaLeague");
  table.set_header({"Platform", "Computation [s]", "Overhead [s]",
                    "Total [s]", "Overhead [%]"});

  for (const auto& p : list) {
    const auto m = bench::run(*p, ds, platforms::Algorithm::kBfs);
    if (!m.ok()) {
      table.add_row({p->name(), harness::outcome_label(m.outcome), "-", "-",
                     "-"});
      continue;
    }
    char tc[32], to[32], total[32], pct[32];
    std::snprintf(tc, sizeof(tc), "%.1f", m.result.computation_time);
    std::snprintf(to, sizeof(to), "%.1f", m.result.overhead_time());
    std::snprintf(total, sizeof(total), "%.1f", m.result.total_time);
    std::snprintf(pct, sizeof(pct), "%.0f",
                  100.0 * m.result.overhead_time() / m.result.total_time);
    table.add_row({p->name(), tc, to, total, pct});
  }
  bench::write_table(table, "fig15_breakdown.csv");
  return 0;
}
