// Extension experiment: a Graph500-style run on the Synth (Kronecker)
// dataset — multiple BFS roots, spec validation of every result, and
// harmonic-mean TEPS per platform. This is the benchmark the paper
// contrasts its method against (Section 1).
#include "bench_common.h"

#include "algorithms/graph500.h"
#include "core/rng.h"

int main() {
  using namespace gb;
  const auto ds = bench::load(datasets::DatasetId::kSynth);
  constexpr int kRoots = 4;

  std::vector<std::unique_ptr<platforms::Platform>> list;
  list.push_back(algorithms::make_giraph());
  list.push_back(algorithms::make_stratosphere());
  list.push_back(algorithms::make_graphlab(false));

  harness::Table table("Extension: Graph500-style BFS on Synth, " +
                       std::to_string(kRoots) + " roots");
  table.set_header({"Platform", "Validated", "Harmonic-mean TEPS"});

  for (const auto& p : list) {
    std::vector<double> teps_values;
    int validated = 0;
    Xoshiro256 roots(2026);
    for (int r = 0; r < kRoots; ++r) {
      auto params = harness::default_params(ds);
      params.bfs_source = static_cast<VertexId>(
          roots.next_below(ds.graph.num_vertices()));
      const auto m = harness::run_cell(*p, ds, platforms::Algorithm::kBfs,
                                       params, bench::paper_cluster());
      if (!m.ok()) continue;
      const auto validation = algorithms::validate_bfs_levels(
          ds.graph, params.bfs_source, m.result.output.vertex_values);
      if (validation.valid) ++validated;
      const EdgeId edges =
          algorithms::traversed_edges(ds.graph, m.result.output.vertex_values);
      teps_values.push_back(
          algorithms::teps(edges, m.time()) * ds.extrapolation());
    }
    table.add_row({p->name(),
                   std::to_string(validated) + "/" + std::to_string(kRoots),
                   harness::format_si(
                       algorithms::harmonic_mean_teps(teps_values))});
  }
  bench::write_table(table, "ext_graph500.csv");
  return 0;
}
