// Shared setup for the bench binaries: dataset loading at benchmark
// scales, the paper's fixed cluster configuration, and cell helpers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/platform_suite.h"
#include "campaign/campaign.h"
#include "campaign/runner.h"
#include "datasets/catalog.h"
#include "datasets/dataset_cache.h"
#include "flag_parse.h"
#include "harness/experiment.h"
#include "harness/metrics.h"
#include "harness/report.h"
#include "sim/cluster.h"

namespace gb::bench {

/// Dataset scale for the experiment binaries. Full paper scale by default
/// (structural effects — BFS iteration counts, STATS message-volume
/// crashes — are scale-sensitive). Override with e.g. GB_BENCH_SCALE=0.05
/// for a quick smoke run; the cost model extrapolates counted work back to
/// full size either way, at the cost of structural fidelity.
inline double bench_scale() {
  if (const char* env = std::getenv("GB_BENCH_SCALE")) {
    // Strict parse: atof would turn "0.05x" into 0.05 and a typo like
    // "o.05" into a silent full-scale run. Reject anything that is not a
    // complete positive literal instead of guessing.
    const auto v = tools::parse_double(env, 0.0);
    if (v && *v > 0.0) return *v;
    std::cerr << "[bench] ignoring invalid GB_BENCH_SCALE='" << env
              << "' (want a positive number); using 1.0\n";
  }
  return 1.0;
}

/// Friendster is additionally capped (1.8 G edges do not fit one host).
inline double dataset_scale(datasets::DatasetId id) {
  const double base = bench_scale();
  const double cap = datasets::info(id).default_scale;
  return std::min(base, cap);
}

inline datasets::Dataset load(datasets::DatasetId id) {
  std::cerr << "[bench] loading " << datasets::info(id).name << " @ scale "
            << dataset_scale(id) << "...\n";
  return datasets::load_or_generate(id, dataset_scale(id));
}

/// The paper's fixed execution infrastructure (Section 4.1): 20 computing
/// nodes, 1 core each, plus the master.
inline sim::ClusterConfig paper_cluster(std::uint32_t workers = 20,
                                        std::uint32_t cores = 1) {
  sim::ClusterConfig cfg;
  cfg.num_workers = workers;
  cfg.cores_per_worker = cores;
  return cfg;
}

inline harness::Measurement run(const platforms::Platform& platform,
                                const datasets::Dataset& ds,
                                platforms::Algorithm algorithm,
                                std::uint32_t workers = 20,
                                std::uint32_t cores = 1) {
  return harness::run_cell(platform, ds, algorithm,
                           harness::default_params(ds),
                           paper_cluster(workers, cores));
}

/// Run a campaign grid with cells sharded over the hardware pool and a
/// shared dataset cache (each graph loads once per figure, not once per
/// cell). Results come back in grid-expansion order — platform innermost,
/// then cores, then workers — so figure tables can consume them
/// sequentially. Cell outcomes are bit-identical to the serial per-cell
/// loop the figures used before; only wall-clock changes.
inline campaign::CampaignResult run_grid(const campaign::GridSpec& grid,
                                         datasets::DatasetCache& cache) {
  campaign::RunnerOptions options;
  options.parallelism = 0;  // hardware concurrency, one cell per thread
  return campaign::run_campaign(grid, options, cache);
}

/// A figure cell: the simulated time when ok, the outcome label otherwise
/// (the campaign equivalent of harness::format_measurement).
inline std::string cell_text(const harness::CellResult& cell) {
  return cell.ok() ? harness::format_seconds(cell.makespan_sec)
                   : cell.outcome;
}

/// Where CSV copies of every table land.
inline std::string results_dir() {
  if (const char* env = std::getenv("GB_RESULTS_DIR")) return env;
  return "results";
}

inline void write_csv_only(const harness::Table& table,
                           const std::string& file_name) {
  std::error_code ec;
  std::filesystem::create_directories(results_dir(), ec);
  if (!ec) {
    table.write_csv((std::filesystem::path(results_dir()) / file_name).string());
  }
}

inline void write_table(const harness::Table& table,
                        const std::string& file_name) {
  table.print(std::cout);
  write_csv_only(table, file_name);
}

}  // namespace gb::bench
