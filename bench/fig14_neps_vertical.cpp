// Figure 14: NEPS (per core) of BFS on Friendster and DotaLeague in the
// vertical-scalability configuration (20 machines, 1-7 cores). Same
// campaign grid as figure 13, rendered as per-core throughput.
#include "bench_common.h"

namespace {

void run_dataset(gb::datasets::DatasetId id, const std::string& csv,
                 gb::datasets::DatasetCache& cache) {
  using namespace gb;
  const double scale = bench::dataset_scale(id);
  const auto grid = campaign::vertical_scalability_grid(id, scale);
  const auto result = bench::run_grid(grid, cache);
  const auto ds = cache.get(id, scale);

  harness::Table table("Figure 14: NEPS per core, BFS on " + ds->name);
  std::vector<std::string> header{"#cores"};
  for (const auto& name : grid.platforms) header.push_back(name);
  table.set_header(header);

  std::size_t cell = 0;
  for (const std::uint32_t cores : grid.cores) {
    std::vector<std::string> row{std::to_string(cores)};
    for (std::size_t p = 0; p < grid.platforms.size(); ++p) {
      const auto& c = result.cells[cell++];
      row.push_back(c.ok() ? harness::format_si(harness::neps(
                                 *ds, c.makespan_sec, 20, cores))
                           : c.outcome);
    }
    table.add_row(row);
  }
  bench::write_table(table, csv);
}

}  // namespace

int main() {
  using namespace gb;
  datasets::DatasetCache cache;
  run_dataset(datasets::DatasetId::kFriendster, "fig14_neps_friendster.csv",
              cache);
  run_dataset(datasets::DatasetId::kDotaLeague, "fig14_neps_dotaleague.csv",
              cache);
  return 0;
}
