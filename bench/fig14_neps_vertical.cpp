// Figure 14: NEPS (per core) of BFS on Friendster and DotaLeague in the
// vertical-scalability configuration (20 machines, 1-7 cores).
#include "bench_common.h"

namespace {

void run_dataset(const gb::datasets::Dataset& ds, const std::string& csv) {
  using namespace gb;
  std::vector<std::unique_ptr<platforms::Platform>> list;
  list.push_back(algorithms::make_hadoop());
  list.push_back(algorithms::make_yarn());
  list.push_back(algorithms::make_stratosphere());
  list.push_back(algorithms::make_giraph());
  list.push_back(algorithms::make_graphlab(false));
  list.push_back(algorithms::make_graphlab(true));

  harness::Table table("Figure 14: NEPS per core, BFS on " + ds.name);
  std::vector<std::string> header{"#cores"};
  for (const auto& p : list) header.push_back(p->name());
  table.set_header(header);

  for (std::uint32_t cores = 1; cores <= 7; ++cores) {
    std::vector<std::string> row{std::to_string(cores)};
    for (const auto& p : list) {
      const auto m =
          bench::run(*p, ds, platforms::Algorithm::kBfs, 20, cores);
      row.push_back(m.ok() ? harness::format_si(harness::neps(
                                 ds, m.time(), 20, cores))
                           : harness::outcome_label(m.outcome));
    }
    table.add_row(row);
  }
  bench::write_table(table, csv);
}

}  // namespace

int main() {
  using namespace gb;
  run_dataset(bench::load(datasets::DatasetId::kFriendster),
              "fig14_neps_friendster.csv");
  run_dataset(bench::load(datasets::DatasetId::kDotaLeague),
              "fig14_neps_dotaleague.csv");
  return 0;
}
