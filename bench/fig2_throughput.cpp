// Figure 2: EPS and VPS of executing BFS (distributed platforms), derived
// from the Figure 1 runs.
#include "bench_common.h"

int main() {
  using namespace gb;
  const auto platforms = algorithms::make_all_platforms();

  harness::Table eps_table("Figure 2 (left): EPS of BFS");
  harness::Table vps_table("Figure 2 (right): VPS of BFS");
  std::vector<std::string> header{"Dataset"};
  for (const auto& p : platforms) {
    if (p->distributed()) header.push_back(p->name());
  }
  eps_table.set_header(header);
  vps_table.set_header(header);

  for (const auto id : datasets::all_datasets()) {
    const auto ds = bench::load(id);
    std::vector<std::string> eps_row{ds.name};
    std::vector<std::string> vps_row{ds.name};
    for (const auto& p : platforms) {
      if (!p->distributed()) continue;  // the paper plots the 5 distributed ones
      const auto m = bench::run(*p, ds, platforms::Algorithm::kBfs);
      if (m.ok()) {
        eps_row.push_back(harness::format_si(harness::eps(ds, m.time())));
        vps_row.push_back(harness::format_si(harness::vps(ds, m.time())));
      } else {
        eps_row.push_back(harness::outcome_label(m.outcome));
        vps_row.push_back(harness::outcome_label(m.outcome));
      }
    }
    eps_table.add_row(eps_row);
    vps_table.add_row(vps_row);
  }
  bench::write_table(eps_table, "fig2_eps.csv");
  bench::write_table(vps_table, "fig2_vps.csv");
  return 0;
}
