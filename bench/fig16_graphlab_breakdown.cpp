// Figure 16: execution time breakdown of GraphLab for CONN on every
// dataset (the paper notes CONN on Friendster exceeds one hour and the
// scale of the figure).
#include "bench_common.h"

int main() {
  using namespace gb;
  const auto graphlab = algorithms::make_graphlab();

  harness::Table table(
      "Figure 16: GraphLab execution time breakdown, CONN per dataset");
  table.set_header({"Dataset", "Computation [s]", "Overhead [s]",
                    "Total [s]", "Overhead [%]"});

  const datasets::DatasetId ids[] = {
      datasets::DatasetId::kAmazon,     datasets::DatasetId::kWikiTalk,
      datasets::DatasetId::kKGS,        datasets::DatasetId::kCitation,
      datasets::DatasetId::kDotaLeague, datasets::DatasetId::kSynth,
      datasets::DatasetId::kFriendster,
  };

  for (const auto id : ids) {
    const auto ds = bench::load(id);
    const auto m = bench::run(*graphlab, ds, platforms::Algorithm::kConn);
    if (!m.ok()) {
      table.add_row({ds.name, harness::outcome_label(m.outcome), "-", "-",
                     "-"});
      continue;
    }
    char tc[32], to[32], total[32], pct[32];
    std::snprintf(tc, sizeof(tc), "%.1f", m.result.computation_time);
    std::snprintf(to, sizeof(to), "%.1f", m.result.overhead_time());
    std::snprintf(total, sizeof(total), "%.1f", m.result.total_time);
    std::snprintf(pct, sizeof(pct), "%.0f",
                  100.0 * m.result.overhead_time() / m.result.total_time);
    table.add_row({ds.name, tc, to, total, pct});
  }
  bench::write_table(table, "fig16_graphlab_breakdown.csv");
  return 0;
}
