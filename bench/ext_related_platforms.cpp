// Extension experiment: the paper's related-work platforms (Table 8) on
// this harness — HaLoop's loop-aware caching and PEGASUS's block-encoded
// GIM-V against stock Hadoop, for the iterative workloads where each was
// published to shine (CONN, the algorithm both HaLoop's and PEGASUS's
// original evaluations feature).
#include "bench_common.h"

int main() {
  using namespace gb;
  std::vector<std::unique_ptr<platforms::Platform>> list;
  list.push_back(algorithms::make_hadoop());
  list.push_back(algorithms::make_haloop());
  list.push_back(algorithms::make_pegasus());
  list.push_back(algorithms::make_stratosphere());
  list.push_back(algorithms::make_giraph());
  list.push_back(algorithms::make_gps());

  harness::Table table(
      "Extension: related-work platforms (Table 8), CONN, 20 nodes");
  std::vector<std::string> header{"Dataset"};
  for (const auto& p : list) header.push_back(p->name());
  table.set_header(header);

  const datasets::DatasetId ids[] = {
      datasets::DatasetId::kCitation,
      datasets::DatasetId::kDotaLeague,
  };
  for (const auto id : ids) {
    const auto ds = bench::load(id);
    std::vector<std::string> row{ds.name};
    for (const auto& p : list) {
      const auto m = bench::run(*p, ds, platforms::Algorithm::kConn);
      row.push_back(harness::format_measurement(m));
    }
    table.add_row(row);
  }

  // The expressiveness boundary: PEGASUS cannot run non-GIM-V algorithms.
  harness::Table limits("Expressiveness: CD on the related-work platforms");
  limits.set_header({"Platform", "CD outcome"});
  const auto ds = bench::load(datasets::DatasetId::kKGS);
  for (const auto& p : list) {
    const auto m = bench::run(*p, ds, platforms::Algorithm::kCd);
    limits.add_row({p->name(), harness::format_measurement(m)});
  }

  bench::write_table(table, "ext_related_platforms.csv");
  bench::write_table(limits, "ext_related_platforms_limits.csv");
  return 0;
}
