// Extension experiment: hardware sensitivity. The paper benchmarks one
// fixed cluster (DAS-4: SATA disks, GbE data network); the cost-model
// overrides let us ask how the platform ranking would shift on different
// hardware — a 10x faster network (IB-class) and SSD-class disks. The
// expectation from the model: network upgrades compress the gap between
// Stratosphere and the in-memory platforms (shuffle-bound), while disk
// upgrades mostly rescue Hadoop (materialization-bound).
#include "bench_common.h"

#include "sim/cost_config.h"

namespace {

using namespace gb;

harness::Measurement run_with(const platforms::Platform& p,
                              const datasets::Dataset& ds,
                              const sim::CostModel& cost) {
  sim::ClusterConfig cfg = bench::paper_cluster();
  cfg.cost = cost;
  return harness::run_cell(p, ds, platforms::Algorithm::kBfs,
                           harness::default_params(ds), cfg);
}

}  // namespace

int main() {
  using namespace gb;
  // Friendster: the only workload big enough that hardware, not fixed
  // costs, dominates the generic platforms.
  const auto ds = bench::load(datasets::DatasetId::kFriendster);

  sim::CostModel stock;
  sim::CostModel fast_net = stock;
  sim::apply_cost_override(fast_net, "net_bps=1.17e9");  // 10 GbE / IB
  sim::CostModel fast_disk = stock;
  sim::apply_cost_override(fast_disk, "disk_read_bps=500e6");
  sim::apply_cost_override(fast_disk, "disk_write_bps=450e6");
  sim::apply_cost_override(fast_disk, "disk_seek_sec=1e-4");

  std::vector<std::unique_ptr<platforms::Platform>> list;
  list.push_back(algorithms::make_hadoop());
  list.push_back(algorithms::make_stratosphere());
  list.push_back(algorithms::make_giraph());
  list.push_back(algorithms::make_graphlab(false));

  harness::Table table(
      "Extension: hardware sensitivity, BFS on Friendster, 20 nodes");
  table.set_header({"Platform", "DAS-4 (stock)", "10x network", "SSD disks"});

  for (const auto& p : list) {
    const auto base = run_with(*p, ds, stock);
    const auto net = run_with(*p, ds, fast_net);
    const auto disk = run_with(*p, ds, fast_disk);
    table.add_row({p->name(), harness::format_measurement(base),
                   harness::format_measurement(net),
                   harness::format_measurement(disk)});
  }
  bench::write_table(table, "ext_sensitivity.csv");
  return 0;
}
