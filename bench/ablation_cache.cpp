// Ablation: the graph database's two-level cache — cold versus hot BFS per
// dataset, reproducing the paper's cold/hot ratios (45x on Citation, ~5x
// on DotaLeague) and the cliff when the object cache no longer fits
// (Synth).
#include "bench_common.h"

#include "algorithms/graphdb_algorithms.h"
#include "platforms/graphdb/database.h"

int main() {
  using namespace gb;
  const sim::CostModel cost;

  harness::Table table("Ablation: Neo4j cold vs hot cache, BFS");
  table.set_header({"Dataset", "Cold", "Hot", "Cold/Hot",
                    "Object cache demand [GB]"});

  const datasets::DatasetId ids[] = {
      datasets::DatasetId::kAmazon,     datasets::DatasetId::kWikiTalk,
      datasets::DatasetId::kKGS,        datasets::DatasetId::kCitation,
      datasets::DatasetId::kDotaLeague, datasets::DatasetId::kSynth,
  };

  for (const auto id : ids) {
    const auto ds = bench::load(id);
    platforms::graphdb::Database db(ds.graph, cost, ds.extrapolation());
    const auto source = harness::default_params(ds).bfs_source;

    db.begin(platforms::graphdb::CacheState::kCold);
    const auto cold = algorithms::graphdb::db_bfs(db, source, 1e15);
    db.begin(platforms::graphdb::CacheState::kHot);
    const auto hot = algorithms::graphdb::db_bfs(db, source, 1e15);

    char ratio[32], demand[32];
    std::snprintf(ratio, sizeof(ratio), "%.1f", cold.elapsed / hot.elapsed);
    std::snprintf(demand, sizeof(demand), "%.1f",
                  static_cast<double>(db.store().object_cache_demand()) /
                      (1 << 30));
    table.add_row({ds.name, harness::format_seconds(cold.elapsed),
                   harness::format_seconds(hot.elapsed), ratio, demand});
  }
  bench::write_table(table, "ablation_cache.csv");
  return 0;
}
