// Table 6: data ingestion time — local file system into HDFS (seconds)
// versus batch-transaction import into the graph database (hours).
#include "bench_common.h"

#include "storage/hdfs.h"
#include "storage/record_store.h"

int main() {
  using namespace gb;
  const sim::CostModel cost;
  const storage::Hdfs hdfs(cost);

  harness::Table table("Table 6: Data ingestion time");
  table.set_header({"Dataset", "HDFS [s]", "Neo4j [h]", "paper HDFS [s]",
                    "paper Neo4j [h]"});

  const struct {
    datasets::DatasetId id;
    const char* hdfs;
    const char* neo4j;
  } paper[] = {
      {datasets::DatasetId::kAmazon, "1.2", "2.0"},
      {datasets::DatasetId::kWikiTalk, "1.8", "17.2"},
      {datasets::DatasetId::kKGS, "3.0", "2.6"},
      {datasets::DatasetId::kCitation, "3.9", "28.8"},
      {datasets::DatasetId::kDotaLeague, "7.0", "3.7"},
      {datasets::DatasetId::kSynth, "10.9", "24.7"},
      {datasets::DatasetId::kFriendster, "312.0", "N/A"},
  };

  for (const auto& row : paper) {
    const auto ds = bench::load(row.id);
    const double scale = ds.extrapolation();
    const auto file_bytes =
        static_cast<Bytes>(static_cast<double>(ds.graph.text_size_bytes()) * scale);
    const double hdfs_time = hdfs.ingest_time(file_bytes);

    const storage::RecordStoreModel store(ds.graph, cost, scale);
    const double neo4j_hours = store.ingest_time() / 3600.0;
    // The paper never finished importing Friendster; we mark imports past
    // two days the same way.
    char hdfs_str[32], neo4j_str[32];
    std::snprintf(hdfs_str, sizeof(hdfs_str), "%.1f", hdfs_time);
    if (neo4j_hours > 48.0) {
      std::snprintf(neo4j_str, sizeof(neo4j_str), "N/A (>48h)");
    } else {
      std::snprintf(neo4j_str, sizeof(neo4j_str), "%.1f", neo4j_hours);
    }
    table.add_row({ds.name, hdfs_str, neo4j_str, row.hdfs, row.neo4j});
  }
  bench::write_table(table, "table6_ingestion.csv");
  return 0;
}
