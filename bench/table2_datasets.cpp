// Table 2: summary of datasets — #V, #E, link density d, average degree D,
// directivity — for the seven generated graphs, next to the paper's
// published values.
#include "bench_common.h"

#include "core/graph_stats.h"

int main() {
  using namespace gb;
  harness::Table table("Table 2: Summary of datasets (generated vs paper)");
  table.set_header({"Graph", "#V", "#E", "d (x1e-5)", "D", "Directed",
                    "paper #V", "paper #E", "scale"});

  for (const auto id : datasets::all_datasets()) {
    const auto& meta = datasets::info(id);
    const auto ds = bench::load(id);
    const auto s = summarize(ds.graph);
    char density[32];
    std::snprintf(density, sizeof(density), "%.1f",
                  s.link_density * 1e5);
    char degree[32];
    std::snprintf(degree, sizeof(degree), "%.0f", s.average_degree);
    table.add_row({ds.name, std::to_string(s.num_vertices),
                   std::to_string(s.num_edges), density, degree,
                   meta.directed ? "directed" : "undirected",
                   std::to_string(meta.paper_vertices),
                   std::to_string(meta.paper_edges),
                   std::to_string(ds.scale)});
  }
  bench::write_table(table, "table2_datasets.csv");
  return 0;
}
