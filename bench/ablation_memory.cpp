// Ablation: simulated RAM per node versus graceful degradation — BFS on
// Friendster (the one Table 2 graph that overflows every platform's
// memory somewhere) across the five engine families, shrinking the
// per-node budget from the 20 GiB default down to 1 GiB. Each reduced
// budget runs twice: with the paged storage layer disabled (the seed
// behaviour — the run either fits or dies) and enabled (DESIGN.md §12 —
// over-budget state pages against the disk model and the run completes
// with a degraded makespan and nonzero page-fault counters).
//
// With --check the binary exits non-zero unless, for every platform,
// some budget exists where the unpaged run hard-fails while the paged
// run completes with page-cache misses, and the paged makespan at the
// smallest surviving budget is no faster than the platform's best run —
// paging must degrade, never accelerate.
#include "bench_common.h"

#include <cstring>

namespace {

using namespace gb;

/// Per-node budgets in GiB; 0 = the default 20 GiB heap. Chosen to
/// straddle every platform's Friendster working set (Giraph ~9.3 GB per
/// worker, GraphLab ~3.3 GB, Hadoop task JVM ~3 GB, Stratosphere
/// TaskManager ~1.6 GB, Neo4j's single-node store ~60 GB).
constexpr double kBudgetsGb[] = {0.0, 8.0, 4.0, 2.0, 1.0};

struct Cell {
  std::string platform;
  double budget_gb = 0.0;  // 0 = default heap
  bool paged = false;
  harness::Measurement m;

  bool hard_failure() const {
    return m.outcome == harness::Outcome::kOutOfMemory ||
           m.outcome == harness::Outcome::kTimeout;
  }
};

std::string budget_text(double gb) {
  if (gb <= 0.0) return "default";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g GiB", gb);
  return buffer;
}

std::string count_text(std::uint64_t value) {
  return value == 0 ? "-" : harness::format_si(static_cast<double>(value));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gb;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  const auto ds = bench::load(datasets::DatasetId::kFriendster);
  const auto params = harness::default_params(ds);

  std::vector<Cell> cells;
  for (const char* name :
       {"Giraph", "GraphLab", "Hadoop", "Stratosphere", "Neo4j"}) {
    const auto platform = algorithms::make_platform(name);
    // The default budget runs once: with budget_per_node = 0 the paged
    // layer is off either way, so "paged" and "unpaged" are one cell.
    for (const double gb : kBudgetsGb) {
      for (const bool paged : {false, true}) {
        if (gb <= 0.0 && paged) continue;
        sim::ClusterConfig config = bench::paper_cluster();
        if (gb > 0.0) {
          const auto budget = static_cast<Bytes>(gb * (1ull << 30));
          config.cost.heap_limit = budget;
          if (paged) config.page_cache.budget_per_node = budget;
        }
        Cell cell;
        cell.platform = name;
        cell.budget_gb = gb;
        cell.paged = paged;
        cell.m = harness::run_cell(*platform, ds, platforms::Algorithm::kBfs,
                                   params, config);
        cells.push_back(std::move(cell));
      }
    }
  }

  harness::Table table(
      "Ablation: per-node memory budget x platform (Friendster BFS, 20 "
      "workers; paged = out-of-core storage enabled)");
  table.set_header({"Platform", "Budget", "Paging", "Result", "Page misses",
                    "Evictions"});
  for (const auto& cell : cells) {
    harness::Measurement m = cell.m;
    harness::CellResult as_cell;  // reuse cell_text's ok/label logic
    as_cell.outcome = harness::outcome_label(m.outcome);
    as_cell.makespan_sec = m.ok() ? m.time() : 0.0;
    table.add_row({cell.platform, budget_text(cell.budget_gb),
                   cell.budget_gb <= 0.0 ? "-" : (cell.paged ? "on" : "off"),
                   bench::cell_text(as_cell),
                   count_text(m.metrics.counter("page_cache.misses")),
                   count_text(m.metrics.counter("page_cache.evictions"))});
  }
  bench::write_table(table, "ablation_memory.csv");

  if (check) {
    bool failed = false;
    for (const char* name :
         {"Giraph", "GraphLab", "Hadoop", "Stratosphere", "Neo4j"}) {
      // 1. Graceful degradation exists: some budget where unpaged dies
      //    and paged survives with real page traffic.
      const Cell* rescue = nullptr;
      for (const auto& cell : cells) {
        if (cell.platform != name || !cell.paged || !cell.m.ok()) continue;
        if (cell.m.metrics.counter("page_cache.misses") == 0) continue;
        for (const auto& other : cells) {
          if (other.platform == name && !other.paged &&
              other.budget_gb == cell.budget_gb && other.hard_failure()) {
            rescue = &cell;
            break;
          }
        }
        if (rescue != nullptr) break;
      }
      if (rescue == nullptr) {
        std::cerr << "[check] FAILED: " << name
                  << ": no budget where paging rescues a hard failure with "
                     "nonzero page misses\n";
        failed = true;
        continue;
      }
      // 2. Paging degrades: the smallest surviving paged budget must not
      //    beat the platform's fastest completed run.
      const Cell* smallest = nullptr;
      double best_sec = -1.0;
      for (const auto& cell : cells) {
        if (cell.platform != name || !cell.m.ok()) continue;
        if (best_sec < 0.0 || cell.m.time() < best_sec) best_sec = cell.m.time();
        if (cell.paged && cell.budget_gb > 0.0 &&
            (smallest == nullptr || cell.budget_gb < smallest->budget_gb)) {
          smallest = &cell;
        }
      }
      if (smallest != nullptr && smallest->m.time() < best_sec) {
        std::cerr << "[check] FAILED: " << name << ": paged run at "
                  << budget_text(smallest->budget_gb) << " ("
                  << smallest->m.time() << "s) is faster than the best run ("
                  << best_sec << "s)\n";
        failed = true;
        continue;
      }
      std::cerr << "[check] ok: " << name << " rescued at "
                << budget_text(rescue->budget_gb) << " with "
                << rescue->m.metrics.counter("page_cache.misses")
                << " page misses\n";
    }
    if (failed) return 1;
  }
  return 0;
}
