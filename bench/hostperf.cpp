// Host-performance trajectory: wall-clock before/after pairs for the
// direction-optimizing BFS and flat message-buffer hot paths, on the
// Table 2 datasets. "Before" runs the pre-optimization host code, which
// is kept callable behind AlgorithmParams/EngineConfig switches
// (direction_optimizing=false, legacy_host_buffers=true); "after" runs
// the shipped defaults. Both sides produce bit-identical simulated
// results — the bench asserts that on every pair — so the only thing
// measured here is host execution speed.
//
// Without flags the binary measures every pair at the current
// GB_BENCH_SCALE and writes the committed artifact BENCH_hostperf.json
// (mean/sd host ms per side, speedup, and a conservative per-entry
// floor), preserving any existing headline block. With --headline it
// re-measures ONLY reference BFS on WikiTalk at the current scale and
// merges the result into the artifact as the "headline" object — the
// full-scale measurement backing the trajectory's >=1.5x claim. The
// committed entries are measured at the SAME smoke scale CI re-runs, so
// the regression floors compare like with like; the headline records
// its own scale separately.
//
// With --check it re-measures the entries at the current GB_BENCH_SCALE
// and exits non-zero when an optimistic (noise-favoring, +/-2 sd)
// estimate of any speedup still falls below the committed floor, or
// when the committed headline no longer shows the >=1.5x reference-BFS
// speedup on WikiTalk this trajectory promises (the headline is a
// static claim — full scale is too slow for CI to re-measure).
#include "bench_common.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>

#include "algorithms/reference.h"
#include "core/thread_pool.h"
#include "core/traversal.h"
#include "harness/cell_result.h"
#include "harness/json.h"
#include "harness/json_read.h"
#include "stats/repeat.h"

namespace {

using namespace gb;

constexpr const char* kDefaultFile = "BENCH_hostperf.json";
/// The committed trajectory claim (ISSUE 6): reference BFS on WikiTalk.
constexpr double kWikiTalkReferenceFloor = 1.5;

int reps_from_env() {
  if (const char* env = std::getenv("GB_HOSTPERF_REPS")) {
    // atoi accepted "7;rm" as 7 and overflow was UB; parse strictly and
    // loudly skip anything that is not a small positive integer.
    const auto v = tools::parse_u32(env, 1);
    if (v && *v <= 1000) return static_cast<int>(*v);
    std::cerr << "[bench] ignoring invalid GB_HOSTPERF_REPS='" << env
              << "' (want 1..1000); using 3\n";
  }
  return 3;
}

struct Sample {
  double mean_ms = 0.0;
  double sd_ms = 0.0;
};

/// Wall-clock of one warmup + `reps` timed runs of fn, summarized by the
/// shared methodology layer (stats::repeat_measure / stats::describe):
/// the sd is the unbiased n-1 sample deviation, pinned by gp_stats tests
/// instead of re-derived here.
Sample measure(const std::function<void()>& fn, int reps) {
  const auto r = stats::repeat_measure(
      fn, {.warmup = 1, .reps = static_cast<std::uint32_t>(reps)});
  return Sample{r.stats.mean, r.stats.sd};
}

struct Entry {
  std::string dataset;
  std::string engine;
  std::string algorithm;
  Sample before;
  Sample after;
  std::uint64_t pull_levels = 0;   // BFS entries: direction trace
  std::uint64_t push_levels = 0;

  double speedup() const {
    return after.mean_ms > 0.0 ? before.mean_ms / after.mean_ms : 0.0;
  }

  /// Speedup granting the noise the benefit of the doubt on both sides.
  /// The denominator is clamped to a quarter of the mean so a wild sd
  /// from a tiny rep count cannot make the estimate infinite.
  double optimistic_speedup() const {
    const double hi_before = before.mean_ms + 2.0 * before.sd_ms;
    const double lo_after = std::max(after.mean_ms - 2.0 * after.sd_ms,
                                     0.25 * after.mean_ms);
    return lo_after > 0.0 ? hi_before / lo_after : 0.0;
  }

  /// True when the 0.25·mean clamp in the speedup bounds engages on
  /// either side — i.e. 2·sd eats more than 75% of a mean, so the
  /// measurement is too noisy for the ±2 sd bounds to be meaningful.
  /// Surfaced as a stderr warning and a `high_variance` artifact flag
  /// rather than silently clamping (a flagged measurement invites a
  /// higher GB_HOSTPERF_REPS; a silent clamp hides it).
  bool high_variance() const {
    const auto clamped = [](const Sample& s) {
      return s.mean_ms - 2.0 * s.sd_ms < 0.25 * s.mean_ms;
    };
    return clamped(before) || clamped(after);
  }

  /// Committed regression floor: never demand more than a quarter of the
  /// pessimistic measured gain (speedups shift with dataset scale and
  /// host), capped so smoke-scale CI runs on other machines keep margin,
  /// and never below break-even. An entry whose committed speedup is
  /// itself below 1.0 is a documented trade-off (e.g. Beamer's
  /// heuristic faithfully overstays pull on KGS's stall-shaped
  /// frontier); the gate only guards it against collapsing further.
  double check_floor() const {
    if (speedup() < 1.0) return 0.75 * speedup();
    const double lo_before = std::max(before.mean_ms - 2.0 * before.sd_ms,
                                      0.25 * before.mean_ms);
    const double hi_after = after.mean_ms + 2.0 * after.sd_ms;
    const double pessimistic = hi_after > 0.0 ? lo_before / hi_after : 1.0;
    return std::max(1.0, std::min(1.25, 1.0 + 0.25 * (pessimistic - 1.0)));
  }

  std::string label() const {
    return engine + "/" + algorithm + " on " + dataset;
  }
};

/// The full-scale reference-BFS WikiTalk measurement backing the
/// trajectory claim; carried through artifact rewrites verbatim.
struct Headline {
  Entry entry;
  double scale = 1.0;
  bool present = false;
};

Entry entry_from_json(const harness::JsonValue& e) {
  Entry out;
  out.dataset = e.string_or("dataset", "");
  out.engine = e.string_or("engine", "");
  out.algorithm = e.string_or("algorithm", "");
  out.before.mean_ms = e.number_or("before_ms", 0.0);
  out.before.sd_ms = e.number_or("before_sd_ms", 0.0);
  out.after.mean_ms = e.number_or("after_ms", 0.0);
  out.after.sd_ms = e.number_or("after_sd_ms", 0.0);
  out.pull_levels = e.u64_or("pull_levels", 0);
  out.push_levels = e.u64_or("push_levels", 0);
  return out;
}

/// A previously written artifact, parsed back into measurement structs
/// (derived fields like speedup/floor are recomputed from the stored
/// means, so a rewrite round-trips).
struct Artifact {
  std::vector<Entry> entries;
  Headline headline;
  double scale = 0.0;
  bool loaded = false;
};

Artifact load_artifact(const std::string& file) {
  Artifact art;
  std::ifstream in(file);
  if (!in) return art;
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = harness::parse_json(buf.str());
  art.scale = doc.number_or("scale", 0.0);
  if (const auto* entries = doc.find("entries");
      entries != nullptr && entries->is_array()) {
    for (const auto& e : entries->array) {
      art.entries.push_back(entry_from_json(e));
    }
    art.loaded = true;
  }
  if (const auto* h = doc.find("headline"); h != nullptr) {
    art.headline.entry = entry_from_json(*h);
    art.headline.scale = h->number_or("scale", 1.0);
    art.headline.present = true;
  }
  return art;
}

/// The generic engines' host path as it stood before this trajectory:
/// per-superstep outbox concatenation, no direction optimization.
platforms::AlgorithmParams before_params(const datasets::Dataset& ds) {
  auto params = harness::default_params(ds);
  params.direction_optimizing = false;
  params.legacy_host_buffers = true;
  return params;
}

platforms::AlgorithmParams after_params(const datasets::Dataset& ds) {
  return harness::default_params(ds);
}

void die(const std::string& why) {
  std::cerr << "[hostperf] FATAL: " << why << "\n";
  std::exit(2);
}

/// Measure one engine cell pair and assert the simulated results match.
Entry measure_cell(const platforms::Platform& platform,
                   const datasets::Dataset& ds,
                   platforms::Algorithm algorithm, int reps) {
  const sim::ClusterConfig cfg = bench::paper_cluster();
  std::uint64_t hash_before = 0, hash_after = 0;
  const auto run_once = [&](const platforms::AlgorithmParams& params,
                            std::uint64_t& hash) {
    const auto m = harness::run_cell(platform, ds, algorithm, params, cfg);
    if (!m.ok()) die(platform.name() + " failed on " + ds.name + ": " +
                     m.message);
    hash = harness::hash_output(m.result.output);
  };

  Entry e;
  e.dataset = ds.name;
  e.engine = platform.name();
  e.algorithm = platforms::algorithm_name(algorithm);
  e.before = measure([&] { run_once(before_params(ds), hash_before); }, reps);
  e.after = measure([&] { run_once(after_params(ds), hash_after); }, reps);
  if (hash_before != hash_after) {
    die(e.label() + ": before/after outputs diverge (" +
        std::to_string(hash_before) + " vs " + std::to_string(hash_after) +
        ") — the host optimization changed simulated results");
  }
  return e;
}

Entry measure_reference_bfs(const datasets::Dataset& ds, int reps) {
  const VertexId source = harness::default_params(ds).bfs_source;
  Entry e;
  e.dataset = ds.name;
  e.engine = "reference";
  e.algorithm = "BFS";
  e.before = measure(
      [&] { algorithms::reference_bfs_topdown(ds.graph, source); }, reps);
  BfsTraversalTrace trace;
  e.after = measure(
      [&] {
        trace.levels.clear();
        algorithms::reference_bfs(ds.graph, source, nullptr,
                                  TraversalMode::kAuto, &trace);
      },
      reps);
  e.pull_levels = trace.pull_levels();
  e.push_levels = trace.push_levels();
  const auto expected = algorithms::reference_bfs_topdown(ds.graph, source);
  const auto got = algorithms::reference_bfs(ds.graph, source);
  if (got.levels != expected.levels) {
    die(e.label() + ": direction-optimizing levels diverge from top-down");
  }
  return e;
}

/// SSSP host pair: "before" is the serial binary-heap Dijkstra the SSSP
/// work shipped as its oracle; "after" is the bucketed delta-stepping
/// frontier run over the host pool. Both produce the exact min-plus
/// distances, asserted on every measurement.
Entry measure_reference_sssp(const datasets::Dataset& ds, int reps) {
  algorithms::SsspParams params;
  const auto cell = harness::default_params(ds);
  params.source = cell.bfs_source;
  params.weight_seed = cell.seed;
  Entry e;
  e.dataset = ds.name;
  e.engine = "reference";
  e.algorithm = "SSSP";
  e.before = measure(
      [&] { algorithms::reference_sssp_dijkstra(ds.graph, params); }, reps);
  ThreadPool pool;
  e.after = measure(
      [&] { algorithms::reference_sssp(ds.graph, params, &pool); }, reps);
  const auto expected = algorithms::reference_sssp_dijkstra(ds.graph, params);
  const auto got = algorithms::reference_sssp(ds.graph, params, &pool);
  if (got.dist != expected.dist) {
    die(e.label() + ": delta-stepping distances diverge from Dijkstra");
  }
  return e;
}

/// Datasets this trajectory tracks (the Table 2 single-host set).
const datasets::DatasetId kTrackedDatasets[] = {
    datasets::DatasetId::kAmazon, datasets::DatasetId::kWikiTalk,
    datasets::DatasetId::kKGS, datasets::DatasetId::kCitation,
    datasets::DatasetId::kDotaLeague};

std::vector<Entry> measure_all(int reps, const std::string& only) {
  const auto giraph = algorithms::make_giraph();
  const auto graphlab = algorithms::make_graphlab(false);

  std::vector<Entry> entries;
  for (const auto id : kTrackedDatasets) {
    if (!only.empty() &&
        ("," + only + ",").find("," + datasets::info(id).name + ",") ==
            std::string::npos) {
      continue;
    }
    const auto ds = bench::load(id);
    entries.push_back(measure_reference_bfs(ds, reps));
    entries.push_back(measure_reference_sssp(ds, reps));
    entries.push_back(
        measure_cell(*giraph, ds, platforms::Algorithm::kBfs, reps));
    entries.push_back(
        measure_cell(*graphlab, ds, platforms::Algorithm::kBfs, reps));
    entries.push_back(
        measure_cell(*giraph, ds, platforms::Algorithm::kConn, reps));
    std::cerr << "[hostperf] " << ds.name << " done\n";
  }
  for (const auto& e : entries) {
    if (e.high_variance()) {
      std::cerr << "[hostperf] warning: " << e.label()
                << " is high-variance (2*sd exceeds 75% of a mean); the "
                   "0.25*mean clamp bounds its speedup estimates — raise "
                   "GB_HOSTPERF_REPS for a tighter measurement\n";
    }
  }
  return entries;
}

void write_entry_fields(harness::JsonWriter& w, const Entry& e) {
  w.key("dataset");
  w.value(e.dataset);
  w.key("engine");
  w.value(e.engine);
  w.key("algorithm");
  w.value(e.algorithm);
  w.key("before_ms");
  w.value(e.before.mean_ms);
  w.key("before_sd_ms");
  w.value(e.before.sd_ms);
  w.key("after_ms");
  w.value(e.after.mean_ms);
  w.key("after_sd_ms");
  w.value(e.after.sd_ms);
  w.key("speedup");
  w.value(e.speedup());
  if (e.high_variance()) {
    // Only when set: low-variance artifacts keep their historical bytes.
    w.key("high_variance");
    w.value(true);
  }
  if (e.algorithm == "BFS") {
    w.key("pull_levels");
    w.value(e.pull_levels);
    w.key("push_levels");
    w.value(e.push_levels);
  }
}

std::string to_json(const std::vector<Entry>& entries, double scale,
                    int reps, const Headline& headline) {
  harness::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("hostperf-v1");
  w.key("scale");
  w.value(scale);
  w.key("reps");
  w.value(static_cast<std::uint64_t>(reps));
  if (headline.present) {
    w.key("headline");
    w.begin_object();
    w.key("scale");
    w.value(headline.scale);
    write_entry_fields(w, headline.entry);
    w.end_object();
  }
  w.key("entries");
  w.begin_array();
  for (const auto& e : entries) {
    w.begin_object();
    write_entry_fields(w, e);
    w.key("check_floor");
    w.value(e.check_floor());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void print_table(const std::vector<Entry>& entries) {
  harness::Table table(
      "Host wall-clock: pre-optimization path vs shipped path "
      "(simulated results bit-identical; mean of timed reps)");
  table.set_header({"Dataset", "Engine", "Algorithm", "Before(ms)",
                    "After(ms)", "Speedup", "Floor", "Pull/Push"});
  const auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return std::string(buf);
  };
  for (const auto& e : entries) {
    table.add_row({e.dataset, e.engine, e.algorithm, fmt(e.before.mean_ms),
                   fmt(e.after.mean_ms), fmt(e.speedup()),
                   fmt(e.check_floor()),
                   e.algorithm == "BFS"
                       ? std::to_string(e.pull_levels) + "/" +
                             std::to_string(e.push_levels)
                       : "-"});
  }
  bench::write_table(table, "hostperf.csv");
}

int run_check(const std::string& file, int reps, const std::string& only) {
  std::ifstream in(file);
  if (!in) {
    std::cerr << "[check] FAILED: cannot open " << file << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = harness::parse_json(buf.str());
  const auto* committed = doc.find("entries");
  if (committed == nullptr || !committed->is_array() ||
      committed->array.empty()) {
    std::cerr << "[check] FAILED: " << file << " has no entries\n";
    return 1;
  }

  // The trajectory promise must hold in the committed artifact itself:
  // the headline block records the full-scale reference-BFS WikiTalk
  // run. It is a static claim — full scale is too slow to re-measure in
  // CI — but a regression in the underlying code would show up in the
  // smoke-scale WikiTalk reference entry gated below.
  const auto* headline = doc.find("headline");
  if (headline == nullptr ||
      headline->string_or("dataset", "") != "WikiTalk" ||
      headline->string_or("engine", "") != "reference" ||
      headline->number_or("speedup", 0.0) < kWikiTalkReferenceFloor) {
    std::cerr << "[check] FAILED: committed " << file
              << " lacks a reference/BFS WikiTalk headline with speedup >= "
              << kWikiTalkReferenceFloor << "\n";
    return 1;
  }
  std::cerr << "[check] headline: reference BFS on WikiTalk "
            << headline->number_or("speedup", 0.0) << "x at scale "
            << headline->number_or("scale", 1.0) << "\n";

  const auto measured = measure_all(reps, only);
  print_table(measured);
  int failures = 0;
  for (const auto& c : committed->array) {
    // A --datasets filter narrows the re-measured gate (CI smoke runs a
    // subset); committed entries outside it are skipped, not failed.
    if (!only.empty() &&
        ("," + only + ",").find("," + c.string_or("dataset", "") + ",") ==
            std::string::npos) {
      continue;
    }
    const Entry* match = nullptr;
    for (const auto& m : measured) {
      if (m.dataset == c.string_or("dataset", "") &&
          m.engine == c.string_or("engine", "") &&
          m.algorithm == c.string_or("algorithm", "")) {
        match = &m;
        break;
      }
    }
    const std::string label = c.string_or("engine", "?") + "/" +
                              c.string_or("algorithm", "?") + " on " +
                              c.string_or("dataset", "?");
    if (match == nullptr) {
      std::cerr << "[check] FAILED: committed entry " << label
                << " was not re-measured\n";
      ++failures;
      continue;
    }
    const double floor = c.number_or("check_floor", 1.0);
    if (match->high_variance()) {
      std::cerr << "[check] warning: " << label
                << " re-measured high-variance; its optimistic speedup is "
                   "bounded by the 0.25*mean clamp\n";
    }
    const double optimistic = match->optimistic_speedup();
    if (optimistic < floor) {
      std::cerr << "[check] FAILED: " << label << " optimistic speedup "
                << optimistic << " < committed floor " << floor << " (before "
                << match->before.mean_ms << "ms +/- " << match->before.sd_ms
                << ", after " << match->after.mean_ms << "ms +/- "
                << match->after.sd_ms << ")\n";
      ++failures;
    } else {
      std::cerr << "[check] ok: " << label << " optimistic speedup "
                << optimistic << " >= floor " << floor << "\n";
    }
  }
  if (failures > 0) {
    std::cerr << "[check] FAILED: " << failures << " regressed pair(s)\n";
    return 1;
  }
  std::cerr << "[check] ok: all re-measured host-perf pairs within "
               "committed floors\n";
  return 0;
}

}  // namespace

int write_artifact(const std::string& file, const std::vector<Entry>& entries,
                   double scale, int reps, const Headline& headline) {
  std::ofstream out(file);
  out << to_json(entries, scale, reps, headline) << "\n";
  if (!out) {
    std::cerr << "[hostperf] FAILED to write " << file << "\n";
    return 1;
  }
  std::cerr << "[hostperf] wrote " << file << " (" << entries.size()
            << " entries" << (headline.present ? ", headline" : "") << ")\n";
  return 0;
}

int main(int argc, char** argv) {
  bool check = false;
  bool headline_mode = false;
  std::string file = kDefaultFile;
  std::string only;  // comma-separated dataset names; empty = all
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--headline") == 0) {
      headline_mode = true;
    } else if (std::strcmp(argv[i], "--file") == 0 && i + 1 < argc) {
      file = argv[++i];
    } else if (std::strcmp(argv[i], "--datasets") == 0 && i + 1 < argc) {
      only = argv[++i];
    }
  }
  const int reps = reps_from_env();
  if (check) return run_check(file, reps, only);

  if (headline_mode) {
    // Re-measure only the headline pair at the current scale and merge
    // it into the existing artifact; the entries stay as committed.
    const Artifact art = load_artifact(file);
    Headline h;
    h.entry =
        measure_reference_bfs(bench::load(datasets::DatasetId::kWikiTalk),
                              reps);
    h.scale = bench::bench_scale();
    h.present = true;
    std::cerr << "[hostperf] headline: reference BFS on WikiTalk "
              << h.entry.speedup() << "x at scale " << h.scale << "\n";
    return write_artifact(file, art.entries, art.scale, reps, h);
  }

  const auto entries = measure_all(reps, only);
  print_table(entries);
  // A full (unfiltered) re-measure replaces the entries but keeps the
  // committed headline, which is produced separately at full scale.
  return write_artifact(file, entries, bench::bench_scale(), reps,
                        load_artifact(file).headline);
}
