// google-benchmark microbenchmarks of this library's own hot paths: graph
// construction, BFS reference kernel, the BSP engine, and the generators.
// These measure real wall-clock performance of the simulator, not the
// simulated platforms.
#include <benchmark/benchmark.h>

#include "algorithms/evolution.h"
#include "algorithms/pregel_programs.h"
#include "algorithms/reference.h"
#include "datasets/generators.h"
#include "platforms/pregel/engine.h"
#include "sim/cluster.h"

namespace {

using namespace gb;

Graph make_test_graph(std::uint32_t scale) {
  return datasets::rmat(scale, EdgeId{8} << scale, 0.57, 0.19, 0.19, false,
                        42);
}

void BM_GraphBuild(benchmark::State& state) {
  const auto scale = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_test_graph(scale));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (8LL << scale));
}
BENCHMARK(BM_GraphBuild)->Arg(12)->Arg(14)->Arg(16);

void BM_ReferenceBfs(benchmark::State& state) {
  const Graph g = make_test_graph(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::reference_bfs(g, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_adjacency_entries()));
}
BENCHMARK(BM_ReferenceBfs)->Arg(14)->Arg(16);

void BM_ReferenceConn(benchmark::State& state) {
  const Graph g = make_test_graph(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::reference_conn(g));
  }
}
BENCHMARK(BM_ReferenceConn)->Arg(14);

void BM_PregelBfs(benchmark::State& state) {
  const Graph g = make_test_graph(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    sim::ClusterConfig cfg;
    cfg.num_workers = 20;
    sim::Cluster cluster(cfg);
    platforms::PhaseRecorder rec(cluster);
    algorithms::pregel::BfsProgram prog{0};
    benchmark::DoNotOptimize(
        platforms::pregel::run_bsp<std::uint64_t, std::uint64_t>(
            g, prog, cluster, rec, 1e12, algorithms::kUnreached, {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_adjacency_entries()));
}
BENCHMARK(BM_PregelBfs)->Arg(14)->Arg(16);

void BM_ForestFire(benchmark::State& state) {
  const Graph g = make_test_graph(14);
  algorithms::EvoParams params;
  params.growth = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::forest_fire_evolve(g, params));
  }
}
BENCHMARK(BM_ForestFire);

void BM_CdStep(benchmark::State& state) {
  const Graph g = make_test_graph(13);
  std::vector<std::uint64_t> labels(g.num_vertices());
  std::vector<algorithms::CdScore> scores(g.num_vertices(), 10);
  for (VertexId v = 0; v < g.num_vertices(); ++v) labels[v] = v;
  std::vector<std::uint64_t> out_labels;
  std::vector<algorithms::CdScore> out_scores;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::cd_step(g, {}, labels, scores,
                                                 out_labels, out_scores));
  }
}
BENCHMARK(BM_CdStep);

}  // namespace

BENCHMARK_MAIN();
