// Ablation: checkpoint overhead vs recovery cost. Runs CONN fault-free to
// establish each platform's baseline, then injects one worker crash
// halfway through that baseline and compares what recovery costs:
// Hadoop re-executes the dead node's tasks, Giraph restores from its last
// checkpoint (paying a steady checkpoint-write overhead while nothing
// fails — or, without checkpoints, losing the job), GraphLab's MPI abort
// simply ends the run. The fault plan is keyed to simulated time, so the
// table is deterministic at any host parallelism.
#include "bench_common.h"

#include "sim/faults.h"

namespace {

using namespace gb;

harness::Measurement run_with(const platforms::Platform& platform,
                              const datasets::Dataset& ds,
                              std::uint32_t checkpoint_interval,
                              double crash_at) {
  sim::ClusterConfig cfg = bench::paper_cluster();
  if (crash_at > 0.0) {
    sim::FaultEvent event;
    event.kind = sim::FaultKind::kWorkerCrash;
    event.time = crash_at;
    event.worker = 7;
    cfg.faults.add(event);
  }
  auto params = harness::default_params(ds);
  params.checkpoint_interval = checkpoint_interval;
  return harness::run_cell(platform, ds, platforms::Algorithm::kConn, params,
                           cfg);
}

}  // namespace

int main() {
  using namespace gb;
  const auto ds = bench::load(datasets::DatasetId::kKGS);

  struct Config {
    std::string label;
    std::unique_ptr<platforms::Platform> platform;
    std::uint32_t checkpoint_interval;
  };
  std::vector<Config> configs;
  configs.push_back({"Hadoop", algorithms::make_hadoop(), 0});
  configs.push_back({"Giraph (no ckpt)", algorithms::make_giraph(), 0});
  configs.push_back({"Giraph (ckpt=2)", algorithms::make_giraph(), 2});
  configs.push_back({"GraphLab", algorithms::make_graphlab(false), 0});

  harness::Table table(
      "Ablation: checkpoint overhead vs recovery cost (CONN on KGS, one "
      "worker crash at 50% of the fault-free time)");
  table.set_header({"Platform", "Fault-free", "Ckpt overhead", "With crash",
                    "Recovery cost"});

  for (const auto& config : configs) {
    const auto baseline =
        run_with(*config.platform, ds, config.checkpoint_interval, 0.0);
    std::string crashed = "n/a";
    std::string recovery = "-";
    if (baseline.ok()) {
      const auto with_crash = run_with(*config.platform, ds,
                                       config.checkpoint_interval,
                                       baseline.time() * 0.5);
      crashed = harness::format_measurement(with_crash);
      if (with_crash.ok()) {
        recovery =
            harness::format_seconds(with_crash.time() - baseline.time());
      }
    }
    table.add_row({config.label, harness::format_measurement(baseline),
                   harness::format_seconds(
                       baseline.faults.checkpoint_overhead_sec),
                   crashed, recovery});
  }
  bench::write_table(table, "ablation_faults.csv");
  return 0;
}
