// Figure 1: execution time of BFS, all datasets x all platforms, on the
// fixed 20-node / 1-core infrastructure. Crashed or over-budget cells are
// reported the way the paper narrates them.
#include "bench_common.h"

int main() {
  using namespace gb;
  const auto platforms = algorithms::make_all_platforms();

  harness::Table table("Figure 1: BFS execution time, 20 nodes x 1 core");
  std::vector<std::string> header{"Dataset"};
  for (const auto& p : platforms) header.push_back(p->name());
  table.set_header(header);

  for (const auto id : datasets::all_datasets()) {
    const auto ds = bench::load(id);
    std::vector<std::string> row{ds.name};
    for (const auto& p : platforms) {
      // The paper has no Neo4j result for Friendster: its import never
      // finished (Table 6 "N/A"), so there is nothing to run against.
      if (!p->distributed() && id == datasets::DatasetId::kFriendster) {
        row.push_back("n/a");
        continue;
      }
      const auto m = bench::run(*p, ds, platforms::Algorithm::kBfs);
      row.push_back(harness::format_measurement(m));
    }
    table.add_row(row);
  }
  bench::write_table(table, "fig1_bfs_time.csv");
  return 0;
}
