// Ablation: why Stratosphere beats Hadoop — the same iterative BFS job
// costed (a) with the stock PACT compilation (network channels, no spill),
// (b) with key-preserving annotations (in-memory channels), and compared
// against Hadoop's per-iteration HDFS materialization.
#include "bench_common.h"

#include "algorithms/mr_jobs.h"
#include "platforms/dataflow/engine.h"
#include "platforms/mapreduce/engine.h"

namespace {

using namespace gb;

double dataflow_time(const datasets::Dataset& ds, bool annotated) {
  using namespace platforms::dataflow;
  Plan plan;
  const auto src = plan.add_source("vertices");
  const auto map =
      plan.add(OperatorKind::kMap, "expand", {src},
               annotated ? Annotations{.same_key = true} : Annotations{});
  const auto red = plan.add(OperatorKind::kReduce, "update", {map});
  plan.add_sink("out", red);

  sim::ClusterConfig cfg = bench::paper_cluster();
  cfg.work_scale = ds.extrapolation();
  sim::Cluster cluster(cfg);
  platforms::PhaseRecorder rec(cluster);
  algorithms::mr::BfsJob job{harness::default_params(ds).bfs_source};
  std::vector<std::uint64_t> state(ds.graph.num_vertices(),
                                   algorithms::kUnreached);
  run_iterative(ds.graph, job, state, plan, cluster, rec, {}, 10'000, 1e12);
  return rec.result().total_time;
}

double hadoop_time(const datasets::Dataset& ds) {
  sim::ClusterConfig cfg = bench::paper_cluster();
  cfg.work_scale = ds.extrapolation();
  sim::Cluster cluster(cfg);
  platforms::PhaseRecorder rec(cluster);
  algorithms::mr::BfsJob job{harness::default_params(ds).bfs_source};
  std::vector<std::uint64_t> state(ds.graph.num_vertices(),
                                   algorithms::kUnreached);
  platforms::mapreduce::run_iterative(ds.graph, job, state, cluster, rec, {},
                                      10'000, 1e12);
  return rec.result().total_time;
}

}  // namespace

int main() {
  const auto ds = bench::load(datasets::DatasetId::kDotaLeague);

  harness::Table table(
      "Ablation: channel types and materialization, BFS on DotaLeague");
  table.set_header({"Configuration", "Time"});
  table.add_row({"Hadoop (HDFS materialization per iteration)",
                 harness::format_seconds(hadoop_time(ds))});
  table.add_row({"Stratosphere (network channels)",
                 harness::format_seconds(dataflow_time(ds, false))});
  table.add_row({"Stratosphere (annotated: in-memory channels)",
                 harness::format_seconds(dataflow_time(ds, true))});
  gb::bench::write_table(table, "ablation_channels.csv");
  return 0;
}
