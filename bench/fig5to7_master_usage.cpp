// Figures 5-7: CPU utilization, memory usage and network traffic of the
// master node while the distributed platforms run BFS on DotaLeague.
// 100 normalized samples per platform, like the paper's Ganglia plots.
#include "bench_common.h"

int main() {
  using namespace gb;
  const auto ds = bench::load(datasets::DatasetId::kDotaLeague);
  const auto platform_list = algorithms::make_all_platforms();

  harness::Table table(
      "Figures 5-7: master-node resource usage, BFS on DotaLeague "
      "(normalized time, 100 points; 10-point summary below)");
  table.set_header({"Platform", "t[%]", "CPU [%]", "Memory [GB]",
                    "Net in [Kbit/s]", "Net out [Kbit/s]"});

  for (const auto& p : platform_list) {
    if (!p->distributed()) continue;
    sim::ClusterConfig cfg = bench::paper_cluster();
    cfg.work_scale = ds.extrapolation();
    sim::Cluster cluster(cfg);
    const auto m = harness::run_cell(*p, ds, platforms::Algorithm::kBfs,
                                     harness::default_params(ds), cluster);
    if (!m.ok()) continue;
    const auto points =
        cluster.master_trace().normalized(m.result.total_time, 100);
    harness::Table csv("fig5to7_" + p->name());
    csv.set_header({"t_percent", "cpu_percent", "mem_gb", "net_in_kbps",
                    "net_out_kbps"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& s = points[i];
      char t[16], cpu[16], mem[16], in[16], outr[16];
      std::snprintf(t, sizeof(t), "%.1f", s.time);
      std::snprintf(cpu, sizeof(cpu), "%.3f", 100.0 * s.cpu_cores / 8.0);
      std::snprintf(mem, sizeof(mem), "%.2f", s.mem_bytes / (1 << 30));
      std::snprintf(in, sizeof(in), "%.0f", s.net_in_bps * 8.0 / 1000.0);
      std::snprintf(outr, sizeof(outr), "%.0f", s.net_out_bps * 8.0 / 1000.0);
      csv.add_row({t, cpu, mem, in, outr});
      if (i % 10 == 4) {
        table.add_row({p->name(), t, cpu, mem, in, outr});
      }
    }
    bench::write_csv_only(csv, "fig5to7_master_" + p->name() + ".csv");
  }
  table.print(std::cout);
  return 0;
}
