// Figure 4: execution time for all platforms running BFS/CONN/CD/EVO on
// DotaLeague, plus CONN on Citation (the paper's right-most bars). A
// companion table reports the STATS outcomes the paper narrates (crashes,
// the 4-hour Stratosphere termination, Neo4j's >20 h).
#include "bench_common.h"

int main() {
  using namespace gb;
  const auto platforms_list = algorithms::make_all_platforms();
  const auto dota = bench::load(datasets::DatasetId::kDotaLeague);
  const auto citation = bench::load(datasets::DatasetId::kCitation);

  const struct {
    platforms::Algorithm algo;
    const char* label;
  } columns[] = {
      {platforms::Algorithm::kBfs, "BFS"},
      {platforms::Algorithm::kConn, "CONN"},
      {platforms::Algorithm::kCd, "CD"},
      {platforms::Algorithm::kEvo, "EVO"},
  };

  harness::Table table(
      "Figure 4: DotaLeague, all algorithms x platforms (+ CONN on Citation)");
  table.set_header({"Platform", "BFS", "CONN", "CD", "EVO", "CONN(Citation)"});
  harness::Table stats_table(
      "Figure 4 companion: STATS outcomes on DotaLeague (paper narration)");
  stats_table.set_header({"Platform", "STATS outcome"});

  for (const auto& p : platforms_list) {
    std::vector<std::string> row{p->name()};
    for (const auto& col : columns) {
      const auto m = bench::run(*p, dota, col.algo);
      row.push_back(harness::format_measurement(m));
    }
    const auto conn_citation =
        bench::run(*p, citation, platforms::Algorithm::kConn);
    row.push_back(harness::format_measurement(conn_citation));
    table.add_row(row);

    // The paper narrates STATS outcomes for Giraph/Hadoop/YARN (crash),
    // Stratosphere (terminated ~4 h) and Neo4j (>20 h); it reports no
    // GraphLab STATS cell, and simulating one would require executing the
    // full sum(deg^2) kernel on the host.
    if (p->name().rfind("GraphLab", 0) == 0) {
      stats_table.add_row({p->name(), "not reported in the paper"});
    } else {
      const auto stats = bench::run(*p, dota, platforms::Algorithm::kStats);
      stats_table.add_row({p->name(), harness::format_measurement(stats)});
    }
  }

  bench::write_table(table, "fig4_dotaleague.csv");
  bench::write_table(stats_table, "fig4_stats_outcomes.csv");
  return 0;
}
