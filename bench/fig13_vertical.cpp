// Figure 13: vertical scalability — BFS execution time on Friendster and
// DotaLeague on 20 machines with 1 to 7 computing cores per machine.
#include "bench_common.h"

namespace {

void run_dataset(const gb::datasets::Dataset& ds, const std::string& csv) {
  using namespace gb;
  std::vector<std::unique_ptr<platforms::Platform>> list;
  list.push_back(algorithms::make_hadoop());
  list.push_back(algorithms::make_yarn());
  list.push_back(algorithms::make_stratosphere());
  list.push_back(algorithms::make_giraph());
  list.push_back(algorithms::make_graphlab(false));
  list.push_back(algorithms::make_graphlab(true));

  harness::Table table("Figure 13: vertical scalability, BFS on " + ds.name);
  std::vector<std::string> header{"#cores"};
  for (const auto& p : list) header.push_back(p->name());
  table.set_header(header);

  for (std::uint32_t cores = 1; cores <= 7; ++cores) {
    std::vector<std::string> row{std::to_string(cores)};
    for (const auto& p : list) {
      const auto m =
          bench::run(*p, ds, platforms::Algorithm::kBfs, 20, cores);
      row.push_back(harness::format_measurement(m));
    }
    table.add_row(row);
  }
  bench::write_table(table, csv);
}

}  // namespace

int main() {
  using namespace gb;
  run_dataset(bench::load(datasets::DatasetId::kFriendster),
              "fig13_vertical_friendster.csv");
  run_dataset(bench::load(datasets::DatasetId::kDotaLeague),
              "fig13_vertical_dotaleague.csv");
  return 0;
}
