// Figure 13: vertical scalability — BFS execution time on Friendster and
// DotaLeague on 20 machines with 1 to 7 computing cores per machine.
// Declared as a campaign grid (7 core counts x 6 platforms per dataset),
// cells sharded over the host pool with a shared dataset cache.
#include "bench_common.h"

namespace {

void run_dataset(gb::datasets::DatasetId id, const std::string& csv,
                 gb::datasets::DatasetCache& cache) {
  using namespace gb;
  const double scale = bench::dataset_scale(id);
  const auto grid = campaign::vertical_scalability_grid(id, scale);
  const auto result = bench::run_grid(grid, cache);
  const auto ds = cache.get(id, scale);

  harness::Table table("Figure 13: vertical scalability, BFS on " + ds->name);
  std::vector<std::string> header{"#cores"};
  for (const auto& name : grid.platforms) header.push_back(name);
  table.set_header(header);

  // Grid order is cores-outer, platform-inner: row-major for this table.
  std::size_t cell = 0;
  for (const std::uint32_t cores : grid.cores) {
    std::vector<std::string> row{std::to_string(cores)};
    for (std::size_t p = 0; p < grid.platforms.size(); ++p) {
      row.push_back(bench::cell_text(result.cells[cell++]));
    }
    table.add_row(row);
  }
  bench::write_table(table, csv);
}

}  // namespace

int main() {
  using namespace gb;
  datasets::DatasetCache cache;
  run_dataset(datasets::DatasetId::kFriendster,
              "fig13_vertical_friendster.csv", cache);
  run_dataset(datasets::DatasetId::kDotaLeague,
              "fig13_vertical_dotaleague.csv", cache);
  return 0;
}
