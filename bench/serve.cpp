// Ablation: scheduler policy x arrival rate on the multi-tenant serving
// layer (DESIGN.md §14) — the skewed online/batch smoke trace replayed
// under FIFO, fair-share and capacity queues at rates from idle to
// saturated. Columns report the serving metrics the paper's shared-YARN
// story needs: queue-wait and latency percentiles, makespan, Jain
// fairness over per-job slowdowns, and slot utilization.
//
// With --check the binary exits non-zero unless:
//   1. every job of every run completes (no failures at smoke scale);
//   2. the serving report is byte-identical when the same configuration
//      runs twice (determinism gate);
//   3. at the smoke rate, fair-share beats FIFO on p99 queue wait — the
//      head-of-line story the schedulers exist for. (p99 *latency* is not
//      gated: over 24 jobs p99 is the max, and under fair-share the max
//      is the deliberately slot-shrunk heavy batch job itself, which can
//      tie FIFO's worst straggler; see EXPERIMENTS.md.)
//   4. the capacity batch queue never exceeds its configured hard share.
#include "bench_common.h"

#include <cstring>

#include "serve/serving.h"
#include "serve/trace.h"
#include "sim/scheduler.h"

namespace {

using namespace gb;

constexpr double kRates[] = {0.1, 0.25, 0.5, 1.0};  // arrivals per sim second
constexpr double kSmokeRate = 0.5;                  // the smoke_trace default

std::string fmt(double v, const char* spec = "%.1f") {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), spec, v);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gb;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  const double scale = bench::bench_scale();
  datasets::DatasetCache cache;

  struct Run {
    sim::SchedulerPolicy policy;
    double rate;
    serve::ServeReport report;
  };
  std::vector<Run> runs;

  const std::vector<sim::CapacityQueueSpec> queues = {{"online", 0.7},
                                                      {"batch", 0.3}};
  for (const auto policy :
       {sim::SchedulerPolicy::kFifo, sim::SchedulerPolicy::kFair,
        sim::SchedulerPolicy::kCapacity}) {
    for (const double rate : kRates) {
      serve::TraceSpec spec = serve::smoke_trace(scale);
      spec.rate = rate;
      serve::ServeOptions options;
      options.scheduler = policy;
      options.total_slots = 20;
      options.parallelism = 0;  // wall-clock only; reports are identical
      if (policy == sim::SchedulerPolicy::kCapacity) options.queues = queues;
      Run run;
      run.policy = policy;
      run.rate = rate;
      run.report = serve::run_serve(spec.expand(), options, cache);
      runs.push_back(std::move(run));
    }
  }

  harness::Table table(
      "Serving ablation: scheduler x arrival rate (smoke trace, 24 jobs, "
      "20 slots)");
  table.set_header({"Scheduler", "Rate/s", "Makespan", "Wait p50", "Wait p99",
                    "Lat p50", "Lat p99", "Jain", "Util"});
  for (const auto& run : runs) {
    table.add_row({sim::scheduler_policy_name(run.policy),
                   fmt(run.rate, "%.2f"),
                   harness::format_seconds(run.report.makespan),
                   fmt(run.report.queue_wait.p50),
                   fmt(run.report.queue_wait.p99),
                   fmt(run.report.latency.p50), fmt(run.report.latency.p99),
                   fmt(run.report.fairness_jain, "%.3f"),
                   fmt(run.report.utilization * 100.0, "%.1f%%")});
  }
  bench::write_table(table, "serve_ablation.csv");

  if (check) {
    bool failed = false;
    const auto find = [&](sim::SchedulerPolicy policy,
                          double rate) -> const serve::ServeReport* {
      for (const auto& run : runs) {
        if (run.policy == policy && run.rate == rate) return &run.report;
      }
      return nullptr;
    };

    // 1. Every job of every run completed.
    for (const auto& run : runs) {
      const auto failed_jobs =
          run.report.serve_metrics.counter("serve.jobs_failed");
      if (failed_jobs != 0 || run.report.jobs.size() != 24) {
        std::cerr << "[check] FAILED: " << sim::scheduler_policy_name(
                         run.policy)
                  << " @ rate " << run.rate << ": " << failed_jobs
                  << " failed of " << run.report.jobs.size() << " jobs\n";
        failed = true;
      }
    }

    // 2. Determinism: the same configuration serves byte-identical
    //    reports on a rerun (shared cache warm vs cold must not matter).
    {
      serve::TraceSpec spec = serve::smoke_trace(scale);
      spec.rate = kSmokeRate;
      serve::ServeOptions options;
      options.scheduler = sim::SchedulerPolicy::kFair;
      options.parallelism = 0;
      const auto rerun = serve::run_serve(spec.expand(), options, cache);
      const auto* first = find(sim::SchedulerPolicy::kFair, kSmokeRate);
      if (first == nullptr ||
          serve::serve_report_json(*first) != serve::serve_report_json(rerun)) {
        std::cerr << "[check] FAILED: fair @ smoke rate is not byte-identical "
                     "across reruns\n";
        failed = true;
      }
    }

    // 3. Fair-share beats FIFO where it should: the skewed smoke trace's
    //    heavy batch jobs park at the head of a FIFO line.
    const auto* fifo = find(sim::SchedulerPolicy::kFifo, kSmokeRate);
    const auto* fair = find(sim::SchedulerPolicy::kFair, kSmokeRate);
    if (fifo != nullptr && fair != nullptr) {
      if (!(fair->queue_wait.p99 < fifo->queue_wait.p99)) {
        std::cerr << "[check] FAILED: fair p99 queue wait "
                  << fair->queue_wait.p99 << "s is not below fifo's "
                  << fifo->queue_wait.p99 << "s\n";
        failed = true;
      }
      if (!(fair->queue_wait.p50 <= fifo->queue_wait.p50)) {
        std::cerr << "[check] FAILED: fair p50 queue wait "
                  << fair->queue_wait.p50 << "s is above fifo's "
                  << fifo->queue_wait.p50 << "s\n";
        failed = true;
      }
    }

    // 4. Capacity hard shares hold at every rate: batch owns 30% of 20
    //    slots = 6, and its in-use peak must never exceed that.
    for (const auto& run : runs) {
      if (run.policy != sim::SchedulerPolicy::kCapacity) continue;
      const double peak =
          run.report.serve_metrics.gauge("serve.queue.batch.slots_peak");
      if (peak > 6.0) {
        std::cerr << "[check] FAILED: capacity batch queue peaked at " << peak
                  << " slots (cap 6) @ rate " << run.rate << "\n";
        failed = true;
      }
    }

    if (failed) return 1;
    std::cerr << "[check] ok: all serve gates passed (fair p99 wait "
              << fair->queue_wait.p99 << "s vs fifo " << fifo->queue_wait.p99
              << "s)\n";
  }
  return 0;
}
