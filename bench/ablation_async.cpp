// Ablation: GraphLab synchronous vs asynchronous engine. The paper ran
// GraphLab in sync mode to match the other platforms; its native async
// engine converges label propagation with far fewer vertex updates and no
// barriers, at the price of fine-grained communication.
#include "bench_common.h"

#include "algorithms/gas_programs.h"
#include "platforms/gas/engine.h"

namespace {

using namespace gb;

template <bool kAsync>
double run_conn(const datasets::Dataset& ds) {
  sim::ClusterConfig cfg = bench::paper_cluster();
  cfg.work_scale = ds.extrapolation();
  sim::Cluster cluster(cfg);
  platforms::PhaseRecorder rec(cluster);
  algorithms::gas::ConnProgram prog;
  std::vector<std::uint64_t> data(ds.graph.num_vertices());
  for (VertexId v = 0; v < ds.graph.num_vertices(); ++v) data[v] = v;
  std::vector<std::uint8_t> active(ds.graph.num_vertices(), 1);
  if constexpr (kAsync) {
    platforms::gas::run_async(ds.graph, prog, data, active, cluster, rec, {},
                              1e15);
  } else {
    platforms::gas::run_sync(ds.graph, prog, data, active, cluster, rec, {},
                             1e15);
  }
  return rec.result().total_time;
}

}  // namespace

int main() {
  using namespace gb;
  harness::Table table("Ablation: GraphLab sync vs async engine, CONN");
  table.set_header({"Dataset", "Sync", "Async", "Async speedup"});

  const datasets::DatasetId ids[] = {
      datasets::DatasetId::kAmazon,
      datasets::DatasetId::kKGS,
      datasets::DatasetId::kCitation,
      datasets::DatasetId::kDotaLeague,
  };
  for (const auto id : ids) {
    const auto ds = bench::load(id);
    const double sync_t = run_conn<false>(ds);
    const double async_t = run_conn<true>(ds);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", sync_t / async_t);
    table.add_row({ds.name, harness::format_seconds(sync_t),
                   harness::format_seconds(async_t), speedup});
  }
  bench::write_table(table, "ablation_async.csv");
  return 0;
}
