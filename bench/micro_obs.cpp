// google-benchmark microbenchmarks of the observability layer: span and
// metric recording sit on every engine phase boundary, and trace export
// runs once per traced cell, so their host-side cost must stay noise.
#include <benchmark/benchmark.h>

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_json.h"
#include "sim/cluster.h"

namespace {

using namespace gb;

void BM_MetricsIncr(benchmark::State& state) {
  obs::MetricsRegistry reg;
  for (auto _ : state) {
    reg.incr("tasks.scheduled");
    reg.add("shuffle.bytes", 4096.0);
  }
  benchmark::DoNotOptimize(reg.counter("tasks.scheduled"));
}
BENCHMARK(BM_MetricsIncr);

void BM_MetricsSnapshot(benchmark::State& state) {
  obs::MetricsRegistry reg;
  const auto metrics = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < metrics; ++i) {
    reg.incr("counter." + std::to_string(i), i);
    reg.add("gauge." + std::to_string(i), static_cast<double>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.snapshot());
  }
}
BENCHMARK(BM_MetricsSnapshot)->Arg(16)->Arg(64);

void BM_TraceSpanRecord(benchmark::State& state) {
  obs::TraceRecorder rec;
  double t = 0.0;
  for (auto _ : state) {
    rec.add_span("superstep", "computation", t, t + 1.0, true, 20);
    t += 1.0;
    if (rec.spans().size() >= 1u << 20) rec.clear();
  }
  benchmark::DoNotOptimize(rec.spans().size());
}
BENCHMARK(BM_TraceSpanRecord);

void BM_TraceExport(benchmark::State& state) {
  const auto spans = static_cast<std::size_t>(state.range(0));
  sim::ClusterConfig cfg;
  cfg.num_workers = 8;
  sim::Cluster cluster(cfg);
  for (std::size_t i = 0; i < spans; ++i) {
    const double t = static_cast<double>(i);
    cluster.trace().add_span("phase " + std::to_string(i % 16), "computation",
                             t, t + 1.0, i % 2 == 0, 8);
  }
  cluster.metrics().incr("tasks.scheduled", spans);
  cluster.add_baselines(static_cast<double>(spans), Bytes{1} << 30,
                        Bytes{1} << 30);
  obs::TraceMeta meta;
  meta.platform = "Giraph";
  meta.dataset = "bench";
  meta.algorithm = "BFS";
  meta.outcome = "ok";
  meta.total_time = static_cast<double>(spans);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::trace_to_json(cluster, meta));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(spans));
}
BENCHMARK(BM_TraceExport)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
