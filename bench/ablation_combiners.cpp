// Ablation: Pregel message combiners. BFS and CONN only need the minimum
// message per destination, so a sender-side combiner collapses the
// superstep-one message flood. Measures time and whether combining moves
// the platform out of its crash regime on the largest graph.
#include "bench_common.h"

#include "algorithms/pregel_programs.h"
#include "platforms/pregel/engine.h"

namespace {

using namespace gb;

harness::Measurement run_conn(const datasets::Dataset& ds, bool combiner) {
  sim::ClusterConfig cfg = bench::paper_cluster();
  cfg.work_scale = ds.extrapolation();
  sim::Cluster cluster(cfg);
  platforms::PhaseRecorder rec(cluster);
  platforms::pregel::EngineConfig config;
  config.use_combiner = combiner;
  algorithms::pregel::ConnProgram prog;
  harness::Measurement m;
  try {
    const auto out =
        platforms::pregel::run_bsp<std::uint64_t, std::uint64_t>(
            ds.graph, prog, cluster, rec, 20.0 * 3600.0, 0, config);
    (void)out;
    m.outcome = harness::Outcome::kOk;
    m.result = rec.finish({});
  } catch (const PlatformError& e) {
    m.outcome = e.kind() == PlatformError::Kind::kOutOfMemory
                    ? harness::Outcome::kOutOfMemory
                    : harness::Outcome::kError;
    m.message = e.what();
  }
  return m;
}

}  // namespace

int main() {
  using namespace gb;
  harness::Table table("Ablation: Pregel combiners, CONN");
  table.set_header({"Dataset", "No combiner", "Min-combiner"});

  const datasets::DatasetId ids[] = {
      datasets::DatasetId::kKGS,
      datasets::DatasetId::kDotaLeague,
      datasets::DatasetId::kSynth,
      datasets::DatasetId::kFriendster,
  };
  for (const auto id : ids) {
    const auto ds = bench::load(id);
    const auto off = run_conn(ds, false);
    const auto on = run_conn(ds, true);
    table.add_row({ds.name, harness::format_measurement(off),
                   harness::format_measurement(on)});
  }
  bench::write_table(table, "ablation_combiners.csv");
  return 0;
}
