// Figure 3: execution time of all five algorithms for all datasets on
// Giraph, plus CONN on GraphLab (the paper's right-most bars). Includes
// the narrated crashes: STATS on WikiTalk, everything but EVO on
// Friendster.
#include "bench_common.h"

int main() {
  using namespace gb;
  const auto giraph = algorithms::make_giraph();
  const auto graphlab = algorithms::make_graphlab();

  const datasets::DatasetId ids[] = {
      datasets::DatasetId::kAmazon,     datasets::DatasetId::kWikiTalk,
      datasets::DatasetId::kKGS,        datasets::DatasetId::kCitation,
      datasets::DatasetId::kDotaLeague, datasets::DatasetId::kFriendster,
  };
  const platforms::Algorithm algos[] = {
      platforms::Algorithm::kStats, platforms::Algorithm::kBfs,
      platforms::Algorithm::kConn, platforms::Algorithm::kCd,
      platforms::Algorithm::kEvo,
  };

  harness::Table table(
      "Figure 3: Giraph, all algorithms x datasets (+ GraphLab CONN)");
  table.set_header({"Dataset", "STATS", "BFS", "CONN", "CD", "EVO",
                    "CONN(GraphLab)"});

  for (const auto id : ids) {
    const auto ds = bench::load(id);
    std::vector<std::string> row{ds.name};
    for (const auto algo : algos) {
      const auto m = bench::run(*giraph, ds, algo);
      row.push_back(harness::format_measurement(m));
    }
    const auto gl = bench::run(*graphlab, ds, platforms::Algorithm::kConn);
    row.push_back(harness::format_measurement(gl));
    table.add_row(row);
  }
  bench::write_table(table, "fig3_giraph_all.csv");
  return 0;
}
