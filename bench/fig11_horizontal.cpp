// Figure 11: horizontal scalability — BFS execution time on Friendster
// (left) and DotaLeague (right) while growing the cluster from 20 to 50
// machines in steps of 5, one core each. Includes GraphLab(mp).
//
// Declared as a campaign grid: the 7 cluster sizes x 6 platforms run as
// independent cells sharded over the host pool, and both datasets load
// exactly once through the shared cache.
#include "bench_common.h"

namespace {

void run_dataset(gb::datasets::DatasetId id, const std::string& csv,
                 gb::datasets::DatasetCache& cache) {
  using namespace gb;
  const double scale = bench::dataset_scale(id);
  const auto grid = campaign::horizontal_scalability_grid(id, scale);
  const auto result = bench::run_grid(grid, cache);
  const auto ds = cache.get(id, scale);

  harness::Table table("Figure 11: horizontal scalability, BFS on " +
                       ds->name);
  std::vector<std::string> header{"#machines"};
  for (const auto& name : grid.platforms) header.push_back(name);
  table.set_header(header);

  // Grid order is workers-outer, platform-inner: exactly row-major here.
  std::size_t cell = 0;
  for (const std::uint32_t machines : grid.workers) {
    std::vector<std::string> row{std::to_string(machines)};
    for (std::size_t p = 0; p < grid.platforms.size(); ++p) {
      row.push_back(bench::cell_text(result.cells[cell++]));
    }
    table.add_row(row);
  }
  bench::write_table(table, csv);
}

}  // namespace

int main() {
  using namespace gb;
  datasets::DatasetCache cache;
  run_dataset(datasets::DatasetId::kFriendster,
              "fig11_horizontal_friendster.csv", cache);
  run_dataset(datasets::DatasetId::kDotaLeague,
              "fig11_horizontal_dotaleague.csv", cache);
  return 0;
}
