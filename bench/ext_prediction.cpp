// Extension experiment: the performance-boundary model (the paper's
// Section 7 future work). For BFS and CONN on every dataset x platform
// cell, compare the closed-form worst-case prediction with the simulated
// execution: the bound must hold, and its tightness tells the analyst how
// conservative a capacity plan based on it would be.
#include "bench_common.h"

#include "algorithms/reference.h"
#include "harness/prediction.h"

namespace {

using namespace gb;

struct Cell {
  harness::PlatformClass cls;
  std::unique_ptr<platforms::Platform> platform;
};

}  // namespace

int main() {
  using namespace gb;
  std::vector<Cell> cells;
  cells.push_back({harness::PlatformClass::kHadoop, algorithms::make_hadoop()});
  cells.push_back({harness::PlatformClass::kYarn, algorithms::make_yarn()});
  cells.push_back(
      {harness::PlatformClass::kStratosphere, algorithms::make_stratosphere()});
  cells.push_back({harness::PlatformClass::kGiraph, algorithms::make_giraph()});
  cells.push_back(
      {harness::PlatformClass::kGraphLab, algorithms::make_graphlab(false)});

  harness::Table table(
      "Extension: worst-case prediction vs simulation, BFS, 20 nodes");
  table.set_header({"Dataset", "Platform", "Predicted bound", "Simulated",
                    "Bound holds", "Slack factor"});

  const datasets::DatasetId ids[] = {
      datasets::DatasetId::kAmazon,
      datasets::DatasetId::kKGS,
      datasets::DatasetId::kDotaLeague,
  };

  int violations = 0;
  for (const auto id : ids) {
    const auto ds = bench::load(id);
    const auto params = harness::default_params(ds);
    const auto bfs = algorithms::reference_bfs(ds.graph, params.bfs_source);
    for (const auto& cell : cells) {
      sim::ClusterConfig cfg = bench::paper_cluster();
      const auto prediction = harness::predict_worst_case(
          cell.cls,
          harness::workload_stats(ds, static_cast<double>(bfs.iterations) + 1),
          cfg);
      const auto m =
          bench::run(*cell.platform, ds, platforms::Algorithm::kBfs);
      if (!m.ok()) {
        table.add_row({ds.name, cell.platform->name(),
                       harness::format_seconds(prediction.upper_bound),
                       harness::outcome_label(m.outcome), "-", "-"});
        continue;
      }
      const bool holds = prediction.upper_bound >= m.time();
      if (!holds) ++violations;
      char slack[32];
      std::snprintf(slack, sizeof(slack), "%.1fx",
                    prediction.upper_bound / m.time());
      table.add_row({ds.name, cell.platform->name(),
                     harness::format_seconds(prediction.upper_bound),
                     harness::format_seconds(m.time()),
                     holds ? "yes" : "NO", slack});
    }
  }
  bench::write_table(table, "ext_prediction.csv");
  std::cout << (violations == 0 ? "All bounds hold.\n"
                                : "BOUND VIOLATIONS: " +
                                      std::to_string(violations) + "\n");
  return violations == 0 ? 0 : 1;
}
