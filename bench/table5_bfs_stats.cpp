// Table 5: statistics of BFS — vertex coverage and iteration count per
// dataset with the paper's fixed per-graph source vertex.
#include "bench_common.h"

#include "algorithms/reference.h"

int main() {
  using namespace gb;
  harness::Table table("Table 5: Statistics of BFS");
  table.set_header({"Dataset", "Coverage [%]", "Iterations",
                    "paper coverage [%]", "paper iterations"});

  const struct {
    datasets::DatasetId id;
    const char* coverage;
    const char* iterations;
  } paper[] = {
      {datasets::DatasetId::kAmazon, "99.9", "68"},
      {datasets::DatasetId::kWikiTalk, "98.5", "8"},
      {datasets::DatasetId::kKGS, "100", "9"},
      {datasets::DatasetId::kCitation, "0.1", "11"},
      {datasets::DatasetId::kDotaLeague, "100", "6"},
      {datasets::DatasetId::kSynth, "100", "8"},
      {datasets::DatasetId::kFriendster, "100", "23"},
  };

  for (const auto& row : paper) {
    const auto ds = bench::load(row.id);
    const auto params = harness::default_params(ds);
    const auto bfs = algorithms::reference_bfs(ds.graph, params.bfs_source);
    char coverage[32];
    std::snprintf(coverage, sizeof(coverage), "%.1f", 100.0 * bfs.coverage());
    table.add_row({ds.name, coverage, std::to_string(bfs.iterations),
                   row.coverage, row.iterations});
  }
  bench::write_table(table, "table5_bfs_stats.csv");
  return 0;
}
