// Tables 3 and 7 are static data in the paper (the authors' literature
// survey of 124 articles, and their development-effort diary). They are
// reprinted here so the bench suite covers every numbered table.
#include "bench_common.h"

int main() {
  using namespace gb;

  harness::Table survey("Table 3: Survey of graph algorithms (paper data)");
  survey.set_header({"Class", "Typical algorithms", "Number", "Percent"});
  survey.add_row({"General Statistics", "Triangulation, Diameter, BC", "24", "16.1"});
  survey.add_row({"Graph Traversal", "BFS, DFS, Shortest Path Search", "69", "46.3"});
  survey.add_row({"Connected Components", "MIS, BiCC, Reachability", "20", "13.4"});
  survey.add_row({"Community Detection", "Clustering, Nearest Neighbor", "8", "5.4"});
  survey.add_row({"Graph Evolution", "Forest Fire, Pref. Attachment", "6", "4.0"});
  survey.add_row({"Other", "Sampling, Partitioning", "22", "14.8"});
  survey.add_row({"Total", "", "149", "100"});
  bench::write_table(survey, "table3_survey.csv");

  harness::Table effort(
      "Table 7: Development time and lines of core code (paper data)");
  effort.set_header({"Algorithm", "Hadoop(Java)", "Stratosphere(Java)",
                     "Giraph(Java)", "GraphLab(C++)", "Neo4j(Java)"});
  effort.add_row({"BFS", "1 d, 110 loc", "1 d, 150 loc", "1 d, 45 loc",
                  "1 d, 120 loc", "1 h, 38 loc"});
  effort.add_row({"CONN", "1.5 d, 110 loc", "1 d, 160 loc", "1 d, 80 loc",
                  "0.5 d, 130 loc", "1 d, 100 loc"});
  bench::write_table(effort, "table7_effort.csv");
  return 0;
}
