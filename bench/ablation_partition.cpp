// Ablation: the shared partitioning subsystem across strategies and
// datasets — Giraph BFS under hash, range, degree-balanced and greedy
// vertex-cut placement, on the hub-skewed WikiTalk graph and the denser,
// flatter KGS graph. Surfaces the partition-quality gauges next to the
// makespan so the skew story is visible: degree-balanced trades nothing
// for a lower imbalance factor, and the barrier waits for the most loaded
// worker (DESIGN.md §11).
//
// With --check the binary exits non-zero unless degree-balanced placement
// is at least as fast as hash on WikiTalk — the regression guard CI runs.
#include "bench_common.h"

#include <cstring>

#include "partition/strategy.h"

namespace {

using namespace gb;

double find_gauge(const obs::MetricsSnapshot& metrics, const char* name) {
  for (const auto& [key, value] : metrics.gauges) {
    if (key == name) return value;
  }
  return 0.0;
}

std::string format3(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

struct Cell {
  std::string dataset;
  partition::Strategy strategy = partition::Strategy::kHash;
  harness::CellResult result;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gb;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  datasets::DatasetCache cache;
  std::vector<Cell> cells;
  for (const auto id :
       {datasets::DatasetId::kWikiTalk, datasets::DatasetId::kKGS}) {
    campaign::GridSpec grid;
    grid.platforms = {"Giraph"};
    grid.datasets = {id};
    grid.algorithms = {platforms::Algorithm::kBfs};
    grid.scale = bench::dataset_scale(id);
    grid.partitioners.assign(std::begin(partition::kAllStrategies),
                             std::end(partition::kAllStrategies));
    const auto result = bench::run_grid(grid, cache);
    // Grid order: one dataset, one platform — cells land in partitioner
    // declaration order.
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
      cells.push_back({datasets::info(id).name, partition::kAllStrategies[i],
                       result.cells[i]});
    }
  }

  harness::Table table(
      "Ablation: partitioning strategy x dataset (Giraph BFS, 20 workers; "
      "barrier waits for the most loaded worker)");
  table.set_header({"Dataset", "Partitioner", "Makespan", "Edge-cut",
                    "Replication", "Imbalance"});
  for (const auto& cell : cells) {
    table.add_row(
        {cell.dataset, partition::strategy_name(cell.strategy),
         bench::cell_text(cell.result),
         format3(find_gauge(cell.result.metrics, "partition.edge_cut_fraction")),
         format3(
             find_gauge(cell.result.metrics, "partition.replication_factor")),
         format3(find_gauge(cell.result.metrics, "partition.imbalance"))});
  }
  bench::write_table(table, "ablation_partition.csv");

  if (check) {
    const Cell* hash = nullptr;
    const Cell* degree = nullptr;
    for (const auto& cell : cells) {
      if (cell.dataset != "WikiTalk") continue;
      if (cell.strategy == partition::Strategy::kHash) hash = &cell;
      if (cell.strategy == partition::Strategy::kDegreeBalanced) {
        degree = &cell;
      }
    }
    if (hash == nullptr || degree == nullptr || !hash->result.ok() ||
        !degree->result.ok()) {
      std::cerr << "[check] FAILED: WikiTalk hash/degree cells missing or "
                   "not ok\n";
      return 1;
    }
    if (degree->result.makespan_sec > hash->result.makespan_sec) {
      std::cerr << "[check] FAILED: degree-balanced ("
                << degree->result.makespan_sec << "s) slower than hash ("
                << hash->result.makespan_sec << "s) on WikiTalk\n";
      return 1;
    }
    std::cerr << "[check] ok: degree-balanced "
              << degree->result.makespan_sec << "s <= hash "
              << hash->result.makespan_sec << "s on WikiTalk\n";
  }
  return 0;
}
