// Ablation: GraphLab's vertex-cut partitioning versus a classic hashed
// edge-cut — replication factor, per-iteration traffic and CONN time as
// the cluster grows. On skewed graphs the vertex-cut caps the traffic at
// (mirrors-1) per vertex while the edge-cut pays for every cut edge of
// every hub.
#include "bench_common.h"

#include "algorithms/gas_programs.h"
#include "platforms/gas/engine.h"

namespace {

using namespace gb;

struct Outcome {
  double time = 0;
  double replication = 1;
};

Outcome run_conn(const datasets::Dataset& ds, std::uint32_t machines,
                 platforms::gas::Partitioning partitioning) {
  sim::ClusterConfig cfg = bench::paper_cluster(machines);
  cfg.work_scale = ds.extrapolation();
  sim::Cluster cluster(cfg);
  platforms::PhaseRecorder rec(cluster);
  platforms::gas::GasConfig config;
  config.partitioning = partitioning;
  algorithms::gas::ConnProgram prog;
  std::vector<std::uint64_t> data(ds.graph.num_vertices());
  for (VertexId v = 0; v < ds.graph.num_vertices(); ++v) data[v] = v;
  std::vector<std::uint8_t> active(ds.graph.num_vertices(), 1);
  const auto stats = platforms::gas::run_sync(ds.graph, prog, data, active,
                                              cluster, rec, config, 1e12);
  return {rec.result().total_time, stats.replication_factor};
}

}  // namespace

int main() {
  using namespace gb;
  const auto ds = bench::load(datasets::DatasetId::kKGS);

  harness::Table table(
      "Ablation: vertex-cut vs edge-cut on KGS (CONN)");
  table.set_header({"#machines", "Replication factor", "Vertex-cut time",
                    "Edge-cut time"});

  for (std::uint32_t machines = 4; machines <= 64; machines *= 2) {
    const auto vc =
        run_conn(ds, machines, platforms::gas::Partitioning::kVertexCut);
    const auto ec =
        run_conn(ds, machines, platforms::gas::Partitioning::kEdgeCut);
    char rep[32];
    std::snprintf(rep, sizeof(rep), "%.2f", vc.replication);
    table.add_row({std::to_string(machines), rep,
                   harness::format_seconds(vc.time),
                   harness::format_seconds(ec.time)});
  }
  bench::write_table(table, "ablation_partitioning.csv");
  return 0;
}
