// Figure 12: NEPS (edges per second per computing node) of BFS on
// Friendster and DotaLeague while growing the cluster 20 -> 50 machines.
// Same campaign grid as figure 11, rendered as throughput.
#include "bench_common.h"

namespace {

void run_dataset(gb::datasets::DatasetId id, const std::string& csv,
                 gb::datasets::DatasetCache& cache) {
  using namespace gb;
  const double scale = bench::dataset_scale(id);
  const auto grid = campaign::horizontal_scalability_grid(id, scale);
  const auto result = bench::run_grid(grid, cache);
  const auto ds = cache.get(id, scale);

  harness::Table table("Figure 12: NEPS, BFS on " + ds->name);
  std::vector<std::string> header{"#machines"};
  for (const auto& name : grid.platforms) header.push_back(name);
  table.set_header(header);

  std::size_t cell = 0;
  for (const std::uint32_t machines : grid.workers) {
    std::vector<std::string> row{std::to_string(machines)};
    for (std::size_t p = 0; p < grid.platforms.size(); ++p) {
      const auto& c = result.cells[cell++];
      row.push_back(c.ok() ? harness::format_si(harness::neps(
                                 *ds, c.makespan_sec, machines))
                           : c.outcome);
    }
    table.add_row(row);
  }
  bench::write_table(table, csv);
}

}  // namespace

int main() {
  using namespace gb;
  datasets::DatasetCache cache;
  run_dataset(datasets::DatasetId::kFriendster, "fig12_neps_friendster.csv",
              cache);
  run_dataset(datasets::DatasetId::kDotaLeague, "fig12_neps_dotaleague.csv",
              cache);
  return 0;
}
