// GridSpec expansion: cell keys, the documented grid order, validation.
#include "campaign/campaign.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/error.h"

namespace gb::campaign {
namespace {

using datasets::DatasetId;
using platforms::Algorithm;

TEST(CellSpec, KeyNamesEveryAxis) {
  CellSpec spec;
  spec.platform = "Giraph";
  spec.dataset = DatasetId::kKGS;
  spec.algorithm = Algorithm::kBfs;
  spec.workers = 20;
  spec.cores = 1;
  spec.scale = 0.01;
  spec.seed = 42;
  EXPECT_EQ(spec.key(), "Giraph/KGS/BFS/w20/c1/x0.01/r42");
}

TEST(CellSpec, KeyIncludesFaultsAndCheckpointing) {
  CellSpec spec;
  spec.platform = "Giraph";
  spec.dataset = DatasetId::kAmazon;
  spec.algorithm = Algorithm::kConn;
  spec.faults = {"worker:120", "straggler:60:3.0:200:2"};
  spec.checkpoint_interval = 4;
  const std::string key = spec.key();
  EXPECT_NE(key.find("/fworker:120"), std::string::npos) << key;
  EXPECT_NE(key.find("/fstraggler:60:3.0:200:2"), std::string::npos) << key;
  EXPECT_NE(key.find("/k4"), std::string::npos) << key;
}

TEST(GridSpec, ExpandsInDocumentedRowMajorOrder) {
  GridSpec grid;
  grid.platforms = {"Giraph", "Neo4j"};
  grid.datasets = {DatasetId::kAmazon, DatasetId::kKGS};
  grid.algorithms = {Algorithm::kBfs, Algorithm::kConn};
  grid.workers = {4, 8};
  grid.scale = 0.01;
  const auto cells = grid.expand();
  ASSERT_EQ(cells.size(), 16u);
  // dataset outermost, then algorithm, then workers, platform innermost.
  EXPECT_EQ(cells[0].key(), "Giraph/Amazon/BFS/w4/c1/x0.01/r42");
  EXPECT_EQ(cells[1].key(), "Neo4j/Amazon/BFS/w4/c1/x0.01/r42");
  EXPECT_EQ(cells[2].key(), "Giraph/Amazon/BFS/w8/c1/x0.01/r42");
  EXPECT_EQ(cells[4].key(), "Giraph/Amazon/CONN/w4/c1/x0.01/r42");
  EXPECT_EQ(cells[8].key(), "Giraph/KGS/BFS/w4/c1/x0.01/r42");
  EXPECT_EQ(cells[15].key(), "Neo4j/KGS/CONN/w8/c1/x0.01/r42");
}

TEST(GridSpec, AllKeysDistinct) {
  GridSpec grid;
  grid.platforms = {"Hadoop", "Giraph"};
  grid.datasets = {DatasetId::kAmazon};
  grid.algorithms = {Algorithm::kBfs};
  grid.workers = {4, 8};
  grid.cores = {1, 2};
  const auto cells = grid.expand();
  std::set<std::string> keys;
  for (const auto& cell : cells) keys.insert(cell.key());
  EXPECT_EQ(keys.size(), cells.size());
}

TEST(GridSpec, RejectsEmptyAxes) {
  GridSpec grid;
  grid.datasets = {DatasetId::kAmazon};
  grid.algorithms = {Algorithm::kBfs};
  EXPECT_THROW(grid.expand(), Error);  // no platforms
  grid.platforms = {"Giraph"};
  grid.workers.clear();
  EXPECT_THROW(grid.expand(), Error);
}

TEST(GridSpec, RejectsUnknownPlatform) {
  GridSpec grid;
  grid.platforms = {"Sparkle"};
  grid.datasets = {DatasetId::kAmazon};
  grid.algorithms = {Algorithm::kBfs};
  EXPECT_THROW(grid.expand(), Error);
}

TEST(GridSpec, RejectsDuplicateCells) {
  GridSpec grid;
  grid.platforms = {"Giraph"};
  grid.datasets = {DatasetId::kAmazon};
  grid.algorithms = {Algorithm::kBfs};
  grid.workers = {4, 4};  // same cell twice
  EXPECT_THROW(grid.expand(), Error);
}

TEST(GridSpec, RejectsZeroWorkers) {
  GridSpec grid;
  grid.platforms = {"Giraph"};
  grid.datasets = {DatasetId::kAmazon};
  grid.algorithms = {Algorithm::kBfs};
  grid.workers = {0};
  EXPECT_THROW(grid.expand(), Error);
}

TEST(PresetGrids, HorizontalScalabilityShape) {
  const auto grid = horizontal_scalability_grid(DatasetId::kDotaLeague, 0.05);
  const auto cells = grid.expand();
  // 7 cluster sizes (20..50 step 5) x 6 platforms.
  EXPECT_EQ(cells.size(), 42u);
  EXPECT_EQ(grid.workers.front(), 20u);
  EXPECT_EQ(grid.workers.back(), 50u);
  EXPECT_EQ(grid.platforms.size(), 6u);
}

TEST(PresetGrids, VerticalScalabilityShape) {
  const auto grid = vertical_scalability_grid(DatasetId::kDotaLeague, 0.05);
  const auto cells = grid.expand();
  // 7 core counts (1..7) x 6 platforms on 20 machines.
  EXPECT_EQ(cells.size(), 42u);
  EXPECT_EQ(grid.cores.front(), 1u);
  EXPECT_EQ(grid.cores.back(), 7u);
  for (const auto& cell : cells) EXPECT_EQ(cell.workers, 20u);
}

TEST(PresetGrids, GraphalyticsShape) {
  const auto grid = graphalytics_grid(DatasetId::kAmazon, 0.01);
  const auto cells = grid.expand();
  // 5 engines (PEGASUS sits out: LCC is not GIM-V) x 3 algorithms.
  EXPECT_EQ(cells.size(), 15u);
  bool saw_sssp = false;
  bool saw_lcc = false;
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.dataset, DatasetId::kAmazon);
    saw_sssp |= cell.key().find("/SSSP/") != std::string::npos;
    saw_lcc |= cell.key().find("/LCC/") != std::string::npos;
  }
  EXPECT_TRUE(saw_sssp);
  EXPECT_TRUE(saw_lcc);
}

}  // namespace
}  // namespace gb::campaign
