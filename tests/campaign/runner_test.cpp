// Campaign runner: grid execution with the shared dataset cache, report
// byte-identity at every parallelism, crash-resume from a truncated
// journal, bounded fault retry, and per-cell error containment.
#include "campaign/runner.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/journal.h"
#include "datasets/dataset_cache.h"

namespace gb::campaign {
namespace {

using datasets::DatasetId;
using platforms::Algorithm;

// One small grid reused across the tests: 2 platforms x 2 algorithms on
// a 1%-scale Amazon graph, 4 workers. Cheap enough to run many times.
GridSpec small_grid() {
  GridSpec grid;
  grid.platforms = {"Giraph", "Neo4j"};
  grid.datasets = {DatasetId::kAmazon};
  grid.algorithms = {Algorithm::kBfs, Algorithm::kConn};
  grid.workers = {4};
  grid.scale = 0.01;
  return grid;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

// All tests share one disk cache directory so the Amazon graph is
// generated once for the whole binary.
std::string disk_cache_dir() {
  static const std::string dir = temp_path("runner_test_dataset_cache");
  return dir;
}

RunnerOptions options_with(std::uint32_t parallelism,
                           const std::string& journal = "") {
  RunnerOptions options;
  options.parallelism = parallelism;
  options.journal_path = journal;
  options.cache_dir = disk_cache_dir();
  return options;
}

TEST(Runner, RunsGridInGridOrder) {
  const auto grid = small_grid();
  const auto specs = grid.expand();
  const auto result = run_campaign(grid, options_with(1));
  ASSERT_EQ(result.cells.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(result.cells[i].key, specs[i].key());
    EXPECT_TRUE(result.cells[i].ok()) << result.cells[i].key << ": "
                                      << result.cells[i].message;
    EXPECT_GT(result.cells[i].makespan_sec, 0.0);
    EXPECT_NE(result.cells[i].output_hash, 0u);
  }
  EXPECT_EQ(result.executed, specs.size());
  EXPECT_EQ(result.resumed, 0u);
  EXPECT_NE(result.find(specs[0].key()), nullptr);
  EXPECT_EQ(result.find("no/such/cell"), nullptr);
}

TEST(Runner, SharedCacheLoadsEachDatasetOnce) {
  datasets::DatasetCache cache(disk_cache_dir());
  const auto result = run_campaign(small_grid(), options_with(0), cache);
  EXPECT_EQ(result.dataset_loads, 1u);  // one dataset in the grid
  EXPECT_EQ(result.dataset_hits, result.cells.size() - 1);
}

TEST(Runner, ReportIsByteIdenticalAtEveryParallelism) {
  const auto grid = small_grid();
  const std::string serial =
      campaign_report_json(run_campaign(grid, options_with(1)));
  for (const std::uint32_t parallelism : {2u, 4u, 0u}) {
    const std::string parallel =
        campaign_report_json(run_campaign(grid, options_with(parallelism)));
    EXPECT_EQ(parallel, serial) << "parallelism " << parallelism;
  }
}

TEST(Runner, CellParallelismDoesNotChangeResults) {
  const auto grid = small_grid();
  auto serial_cells = options_with(2);
  serial_cells.cell_parallelism = 1;
  auto parallel_cells = options_with(2);
  parallel_cells.cell_parallelism = 0;  // hardware pool inside each cell
  EXPECT_EQ(campaign_report_json(run_campaign(grid, serial_cells)),
            campaign_report_json(run_campaign(grid, parallel_cells)));
}

TEST(Runner, SecondRunResumesEverythingFromJournal) {
  const auto grid = small_grid();
  const auto journal = temp_path("runner_resume_full.jsonl");
  std::filesystem::remove(journal);

  const auto first = run_campaign(grid, options_with(1, journal));
  EXPECT_EQ(first.executed, first.cells.size());

  const auto second = run_campaign(grid, options_with(1, journal));
  EXPECT_EQ(second.executed, 0u);
  EXPECT_EQ(second.resumed, second.cells.size());
  EXPECT_EQ(second.dataset_loads, 0u);  // nothing ran, nothing loaded
  EXPECT_EQ(campaign_report_json(second), campaign_report_json(first));
}

TEST(Runner, ResumesFromTruncatedJournalAtEveryParallelism) {
  // The crash-resume contract: kill a campaign mid-grid (here: keep only
  // the first k journal lines plus a torn partial line), restart, and
  // only the unfinished cells re-run — and the merged report is
  // byte-identical to the uninterrupted run's, at every parallelism.
  const auto grid = small_grid();
  const std::string reference =
      campaign_report_json(run_campaign(grid, options_with(1)));

  const auto full_journal = temp_path("runner_crash_full.jsonl");
  std::filesystem::remove(full_journal);
  run_campaign(grid, options_with(1, full_journal));
  std::vector<std::string> lines;
  {
    std::ifstream in(full_journal);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 4u);

  for (const std::uint32_t parallelism : {1u, 2u, 4u}) {
    const auto journal = temp_path(
        "runner_crash_p" + std::to_string(parallelism) + ".jsonl");
    std::filesystem::remove(journal);
    {
      // 2 complete cells + half of the third: the torn-append signature.
      std::ofstream out(journal);
      out << lines[0] << "\n" << lines[1] << "\n"
          << lines[2].substr(0, lines[2].size() / 2);
    }
    const auto resumed = run_campaign(grid, options_with(parallelism, journal));
    EXPECT_EQ(resumed.resumed, 2u) << "parallelism " << parallelism;
    EXPECT_EQ(resumed.executed, 2u) << "parallelism " << parallelism;
    EXPECT_EQ(campaign_report_json(resumed), reference)
        << "parallelism " << parallelism;
    // The journal now covers the whole grid: a further resume runs nothing.
    const auto again = run_campaign(grid, options_with(1, journal));
    EXPECT_EQ(again.executed, 0u);
    EXPECT_EQ(campaign_report_json(again), reference);
  }
}

TEST(Runner, FaultedCellRetriesUpToMaxAttempts) {
  // A mid-run worker crash kills Giraph without checkpoints — and the
  // simulation is deterministic, so every retry fails identically. The
  // runner must spend exactly max_attempts and record them.
  CellSpec spec;
  spec.platform = "Giraph";
  spec.dataset = DatasetId::kAmazon;
  spec.algorithm = Algorithm::kBfs;
  spec.workers = 4;
  spec.scale = 0.01;
  spec.faults = {"worker:5"};  // makespan is ~10 simulated seconds
  datasets::DatasetCache cache(disk_cache_dir());
  const auto result = run_cell_spec(spec, cache, 1, 3);
  EXPECT_EQ(result.outcome, "crash(node)");
  EXPECT_EQ(result.attempts, 3u);
}

TEST(Runner, FaultFreeFailureIsNotRetried) {
  // Without injected faults a failure is the paper's result; retrying
  // would be wasted work, so attempts stays 1 even with max_attempts 3.
  CellSpec spec;
  spec.platform = "Giraph";
  spec.dataset = DatasetId::kAmazon;
  spec.algorithm = Algorithm::kBfs;
  spec.workers = 4;
  spec.scale = 0.01;
  datasets::DatasetCache cache(disk_cache_dir());
  const auto result = run_cell_spec(spec, cache, 1, 3);
  EXPECT_EQ(result.attempts, 1u);
}

TEST(Runner, SuccessfulFaultedCellStopsRetrying) {
  // With checkpointing on, Giraph survives the same crash: one attempt.
  CellSpec spec;
  spec.platform = "Giraph";
  spec.dataset = DatasetId::kAmazon;
  spec.algorithm = Algorithm::kBfs;
  spec.workers = 4;
  spec.scale = 0.01;
  spec.faults = {"worker:5"};
  spec.checkpoint_interval = 4;
  datasets::DatasetCache cache(disk_cache_dir());
  const auto result = run_cell_spec(spec, cache, 1, 3);
  EXPECT_EQ(result.outcome, "ok") << result.message;
  EXPECT_EQ(result.attempts, 1u);
}

TEST(Runner, BadCellSpecBecomesErrorResultNotACrash) {
  CellSpec spec;
  spec.platform = "Giraph";
  spec.dataset = DatasetId::kAmazon;
  spec.algorithm = Algorithm::kBfs;
  spec.scale = 0.01;
  spec.faults = {"meteor:10"};  // unknown fault kind
  datasets::DatasetCache cache(disk_cache_dir());
  const auto result = run_cell_spec(spec, cache);
  EXPECT_EQ(result.outcome, "error");
  EXPECT_FALSE(result.message.empty());
}

TEST(Runner, RepsRecordHostTimeDistribution) {
  CellSpec spec;
  spec.platform = "Giraph";
  spec.dataset = DatasetId::kAmazon;
  spec.algorithm = Algorithm::kBfs;
  spec.workers = 4;
  spec.scale = 0.01;
  datasets::DatasetCache cache(disk_cache_dir());

  const auto single = run_cell_spec(spec, cache);
  EXPECT_TRUE(single.host_ms.empty());  // single-shot: historical bytes

  const auto repeated = run_cell_spec(spec, cache, 1, 1, /*reps=*/3,
                                      /*warmup=*/1);
  ASSERT_EQ(repeated.host_ms.size(), 3u);
  for (const double ms : repeated.host_ms) EXPECT_GE(ms, 0.0);
  // The simulated record is unchanged by repetition.
  EXPECT_EQ(repeated.outcome, single.outcome);
  EXPECT_EQ(repeated.makespan_sec, single.makespan_sec);
  EXPECT_EQ(repeated.output_hash, single.output_hash);
  EXPECT_EQ(repeated.iterations, single.iterations);
}

TEST(Runner, RepsJournalRoundTripAndResumeKeepsRepetitions) {
  const auto grid = small_grid();
  const auto journal = temp_path("runner_reps_journal.jsonl");
  std::filesystem::remove(journal);
  auto options = options_with(1, journal);
  options.reps = 3;

  const auto first = run_campaign(grid, options);
  for (const auto& cell : first.cells) {
    EXPECT_EQ(cell.host_ms.size(), 3u) << cell.key;
  }

  // The journaled distribution round-trips byte-exactly...
  const auto latest = Journal::read_latest(journal);
  for (const auto& cell : first.cells) {
    EXPECT_EQ(harness::cell_result_to_json(latest.at(cell.key)),
              harness::cell_result_to_json(cell));
  }

  // ...and a resumed campaign keeps the completed repetitions instead of
  // re-measuring them: the resumed report is byte-identical, host times
  // included.
  const auto resumed = run_campaign(grid, options);
  EXPECT_EQ(resumed.executed, 0u);
  EXPECT_EQ(campaign_report_json(resumed), campaign_report_json(first));
}

TEST(Runner, RepsCrashResumeKeepsCompletedRepetitions) {
  const auto grid = small_grid();
  const auto full_journal = temp_path("runner_reps_crash_full.jsonl");
  std::filesystem::remove(full_journal);
  auto options = options_with(1, full_journal);
  options.reps = 2;
  const auto first = run_campaign(grid, options);

  std::vector<std::string> lines;
  {
    std::ifstream in(full_journal);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 4u);

  const auto torn = temp_path("runner_reps_crash_torn.jsonl");
  std::filesystem::remove(torn);
  {
    std::ofstream out(torn);
    out << lines[0] << "\n" << lines[1] << "\n"
        << lines[2].substr(0, lines[2].size() / 2);
  }
  auto resume_options = options_with(2, torn);
  resume_options.reps = 2;
  const auto resumed = run_campaign(grid, resume_options);
  EXPECT_EQ(resumed.resumed, 2u);
  EXPECT_EQ(resumed.executed, 2u);
  // The two journaled cells keep their exact measured distribution; the
  // re-run cells carry fresh 2-rep distributions.
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(harness::cell_result_to_json(resumed.cells[i]), lines[i]);
  }
  for (const auto& cell : resumed.cells) {
    EXPECT_EQ(cell.host_ms.size(), 2u) << cell.key;
  }
}

TEST(Runner, RepsSimulatedReportIsParallelismIndependent) {
  // Host times differ run to run by nature; the acceptance bit-identity
  // claim is about the simulated outputs. Strip host_ms and the reports
  // must match across --parallelism even in methodology mode.
  const auto grid = small_grid();
  auto serial = options_with(1);
  serial.reps = 2;
  auto parallel = options_with(4);
  parallel.reps = 2;
  auto a = run_campaign(grid, serial);
  auto b = run_campaign(grid, parallel);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (auto* result : {&a, &b}) {
    for (auto& cell : result->cells) cell.host_ms.clear();
  }
  EXPECT_EQ(campaign_report_json(a), campaign_report_json(b));
}

TEST(Runner, JournalRecordsMatchReportCells) {
  const auto grid = small_grid();
  const auto journal = temp_path("runner_journal_schema.jsonl");
  std::filesystem::remove(journal);
  const auto result = run_campaign(grid, options_with(1, journal));
  const auto latest = Journal::read_latest(journal);
  ASSERT_EQ(latest.size(), result.cells.size());
  for (const auto& cell : result.cells) {
    // A journal line and the report entry share one serialization.
    EXPECT_EQ(harness::cell_result_to_json(latest.at(cell.key)),
              harness::cell_result_to_json(cell));
  }
}

}  // namespace
}  // namespace gb::campaign
