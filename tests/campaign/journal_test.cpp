// Journal durability: round-trip fidelity, last-record-wins, and the
// interrupted-append (torn final line) recovery path that resume relies
// on.
#include "campaign/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/error.h"

namespace gb::campaign {
namespace {

harness::CellResult sample(const std::string& key, double makespan = 12.5) {
  harness::CellResult r;
  r.key = key;
  r.platform = "Giraph";
  r.dataset = "Amazon";
  r.algorithm = "BFS";
  r.workers = 4;
  r.cores = 1;
  r.scale = 0.01;
  r.seed = 42;
  r.outcome = "ok";
  r.makespan_sec = makespan;
  r.computation_sec = makespan / 3.0;
  r.iterations = 17;
  r.output_hash = 0xdeadbeefcafef00dULL;
  r.metrics.counters.emplace_back("messages.sent", 123);
  r.metrics.gauges.emplace_back("shuffle.bytes", 4096.5);
  return r;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TEST(CellResultJson, RoundTripsByteIdentically) {
  const auto r = sample("Giraph/Amazon/BFS/w4/c1/x0.01/r42");
  const std::string text = harness::cell_result_to_json(r);
  const auto back = harness::cell_result_from_json(text);
  EXPECT_EQ(harness::cell_result_to_json(back), text);
  EXPECT_EQ(back.key, r.key);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.output_hash, r.output_hash);
  EXPECT_EQ(back.makespan_sec, r.makespan_sec);
  EXPECT_EQ(back.metrics.counters, r.metrics.counters);
  EXPECT_EQ(back.metrics.gauges, r.metrics.gauges);
}

TEST(CellResultJson, SixtyFourBitValuesSurvive) {
  // Values above 2^53 would be mangled by a JSON double; the hex-string
  // encoding must carry every bit.
  auto r = sample("k");
  r.seed = 0xffffffffffffffffULL;
  r.output_hash = 0x8000000000000001ULL;
  const auto back = harness::cell_result_from_json(
      harness::cell_result_to_json(r));
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.output_hash, r.output_hash);
}

TEST(Journal, AppendThenReadBack) {
  const auto path = temp_path("journal_roundtrip.jsonl");
  std::filesystem::remove(path);
  {
    Journal journal(path);
    journal.append(sample("a"));
    journal.append(sample("b", 99.0));
  }
  const auto records = Journal::read(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, "a");
  EXPECT_EQ(records[1].key, "b");
  EXPECT_EQ(records[1].makespan_sec, 99.0);
}

TEST(Journal, MissingFileReadsEmpty) {
  EXPECT_TRUE(Journal::read(temp_path("journal_nonexistent.jsonl")).empty());
}

TEST(Journal, LastRecordWinsPerKey) {
  const auto path = temp_path("journal_lastwins.jsonl");
  std::filesystem::remove(path);
  {
    Journal journal(path);
    journal.append(sample("a", 1.0));
    journal.append(sample("b", 2.0));
    journal.append(sample("a", 3.0));  // re-run of cell "a"
  }
  const auto latest = Journal::read_latest(path);
  ASSERT_EQ(latest.size(), 2u);
  EXPECT_EQ(latest.at("a").makespan_sec, 3.0);
  EXPECT_EQ(latest.at("b").makespan_sec, 2.0);
}

TEST(Journal, TornFinalLineIsDropped) {
  const auto path = temp_path("journal_torn.jsonl");
  std::filesystem::remove(path);
  {
    Journal journal(path);
    journal.append(sample("a"));
    journal.append(sample("b"));
  }
  // Simulate a crash mid-append: half of record "c" hits the disk.
  {
    const std::string partial =
        harness::cell_result_to_json(sample("c")).substr(0, 40);
    std::ofstream out(path, std::ios::app);
    out << partial;  // no newline, incomplete JSON
  }
  const auto records = Journal::read(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, "a");
  EXPECT_EQ(records[1].key, "b");
}

TEST(Journal, CorruptMiddleLineThrows) {
  const auto path = temp_path("journal_corrupt.jsonl");
  std::filesystem::remove(path);
  {
    std::ofstream out(path);
    out << harness::cell_result_to_json(sample("a")) << "\n";
    out << "{this is not json\n";
    out << harness::cell_result_to_json(sample("b")) << "\n";
  }
  EXPECT_THROW(Journal::read(path), FormatError);
}

TEST(Journal, CreatesParentDirectories) {
  const auto dir = temp_path("journal_subdir");
  std::filesystem::remove_all(dir);
  const auto path =
      (std::filesystem::path(dir) / "deep" / "run.jsonl").string();
  {
    Journal journal(path);
    journal.append(sample("a"));
  }
  EXPECT_EQ(Journal::read(path).size(), 1u);
}

TEST(Journal, AppendingToExistingJournalPreservesRecords) {
  const auto path = temp_path("journal_append.jsonl");
  std::filesystem::remove(path);
  {
    Journal journal(path);
    journal.append(sample("a"));
  }
  {
    Journal journal(path);  // reopen, as a resumed campaign does
    journal.append(sample("b"));
  }
  EXPECT_EQ(Journal::read(path).size(), 2u);
}

}  // namespace
}  // namespace gb::campaign
