// Baseline regression store: save/load fidelity and the drift checks —
// outcome-class changes, makespan drift beyond tolerance, iteration and
// output-hash mismatches, missing/new cells.
#include "campaign/baseline.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/error.h"

namespace gb::campaign {
namespace {

harness::CellResult cell(const std::string& key, const std::string& outcome,
                         double makespan, std::uint64_t iterations = 10,
                         std::uint64_t hash = 0x1234) {
  harness::CellResult r;
  r.key = key;
  r.platform = "Giraph";
  r.dataset = "Amazon";
  r.algorithm = "BFS";
  r.workers = 4;
  r.cores = 1;
  r.scale = 0.01;
  r.seed = 42;
  r.outcome = outcome;
  r.makespan_sec = outcome == "ok" ? makespan : 0.0;
  r.iterations = outcome == "ok" ? iterations : 0;
  r.output_hash = hash;
  return r;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TEST(Baseline, SaveLoadRoundTrip) {
  const auto path = temp_path("baseline_roundtrip.jsonl");
  const std::vector<harness::CellResult> cells = {
      cell("a", "ok", 10.0), cell("b", "crash(OOM)", 0.0)};
  save_baseline(path, cells);
  const auto loaded = load_baseline(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].key, "a");
  EXPECT_EQ(loaded[1].outcome, "crash(OOM)");
  EXPECT_EQ(harness::cell_result_to_json(loaded[0]),
            harness::cell_result_to_json(cells[0]));
}

TEST(Baseline, LoadMissingFileThrows) {
  EXPECT_THROW(load_baseline(temp_path("baseline_missing.jsonl")), Error);
}

TEST(Baseline, IdenticalRunPasses) {
  const std::vector<harness::CellResult> cells = {
      cell("a", "ok", 10.0), cell("b", "timeout", 0.0)};
  EXPECT_TRUE(check_baseline(cells, cells).ok());
}

TEST(Baseline, DriftWithinTolerancePasses) {
  const std::vector<harness::CellResult> base = {cell("a", "ok", 100.0)};
  const std::vector<harness::CellResult> now = {cell("a", "ok", 104.0)};
  EXPECT_TRUE(check_baseline(base, now).ok());  // 4% < default 5%
}

TEST(Baseline, MakespanDriftBeyondToleranceFails) {
  const std::vector<harness::CellResult> base = {cell("a", "ok", 100.0)};
  const std::vector<harness::CellResult> now = {cell("a", "ok", 120.0)};
  const auto diff = check_baseline(base, now);
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_NE(diff.findings[0].find("makespan drift"), std::string::npos);

  BaselineTolerance loose;
  loose.makespan_rel = 0.5;
  EXPECT_TRUE(check_baseline(base, now, loose).ok());
}

TEST(Baseline, AbsoluteFloorCoversSubSecondCells) {
  // 20% relative drift on a 20ms cell is still within the 10ms absolute
  // floor — sub-second smoke cells no longer flap on scheduler noise.
  const std::vector<harness::CellResult> base = {cell("a", "ok", 0.020)};
  const std::vector<harness::CellResult> now = {cell("a", "ok", 0.024)};
  EXPECT_TRUE(check_baseline(base, now).ok());
}

TEST(Baseline, AbsoluteFloorIsConfigurable) {
  const std::vector<harness::CellResult> base = {cell("a", "ok", 0.020)};
  const std::vector<harness::CellResult> now = {cell("a", "ok", 0.024)};
  BaselineTolerance strict;
  strict.makespan_abs = 0.001;  // 4ms drift > max(1ms, 5% of 20ms = 1ms)
  const auto diff = check_baseline(base, now, strict);
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_NE(diff.findings[0].find("makespan drift"), std::string::npos);
}

TEST(Baseline, RelativeBandGovernsLargeCells) {
  // On a 100s cell the 5% band (5s) dwarfs the 10ms floor: 4s passes,
  // 20s fails — exactly the old relative behavior.
  const std::vector<harness::CellResult> base = {cell("a", "ok", 100.0)};
  EXPECT_TRUE(check_baseline(base, {cell("a", "ok", 104.0)}).ok());
  EXPECT_FALSE(check_baseline(base, {cell("a", "ok", 120.0)}).ok());
}

TEST(Baseline, ZeroMakespanBaselineIsStillChecked) {
  // A 0.0 baseline used to skip the check entirely (the relative band
  // degenerates to zero width); the absolute floor now bounds it.
  const std::vector<harness::CellResult> base = {cell("a", "ok", 0.0)};
  EXPECT_TRUE(check_baseline(base, {cell("a", "ok", 0.005)}).ok());
  const auto diff = check_baseline(base, {cell("a", "ok", 0.5)});
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_NE(diff.findings[0].find("makespan drift"), std::string::npos);
}

TEST(Baseline, IntervalOverlapIsSymmetricTwoSided) {
  // Both sides carry a band: base 100 ± 5 vs now 108 ± 5.4 still overlap
  // (the old one-sided epsilon would have failed 8% > 5%); 120 ± 6 is
  // disjoint and fails.
  const std::vector<harness::CellResult> base = {cell("a", "ok", 100.0)};
  EXPECT_TRUE(check_baseline(base, {cell("a", "ok", 108.0)}).ok());
  EXPECT_FALSE(check_baseline(base, {cell("a", "ok", 120.0)}).ok());
  // Symmetric: swapping baseline and current gives the same verdicts.
  EXPECT_TRUE(check_baseline({cell("a", "ok", 108.0)}, base).ok());
  EXPECT_FALSE(check_baseline({cell("a", "ok", 120.0)}, base).ok());
}

TEST(Baseline, ComputationDriftIsChecked) {
  auto base = cell("a", "ok", 10.0);
  auto now = cell("a", "ok", 10.0);
  base.computation_sec = 8.0;
  now.computation_sec = 10.0;  // disjoint 5% bands: [7.6,8.4] vs [9.5,10.5]
  const auto diff = check_baseline({base}, {now});
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_NE(diff.findings[0].find("computation drift"), std::string::npos);

  BaselineTolerance loose;
  loose.computation_rel = 0.2;  // [6.4,9.6] vs [8,12] overlap
  EXPECT_TRUE(check_baseline({base}, {now}, loose).ok());
}

TEST(Baseline, HostTimeCiOverlapGate) {
  auto base = cell("a", "ok", 10.0);
  auto now = cell("a", "ok", 10.0);
  base.host_ms = {100.0, 102.0, 101.0};
  now.host_ms = {101.0, 103.0, 102.0};  // CIs overlap: compatible
  EXPECT_TRUE(check_baseline({base}, {now}).ok());

  now.host_ms = {200.0, 202.0, 201.0};  // 2x slower, tight CIs: disjoint
  const auto diff = check_baseline({base}, {now});
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_NE(diff.findings[0].find("host-time CI"), std::string::npos);

  BaselineTolerance off;
  off.check_host_time = false;
  EXPECT_TRUE(check_baseline({base}, {now}, off).ok());
}

TEST(Baseline, HostTimeGateSkipsSingleShotSides) {
  // Either side without a real distribution (n < 2) skips the host gate:
  // a --reps baseline checked by a single-shot CI run must not flake.
  auto base = cell("a", "ok", 10.0);
  auto now = cell("a", "ok", 10.0);
  base.host_ms = {100.0, 102.0, 101.0};
  EXPECT_TRUE(check_baseline({base}, {now}).ok());
  now.host_ms = {5000.0};
  EXPECT_TRUE(check_baseline({base}, {now}).ok());
}

TEST(Baseline, HostTimeDistributionRoundTripsThroughSaveLoad) {
  const auto path = temp_path("baseline_host_ms.jsonl");
  auto with_reps = cell("a", "ok", 10.0);
  with_reps.host_ms = {12.25, 11.5, 13.75};
  save_baseline(path, {with_reps, cell("b", "ok", 10.0)});
  const auto loaded = load_baseline(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].host_ms, with_reps.host_ms);
  EXPECT_TRUE(loaded[1].host_ms.empty());
  EXPECT_EQ(harness::cell_result_to_json(loaded[0]),
            harness::cell_result_to_json(with_reps));
}

TEST(Baseline, OutcomeClassChangeFails) {
  const std::vector<harness::CellResult> base = {cell("a", "ok", 10.0)};
  const std::vector<harness::CellResult> now = {cell("a", "crash(OOM)", 0.0)};
  const auto diff = check_baseline(base, now);
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_NE(diff.findings[0].find("outcome changed"), std::string::npos);
}

TEST(Baseline, CrashFlavourChangeWithinClassPasses) {
  // crash(OOM) -> crash(disk) is the same outcome *class*; the figures
  // only claim that the cell crashes.
  const std::vector<harness::CellResult> base = {
      cell("a", "crash(OOM)", 0.0)};
  const std::vector<harness::CellResult> now = {
      cell("a", "crash(disk)", 0.0)};
  EXPECT_TRUE(check_baseline(base, now).ok());
}

TEST(Baseline, IterationChangeFails) {
  const std::vector<harness::CellResult> base = {cell("a", "ok", 10.0, 10)};
  const std::vector<harness::CellResult> now = {cell("a", "ok", 10.0, 11)};
  const auto diff = check_baseline(base, now);
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_NE(diff.findings[0].find("iterations"), std::string::npos);

  BaselineTolerance tolerance;
  tolerance.check_iterations = false;
  EXPECT_TRUE(check_baseline(base, now, tolerance).ok());
}

TEST(Baseline, OutputHashChangeFails) {
  const std::vector<harness::CellResult> base = {
      cell("a", "ok", 10.0, 10, 0x1)};
  const std::vector<harness::CellResult> now = {
      cell("a", "ok", 10.0, 10, 0x2)};
  const auto diff = check_baseline(base, now);
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_NE(diff.findings[0].find("output hash"), std::string::npos);

  BaselineTolerance tolerance;
  tolerance.check_output_hash = false;
  EXPECT_TRUE(check_baseline(base, now, tolerance).ok());
}

TEST(Baseline, MissingAndNewCellsAreReported) {
  const std::vector<harness::CellResult> base = {cell("a", "ok", 10.0),
                                                 cell("b", "ok", 10.0)};
  const std::vector<harness::CellResult> now = {cell("b", "ok", 10.0),
                                                cell("c", "ok", 10.0)};
  const auto diff = check_baseline(base, now);
  ASSERT_EQ(diff.findings.size(), 2u);
  EXPECT_NE(diff.to_string().find("a: in baseline but not in this run"),
            std::string::npos);
  EXPECT_NE(diff.to_string().find("c: in this run but not in baseline"),
            std::string::npos);
}

TEST(Baseline, FailedCellTimingIsNotCompared) {
  // Both timed out: makespans are 0/meaningless, no findings expected.
  auto base = cell("a", "timeout", 0.0);
  auto now = cell("a", "timeout", 0.0);
  base.message = "exceeded 3600s";
  now.message = "exceeded 7200s";  // detail may differ freely
  EXPECT_TRUE(check_baseline({base}, {now}).ok());
}

}  // namespace
}  // namespace gb::campaign
