// Baseline regression store: save/load fidelity and the drift checks —
// outcome-class changes, makespan drift beyond tolerance, iteration and
// output-hash mismatches, missing/new cells.
#include "campaign/baseline.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/error.h"

namespace gb::campaign {
namespace {

harness::CellResult cell(const std::string& key, const std::string& outcome,
                         double makespan, std::uint64_t iterations = 10,
                         std::uint64_t hash = 0x1234) {
  harness::CellResult r;
  r.key = key;
  r.platform = "Giraph";
  r.dataset = "Amazon";
  r.algorithm = "BFS";
  r.workers = 4;
  r.cores = 1;
  r.scale = 0.01;
  r.seed = 42;
  r.outcome = outcome;
  r.makespan_sec = outcome == "ok" ? makespan : 0.0;
  r.iterations = outcome == "ok" ? iterations : 0;
  r.output_hash = hash;
  return r;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TEST(Baseline, SaveLoadRoundTrip) {
  const auto path = temp_path("baseline_roundtrip.jsonl");
  const std::vector<harness::CellResult> cells = {
      cell("a", "ok", 10.0), cell("b", "crash(OOM)", 0.0)};
  save_baseline(path, cells);
  const auto loaded = load_baseline(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].key, "a");
  EXPECT_EQ(loaded[1].outcome, "crash(OOM)");
  EXPECT_EQ(harness::cell_result_to_json(loaded[0]),
            harness::cell_result_to_json(cells[0]));
}

TEST(Baseline, LoadMissingFileThrows) {
  EXPECT_THROW(load_baseline(temp_path("baseline_missing.jsonl")), Error);
}

TEST(Baseline, IdenticalRunPasses) {
  const std::vector<harness::CellResult> cells = {
      cell("a", "ok", 10.0), cell("b", "timeout", 0.0)};
  EXPECT_TRUE(check_baseline(cells, cells).ok());
}

TEST(Baseline, DriftWithinTolerancePasses) {
  const std::vector<harness::CellResult> base = {cell("a", "ok", 100.0)};
  const std::vector<harness::CellResult> now = {cell("a", "ok", 104.0)};
  EXPECT_TRUE(check_baseline(base, now).ok());  // 4% < default 5%
}

TEST(Baseline, MakespanDriftBeyondToleranceFails) {
  const std::vector<harness::CellResult> base = {cell("a", "ok", 100.0)};
  const std::vector<harness::CellResult> now = {cell("a", "ok", 120.0)};
  const auto diff = check_baseline(base, now);
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_NE(diff.findings[0].find("makespan drift"), std::string::npos);

  BaselineTolerance loose;
  loose.makespan_rel = 0.5;
  EXPECT_TRUE(check_baseline(base, now, loose).ok());
}

TEST(Baseline, AbsoluteFloorCoversSubSecondCells) {
  // 20% relative drift on a 20ms cell is still within the 10ms absolute
  // floor — sub-second smoke cells no longer flap on scheduler noise.
  const std::vector<harness::CellResult> base = {cell("a", "ok", 0.020)};
  const std::vector<harness::CellResult> now = {cell("a", "ok", 0.024)};
  EXPECT_TRUE(check_baseline(base, now).ok());
}

TEST(Baseline, AbsoluteFloorIsConfigurable) {
  const std::vector<harness::CellResult> base = {cell("a", "ok", 0.020)};
  const std::vector<harness::CellResult> now = {cell("a", "ok", 0.024)};
  BaselineTolerance strict;
  strict.makespan_abs = 0.001;  // 4ms drift > max(1ms, 5% of 20ms = 1ms)
  const auto diff = check_baseline(base, now, strict);
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_NE(diff.findings[0].find("makespan drift"), std::string::npos);
}

TEST(Baseline, RelativeBandGovernsLargeCells) {
  // On a 100s cell the 5% band (5s) dwarfs the 10ms floor: 4s passes,
  // 20s fails — exactly the old relative behavior.
  const std::vector<harness::CellResult> base = {cell("a", "ok", 100.0)};
  EXPECT_TRUE(check_baseline(base, {cell("a", "ok", 104.0)}).ok());
  EXPECT_FALSE(check_baseline(base, {cell("a", "ok", 120.0)}).ok());
}

TEST(Baseline, ZeroMakespanBaselineIsStillChecked) {
  // A 0.0 baseline used to skip the check entirely (the relative band
  // degenerates to zero width); the absolute floor now bounds it.
  const std::vector<harness::CellResult> base = {cell("a", "ok", 0.0)};
  EXPECT_TRUE(check_baseline(base, {cell("a", "ok", 0.005)}).ok());
  const auto diff = check_baseline(base, {cell("a", "ok", 0.5)});
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_NE(diff.findings[0].find("makespan drift"), std::string::npos);
}

TEST(Baseline, OutcomeClassChangeFails) {
  const std::vector<harness::CellResult> base = {cell("a", "ok", 10.0)};
  const std::vector<harness::CellResult> now = {cell("a", "crash(OOM)", 0.0)};
  const auto diff = check_baseline(base, now);
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_NE(diff.findings[0].find("outcome changed"), std::string::npos);
}

TEST(Baseline, CrashFlavourChangeWithinClassPasses) {
  // crash(OOM) -> crash(disk) is the same outcome *class*; the figures
  // only claim that the cell crashes.
  const std::vector<harness::CellResult> base = {
      cell("a", "crash(OOM)", 0.0)};
  const std::vector<harness::CellResult> now = {
      cell("a", "crash(disk)", 0.0)};
  EXPECT_TRUE(check_baseline(base, now).ok());
}

TEST(Baseline, IterationChangeFails) {
  const std::vector<harness::CellResult> base = {cell("a", "ok", 10.0, 10)};
  const std::vector<harness::CellResult> now = {cell("a", "ok", 10.0, 11)};
  const auto diff = check_baseline(base, now);
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_NE(diff.findings[0].find("iterations"), std::string::npos);

  BaselineTolerance tolerance;
  tolerance.check_iterations = false;
  EXPECT_TRUE(check_baseline(base, now, tolerance).ok());
}

TEST(Baseline, OutputHashChangeFails) {
  const std::vector<harness::CellResult> base = {
      cell("a", "ok", 10.0, 10, 0x1)};
  const std::vector<harness::CellResult> now = {
      cell("a", "ok", 10.0, 10, 0x2)};
  const auto diff = check_baseline(base, now);
  ASSERT_EQ(diff.findings.size(), 1u);
  EXPECT_NE(diff.findings[0].find("output hash"), std::string::npos);

  BaselineTolerance tolerance;
  tolerance.check_output_hash = false;
  EXPECT_TRUE(check_baseline(base, now, tolerance).ok());
}

TEST(Baseline, MissingAndNewCellsAreReported) {
  const std::vector<harness::CellResult> base = {cell("a", "ok", 10.0),
                                                 cell("b", "ok", 10.0)};
  const std::vector<harness::CellResult> now = {cell("b", "ok", 10.0),
                                                cell("c", "ok", 10.0)};
  const auto diff = check_baseline(base, now);
  ASSERT_EQ(diff.findings.size(), 2u);
  EXPECT_NE(diff.to_string().find("a: in baseline but not in this run"),
            std::string::npos);
  EXPECT_NE(diff.to_string().find("c: in this run but not in baseline"),
            std::string::npos);
}

TEST(Baseline, FailedCellTimingIsNotCompared) {
  // Both timed out: makespans are 0/meaningless, no findings expected.
  auto base = cell("a", "timeout", 0.0);
  auto now = cell("a", "timeout", 0.0);
  base.message = "exceeded 3600s";
  now.message = "exceeded 7200s";  // detail may differ freely
  EXPECT_TRUE(check_baseline({base}, {now}).ok());
}

}  // namespace
}  // namespace gb::campaign
