// The minimal JSON reader that backs the campaign journal and baseline
// store: parse correctness, escape handling, typed accessors, and the
// write -> parse -> rewrite identity on JsonWriter output.
#include "harness/json_read.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "harness/json.h"

namespace gb::harness {
namespace {

TEST(JsonRead, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").boolean, true);
  EXPECT_EQ(parse_json("false").boolean, false);
  EXPECT_DOUBLE_EQ(parse_json("3.25").number, 3.25);
  EXPECT_DOUBLE_EQ(parse_json("-17").number, -17.0);
  EXPECT_DOUBLE_EQ(parse_json("1e3").number, 1000.0);
  EXPECT_EQ(parse_json("\"hi\"").string, "hi");
}

TEST(JsonRead, ParsesContainers) {
  const auto doc = parse_json(R"({"a":[1,2,3],"b":{"c":"d"},"e":null})");
  ASSERT_TRUE(doc.is_object());
  const JsonValue* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.0);
  const JsonValue* b = doc.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->string_or("c", ""), "d");
  EXPECT_TRUE(doc.find("e")->is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonRead, ObjectPreservesKeyOrder) {
  const auto doc = parse_json(R"({"z":1,"a":2,"m":3})");
  ASSERT_EQ(doc.object.size(), 3u);
  EXPECT_EQ(doc.object[0].first, "z");
  EXPECT_EQ(doc.object[1].first, "a");
  EXPECT_EQ(doc.object[2].first, "m");
}

TEST(JsonRead, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d\n\t")").string, "a\"b\\c/d\n\t");
  EXPECT_EQ(parse_json(R"("Aé")").string, "A\xc3\xa9");
}

TEST(JsonRead, TypedAccessorsFallBackWhenAbsentThrowOnMismatch) {
  const auto doc = parse_json(R"({"n":4.5,"s":"x","b":true})");
  EXPECT_DOUBLE_EQ(doc.number_or("n", 0.0), 4.5);
  EXPECT_DOUBLE_EQ(doc.number_or("missing", 9.0), 9.0);
  EXPECT_EQ(doc.string_or("s", ""), "x");
  EXPECT_EQ(doc.bool_or("b", false), true);
  EXPECT_THROW(doc.number_or("s", 0.0), FormatError);
  EXPECT_THROW(doc.string_or("n", ""), FormatError);
}

TEST(JsonRead, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), FormatError);
  EXPECT_THROW(parse_json("{"), FormatError);
  EXPECT_THROW(parse_json("[1,]"), FormatError);
  EXPECT_THROW(parse_json("{\"a\" 1}"), FormatError);
  EXPECT_THROW(parse_json("\"unterminated"), FormatError);
  EXPECT_THROW(parse_json("nul"), FormatError);
  EXPECT_THROW(parse_json("{} trailing"), FormatError);
  EXPECT_THROW(parse_json("Infinity"), FormatError);
}

TEST(JsonRead, RoundTripsJsonWriterOutput) {
  JsonWriter writer;
  writer.begin_object();
  writer.key("pi");
  writer.value(3.141592653589793);
  writer.key("big");
  writer.value(static_cast<std::uint64_t>(9007199254740992ULL));  // 2^53
  writer.key("text");
  writer.value(std::string("line\nbreak \"quoted\""));
  writer.end_object();
  const auto doc = parse_json(writer.str());
  // %.17g doubles round-trip exactly through the parser.
  EXPECT_EQ(doc.number_or("pi", 0.0), 3.141592653589793);
  EXPECT_EQ(doc.u64_or("big", 0), 9007199254740992ULL);
  EXPECT_EQ(doc.string_or("text", ""), "line\nbreak \"quoted\"");
}

}  // namespace
}  // namespace gb::harness
