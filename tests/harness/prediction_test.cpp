#include "harness/prediction.h"

#include <gtest/gtest.h>

#include "algorithms/platform_suite.h"
#include "algorithms/reference.h"
#include "harness/experiment.h"
#include "../test_util.h"

namespace gb::harness {
namespace {

WorkloadStats small_workload() {
  WorkloadStats w;
  w.vertices = 1000;
  w.adjacency_entries = 10'000;
  w.text_bytes = 100'000;
  w.iterations = 5;
  return w;
}

TEST(Prediction, WorkloadStatsExtrapolate) {
  auto ds = test::as_dataset(test::complete_graph(10), "scaled", 0.1);
  const auto w = workload_stats(ds, 3);
  EXPECT_DOUBLE_EQ(w.vertices, 100.0);
  EXPECT_DOUBLE_EQ(w.adjacency_entries, 900.0);  // 2 * 45 edges * 10
  EXPECT_DOUBLE_EQ(w.iterations, 3.0);
}

TEST(Prediction, IterationsFloorAtOne) {
  auto ds = test::as_dataset(test::complete_graph(4));
  EXPECT_DOUBLE_EQ(workload_stats(ds, 0).iterations, 1.0);
}

TEST(Prediction, UpperBoundIsLinearInIterations) {
  sim::ClusterConfig cluster;
  auto w = small_workload();
  const auto p5 = predict_worst_case(PlatformClass::kHadoop, w, cluster);
  w.iterations = 10;
  const auto p10 = predict_worst_case(PlatformClass::kHadoop, w, cluster);
  EXPECT_NEAR(p10.upper_bound - p5.upper_bound, 5.0 * p5.per_iteration, 1e-6);
}

TEST(Prediction, HadoopBoundAboveGiraphBound) {
  sim::ClusterConfig cluster;
  const auto w = small_workload();
  const auto hadoop = predict_worst_case(PlatformClass::kHadoop, w, cluster);
  const auto giraph = predict_worst_case(PlatformClass::kGiraph, w, cluster);
  EXPECT_GT(hadoop.upper_bound, giraph.upper_bound);
}

TEST(Prediction, MoreWorkersLowerBound) {
  const auto w = small_workload();
  sim::ClusterConfig small_cluster;
  small_cluster.num_workers = 10;
  sim::ClusterConfig big_cluster;
  big_cluster.num_workers = 50;
  for (const auto cls :
       {PlatformClass::kHadoop, PlatformClass::kStratosphere,
        PlatformClass::kGiraph}) {
    EXPECT_GT(predict_worst_case(cls, w, small_cluster).upper_bound,
              predict_worst_case(cls, w, big_cluster).upper_bound)
        << platform_class_name(cls);
  }
}

class PredictionBound
    : public ::testing::TestWithParam<std::tuple<PlatformClass, int>> {};

TEST_P(PredictionBound, HoldsAgainstSimulation) {
  const auto [cls, graph_kind] = GetParam();
  datasets::Dataset ds =
      graph_kind == 0
          ? test::as_dataset(test::barbell_graph())
          : test::as_dataset(test::complete_graph(64), "clique");
  std::unique_ptr<platforms::Platform> platform;
  switch (cls) {
    case PlatformClass::kHadoop:
      platform = algorithms::make_hadoop();
      break;
    case PlatformClass::kYarn:
      platform = algorithms::make_yarn();
      break;
    case PlatformClass::kStratosphere:
      platform = algorithms::make_stratosphere();
      break;
    case PlatformClass::kGiraph:
      platform = algorithms::make_giraph();
      break;
    case PlatformClass::kGraphLab:
      platform = algorithms::make_graphlab(false);
      break;
    case PlatformClass::kNeo4j:
      platform = algorithms::make_neo4j();
      break;
  }
  const auto params = default_params(ds);
  sim::ClusterConfig cluster;
  cluster.num_workers = 4;
  const auto m =
      run_cell(*platform, ds, platforms::Algorithm::kConn, params, cluster);
  ASSERT_TRUE(m.ok()) << m.message;
  // CONN's round count is bounded by the iteration count it reports.
  const auto w = workload_stats(
      ds, static_cast<double>(m.result.output.iterations) + 1);
  const auto prediction = predict_worst_case(cls, w, cluster);
  EXPECT_GE(prediction.upper_bound, m.time())
      << platform_class_name(cls) << " bound too tight";
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, PredictionBound,
    ::testing::Combine(
        ::testing::Values(PlatformClass::kHadoop, PlatformClass::kYarn,
                          PlatformClass::kStratosphere, PlatformClass::kGiraph,
                          PlatformClass::kGraphLab, PlatformClass::kNeo4j),
        ::testing::Values(0, 1)),
    [](const ::testing::TestParamInfo<std::tuple<PlatformClass, int>>& info) {
      return std::string(platform_class_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) == 0 ? "_barbell" : "_clique");
    });

}  // namespace
}  // namespace gb::harness
