#include "harness/ascii_chart.h"

#include <gtest/gtest.h>

#include <vector>

namespace gb::harness {
namespace {

TEST(AsciiChart, EmptyInputEmptyOutput) {
  EXPECT_EQ(ascii_chart({}), "");
}

TEST(AsciiChart, TallColumnsForLargeValues) {
  const std::vector<double> values{0.0, 1.0};
  ChartOptions options;
  options.height = 4;
  const std::string chart = ascii_chart(values, options);
  // 4 chart rows + axis row.
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 5);
  // The 1.0 column fills every row; the 0.0 column none.
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '#'), 4);
}

TEST(AsciiChart, AutoscaleUsesMaximum) {
  const std::vector<double> values{5.0, 10.0};
  ChartOptions options;
  options.height = 2;
  const std::string chart = ascii_chart(values, options);
  EXPECT_NE(chart.find("10"), std::string::npos);
}

TEST(AsciiChart, ExplicitYMaxRespected) {
  const std::vector<double> values{1.0};
  ChartOptions options;
  options.height = 4;
  options.y_max = 4.0;
  const std::string chart = ascii_chart(values, options);
  // 1.0 of 4.0 fills only the bottom row.
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '#'), 1);
}

TEST(AsciiChart, LabelPrinted) {
  ChartOptions options;
  options.y_label = "CPU cores";
  const std::vector<double> values{1.0};
  EXPECT_NE(ascii_chart(values, options).find("CPU cores"),
            std::string::npos);
}

TEST(Downsample, AveragesBuckets) {
  const std::vector<double> values{1, 1, 3, 3};
  const auto down = downsample(values, 2);
  ASSERT_EQ(down.size(), 2u);
  EXPECT_DOUBLE_EQ(down[0], 1.0);
  EXPECT_DOUBLE_EQ(down[1], 3.0);
}

TEST(Downsample, StretchesShortSeriesToRequestedWidth) {
  const std::vector<double> values{1, 2};
  const auto down = downsample(values, 10);
  ASSERT_EQ(down.size(), 10u);
  // The two samples split the width in half; empty buckets hold the
  // previous level, so the result is a step function, not zeros.
  for (std::size_t c = 0; c < 5; ++c) EXPECT_DOUBLE_EQ(down[c], 1.0);
  for (std::size_t c = 5; c < 10; ++c) EXPECT_DOUBLE_EQ(down[c], 2.0);
}

TEST(Downsample, ThreeSamplesEightyColumns) {
  // Regression: a 3-sample trace rendered at terminal width used to
  // collapse to 3 columns; it must now fill all 80, carrying each
  // sample's value until the next sample's bucket begins.
  const std::vector<double> values{4.0, 8.0, 2.0};
  const auto down = downsample(values, 80);
  ASSERT_EQ(down.size(), 80u);
  EXPECT_DOUBLE_EQ(down.front(), 4.0);
  EXPECT_DOUBLE_EQ(down.back(), 2.0);
  // Only the three input levels may appear, in order.
  double previous = down.front();
  std::size_t transitions = 0;
  for (const double v : down) {
    EXPECT_TRUE(v == 4.0 || v == 8.0 || v == 2.0);
    if (v != previous) ++transitions;
    previous = v;
  }
  EXPECT_EQ(transitions, 2u);
}

TEST(Downsample, EmptyAndZero) {
  EXPECT_TRUE(downsample({}, 4).empty());
  const std::vector<double> values{1.0};
  EXPECT_TRUE(downsample(values, 0).empty());
}

}  // namespace
}  // namespace gb::harness
