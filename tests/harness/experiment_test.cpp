#include "harness/experiment.h"

#include <gtest/gtest.h>

#include "algorithms/platform_suite.h"
#include "harness/metrics.h"
#include "../test_util.h"

namespace gb::harness {
namespace {

using platforms::Algorithm;

TEST(Experiment, RunCellSuccess) {
  const auto ds = test::as_dataset(test::barbell_graph());
  const auto platform = algorithms::make_giraph();
  const auto m = run_cell(*platform, ds, Algorithm::kBfs,
                          default_params(ds));
  EXPECT_TRUE(m.ok());
  EXPECT_GT(m.time(), 0.0);
}

TEST(Experiment, RunCellCapturesCrash) {
  const auto ds = test::as_dataset(test::complete_graph(8), "huge", 1e-12);
  const auto platform = algorithms::make_giraph();
  const auto m = run_cell(*platform, ds, Algorithm::kConn, default_params(ds));
  EXPECT_EQ(m.outcome, Outcome::kOutOfMemory);
  EXPECT_FALSE(m.message.empty());
}

TEST(Experiment, RunCellCapturesTimeout) {
  const auto ds = test::as_dataset(test::path_graph(40));
  const auto platform = algorithms::make_hadoop();
  auto params = default_params(ds);
  params.bfs_source = 0;
  params.time_limit = 1.0;
  const auto m = run_cell(*platform, ds, Algorithm::kBfs, params);
  EXPECT_EQ(m.outcome, Outcome::kTimeout);
}

TEST(Experiment, NonDistributedPlatformGetsOneNode) {
  const auto ds = test::as_dataset(test::barbell_graph());
  const auto neo4j = algorithms::make_neo4j();
  sim::ClusterConfig cfg;
  cfg.num_workers = 20;
  const auto m = run_cell(*neo4j, ds, Algorithm::kBfs, default_params(ds), cfg);
  EXPECT_TRUE(m.ok());
}

TEST(Experiment, DefaultParamsDeterministicPerDataset) {
  const auto a = test::as_dataset(test::barbell_graph(), "Foo");
  const auto b = test::as_dataset(test::barbell_graph(), "Foo");
  const auto c = test::as_dataset(test::barbell_graph(), "Bar");
  EXPECT_EQ(default_params(a).bfs_source, default_params(b).bfs_source);
  EXPECT_EQ(default_params(a).seed, default_params(b).seed);
  EXPECT_NE(default_params(a).seed, default_params(c).seed);
}

TEST(Experiment, RunsAreFullyDeterministic) {
  // The simulator replaces the paper's 10 repetitions: rerunning a cell
  // must reproduce every number exactly, down to the phase breakdown.
  const auto ds = test::as_dataset(test::barbell_graph());
  const auto params = default_params(ds);
  for (const auto& p : algorithms::make_all_platforms()) {
    sim::ClusterConfig cfg;
    cfg.num_workers = 3;
    const auto a = run_cell(*p, ds, Algorithm::kCd, params, cfg);
    const auto b = run_cell(*p, ds, Algorithm::kCd, params, cfg);
    ASSERT_EQ(a.outcome, b.outcome) << p->name();
    EXPECT_EQ(a.result.total_time, b.result.total_time) << p->name();
    EXPECT_EQ(a.result.computation_time, b.result.computation_time);
    EXPECT_EQ(a.result.phases, b.result.phases) << p->name();
    EXPECT_EQ(a.result.output.vertex_values, b.result.output.vertex_values);
  }
}

TEST(Experiment, OutcomeLabels) {
  EXPECT_STREQ(outcome_label(Outcome::kOk), "ok");
  EXPECT_STREQ(outcome_label(Outcome::kOutOfMemory), "crash(OOM)");
  EXPECT_STREQ(outcome_label(Outcome::kTimeout), "timeout");
}

TEST(Metrics, EpsUsesExtrapolatedCounts) {
  auto ds = test::as_dataset(test::complete_graph(10), "scaled", 0.1);
  // 45 edges at scale 0.1 => 450 paper-size edges.
  EXPECT_DOUBLE_EQ(eps(ds, 1.0), 450.0);
  EXPECT_DOUBLE_EQ(vps(ds, 1.0), 100.0);
}

TEST(Metrics, NepsNormalizesByNodesAndCores) {
  auto ds = test::as_dataset(test::complete_graph(10));
  const double raw = eps(ds, 2.0);
  EXPECT_DOUBLE_EQ(neps(ds, 2.0, 10), raw / 10.0);
  EXPECT_DOUBLE_EQ(neps(ds, 2.0, 10, 4), raw / 40.0);
}

TEST(Metrics, ZeroGuards) {
  auto ds = test::as_dataset(test::complete_graph(10));
  EXPECT_DOUBLE_EQ(eps(ds, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(neps(ds, 1.0, 0), 0.0);
}

}  // namespace
}  // namespace gb::harness
