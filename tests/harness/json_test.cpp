#include "harness/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/error.h"
#include "../obs/json_check.h"

namespace gb::harness {
namespace {

TEST(JsonWriter, SimpleObject) {
  JsonWriter json;
  json.begin_object();
  json.key("a");
  json.value(std::uint64_t{1});
  json.key("b");
  json.value("two");
  json.end_object();
  EXPECT_EQ(json.str(), R"({"a":1,"b":"two"})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter json;
  json.begin_object();
  json.key("items");
  json.begin_array();
  json.value(std::uint64_t{1});
  json.begin_object();
  json.key("x");
  json.value(true);
  json.end_object();
  json.null();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"items":[1,{"x":true},null]})");
}

TEST(JsonWriter, EscapesSpecials) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonWriter::escape(std::string("\x01")), "\\u0001");
}

TEST(JsonWriter, UnbalancedThrows) {
  JsonWriter json;
  json.begin_object();
  EXPECT_THROW(json.end_array(), Error);
  EXPECT_THROW(json.str(), Error);
}

TEST(JsonWriter, KeyOutsideObjectThrows) {
  JsonWriter json;
  json.begin_array();
  EXPECT_THROW(json.key("nope"), Error);
}

TEST(JsonWriter, DoublesRoundTrippable) {
  JsonWriter json;
  json.begin_array();
  json.value(0.1);
  json.end_array();
  EXPECT_EQ(json.str(), "[0.10000000000000001]");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  // JSON has no nan/inf tokens; emitting them used to produce documents
  // every spec-compliant parser rejects. They now degrade to null.
  JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.value(std::numeric_limits<double>::infinity());
  json.value(-std::numeric_limits<double>::infinity());
  json.value(1.5);
  json.end_array();
  EXPECT_EQ(json.str(), "[null,null,null,1.5]");
  EXPECT_TRUE(test::is_valid_json(json.str()));
}

TEST(MeasurementJson, NonFiniteFieldsStillYieldValidJson) {
  Measurement m;
  m.outcome = Outcome::kOk;
  m.result.add_phase("compute", 3.0, true);
  // A pathological stat must not poison the whole document.
  m.faults.recomputed_sec = std::numeric_limits<double>::quiet_NaN();
  m.host_wall_seconds = std::numeric_limits<double>::infinity();
  const std::string json = measurement_to_json("Giraph", "KGS", "BFS", m);
  test::JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << checker.error();
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(MeasurementJson, CarriesMetricsSection) {
  Measurement m;
  m.outcome = Outcome::kOk;
  m.result.add_phase("compute", 3.0, true);
  m.metrics.counters.emplace_back("tasks.scheduled", 128);
  m.metrics.gauges.emplace_back("shuffle.bytes", 1.5e9);
  const std::string json = measurement_to_json("Hadoop", "KGS", "CONN", m);
  EXPECT_TRUE(test::is_valid_json(json));
  EXPECT_NE(json.find(R"("metrics")"), std::string::npos);
  EXPECT_NE(json.find(R"("tasks.scheduled":128)"), std::string::npos);
  EXPECT_NE(json.find(R"("shuffle.bytes")"), std::string::npos);
}

TEST(MeasurementJson, SuccessfulRun) {
  Measurement m;
  m.outcome = Outcome::kOk;
  m.result.add_phase("load", 2.0, false);
  m.result.add_phase("compute", 3.0, true);
  m.result.output.iterations = 7;
  const std::string json = measurement_to_json("Giraph", "KGS", "BFS", m);
  EXPECT_NE(json.find(R"("platform":"Giraph")"), std::string::npos);
  EXPECT_NE(json.find(R"("outcome":"ok")"), std::string::npos);
  EXPECT_NE(json.find(R"("total_time_sec":5)"), std::string::npos);
  EXPECT_NE(json.find(R"("iterations":7)"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"load")"), std::string::npos);
}

TEST(MeasurementJson, FailedRunCarriesError) {
  Measurement m;
  m.outcome = Outcome::kOutOfMemory;
  m.message = "heap exceeded";
  const std::string json = measurement_to_json("Giraph", "WikiTalk", "STATS", m);
  EXPECT_NE(json.find(R"x("outcome":"crash(OOM)")x"), std::string::npos);
  EXPECT_NE(json.find(R"("error":"heap exceeded")"), std::string::npos);
  EXPECT_EQ(json.find("total_time_sec"), std::string::npos);
}

}  // namespace
}  // namespace gb::harness
