#include "harness/report.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace gb::harness {
namespace {

TEST(Report, TablePrintsAlignedColumns) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Report, CsvRoundTrip) {
  Table t("demo");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  const std::string path =
      (std::filesystem::temp_directory_path() / "gb_report_test.csv").string();
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::filesystem::remove(path);
}

// Tiny RFC 4180 reader: enough to round-trip what write_csv emits.
std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      row.push_back(cell);
      cell.clear();
    } else if (c == '\n') {
      row.push_back(cell);
      cell.clear();
      rows.push_back(row);
      row.clear();
    } else {
      cell += c;
    }
  }
  return rows;
}

TEST(Report, CsvEscapesSpecialCells) {
  Table t("demo");
  t.set_header({"name", "note"});
  t.add_row({"comma,inside", "quote \"q\" here"});
  t.add_row({"new\nline", "plain"});
  t.add_row({"carriage\rreturn", "trailing"});
  const std::string path =
      (std::filesystem::temp_directory_path() / "gb_report_escape_test.csv")
          .string();
  t.write_csv(path);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::filesystem::remove(path);
  const std::string text = buf.str();

  // Special cells are double-quoted with embedded quotes doubled...
  EXPECT_NE(text.find("\"comma,inside\""), std::string::npos);
  EXPECT_NE(text.find("\"quote \"\"q\"\" here\""), std::string::npos);
  EXPECT_NE(text.find("\"new\nline\""), std::string::npos);
  // ...while plain cells keep their exact prior bytes.
  EXPECT_NE(text.find("name,note\n"), std::string::npos);
  EXPECT_NE(text.find(",plain\n"), std::string::npos);

  // And a conforming reader recovers the original cells exactly.
  const auto rows = parse_csv(text);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[1][0], "comma,inside");
  EXPECT_EQ(rows[1][1], "quote \"q\" here");
  EXPECT_EQ(rows[2][0], "new\nline");
  EXPECT_EQ(rows[3][0], "carriage\rreturn");
}

TEST(Report, PrintMetricsListsCountersThenGauges) {
  obs::MetricsSnapshot snap;
  snap.counters.emplace_back("tasks.scheduled", 64);
  snap.gauges.emplace_back("shuffle.bytes", 1.5e9);
  std::ostringstream out;
  print_metrics(out, snap, "  ");
  EXPECT_EQ(out.str(),
            "  tasks.scheduled: 64\n  shuffle.bytes: 1.50G\n");
}

TEST(Report, FormatSeconds) {
  EXPECT_EQ(format_seconds(0.5), "500.0 ms");
  EXPECT_EQ(format_seconds(12.34), "12.3 s");
  EXPECT_EQ(format_seconds(90.0), "1.5 min");
  EXPECT_EQ(format_seconds(7200.0), "2.0 h");
}

TEST(Report, FormatSi) {
  // Every branch keeps two decimals; the giga range used to round to
  // whole units ("2G" for 1.5e9).
  EXPECT_EQ(format_si(1.5e9), "1.50G");
  EXPECT_EQ(format_si(2.0e9), "2.00G");
  EXPECT_EQ(format_si(3.4e6), "3.40M");
  EXPECT_EQ(format_si(870.0e3), "870.00k");
  EXPECT_EQ(format_si(1.0e3), "1.00k");
  EXPECT_EQ(format_si(999.0), "999.00");
  EXPECT_EQ(format_si(12.0), "12.00");
  EXPECT_EQ(format_si(0.0), "0.00");
}

TEST(Report, FormatSiNegativeValuesScale) {
  // Unit selection goes by magnitude, so a negative gauge (a delta, a
  // regression) picks the same unit as its positive twin instead of
  // falling through every branch unscaled ("-1500000000.00").
  EXPECT_EQ(format_si(-1.5e9), "-1.50G");
  EXPECT_EQ(format_si(-2.0e9), "-2.00G");
  EXPECT_EQ(format_si(-3.4e6), "-3.40M");
  EXPECT_EQ(format_si(-1.0e3), "-1.00k");
  EXPECT_EQ(format_si(-999.0), "-999.00");
  EXPECT_EQ(format_si(-12.0), "-12.00");
}

TEST(Report, FormatMeasurementOutcomes) {
  Measurement ok;
  ok.outcome = Outcome::kOk;
  ok.result.total_time = 10.0;
  EXPECT_EQ(format_measurement(ok), "10.0 s");
  Measurement oom;
  oom.outcome = Outcome::kOutOfMemory;
  EXPECT_EQ(format_measurement(oom), "crash(OOM)");
}

}  // namespace
}  // namespace gb::harness
