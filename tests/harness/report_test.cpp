#include "harness/report.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace gb::harness {
namespace {

TEST(Report, TablePrintsAlignedColumns) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Report, CsvRoundTrip) {
  Table t("demo");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  const std::string path =
      (std::filesystem::temp_directory_path() / "gb_report_test.csv").string();
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::filesystem::remove(path);
}

TEST(Report, FormatSeconds) {
  EXPECT_EQ(format_seconds(0.5), "500.0 ms");
  EXPECT_EQ(format_seconds(12.34), "12.3 s");
  EXPECT_EQ(format_seconds(90.0), "1.5 min");
  EXPECT_EQ(format_seconds(7200.0), "2.0 h");
}

TEST(Report, FormatSi) {
  EXPECT_EQ(format_si(1.5e9), "2G");
  EXPECT_EQ(format_si(3.4e6), "3.40M");
  EXPECT_EQ(format_si(870.0e3), "870.00k");
  EXPECT_EQ(format_si(12.0), "12.00");
}

TEST(Report, FormatMeasurementOutcomes) {
  Measurement ok;
  ok.outcome = Outcome::kOk;
  ok.result.total_time = 10.0;
  EXPECT_EQ(format_measurement(ok), "10.0 s");
  Measurement oom;
  oom.outcome = Outcome::kOutOfMemory;
  EXPECT_EQ(format_measurement(oom), "crash(OOM)");
}

}  // namespace
}  // namespace gb::harness
