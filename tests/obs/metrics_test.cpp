#include "obs/metrics.h"

#include <gtest/gtest.h>

namespace gb::obs {
namespace {

TEST(MetricsRegistry, CountersAccumulate) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.counter("tasks.scheduled"), 0u);

  reg.incr("tasks.scheduled");
  reg.incr("tasks.scheduled", 4);
  reg.incr("tasks.retried");
  EXPECT_EQ(reg.counter("tasks.scheduled"), 5u);
  EXPECT_EQ(reg.counter("tasks.retried"), 1u);
  EXPECT_FALSE(reg.empty());
}

TEST(MetricsRegistry, GaugeAddSetMax) {
  MetricsRegistry reg;
  reg.add("shuffle.bytes", 100.0);
  reg.add("shuffle.bytes", 23.5);
  EXPECT_DOUBLE_EQ(reg.gauge("shuffle.bytes"), 123.5);

  reg.set_gauge("peak", 7.0);
  reg.set_gauge("peak", 3.0);  // set overwrites, even downward
  EXPECT_DOUBLE_EQ(reg.gauge("peak"), 3.0);

  reg.max_gauge("peak", 9.0);
  reg.max_gauge("peak", 5.0);  // max only raises
  EXPECT_DOUBLE_EQ(reg.gauge("peak"), 9.0);

  EXPECT_DOUBLE_EQ(reg.gauge("absent"), 0.0);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.incr("zeta");
  reg.incr("alpha");
  reg.incr("mid");
  reg.add("z.gauge", 1.0);
  reg.add("a.gauge", 2.0);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zeta");
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].first, "a.gauge");
  EXPECT_EQ(snap.gauges[1].first, "z.gauge");
}

TEST(MetricsRegistry, SnapshotIsADetachedCopy) {
  MetricsRegistry reg;
  reg.incr("n", 2);
  const MetricsSnapshot snap = reg.snapshot();
  reg.incr("n", 40);
  EXPECT_EQ(snap.counter("n"), 2u);
  EXPECT_EQ(reg.counter("n"), 42u);
  EXPECT_EQ(snap.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge("missing"), 0.0);
}

TEST(MetricsRegistry, ClearEmptiesEverything) {
  MetricsRegistry reg;
  reg.incr("c");
  reg.add("g", 1.0);
  reg.clear();
  EXPECT_TRUE(reg.empty());
  EXPECT_TRUE(reg.snapshot().empty());
}

}  // namespace
}  // namespace gb::obs
