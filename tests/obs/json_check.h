// Minimal strict JSON validator for the observability tests.
//
// A hand-rolled recursive-descent checker over RFC 8259: it accepts
// exactly the JSON grammar and nothing else, so it rejects the lenient
// extensions many parsers allow — bare `nan`/`inf`/`Infinity` tokens,
// trailing commas, unquoted keys, single quotes. That strictness is the
// point: the trace exporter and measurement_to_json must never emit a
// document a spec-compliant consumer would choke on.
#pragma once

#include <cstddef>
#include <string>

namespace gb::test {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  /// True iff the whole input is one valid JSON value.
  bool valid() {
    pos_ = 0;
    error_.clear();
    skip_ws();
    if (!value()) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing garbage");
    return true;
  }

  const std::string& error() const { return error_; }

  /// Byte offset of the first error (meaningful after valid() == false).
  std::size_t error_pos() const { return pos_; }

 private:
  bool fail(const char* what) {
    if (error_.empty()) error_ = what;
    return false;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (eof() || peek() != expected) return false;
    ++pos_;
    return true;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (eof() || peek() != *p) return fail("bad literal");
      ++pos_;
    }
    return true;
  }

  bool value() {
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key");
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (true) {
      if (eof()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (eof()) return fail("dangling escape");
        const char e = text_[pos_];
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i) {
            if (eof() || !is_hex(text_[pos_])) return fail("bad \\u escape");
            ++pos_;
          }
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
            e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape");
        }
        ++pos_;
        continue;
      }
      ++pos_;
    }
  }

  static bool is_hex(char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
           (c >= 'A' && c <= 'F');
  }
  static bool is_digit(char c) { return c >= '0' && c <= '9'; }

  // number = [-] int [frac] [exp] — notably NOT nan/inf/+1/leading zeros.
  bool number() {
    if (consume('-') && eof()) return fail("lone minus");
    if (eof() || !is_digit(peek())) return fail("expected digit");
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && is_digit(peek())) ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !is_digit(peek())) return fail("expected fraction digits");
      while (!eof() && is_digit(peek())) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !is_digit(peek())) return fail("expected exponent digits");
      while (!eof() && is_digit(peek())) ++pos_;
    }
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

inline bool is_valid_json(const std::string& text) {
  return JsonChecker(text).valid();
}

}  // namespace gb::test
