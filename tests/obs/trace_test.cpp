// The tentpole observability path end to end: engines record spans and
// metrics on the Cluster while a cell runs, the fault injector mirrors
// its events into the same timeline, and trace_json serializes it all as
// strictly valid Chrome trace-event JSON.
#include "obs/trace_json.h"

#include <gtest/gtest.h>

#include <vector>

#include "algorithms/platform_suite.h"
#include "core/thread_pool.h"
#include "datasets/catalog.h"
#include "harness/experiment.h"
#include "harness/json.h"
#include "obs/host_profile.h"
#include "obs/trace.h"
#include "sim/cluster.h"
#include "sim/faults.h"
#include "../test_util.h"
#include "json_check.h"

namespace gb::obs {
namespace {

using harness::Measurement;
using platforms::Algorithm;
using test::JsonChecker;

// Big enough that mid-run fault times land inside every platform's
// simulated span (same fixture as fault_recovery_test).
const datasets::Dataset& small_kgs() {
  static const datasets::Dataset ds =
      datasets::generate(datasets::DatasetId::kKGS, 0.01, 7);
  return ds;
}

TEST(TraceRecorder, RecordsSpansAndInstantsInOrder) {
  TraceRecorder rec;
  EXPECT_TRUE(rec.empty());
  rec.add_span("setup", "overhead", 0.0, 2.0, false, 4);
  rec.add_span("superstep 0", "computation", 2.0, 5.0, true, 4);
  rec.add_instant("worker crash", "fault", 3.5, 2);
  ASSERT_EQ(rec.spans().size(), 2u);
  ASSERT_EQ(rec.instants().size(), 1u);
  EXPECT_EQ(rec.spans()[0].name, "setup");
  EXPECT_FALSE(rec.spans()[0].computation);
  EXPECT_EQ(rec.spans()[1].category, "computation");
  EXPECT_DOUBLE_EQ(rec.spans()[1].begin, 2.0);
  EXPECT_DOUBLE_EQ(rec.spans()[1].end, 5.0);
  EXPECT_EQ(rec.instants()[0].worker, 2u);
  rec.clear();
  EXPECT_TRUE(rec.empty());
}

TEST(JsonChecker, AcceptsJsonAndRejectsLenientExtensions) {
  // Sanity-check the validator itself so the suite's "is valid JSON"
  // assertions mean something.
  EXPECT_TRUE(test::is_valid_json(R"({"a":[1,2.5,-3e2,"x\n",true,null]})"));
  EXPECT_TRUE(test::is_valid_json("[]"));
  EXPECT_FALSE(test::is_valid_json(""));
  EXPECT_FALSE(test::is_valid_json("{\"a\":nan}"));
  EXPECT_FALSE(test::is_valid_json("{\"a\":inf}"));
  EXPECT_FALSE(test::is_valid_json("{\"a\":Infinity}"));
  EXPECT_FALSE(test::is_valid_json("[1,]"));
  EXPECT_FALSE(test::is_valid_json("{\"a\":1} extra"));
  EXPECT_FALSE(test::is_valid_json("{'a':1}"));
  EXPECT_FALSE(test::is_valid_json("[+1]"));
  EXPECT_FALSE(test::is_valid_json("[01]"));
}

TEST(TraceJson, GiraphCellExportsAValidTrace) {
  const auto ds = test::as_dataset(test::barbell_graph());
  const auto giraph = algorithms::make_giraph();
  sim::ClusterConfig cfg;
  cfg.num_workers = 4;
  sim::Cluster cluster(cfg);
  const Measurement m = harness::run_cell(
      *giraph, ds, Algorithm::kBfs, harness::default_params(ds), cluster);
  ASSERT_TRUE(m.ok()) << m.message;

  TraceMeta meta;
  meta.platform = "Giraph";
  meta.dataset = "test";
  meta.algorithm = "BFS";
  meta.outcome = "ok";
  meta.total_time = m.result.total_time;
  const std::string json = trace_to_json(cluster, meta);

  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << checker.error() << " at byte "
                               << checker.error_pos();
  // One process per simulated node, phases as complete spans, usage as
  // counter tracks, and the metrics fold-in.
  EXPECT_NE(json.find(R"("displayTimeUnit":"ms")"), std::string::npos);
  EXPECT_NE(json.find(R"("platform":"Giraph")"), std::string::npos);
  EXPECT_NE(json.find(R"("process_name")"), std::string::npos);
  EXPECT_NE(json.find(R"("worker-3")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"C")"), std::string::npos);
  EXPECT_NE(json.find(R"("metrics")"), std::string::npos);
  EXPECT_NE(json.find(R"("pregel.supersteps")"), std::string::npos);
  // Host profiling is opt-in; the default export must not mention it.
  EXPECT_EQ(json.find("hostProfile"), std::string::npos);
}

TEST(TraceJson, FaultAnnotationsAppearAsInstants) {
  const auto& ds = small_kgs();
  const auto hadoop = algorithms::make_hadoop();

  sim::ClusterConfig clean_cfg;
  clean_cfg.num_workers = 8;
  clean_cfg.work_scale = ds.extrapolation();
  sim::Cluster clean(clean_cfg);
  const Measurement base = harness::run_cell(
      *hadoop, ds, Algorithm::kConn, harness::default_params(ds), clean);
  ASSERT_TRUE(base.ok()) << base.message;

  sim::ClusterConfig cfg = clean_cfg;
  cfg.faults.add({.kind = sim::FaultKind::kWorkerCrash,
                  .time = base.time() * 0.5,
                  .worker = 3});
  sim::Cluster cluster(cfg);
  const Measurement m = harness::run_cell(
      *hadoop, ds, Algorithm::kConn, harness::default_params(ds), cluster);
  ASSERT_TRUE(m.ok()) << m.message;

  // The injector mirrored the consumed crash into the trace...
  bool found = false;
  for (const auto& instant : cluster.trace().instants()) {
    if (instant.category == "fault" && instant.worker == 3) found = true;
  }
  EXPECT_TRUE(found);
  // ...and the recovery phase carries its own span category.
  bool recovery_span = false;
  for (const auto& span : cluster.trace().spans()) {
    if (span.category == "recovery") recovery_span = true;
  }
  EXPECT_TRUE(recovery_span);

  TraceMeta meta;
  meta.platform = "Hadoop";
  meta.dataset = "KGS";
  meta.algorithm = "CONN";
  meta.outcome = "ok";
  meta.total_time = m.result.total_time;
  const std::string json = trace_to_json(cluster, meta);
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << checker.error();
  EXPECT_NE(json.find(R"("ph":"i")"), std::string::npos);
  EXPECT_NE(json.find("worker_crash"), std::string::npos);
}

TEST(Metrics, HadoopCountsTaskRetriesUnderFaults) {
  const auto& ds = small_kgs();
  const auto hadoop = algorithms::make_hadoop();
  sim::ClusterConfig cfg;
  cfg.num_workers = 8;
  const Measurement clean = harness::run_cell(
      *hadoop, ds, Algorithm::kConn, harness::default_params(ds), cfg);
  ASSERT_TRUE(clean.ok());
  EXPECT_GT(clean.metrics.counter("tasks.scheduled"), 0u);
  EXPECT_GT(clean.metrics.gauge("shuffle.bytes"), 0.0);
  EXPECT_EQ(clean.metrics.counter("tasks.retried"), 0u);

  cfg.faults.add({.kind = sim::FaultKind::kWorkerCrash,
                  .time = clean.time() * 0.5,
                  .worker = 3});
  const Measurement faulty = harness::run_cell(
      *hadoop, ds, Algorithm::kConn, harness::default_params(ds), cfg);
  ASSERT_TRUE(faulty.ok()) << faulty.message;
  EXPECT_GE(faulty.metrics.counter("tasks.retried"), 1u);
  EXPECT_EQ(faulty.metrics.counter("faults.injected"), 1u);
  EXPECT_EQ(faulty.metrics.counter("faults.worker_crashes"), 1u);
  // The metrics view agrees with the FaultStats the harness already keeps.
  EXPECT_EQ(faulty.metrics.counter("faults.injected"), faulty.faults.injected);
}

TEST(Metrics, GiraphCountsCheckpointsAndRestarts) {
  const auto& ds = small_kgs();
  const auto giraph = algorithms::make_giraph();
  sim::ClusterConfig cfg;
  cfg.num_workers = 8;
  auto params = harness::default_params(ds);
  const Measurement clean =
      harness::run_cell(*giraph, ds, Algorithm::kConn, params, cfg);
  ASSERT_TRUE(clean.ok());
  EXPECT_GT(clean.metrics.counter("pregel.supersteps"), 0u);
  EXPECT_GT(clean.metrics.counter("messages.sent"), 0u);
  EXPECT_EQ(clean.metrics.counter("checkpoints.written"), 0u);

  params.checkpoint_interval = 2;
  cfg.faults.add({.kind = sim::FaultKind::kWorkerCrash,
                  .time = clean.time() * 0.5,
                  .worker = 3});
  const Measurement recovered =
      harness::run_cell(*giraph, ds, Algorithm::kConn, params, cfg);
  ASSERT_TRUE(recovered.ok()) << recovered.message;
  EXPECT_GE(recovered.metrics.counter("checkpoints.written"), 1u);
  EXPECT_EQ(recovered.metrics.counter("checkpoints.restarts"), 1u);
}

TEST(Metrics, HostChunksAreCountedButHostTimeIsNot) {
  const auto ds = test::as_dataset(test::barbell_graph());
  const auto giraph = algorithms::make_giraph();
  const Measurement m = harness::run_cell(
      *giraph, ds, Algorithm::kBfs, harness::default_params(ds));
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m.metrics.counter("host.chunks_executed"), 0u);
  // Nothing wall-clock-derived may leak into the registry.
  for (const auto& [name, value] : m.metrics.gauges) {
    EXPECT_EQ(name.find("wall"), std::string::npos) << name;
  }
}

TEST(MeasurementJson, CarriesMetricsAndValidates) {
  const auto ds = test::as_dataset(test::barbell_graph());
  const auto giraph = algorithms::make_giraph();
  const Measurement m = harness::run_cell(
      *giraph, ds, Algorithm::kBfs, harness::default_params(ds));
  ASSERT_TRUE(m.ok());
  const std::string json =
      harness::measurement_to_json("Giraph", "test", "BFS", m);
  test::JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << checker.error();
  EXPECT_NE(json.find(R"("metrics")"), std::string::npos);
  EXPECT_NE(json.find(R"("pregel.supersteps")"), std::string::npos);
}

TEST(HostProfiler, CapturesEveryChunkWithPoolThreadIds) {
  ThreadPool pool(2);
  HostProfiler profiler;
  pool.set_profile_sink(&profiler);

  const std::size_t n = 10'000;
  const std::size_t chunks = ThreadPool::plan_chunks(n);
  std::vector<int> touched(chunks, 0);
  pool.parallel_chunks(n, chunks,
                       [&touched](std::size_t c, std::size_t, std::size_t) {
                         touched[c] = 1;
                       });
  pool.set_profile_sink(nullptr);

  const auto samples = profiler.samples();
  ASSERT_EQ(samples.size(), chunks);
  std::vector<int> seen(chunks, 0);
  for (const auto& s : samples) {
    ASSERT_LT(s.chunk, chunks);
    seen[s.chunk] += 1;
    // Pool workers are 0..1; the caller thread reports the pool size.
    EXPECT_LE(s.thread, pool.size());
    EXPECT_GE(s.duration_sec, 0.0);
    EXPECT_LT(s.pending, chunks);
  }
  for (std::size_t c = 0; c < chunks; ++c) {
    EXPECT_EQ(seen[c], 1) << "chunk " << c;
    EXPECT_EQ(touched[c], 1) << "chunk " << c;
  }

  // Detached sink: no further samples.
  profiler.clear();
  pool.parallel_chunks(n, chunks,
                       [](std::size_t, std::size_t, std::size_t) {});
  EXPECT_EQ(profiler.size(), 0u);
}

TEST(TraceJson, HostProfileSectionIsOptIn) {
  const auto ds = test::as_dataset(test::barbell_graph());
  const auto giraph = algorithms::make_giraph();
  sim::ClusterConfig cfg;
  cfg.num_workers = 2;
  sim::Cluster cluster(cfg);
  HostProfiler profiler;
  cluster.pool().set_profile_sink(&profiler);
  const Measurement m = harness::run_cell(
      *giraph, ds, Algorithm::kBfs, harness::default_params(ds), cluster);
  cluster.pool().set_profile_sink(nullptr);
  ASSERT_TRUE(m.ok());

  TraceMeta meta;
  meta.platform = "Giraph";
  meta.dataset = "test";
  meta.algorithm = "BFS";
  meta.outcome = "ok";
  meta.total_time = m.result.total_time;

  const std::string without = trace_to_json(cluster, meta);
  EXPECT_EQ(without.find("hostProfile"), std::string::npos);

  const std::string with = trace_to_json(cluster, meta, &profiler);
  test::JsonChecker checker(with);
  EXPECT_TRUE(checker.valid()) << checker.error();
  EXPECT_NE(with.find("hostProfile"), std::string::npos);
}

}  // namespace
}  // namespace gb::obs
