#include "core/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.h"
#include "../test_util.h"

namespace gb {
namespace {

TEST(GraphIo, UndirectedRoundTrip) {
  const Graph g = test::barbell_graph();
  std::stringstream stream;
  write_graph(g, stream);
  const Graph back = read_graph(stream, /*directed=*/false);
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.out_neighbors(v);
    const auto b = back.out_neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
  }
}

TEST(GraphIo, DirectedRoundTrip) {
  GraphBuilder b(4, true);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(3, 1);
  const Graph g = b.build();
  std::stringstream stream;
  write_graph(g, stream);
  const Graph back = read_graph(stream, /*directed=*/true);
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  EXPECT_EQ(back.in_degree(1), 2u);
  EXPECT_EQ(back.out_degree(3), 1u);
}

TEST(GraphIo, UndirectedFormatExample) {
  GraphBuilder b(3, false);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  std::stringstream stream;
  write_graph(b.build(), stream);
  EXPECT_EQ(stream.str(), "0: 1\n1: 0,2\n2: 1\n");
}

TEST(GraphIo, DirectedFormatHasInAndOutLists) {
  GraphBuilder b(2, true);
  b.add_edge(0, 1);
  std::stringstream stream;
  write_graph(b.build(), stream);
  EXPECT_EQ(stream.str(), "0:  # 1\n1: 0 # \n");
}

TEST(GraphIo, EmptyInput) {
  std::stringstream stream;
  const Graph g = read_graph(stream, false);
  EXPECT_EQ(g.num_vertices(), 0u);
}

TEST(GraphIo, IsolatedVertexPreserved) {
  std::stringstream stream("0: 1\n1: 0\n2: \n");
  const Graph g = read_graph(stream, false);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.out_degree(2), 0u);
}

TEST(GraphIo, MissingColonThrows) {
  std::stringstream stream("0 1,2\n");
  EXPECT_THROW(read_graph(stream, false), FormatError);
}

TEST(GraphIo, BadIdThrows) {
  std::stringstream stream("0: 1,x\n");
  EXPECT_THROW(read_graph(stream, false), FormatError);
}

TEST(GraphIo, DirectedMissingHashThrows) {
  std::stringstream stream("0: 1,2\n");
  EXPECT_THROW(read_graph(stream, true), FormatError);
}

TEST(GraphIo, SnapEdgeListBasic) {
  std::stringstream stream(
      "# comment line\n"
      "0\t1\n"
      "1 2\n"
      "\n"
      "2\t0\n");
  const Graph g = read_snap_edge_list(stream, /*directed=*/true);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(GraphIo, SnapSparseIdsRenumberedDensely) {
  std::stringstream stream("1000000 42\n42 7\n");
  const Graph g = read_snap_edge_list(stream, /*directed=*/true);
  EXPECT_EQ(g.num_vertices(), 3u);  // 1000000, 42, 7 -> 0, 1, 2
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, SnapUndirectedDeduplicates) {
  std::stringstream stream("0 1\n1 0\n");
  const Graph g = read_snap_edge_list(stream, /*directed=*/false);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphIo, SnapBadLineThrows) {
  std::stringstream stream("0 abc\n");
  EXPECT_THROW(read_snap_edge_list(stream, true), FormatError);
  std::stringstream stream2("xyz 1\n");
  EXPECT_THROW(read_snap_edge_list(stream2, true), FormatError);
}

TEST(GraphIo, SnapRoundTrip) {
  const Graph g = test::barbell_graph();
  std::stringstream stream;
  write_snap_edge_list(g, stream);
  const Graph back = read_snap_edge_list(stream, /*directed=*/false);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
}

}  // namespace
}  // namespace gb
