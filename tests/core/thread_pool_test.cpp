#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace gb {
namespace {

TEST(ThreadPool, CoversWholeRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::size_t sum = 0;
  pool.parallel_for(10, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 45u);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   100,
                   [](std::size_t begin, std::size_t) {
                     if (begin == 0) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, GlobalPoolReusable) {
  auto& pool = ThreadPool::global();
  std::atomic<int> counter{0};
  pool.parallel_for(50, [&](std::size_t begin, std::size_t end) {
    counter += static_cast<int>(end - begin);
  });
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace gb
