// Property sweeps over randomized graph builds: CSR invariants that must
// hold for any insertion order, duplication pattern or directivity.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/graph.h"
#include "core/rng.h"

namespace gb {
namespace {

class GraphBuildSweep : public ::testing::TestWithParam<std::uint64_t> {};

Graph random_graph(std::uint64_t seed, bool directed, VertexId n = 64,
                   int edges = 300) {
  Xoshiro256 rng(seed);
  GraphBuilder b(n, directed);
  for (int e = 0; e < edges; ++e) {
    b.add_edge(static_cast<VertexId>(rng.next_below(n)),
               static_cast<VertexId>(rng.next_below(n)));
  }
  return b.build();
}

TEST_P(GraphBuildSweep, AdjacencySortedAndDeduplicated) {
  for (const bool directed : {false, true}) {
    const Graph g = random_graph(GetParam(), directed);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto nbrs = g.out_neighbors(v);
      EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
      EXPECT_EQ(std::adjacent_find(nbrs.begin(), nbrs.end()), nbrs.end());
      EXPECT_EQ(std::count(nbrs.begin(), nbrs.end(), v), 0)
          << "self loop survived";
    }
  }
}

TEST_P(GraphBuildSweep, UndirectedAdjacencyIsSymmetric) {
  const Graph g = random_graph(GetParam(), /*directed=*/false);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.out_neighbors(v)) {
      EXPECT_TRUE(g.has_edge(u, v)) << u << " -> " << v;
    }
  }
}

TEST_P(GraphBuildSweep, DirectedInOutListsAgree) {
  const Graph g = random_graph(GetParam(), /*directed=*/true);
  std::multiset<std::pair<VertexId, VertexId>> from_out;
  std::multiset<std::pair<VertexId, VertexId>> from_in;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.out_neighbors(v)) from_out.emplace(v, u);
    for (const VertexId u : g.in_neighbors(v)) from_in.emplace(u, v);
  }
  EXPECT_EQ(from_out, from_in);
}

TEST_P(GraphBuildSweep, EdgeCountMatchesAdjacency) {
  for (const bool directed : {false, true}) {
    const Graph g = random_graph(GetParam(), directed);
    const EdgeId expected =
        directed ? g.num_edges() : 2 * g.num_edges();
    EXPECT_EQ(g.num_adjacency_entries(), expected);
  }
}

TEST_P(GraphBuildSweep, DegreeSumsConsistent) {
  const Graph g = random_graph(GetParam(), /*directed=*/true);
  EdgeId out_total = 0;
  EdgeId in_total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out_total += g.out_degree(v);
    in_total += g.in_degree(v);
  }
  EXPECT_EQ(out_total, g.num_edges());
  EXPECT_EQ(in_total, g.num_edges());
}

TEST_P(GraphBuildSweep, BinaryRoundTripIdentical) {
  const Graph g = random_graph(GetParam(), GetParam() % 2 == 0);
  const std::string path = testing::TempDir() + "gb_prop_" +
                           std::to_string(GetParam()) + ".bin";
  g.save_binary(path);
  const Graph back = Graph::load_binary(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.out_neighbors(v);
    const auto b = back.out_neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphBuildSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace gb
