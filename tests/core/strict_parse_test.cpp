// The one strict-number rejection matrix: gb::strict is the single
// parser behind both the gb_* tool flags (tools/flag_parse.h) and the
// fault-spec fields (sim/faults.cpp), so its edge cases are pinned here
// once instead of per consumer.
#include "core/strict_parse.h"

#include <gtest/gtest.h>

namespace gb::strict {
namespace {

TEST(StrictParse, U64AcceptsPlainDigits) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615"), ~std::uint64_t{0});
}

TEST(StrictParse, U64RejectsGarbage) {
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("12abc"));   // partial parse
  EXPECT_FALSE(parse_u64("-1"));      // stoull would wrap this
  EXPECT_FALSE(parse_u64("+1"));      // sign spelling
  EXPECT_FALSE(parse_u64(" 1"));      // stoull would skip the space
  EXPECT_FALSE(parse_u64("1 "));      // trailing space
  EXPECT_FALSE(parse_u64("1.5"));
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // overflow
}

TEST(StrictParse, U64HonorsMinimum) {
  EXPECT_FALSE(parse_u64("0", 1));
  EXPECT_EQ(parse_u64("1", 1), 1u);
}

TEST(StrictParse, U32RejectsOverflowAndMinimum) {
  EXPECT_EQ(parse_u32("4294967295"), 4294967295u);
  EXPECT_FALSE(parse_u32("4294967296"));
  EXPECT_FALSE(parse_u32("2", 3));
  EXPECT_FALSE(parse_u32("2.5"));
  EXPECT_FALSE(parse_u32("-1"));
}

TEST(StrictParse, DoubleAcceptsFiniteLiterals) {
  EXPECT_EQ(parse_double("1.5"), 1.5);
  EXPECT_EQ(parse_double("-2"), -2.0);
  EXPECT_EQ(parse_double("1e3"), 1000.0);
}

TEST(StrictParse, DoubleRejectsPartialAndNonFinite) {
  EXPECT_FALSE(parse_double(""));
  EXPECT_FALSE(parse_double("1.5x"));   // partial parse
  EXPECT_FALSE(parse_double("inf"));    // stod accepts, we do not
  EXPECT_FALSE(parse_double("nan"));
  EXPECT_FALSE(parse_double("1e999"));  // overflows to out-of-range
}

TEST(StrictParse, DoubleHonorsMinimum) {
  EXPECT_FALSE(parse_double("-0.5", 0.0));
  EXPECT_EQ(parse_double("0.5", 0.0), 0.5);
}

}  // namespace
}  // namespace gb::strict
