#include "core/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "core/error.h"
#include "../test_util.h"

namespace gb {
namespace {

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder b(0, false);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilder, UndirectedEdgeStoredBothSides) {
  GraphBuilder b(3, false);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.num_adjacency_entries(), 2u);
  ASSERT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_neighbors(0)[0], 1u);
  ASSERT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.out_neighbors(1)[0], 0u);
}

TEST(GraphBuilder, DuplicateEdgesCollapse) {
  GraphBuilder b(3, false);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // same undirected edge
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilder, DirectedDuplicatesDistinctFromReverse) {
  GraphBuilder b(2, true);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(0), 1u);
}

TEST(GraphBuilder, SelfLoopsDropped) {
  GraphBuilder b(2, false);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilder, OutOfRangeEndpointThrows) {
  GraphBuilder b(2, false);
  EXPECT_THROW(b.add_edge(0, 2), FormatError);
}

TEST(GraphBuilder, GrowToCannotShrink) {
  GraphBuilder b(5, false);
  EXPECT_THROW(b.grow_to(3), FormatError);
  b.grow_to(10);
  b.add_edge(9, 0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, AdjacencySorted) {
  GraphBuilder b(5, false);
  b.add_edge(3, 1);
  b.add_edge(3, 4);
  b.add_edge(3, 0);
  b.add_edge(3, 2);
  const Graph g = b.build();
  const auto nbrs = g.out_neighbors(3);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Graph, HasEdge) {
  const Graph g = test::barbell_graph();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 6));
}

TEST(Graph, DirectedInOutDegrees) {
  GraphBuilder b(4, true);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  b.add_edge(3, 2);
  const Graph g = b.build();
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_EQ(g.in_degree(2), 3u);
  EXPECT_EQ(g.out_degree(2), 0u);
}

TEST(Graph, DegreeSumInvariant) {
  const Graph g = test::barbell_graph();
  EdgeId total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) total += g.degree(v);
  EXPECT_EQ(total, 2 * g.num_edges());
}

TEST(Graph, TextSizeGrowsWithEdges) {
  const Graph small = test::path_graph(10);
  const Graph large = test::complete_graph(10);
  EXPECT_LT(small.text_size_bytes(), large.text_size_bytes());
}

TEST(Graph, DirectedTextCountsBothLists) {
  GraphBuilder bu(4, false);
  bu.add_edge(0, 1);
  bu.add_edge(1, 2);
  GraphBuilder bd(4, true);
  bd.add_edge(0, 1);
  bd.add_edge(1, 2);
  // Same logical edge count: both formats store every edge twice.
  EXPECT_EQ(bu.build().text_size_bytes(), bd.build().text_size_bytes());
}

TEST(Graph, BinaryRoundTrip) {
  const Graph g = test::barbell_graph();
  const std::string path =
      (std::filesystem::temp_directory_path() / "gb_graph_roundtrip.bin")
          .string();
  g.save_binary(path);
  const Graph loaded = Graph::load_binary(path);
  std::filesystem::remove(path);

  ASSERT_EQ(loaded.num_vertices(), g.num_vertices());
  ASSERT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_EQ(loaded.directed(), g.directed());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.out_neighbors(v);
    const auto b = loaded.out_neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(Graph, BinaryRoundTripDirected) {
  GraphBuilder b(4, true);
  b.add_edge(0, 1);
  b.add_edge(2, 1);
  b.add_edge(3, 0);
  const Graph g = b.build();
  const std::string path =
      (std::filesystem::temp_directory_path() / "gb_graph_roundtrip_d.bin")
          .string();
  g.save_binary(path);
  const Graph loaded = Graph::load_binary(path);
  std::filesystem::remove(path);
  EXPECT_TRUE(loaded.directed());
  EXPECT_EQ(loaded.in_degree(1), 2u);
}

TEST(Graph, LoadBinaryRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gb_graph_garbage.bin")
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a graph";
  }
  EXPECT_THROW(Graph::load_binary(path), FormatError);
  std::filesystem::remove(path);
}

TEST(Graph, LoadBinaryRejectsTruncatedFile) {
  const Graph g = test::barbell_graph();
  const std::string path =
      (std::filesystem::temp_directory_path() / "gb_graph_truncated.bin")
          .string();
  g.save_binary(path);
  const auto full = std::filesystem::file_size(path);
  // Every proper prefix must be rejected cleanly — never a crash, never a
  // silently wrong graph. Cover a spread of cut points including mid-header.
  for (const std::uintmax_t size :
       {full - 1, full / 2, std::uintmax_t{22}, std::uintmax_t{9},
        std::uintmax_t{4}}) {
    std::filesystem::resize_file(path, size);
    EXPECT_THROW(Graph::load_binary(path), FormatError) << "size " << size;
  }
  std::filesystem::remove(path);
}

TEST(Graph, LoadBinaryRejectsOversizedVectorLength) {
  const Graph g = test::barbell_graph();
  const std::string path =
      (std::filesystem::temp_directory_path() / "gb_graph_oversized.bin")
          .string();
  g.save_binary(path);
  {
    // Corrupt the first vector's length field (offset 22: after magic,
    // version, directed flag, vertex and edge counts) to a huge value. A
    // trusting reader would resize() to ~2^64 elements and die.
    std::fstream out(path, std::ios::binary | std::ios::in | std::ios::out);
    out.seekp(22);
    const std::uint64_t bogus = ~std::uint64_t{0} / 2;
    out.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  EXPECT_THROW(Graph::load_binary(path), FormatError);
  std::filesystem::remove(path);
}

TEST(Graph, LoadBinaryRejectsUnknownFormatVersion) {
  const Graph g = test::barbell_graph();
  const std::string path =
      (std::filesystem::temp_directory_path() / "gb_graph_badversion.bin")
          .string();
  g.save_binary(path);
  {
    std::fstream out(path, std::ios::binary | std::ios::in | std::ios::out);
    out.seekp(8);  // version byte sits right after the magic
    const char version = 99;
    out.write(&version, 1);
  }
  EXPECT_THROW(Graph::load_binary(path), FormatError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace gb
