// Property-based round-trip tests for GraphBuilder + graph_io: random
// edge lists (duplicates and self-loops included) are built into a
// canonical CSR, serialized, and read back — the reread graph must be
// *identical*, adjacency entry for adjacency entry, not merely isomorphic.
// Degenerate shapes (empty graph, single vertex, all-isolated vertices)
// are part of the property, since those are exactly the cases ad-hoc
// fixtures forget.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "core/graph.h"
#include "core/graph_io.h"
#include "core/rng.h"

namespace gb {
namespace {

void expect_identical(const Graph& a, const Graph& b,
                      const std::string& context) {
  ASSERT_EQ(a.directed(), b.directed()) << context;
  ASSERT_EQ(a.num_vertices(), b.num_vertices()) << context;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << context;
  ASSERT_EQ(a.num_adjacency_entries(), b.num_adjacency_entries()) << context;
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto out_a = a.out_neighbors(v);
    const auto out_b = b.out_neighbors(v);
    ASSERT_EQ(std::vector<VertexId>(out_a.begin(), out_a.end()),
              std::vector<VertexId>(out_b.begin(), out_b.end()))
        << context << ", out-neighbors of vertex " << v;
    const auto in_a = a.in_neighbors(v);
    const auto in_b = b.in_neighbors(v);
    ASSERT_EQ(std::vector<VertexId>(in_a.begin(), in_a.end()),
              std::vector<VertexId>(in_b.begin(), in_b.end()))
        << context << ", in-neighbors of vertex " << v;
  }
}

Graph random_graph(std::uint64_t seed, bool directed) {
  Xoshiro256 rng(seed);
  const VertexId n = 1 + rng.next_below(120);
  // Edge count from sparse to denser than n; raw pairs may repeat, alias
  // (u,v)/(v,u) in the undirected case, or be self-loops. The builder
  // must canonicalize all of that away deterministically.
  const std::size_t m = rng.next_below(4 * n + 1);
  GraphBuilder b(n, directed);
  for (std::size_t i = 0; i < m; ++i) {
    b.add_edge(rng.next_below(n), rng.next_below(n));
  }
  return b.build();
}

Graph text_round_trip(const Graph& g) {
  std::stringstream stream;
  write_graph(g, stream);
  return read_graph(stream, g.directed());
}

TEST(GraphRoundTripProperty, RandomGraphsSurviveTextRoundTrip) {
  for (const bool directed : {false, true}) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      const Graph g = random_graph(seed ^ (directed ? 0x100 : 0), directed);
      expect_identical(g, text_round_trip(g),
                       "seed " + std::to_string(seed) +
                           (directed ? " directed" : " undirected"));
    }
  }
}

TEST(GraphRoundTripProperty, RebuildFromRereadEdgesIsAFixpoint) {
  // Canonicalization must be idempotent: feeding a built graph's own
  // adjacency back through GraphBuilder reproduces it exactly.
  for (const bool directed : {false, true}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const Graph g = random_graph(seed ^ 0x200, directed);
      GraphBuilder b(g.num_vertices(), directed);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        for (const VertexId u : g.out_neighbors(v)) b.add_edge(v, u);
      }
      expect_identical(g, b.build(), "rebuild seed " + std::to_string(seed));
    }
  }
}

TEST(GraphRoundTripProperty, EmptyGraphRoundTrips) {
  for (const bool directed : {false, true}) {
    const Graph g = GraphBuilder(0, directed).build();
    EXPECT_EQ(g.num_vertices(), 0u);
    EXPECT_EQ(g.num_edges(), 0u);
    expect_identical(g, text_round_trip(g), "empty graph");
  }
}

TEST(GraphRoundTripProperty, SingleVertexRoundTrips) {
  for (const bool directed : {false, true}) {
    GraphBuilder b(1, directed);
    b.add_edge(0, 0);  // self-loop: dropped at build time
    const Graph g = b.build();
    EXPECT_EQ(g.num_vertices(), 1u);
    EXPECT_EQ(g.num_edges(), 0u);
    expect_identical(g, text_round_trip(g), "single vertex");
  }
}

TEST(GraphRoundTripProperty, IsolatedVerticesSurviveTextRoundTrip) {
  // Vertices with no edges at all must still be present after a round
  // trip (the text format writes a line per vertex, so they persist).
  GraphBuilder b(10, false);
  b.add_edge(2, 7);
  const Graph g = b.build();
  expect_identical(g, text_round_trip(g), "isolated vertices");
}

TEST(GraphRoundTripProperty, SnapRoundTripPreservesStructure) {
  // SNAP drops isolated vertices and renumbers ids by first appearance,
  // so a round trip is isomorphic rather than identical. The invariants
  // that must survive: edge count, non-isolated vertex count, and the
  // (in-degree, out-degree) multiset.
  for (const bool directed : {false, true}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const Graph g = random_graph(seed ^ 0x300, directed);
      std::stringstream stream;
      write_snap_edge_list(g, stream);
      const Graph back = read_snap_edge_list(stream, directed);
      const std::string context = "snap seed " + std::to_string(seed) +
                                  (directed ? " directed" : " undirected");
      EXPECT_EQ(back.num_edges(), g.num_edges()) << context;

      using Degrees = std::pair<EdgeId, EdgeId>;
      std::vector<Degrees> expected;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        if (g.in_degree(v) + g.out_degree(v) > 0) {
          expected.emplace_back(g.in_degree(v), g.out_degree(v));
        }
      }
      std::vector<Degrees> actual;
      for (VertexId v = 0; v < back.num_vertices(); ++v) {
        actual.emplace_back(back.in_degree(v), back.out_degree(v));
      }
      std::sort(expected.begin(), expected.end());
      std::sort(actual.begin(), actual.end());
      EXPECT_EQ(actual, expected) << context;
    }
  }
}

}  // namespace
}  // namespace gb
