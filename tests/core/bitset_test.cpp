// DenseBitset is the frontier representation for direction-optimizing
// traversal; its claim semantics and word-boundary behavior carry the
// determinism contract, so they get exact unit coverage here.
#include "core/bitset.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/thread_pool.h"

namespace gb {
namespace {

TEST(DenseBitset, StartsEmpty) {
  DenseBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_FALSE(b.any());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DenseBitset, FullBitsetCountsEveryPosition) {
  DenseBitset b(130);
  for (std::size_t i = 0; i < 130; ++i) b.set(i);
  EXPECT_EQ(b.count(), 130u);
  EXPECT_TRUE(b.any());
  std::vector<std::size_t> seen;
  b.for_each_set([&](std::size_t i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 130u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_EQ(seen[i], i);
}

TEST(DenseBitset, WordBoundaryBits) {
  // 63, 64, 65 straddle the first word boundary; each must be
  // independent of its neighbors.
  DenseBitset b(128);
  for (const std::size_t i : {63, 64, 65}) {
    b.set(i);
    EXPECT_TRUE(b.test(i));
    EXPECT_TRUE(b.test_atomic(i));
  }
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_TRUE(b.test(63));
  EXPECT_FALSE(b.test(64));
  EXPECT_TRUE(b.test(65));
}

TEST(DenseBitset, GrowAfterGrowToPreservesBits) {
  DenseBitset b(70);
  b.set(0);
  b.set(63);
  b.set(69);
  b.grow_to(200);
  EXPECT_EQ(b.size(), 200u);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(69));
  for (std::size_t i = 70; i < 200; ++i) EXPECT_FALSE(b.test(i));
  // Shrinking is a no-op; the bits stay.
  b.grow_to(10);
  EXPECT_EQ(b.size(), 200u);
  EXPECT_EQ(b.count(), 3u);
}

TEST(DenseBitset, SetAtomicReportsTheClaim) {
  DenseBitset b(64);
  EXPECT_TRUE(b.set_atomic(7));   // first claim flips 0 -> 1
  EXPECT_FALSE(b.set_atomic(7));  // second claim loses
  EXPECT_TRUE(b.test(7));
  EXPECT_TRUE(b.test_atomic(7));
  EXPECT_EQ(b.count(), 1u);
}

TEST(DenseBitset, ConcurrentClaimsProduceExactlyOneWinnerPerBit) {
  constexpr std::size_t kBits = 1000;
  DenseBitset b(kBits);
  ThreadPool pool(4);
  std::vector<std::atomic<int>> winners(kBits);
  // Every task claims every bit; OR-idempotence guarantees exactly one
  // winner per bit regardless of schedule.
  pool.parallel_for(4 * kBits, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t bit = i % kBits;
      if (b.set_atomic(bit)) winners[bit].fetch_add(1);
    }
  });
  EXPECT_EQ(b.count(), kBits);
  for (std::size_t i = 0; i < kBits; ++i) EXPECT_EQ(winners[i].load(), 1);
}

TEST(DenseBitset, ClearWordsZeroesWholeWords) {
  DenseBitset b(192);
  for (std::size_t i = 0; i < 192; ++i) b.set(i);
  b.clear_words(64, 128);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_TRUE(b.test(i));
  for (std::size_t i = 64; i < 128; ++i) EXPECT_FALSE(b.test(i));
  for (std::size_t i = 128; i < 192; ++i) EXPECT_TRUE(b.test(i));
  b.clear();
  EXPECT_FALSE(b.any());
  EXPECT_EQ(b.size(), 192u);
}

TEST(DenseBitset, ForEachSetVisitsAscending) {
  DenseBitset b(300);
  const std::vector<std::size_t> expected{0, 1, 63, 64, 127, 128, 250, 299};
  for (auto i : expected) b.set(i);
  std::vector<std::size_t> seen;
  b.for_each_set([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

}  // namespace
}  // namespace gb
