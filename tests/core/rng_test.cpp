#include "core/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gb {
namespace {

TEST(Rng, DeterministicBySeed) {
  Xoshiro256 a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_EQ(a.next(), b.next());
  Xoshiro256 a2(42);
  EXPECT_NE(a2.next(), c.next());
}

TEST(Rng, NextBelowInRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowApproximatelyUniform) {
  Xoshiro256 rng(3);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, GeometricMeanMatchesTheory) {
  Xoshiro256 rng(4);
  const double p = 0.5;
  double total = 0;
  constexpr int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) {
    total += static_cast<double>(rng.next_geometric(p));
  }
  // Mean of failures-before-success geometric = (1-p)/p = 1.
  EXPECT_NEAR(total / kSamples, 1.0, 0.05);
}

TEST(Rng, GeometricWithCertainSuccessIsZero) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.next_geometric(1.0), 0u);
}

TEST(Rng, SplitMixDistinctStreams) {
  SplitMix64 a(7);
  SplitMix64 b(8);
  EXPECT_NE(a.next(), b.next());
}

}  // namespace
}  // namespace gb
