#include "core/graph_stats.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace gb {
namespace {

TEST(GraphStats, SummaryUndirected) {
  const Graph g = test::complete_graph(5);
  const GraphSummary s = summarize(g);
  EXPECT_EQ(s.num_vertices, 5u);
  EXPECT_EQ(s.num_edges, 10u);
  EXPECT_DOUBLE_EQ(s.link_density, 1.0);
  EXPECT_DOUBLE_EQ(s.average_degree, 4.0);
}

TEST(GraphStats, SummaryDirected) {
  GraphBuilder b(4, true);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  const Graph g = b.build();
  const GraphSummary s = summarize(g);
  EXPECT_DOUBLE_EQ(s.average_degree, 1.0);
  EXPECT_DOUBLE_EQ(s.link_density, 4.0 / 12.0);
}

TEST(GraphStats, LccCompleteGraphIsOne) {
  const Graph g = test::complete_graph(5);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(local_clustering_coefficient(g, v), 1.0);
  }
  EXPECT_DOUBLE_EQ(average_lcc(g), 1.0);
}

TEST(GraphStats, LccPathGraphIsZero) {
  const Graph g = test::path_graph(6);
  EXPECT_DOUBLE_EQ(average_lcc(g), 0.0);
}

TEST(GraphStats, LccTriangleWithTail) {
  // Triangle 0-1-2 plus tail 2-3: vertex 2 has 3 neighbors, one closed pair.
  GraphBuilder b(4, false);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_DOUBLE_EQ(local_clustering_coefficient(g, 0), 1.0);
  EXPECT_DOUBLE_EQ(local_clustering_coefficient(g, 2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(local_clustering_coefficient(g, 3), 0.0);
}

TEST(GraphStats, LccIsBetweenZeroAndOne) {
  const Graph g = test::barbell_graph();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const double lcc = local_clustering_coefficient(g, v);
    EXPECT_GE(lcc, 0.0);
    EXPECT_LE(lcc, 1.0);
  }
}

TEST(GraphStats, LargestComponentPicksBigger) {
  const Graph g = test::two_components();  // triangle + edge
  const Graph lcc = largest_component(g);
  EXPECT_EQ(lcc.num_vertices(), 3u);
  EXPECT_EQ(lcc.num_edges(), 3u);
}

TEST(GraphStats, LargestComponentConnectedInputUnchanged) {
  const Graph g = test::barbell_graph();
  const Graph lcc = largest_component(g);
  EXPECT_EQ(lcc.num_vertices(), g.num_vertices());
  EXPECT_EQ(lcc.num_edges(), g.num_edges());
}

TEST(GraphStats, LargestComponentDirectedUsesWeakConnectivity) {
  // 0 -> 1 -> 2 forms one weak component even though 2 cannot reach 0.
  GraphBuilder b(5, true);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Graph lcc = largest_component(b.build());
  EXPECT_EQ(lcc.num_vertices(), 3u);
  EXPECT_EQ(lcc.num_edges(), 2u);
  EXPECT_TRUE(lcc.directed());
}

TEST(GraphStats, DegreeDistributionRegularGraph) {
  const Graph g = test::complete_graph(6);
  const auto d = degree_distribution(g);
  EXPECT_EQ(d.min_degree, 5u);
  EXPECT_EQ(d.max_degree, 5u);
  EXPECT_DOUBLE_EQ(d.mean, 5.0);
  EXPECT_NEAR(d.gini, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.sum_squared_degree, 6.0 * 25.0);
}

TEST(GraphStats, DegreeDistributionStarIsSkewed) {
  GraphBuilder b(11, false);
  for (VertexId v = 1; v <= 10; ++v) b.add_edge(0, v);
  const auto d = degree_distribution(b.build());
  EXPECT_EQ(d.max_degree, 10u);
  EXPECT_EQ(d.p50, 1u);
  // Nearest-rank p99 over 11 sorted degrees is rank round(9.9) = 10 — the
  // hub. Truncating the rank used to report 1 here.
  EXPECT_EQ(d.p99, 10u);
  EXPECT_GT(d.gini, 0.3);
}

TEST(GraphStats, DegreeDistributionPercentilesOrdered) {
  const Graph g = test::barbell_graph();
  const auto d = degree_distribution(g);
  EXPECT_LE(d.p50, d.p90);
  EXPECT_LE(d.p90, d.p99);
  EXPECT_LE(d.p99, d.max_degree);
}

TEST(GraphStats, SortedIntersectionCount) {
  const std::vector<VertexId> a{1, 3, 5, 7};
  const std::vector<VertexId> b{2, 3, 5, 8};
  EXPECT_EQ(sorted_intersection_count(a, b, 99), 2u);
  EXPECT_EQ(sorted_intersection_count(a, b, 3), 1u);  // exclusion applies
  EXPECT_EQ(sorted_intersection_count(a, {}, 0), 0u);
}

TEST(GraphStats, SortedIntersectionGallopingPathAgrees) {
  // Force the binary-probe path with a tiny list against a huge one.
  std::vector<VertexId> big(4096);
  for (VertexId i = 0; i < big.size(); ++i) big[i] = 2 * i;
  const std::vector<VertexId> small{0, 2, 3, 4094 * 2};
  EXPECT_EQ(sorted_intersection_count(small, big, ~VertexId{0}), 3u);
}

TEST(GraphStats, EdgesBetweenNeighborsCountsOrderedPairs) {
  const Graph g = test::complete_graph(4);
  // Every vertex: 3 neighbors, all 6 ordered pairs connected.
  EXPECT_EQ(edges_between_neighbors(g, 0), 6u);
}

// ---- Graphalytics directed-LCC golden values --------------------------------
// Directed neighborhoods are the in/out UNION, the numerator counts arcs
// among neighbors, and the denominator is k(k-1) ordered pairs.

TEST(GraphStats, LccDirectedTriangleCycle) {
  // 0 -> 1 -> 2 -> 0. Every N(v) is the other two vertices (one reached
  // by an out-arc, one by an in-arc); exactly one of the two possible
  // arcs between them exists, so lcc = 1/2 — the out-only convention
  // would have reported 0 (each out-neighborhood is a single vertex).
  GraphBuilder b(3, true);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  const Graph g = b.build();
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_DOUBLE_EQ(local_clustering_coefficient(g, v), 0.5) << v;
  }
  EXPECT_DOUBLE_EQ(average_lcc(g), 0.5);
}

TEST(GraphStats, LccDirectedStarIsZero) {
  // Hub 0 -> leaves 1..4: no arcs among any neighborhood, leaves have a
  // single neighbor (k < 2), so every coefficient is 0.
  GraphBuilder b(5, true);
  for (VertexId leaf = 1; leaf < 5; ++leaf) b.add_edge(0, leaf);
  const Graph g = b.build();
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(local_clustering_coefficient(g, v), 0.0) << v;
  }
  EXPECT_DOUBLE_EQ(average_lcc(g), 0.0);
}

TEST(GraphStats, LccDirectedCliqueIsOne) {
  // All ordered pairs present: every neighborhood is fully linked.
  const Graph g = test::complete_graph(4, /*directed=*/true);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ(local_clustering_coefficient(g, v), 1.0) << v;
  }
  EXPECT_DOUBLE_EQ(average_lcc(g), 1.0);
}

TEST(GraphStats, LccDirectedUnionMixesInAndOutNeighbors) {
  // 1 -> 0, 0 -> 2, 1 -> 2: N(0) = {1 (in), 2 (out)}, and the arc 1 -> 2
  // closes one of the two ordered pairs, so lcc(0) = 1/2.
  GraphBuilder b(3, true);
  b.add_edge(1, 0);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  const Graph g = b.build();
  EXPECT_DOUBLE_EQ(local_clustering_coefficient(g, 0), 0.5);
  std::vector<VertexId> scratch;
  const auto nbrs = lcc_neighborhood(g, 0, scratch);
  EXPECT_EQ(std::vector<VertexId>(nbrs.begin(), nbrs.end()),
            (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(lcc_links(g, nbrs, 0), 1u);
  EXPECT_DOUBLE_EQ(lcc_from_counts(1, 2), 0.5);
}

TEST(GraphStats, LccFromCountsDegenerateNeighborhoods) {
  EXPECT_DOUBLE_EQ(lcc_from_counts(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(lcc_from_counts(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(lcc_from_counts(3, 3), 0.5);
}

}  // namespace
}  // namespace gb
