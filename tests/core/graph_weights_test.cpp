// Weighted-edge support in the CSR core: deterministic derived weights,
// the weighted GraphBuilder path, the EdgeWeights view, and the binary /
// SNAP round trips (including the guarantee that unweighted graphs keep
// the version-1 byte format).
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/graph.h"
#include "core/graph_io.h"
#include "datasets/generators.h"

#include "../test_util.h"

namespace gb {
namespace {

/// Temp file that cleans up after itself.
struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string(::testing::TempDir()) + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(EdgeWeightDerivation, DeterministicAndInRange) {
  for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    for (VertexId u = 0; u < 20; ++u) {
      for (VertexId v = 0; v < 20; ++v) {
        const EdgeWeight w = derive_edge_weight(u, v, true, seed);
        EXPECT_EQ(w, derive_edge_weight(u, v, true, seed));
        EXPECT_GE(w, 1u);
        EXPECT_LE(w, kMaxEdgeWeight);
      }
    }
  }
}

TEST(EdgeWeightDerivation, UndirectedWeightIsSymmetric) {
  EXPECT_EQ(derive_edge_weight(3, 11, false, 7),
            derive_edge_weight(11, 3, false, 7));
}

TEST(EdgeWeightDerivation, SeedChangesWeights) {
  // Not every pair differs, but across 64 edges at least one must.
  bool any_differ = false;
  for (VertexId v = 1; v <= 64 && !any_differ; ++v) {
    any_differ = derive_edge_weight(0, v, true, 1) !=
                 derive_edge_weight(0, v, true, 2);
  }
  EXPECT_TRUE(any_differ);
}

TEST(GraphWeights, UnweightedGraphHasNoStoredWeights) {
  const Graph g = test::complete_graph(4);
  EXPECT_FALSE(g.weighted());
  EXPECT_TRUE(g.out_weights(0).empty());
  EXPECT_TRUE(g.in_weights(0).empty());
}

TEST(GraphWeights, BuilderStoresWeightsParallelToAdjacency) {
  GraphBuilder b(4, true);
  b.add_edge(0, 2, 5);
  b.add_edge(0, 1, 9);
  b.add_edge(3, 0, 2);
  const Graph g = b.build();
  ASSERT_TRUE(g.weighted());
  const auto nbrs = g.out_neighbors(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
  const auto weights = g.out_weights(0);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_EQ(weights[0], 9u);  // 0 -> 1
  EXPECT_EQ(weights[1], 5u);  // 0 -> 2
  // In-weights line up with in_neighbors: arc 3 -> 0 carries weight 2.
  const auto in_nbrs = g.in_neighbors(0);
  ASSERT_EQ(in_nbrs.size(), 1u);
  EXPECT_EQ(in_nbrs[0], 3u);
  EXPECT_EQ(g.in_weights(0)[0], 2u);
}

TEST(GraphWeights, DuplicateEdgesKeepMinimumWeight) {
  GraphBuilder b(3, true);
  b.add_edge(0, 1, 8);
  b.add_edge(0, 1, 3);
  b.add_edge(0, 1, 5);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.out_weights(0)[0], 3u);
}

TEST(GraphWeights, MixedAddsBackfillWeightOne) {
  GraphBuilder b(3, false);
  b.add_edge(0, 1);        // unweighted add before the first weighted one
  b.add_edge(1, 2, 7);
  const Graph g = b.build();
  ASSERT_TRUE(g.weighted());
  EXPECT_EQ(g.out_weights(0)[0], 1u);
}

TEST(GraphWeights, UndirectedWeightIsSharedByBothDirections) {
  GraphBuilder b(3, false);
  b.add_edge(2, 1, 6);  // canonicalized to (1, 2)
  const Graph g = b.build();
  EXPECT_EQ(g.out_weights(1)[0], 6u);
  EXPECT_EQ(g.out_weights(2)[0], 6u);
}

TEST(GraphWeights, ZeroWeightRejected) {
  GraphBuilder b(2, true);
  EXPECT_THROW(b.add_edge(0, 1, 0), FormatError);
}

TEST(EdgeWeightsView, DerivedMatchesDeriveFunction) {
  const Graph g = test::complete_graph(5, /*directed=*/true);
  const EdgeWeights weights(g, 42);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.out_neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      EXPECT_EQ(weights.out_weight(u, k),
                derive_edge_weight(u, nbrs[k], true, 42));
      EXPECT_EQ(weights.weight(u, nbrs[k]), weights.out_weight(u, k));
    }
  }
}

TEST(EdgeWeightsView, InWeightMatchesOutWeightOfTheArc) {
  GraphBuilder b(4, true);
  b.add_edge(0, 3, 4);
  b.add_edge(1, 3, 9);
  b.add_edge(2, 3, 1);
  const Graph g = b.build();
  const EdgeWeights weights(g, 1);
  const auto in_nbrs = g.in_neighbors(3);
  for (std::size_t k = 0; k < in_nbrs.size(); ++k) {
    EXPECT_EQ(weights.in_weight(3, k), weights.weight(in_nbrs[k], 3));
  }
}

TEST(EdgeWeightsView, MaterializedDerivedWeightsMatchLazyView) {
  const Graph g = test::complete_graph(6);
  const Graph weighted = datasets::with_derived_weights(g, 42);
  ASSERT_TRUE(weighted.weighted());
  EXPECT_EQ(weighted.num_edges(), g.num_edges());
  const EdgeWeights lazy(g, 42);
  const EdgeWeights stored(weighted, 42);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.out_neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      EXPECT_EQ(stored.out_weight(u, k), lazy.out_weight(u, k));
    }
  }
}

TEST(GraphWeights, BinaryRoundTripPreservesWeights) {
  GraphBuilder b(5, true);
  b.add_edge(0, 1, 3);
  b.add_edge(1, 2, 64);
  b.add_edge(4, 0, 17);
  const Graph g = b.build();
  TempFile file("weighted_roundtrip.gb");
  g.save_binary(file.path);
  const Graph loaded = Graph::load_binary(file.path);
  ASSERT_TRUE(loaded.weighted());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto expect = g.out_weights(u);
    const auto got = loaded.out_weights(u);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got[k], expect[k]);
    }
  }
}

TEST(GraphWeights, UnweightedBinaryStaysVersionOne) {
  // Existing unweighted datasets must stay byte-identical: the format
  // version after the magic must still read 1.
  const Graph g = test::barbell_graph();
  TempFile file("unweighted_version.gb");
  g.save_binary(file.path);
  std::ifstream in(file.path, std::ios::binary);
  std::uint64_t magic = 0;
  std::uint8_t version = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  ASSERT_TRUE(in.good());
  EXPECT_EQ(version, 1);
  const Graph loaded = Graph::load_binary(file.path);
  EXPECT_FALSE(loaded.weighted());
}

TEST(GraphIoWeights, SnapRoundTripCarriesThirdColumn) {
  GraphBuilder b(3, true);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 40);
  const Graph g = b.build();
  std::ostringstream out;
  write_snap_edge_list(g, out);
  EXPECT_NE(out.str().find("0\t1\t5"), std::string::npos);
  std::istringstream in(out.str());
  const Graph loaded = read_snap_edge_list(in, true);
  ASSERT_TRUE(loaded.weighted());
  EXPECT_EQ(loaded.out_weights(0)[0], 5u);
  EXPECT_EQ(loaded.out_weights(1)[0], 40u);
}

TEST(GraphIoWeights, TwoColumnInputStaysUnweighted) {
  std::istringstream in("0\t1\n1\t2\n");
  const Graph g = read_snap_edge_list(in, false);
  EXPECT_FALSE(g.weighted());
}

TEST(GraphIoWeights, MalformedWeightRejected) {
  {
    std::istringstream in("0\t1\t0\n");  // zero weight
    EXPECT_THROW(read_snap_edge_list(in, true), FormatError);
  }
  {
    std::istringstream in("0\t1\t2x\n");  // trailing garbage
    EXPECT_THROW(read_snap_edge_list(in, true), FormatError);
  }
}

}  // namespace
}  // namespace gb
