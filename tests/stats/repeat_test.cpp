// Repeated-measurement runner: warmup/rep accounting, Tukey outlier
// flagging (flag, never drop), and the journal-side summarize_times path.
#include "stats/repeat.h"

#include <gtest/gtest.h>

#include <vector>

namespace gb::stats {
namespace {

TEST(RepeatMeasure, RunsWarmupPlusTimedReps) {
  int calls = 0;
  const auto result = repeat_measure([&] { ++calls; },
                                     {.warmup = 2, .reps = 3});
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(result.times_ms.size(), 3u);
  EXPECT_EQ(result.stats.n, 3u);
  for (const double t : result.times_ms) EXPECT_GE(t, 0.0);
}

TEST(RepeatMeasure, ZeroRepsCoercedToOne) {
  int calls = 0;
  const auto result = repeat_measure([&] { ++calls; },
                                     {.warmup = 0, .reps = 0});
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(result.times_ms.size(), 1u);
  // One rep: degenerate CI, mean == the single time.
  const auto ci = result.mean_ci();
  EXPECT_DOUBLE_EQ(ci.lo, result.stats.mean);
  EXPECT_DOUBLE_EQ(ci.hi, result.stats.mean);
}

TEST(Outliers, TukeyFenceFlagsTheTail) {
  // Five identical reps and one wild one: IQR is 0, so the fences sit on
  // the quartile and the straggler is flagged.
  const std::vector<double> times = {10.0, 10.0, 10.0, 10.0, 10.0, 100.0};
  const auto flagged = flag_outliers(times, 3.0);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], 5u);
}

TEST(Outliers, FlaggedNotDropped) {
  const std::vector<double> times = {10.0, 10.0, 10.0, 10.0, 10.0, 100.0};
  const auto result = summarize_times(times);
  EXPECT_EQ(result.outliers.size(), 1u);
  // The summary still covers every repetition — outliers are reported,
  // never silently removed.
  EXPECT_EQ(result.stats.n, 6u);
  EXPECT_DOUBLE_EQ(result.stats.mean, 25.0);
  EXPECT_DOUBLE_EQ(result.stats.max, 100.0);
}

TEST(Outliers, SmallAndRegularSamplesFlagNothing) {
  EXPECT_TRUE(flag_outliers({1.0, 100.0}, 3.0).empty());  // n < 4
  EXPECT_TRUE(flag_outliers({9.0, 10.0, 11.0, 10.0, 9.5}, 3.0).empty());
  EXPECT_TRUE(flag_outliers({5.0, 5.0, 5.0, 5.0}, 3.0).empty());
}

TEST(SummarizeTimes, MatchesDescribeAndTInterval) {
  const std::vector<double> times = {10.0, 12.0, 11.0, 13.0};
  const auto result = summarize_times(times);
  const auto d = describe(times);
  EXPECT_DOUBLE_EQ(result.stats.mean, d.mean);
  EXPECT_DOUBLE_EQ(result.stats.sd, d.sd);
  const auto ci = result.mean_ci(0.99);
  const auto expected = t_interval(d, 0.99);
  EXPECT_DOUBLE_EQ(ci.lo, expected.lo);
  EXPECT_DOUBLE_EQ(ci.hi, expected.hi);
}

}  // namespace
}  // namespace gb::stats
