// Shared statistics layer (DESIGN.md §15): descriptive stats with the
// unbiased n-1 variance, the repo-wide nearest-rank percentile rule
// (golden-pinned on 1-, 2- and ties-heavy inputs), Student-t intervals
// against closed-form table values, interval-overlap gates, and the
// seeded BCa bootstrap's bit-identity at every pool size.
#include "stats/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/thread_pool.h"

namespace gb::stats {
namespace {

TEST(Describe, UnbiasedSampleVariance) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  const auto d = describe(values);
  EXPECT_EQ(d.n, 4u);
  EXPECT_DOUBLE_EQ(d.mean, 2.5);
  // Sum of squared deviations is 5.0; the n-1 divisor gives 5/3, where
  // the population divisor would give 5/4 — the difference this layer
  // exists to pin down.
  EXPECT_DOUBLE_EQ(d.variance, 5.0 / 3.0);
  EXPECT_DOUBLE_EQ(d.sd, std::sqrt(5.0 / 3.0));
  EXPECT_DOUBLE_EQ(d.min, 1.0);
  EXPECT_DOUBLE_EQ(d.max, 4.0);
}

TEST(Describe, SingleObservationHasZeroVariance) {
  const std::vector<double> values = {7.5};
  const auto d = describe(values);
  EXPECT_EQ(d.n, 1u);
  EXPECT_DOUBLE_EQ(d.mean, 7.5);
  EXPECT_DOUBLE_EQ(d.variance, 0.0);
  EXPECT_DOUBLE_EQ(d.sd, 0.0);
}

TEST(Describe, EmptyIsAllZero) {
  const auto d = describe(std::span<const double>());
  EXPECT_EQ(d.n, 0u);
  EXPECT_DOUBLE_EQ(d.mean, 0.0);
  EXPECT_DOUBLE_EQ(d.variance, 0.0);
}

TEST(NearestRank, RankRuleGolden) {
  // ceil(q * n), clamped to [1, n].
  EXPECT_EQ(nearest_rank(0, 0.5), 0u);
  EXPECT_EQ(nearest_rank(1, 0.0), 1u);
  EXPECT_EQ(nearest_rank(1, 0.5), 1u);
  EXPECT_EQ(nearest_rank(1, 1.0), 1u);
  EXPECT_EQ(nearest_rank(2, 0.5), 1u);   // ceil(1.0) = 1
  EXPECT_EQ(nearest_rank(2, 0.51), 2u);  // ceil(1.02) = 2
  EXPECT_EQ(nearest_rank(10, 0.50), 5u);
  EXPECT_EQ(nearest_rank(10, 0.90), 9u);
  EXPECT_EQ(nearest_rank(10, 0.91), 10u);
  EXPECT_EQ(nearest_rank(10, 0.99), 10u);
  EXPECT_EQ(nearest_rank(11, 0.50), 6u);
  EXPECT_EQ(nearest_rank(11, 0.99), 11u);
}

TEST(Percentile, EmptySingleAndAllEqual) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({5.0, 5.0, 5.0, 5.0}, 0.01), 5.0);
  EXPECT_DOUBLE_EQ(percentile({5.0, 5.0, 5.0, 5.0}, 0.99), 5.0);
}

TEST(Percentile, TwoElementGolden) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 0.50), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 0.51), 2.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 1.0), 2.0);
}

TEST(Percentile, TiesHeavyGolden) {
  // Nine 1s and one 10: the tail value appears exactly past rank 9.
  const std::vector<double> ties = {1, 1, 1, 1, 1, 1, 1, 1, 1, 10};
  EXPECT_DOUBLE_EQ(percentile(ties, 0.50), 1.0);
  EXPECT_DOUBLE_EQ(percentile(ties, 0.90), 1.0);
  EXPECT_DOUBLE_EQ(percentile(ties, 0.91), 10.0);
  EXPECT_DOUBLE_EQ(percentile(ties, 0.99), 10.0);
}

TEST(Percentile, SortsItsInput) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(PercentileInterpolated, R7RuleGolden) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_interpolated(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_interpolated(values, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile_interpolated(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile_interpolated(values, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(percentile_interpolated({42.0}, 0.9), 42.0);
  EXPECT_DOUBLE_EQ(percentile_interpolated({}, 0.9), 0.0);
}

TEST(Intervals, ToleranceBandAndOverlap) {
  const auto band = tolerance_interval(100.0, 0.05, 0.01);
  EXPECT_DOUBLE_EQ(band.lo, 95.0);
  EXPECT_DOUBLE_EQ(band.hi, 105.0);
  EXPECT_DOUBLE_EQ(band.center, 100.0);

  // The absolute floor governs when the relative band is smaller.
  const auto floor_band = tolerance_interval(0.02, 0.05, 0.01);
  EXPECT_DOUBLE_EQ(floor_band.lo, 0.01);
  EXPECT_DOUBLE_EQ(floor_band.hi, 0.03);

  // Negative values band around |v|.
  const auto neg = tolerance_interval(-100.0, 0.05, 0.01);
  EXPECT_DOUBLE_EQ(neg.lo, -105.0);
  EXPECT_DOUBLE_EQ(neg.hi, -95.0);

  Interval a{0.0, 1.0, 0.5, 0.0};
  Interval b{1.0, 2.0, 1.5, 0.0};   // closed intervals: touching counts
  Interval c{1.1, 2.0, 1.5, 0.0};
  EXPECT_TRUE(overlaps(a, b));
  EXPECT_TRUE(overlaps(b, a));
  EXPECT_FALSE(overlaps(a, c));
  EXPECT_FALSE(overlaps(c, a));
}

TEST(NormalQuantile, TableValues) {
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-7);
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.05), -1.644853627, 1e-7);
  EXPECT_NEAR(normal_quantile(0.001), -3.090232306, 1e-6);
}

TEST(StudentT, CdfAndQuantileTableValues) {
  EXPECT_DOUBLE_EQ(student_t_cdf(0.0, 5.0), 0.5);
  // Classic two-sided 95% critical values.
  EXPECT_NEAR(student_t_quantile(0.975, 1.0), 12.70620474, 1e-6);
  EXPECT_NEAR(student_t_quantile(0.975, 2.0), 4.30265273, 1e-7);
  EXPECT_NEAR(student_t_quantile(0.975, 4.0), 2.77644511, 1e-7);
  EXPECT_NEAR(student_t_quantile(0.975, 9.0), 2.26215716, 1e-7);
  EXPECT_NEAR(student_t_quantile(0.995, 9.0), 3.24983554, 1e-7);
  // Symmetry and round-trip through the CDF.
  EXPECT_NEAR(student_t_quantile(0.025, 4.0), -2.77644511, 1e-7);
  EXPECT_NEAR(student_t_cdf(2.77644511, 4.0), 0.975, 1e-8);
  EXPECT_DOUBLE_EQ(student_t_quantile(0.5, 7.0), 0.0);
}

TEST(TInterval, MatchesClosedForm) {
  // {1..5}: mean 3, sd sqrt(2.5), n 5 → half-width t(0.975, 4) * sd/√5.
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto ci = t_interval(std::span<const double>(values), 0.95);
  const double half = 2.7764451052 * std::sqrt(2.5) / std::sqrt(5.0);
  EXPECT_NEAR(ci.lo, 3.0 - half, 1e-8);
  EXPECT_NEAR(ci.hi, 3.0 + half, 1e-8);
  EXPECT_DOUBLE_EQ(ci.center, 3.0);
  EXPECT_DOUBLE_EQ(ci.confidence, 0.95);
}

TEST(TInterval, DegenerateSamplesCollapseToPoint) {
  const std::vector<double> one = {4.2};
  const auto single = t_interval(std::span<const double>(one));
  EXPECT_DOUBLE_EQ(single.lo, 4.2);
  EXPECT_DOUBLE_EQ(single.hi, 4.2);

  const std::vector<double> constant = {4.2, 4.2, 4.2};
  const auto flat = t_interval(std::span<const double>(constant));
  EXPECT_DOUBLE_EQ(flat.lo, 4.2);
  EXPECT_DOUBLE_EQ(flat.hi, 4.2);
}

std::vector<double> bootstrap_sample() {
  // A deliberately skewed sample (mostly small, one heavy tail value) so
  // the BCa bias/acceleration corrections are actually exercised.
  return {1.2, 1.4, 1.1, 1.3, 9.0, 1.5, 1.2, 1.6, 1.4, 1.3,
          1.1, 1.7, 1.2, 1.5, 1.3, 1.4, 1.2, 1.6, 1.1, 1.8};
}

TEST(Bootstrap, BitIdenticalAtEveryParallelism) {
  const auto values = bootstrap_sample();
  const auto serial =
      bootstrap_mean(std::span<const double>(values), {}, nullptr);
  for (const std::uint32_t threads : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(threads);
    const auto parallel =
        bootstrap_mean(std::span<const double>(values), {}, &pool);
    EXPECT_EQ(parallel.lo, serial.lo) << threads << " threads";
    EXPECT_EQ(parallel.hi, serial.hi) << threads << " threads";
  }
}

TEST(Bootstrap, SeedChangesDrawsSameSeedRepeats) {
  const auto values = bootstrap_sample();
  BootstrapOptions options;
  const auto a = bootstrap_mean(std::span<const double>(values), options);
  const auto b = bootstrap_mean(std::span<const double>(values), options);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
  options.seed = 1234;
  const auto c = bootstrap_mean(std::span<const double>(values), options);
  EXPECT_TRUE(c.lo != a.lo || c.hi != a.hi);
}

TEST(Bootstrap, IntervalBracketsTheMeanOfADispersedSample) {
  const auto values = bootstrap_sample();
  const auto ci = bootstrap_mean(std::span<const double>(values));
  EXPECT_LT(ci.lo, ci.center);
  EXPECT_GT(ci.hi, ci.center);
  EXPECT_DOUBLE_EQ(ci.center, describe(values).mean);
}

TEST(Bootstrap, DegenerateInputsCollapseToPoint) {
  const std::vector<double> one = {3.0};
  const auto single = bootstrap_mean(std::span<const double>(one));
  EXPECT_DOUBLE_EQ(single.lo, 3.0);
  EXPECT_DOUBLE_EQ(single.hi, 3.0);

  const std::vector<double> constant = {2.0, 2.0, 2.0, 2.0};
  const auto flat = bootstrap_mean(std::span<const double>(constant));
  EXPECT_DOUBLE_EQ(flat.lo, 2.0);
  EXPECT_DOUBLE_EQ(flat.hi, 2.0);
}

}  // namespace
}  // namespace gb::stats
