// Stress and edge-case coverage for the thread pool's deterministic
// chunking layer: nested calls, zero-length ranges, exception semantics,
// inline execution on size-1 pools, and concurrent external callers.
#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

namespace gb {
namespace {

using ChunkPlan = std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>;

/// Record every (chunk, begin, end) triple run_chunks issues, sorted by
/// chunk index so concurrent execution order does not matter.
ChunkPlan record_plan(ThreadPool* pool, std::size_t n) {
  std::mutex mu;
  ChunkPlan plan;
  run_chunks(pool, n, [&](std::size_t c, std::size_t begin, std::size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    plan.emplace_back(c, begin, end);
  });
  std::sort(plan.begin(), plan.end());
  return plan;
}

TEST(ThreadPoolPlan, PlanChunksIsPureFunctionOfN) {
  EXPECT_EQ(ThreadPool::plan_chunks(0), 0u);
  EXPECT_EQ(ThreadPool::plan_chunks(1), 1u);
  EXPECT_EQ(ThreadPool::plan_chunks(ThreadPool::kDefaultGrain), 1u);
  EXPECT_EQ(ThreadPool::plan_chunks(ThreadPool::kDefaultGrain + 1), 2u);
  // Large loops hit the cap, bounding the serial merge cost.
  EXPECT_EQ(ThreadPool::plan_chunks(10'000'000), ThreadPool::kMaxChunks);
  // A zero grain is clamped rather than dividing by zero.
  EXPECT_EQ(ThreadPool::plan_chunks(10, 0), 10u);
}

TEST(ThreadPoolPlan, ChunkRangesTileTheRangeExactly) {
  for (const std::size_t n : {1u, 7u, 512u, 513u, 1024u, 4097u, 100'000u}) {
    const std::size_t chunks = ThreadPool::plan_chunks(n);
    std::size_t expected_begin = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto [begin, end] = ThreadPool::chunk_range(n, chunks, c);
      EXPECT_EQ(begin, expected_begin) << "n=" << n << " c=" << c;
      EXPECT_LE(begin, end);
      expected_begin = end;
    }
    EXPECT_EQ(expected_begin, n) << "n=" << n;
  }
}

TEST(ThreadPoolPlan, PlanIdenticalForEveryPoolSize) {
  const std::size_t n = 5000;
  const ChunkPlan baseline = record_plan(nullptr, n);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(record_plan(&ThreadPool::serial(), n), baseline);
  ThreadPool three(3);
  EXPECT_EQ(record_plan(&three, n), baseline);
  EXPECT_EQ(record_plan(&ThreadPool::global(), n), baseline);
}

TEST(ThreadPoolPlan, NullPoolRunsChunksInAscendingOrder) {
  std::vector<std::size_t> order;
  run_chunks(nullptr, 5000,
             [&](std::size_t c, std::size_t, std::size_t) { order.push_back(c); });
  ASSERT_GT(order.size(), 1u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(ThreadPoolStress, ZeroLengthRangeIssuesNoChunks) {
  bool called = false;
  const auto fn = [&](std::size_t, std::size_t, std::size_t) { called = true; };
  run_chunks(nullptr, 0, fn);
  run_chunks(&ThreadPool::global(), 0, fn);
  ThreadPool pool(2);
  pool.parallel_chunks(0, ThreadPool::plan_chunks(0), fn);
  EXPECT_FALSE(called);
}

TEST(ThreadPoolStress, PoolOfOneRunsChunksInlineOnCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  pool.parallel_chunks(4096, ThreadPool::plan_chunks(4096),
                       [&](std::size_t, std::size_t, std::size_t) {
                         seen.insert(std::this_thread::get_id());
                       });
  EXPECT_EQ(seen, std::set<std::thread::id>{caller});
}

TEST(ThreadPoolStress, SerialSingletonIsSizeOneAndStable) {
  ThreadPool& a = ThreadPool::serial();
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(&a, &ThreadPool::serial());
}

TEST(ThreadPoolStress, GlobalSingletonIsStableAcrossUses) {
  ThreadPool& pool = ThreadPool::global();
  EXPECT_EQ(&pool, &ThreadPool::global());
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> covered{0};
    run_chunks(&pool, 2048, [&](std::size_t, std::size_t begin, std::size_t end) {
      covered.fetch_add(end - begin);
    });
    EXPECT_EQ(covered.load(), 2048u);
  }
}

TEST(ThreadPoolStress, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<std::size_t> inner_total{0};
  pool.parallel_for(64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // Re-entering the pool from one of its workers must not enqueue
      // (all workers could block waiting on each other) — it runs inline.
      pool.parallel_for(10, [&](std::size_t b, std::size_t e) {
        inner_total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 64u * 10u);
}

TEST(ThreadPoolStress, NestedRunChunksCoversEverything) {
  ThreadPool& pool = ThreadPool::global();
  std::atomic<std::size_t> total{0};
  run_chunks(&pool, 2000, [&](std::size_t, std::size_t begin, std::size_t end) {
    run_chunks(&pool, end - begin, [&](std::size_t, std::size_t b, std::size_t e) {
      total.fetch_add(e - b);
    });
  });
  EXPECT_EQ(total.load(), 2000u);
}

TEST(ThreadPoolStress, ParallelForExceptionFirstOneWins) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(100'000, [](std::size_t begin, std::size_t) {
      throw std::runtime_error("block@" + std::to_string(begin));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Exactly one of the block exceptions surfaces, not a torn mixture.
    EXPECT_EQ(std::string(e.what()).rfind("block@", 0), 0u);
  }
}

TEST(ThreadPoolStress, ParallelChunksExceptionFirstOneWins) {
  ThreadPool pool(4);
  const std::size_t n = 100'000;
  const std::size_t chunks = ThreadPool::plan_chunks(n);
  ASSERT_GT(chunks, 1u);
  try {
    pool.parallel_chunks(n, chunks, [](std::size_t c, std::size_t, std::size_t) {
      throw std::runtime_error("chunk@" + std::to_string(c));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("chunk@", 0), 0u);
  }
}

TEST(ThreadPoolStress, PoolIsReusableAfterAnException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_chunks(10'000, ThreadPool::plan_chunks(10'000),
                                    [](std::size_t, std::size_t, std::size_t) {
                                      throw std::logic_error("boom");
                                    }),
               std::logic_error);
  std::atomic<std::size_t> covered{0};
  pool.parallel_chunks(10'000, ThreadPool::plan_chunks(10'000),
                       [&](std::size_t, std::size_t begin, std::size_t end) {
                         covered.fetch_add(end - begin);
                       });
  EXPECT_EQ(covered.load(), 10'000u);
}

TEST(ThreadPoolStress, ExceptionPropagatesThroughRunChunksHelper) {
  EXPECT_THROW(run_chunks(&ThreadPool::global(), 5000,
                          [](std::size_t c, std::size_t, std::size_t) {
                            if (c == 1) throw std::out_of_range("nope");
                          }),
               std::out_of_range);
  // The null-pool (inline) path rethrows too.
  EXPECT_THROW(run_chunks(nullptr, 5000,
                          [](std::size_t c, std::size_t, std::size_t) {
                            if (c == 1) throw std::out_of_range("nope");
                          }),
               std::out_of_range);
}

TEST(ThreadPoolStress, ConcurrentExternalCallersShareOnePool) {
  ThreadPool& pool = ThreadPool::global();
  constexpr int kCallers = 4;
  constexpr std::size_t kN = 20'000;
  std::vector<std::uint64_t> sums(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      const std::size_t chunks = ThreadPool::plan_chunks(kN);
      std::vector<std::uint64_t> partial(chunks, 0);
      pool.parallel_chunks(kN, chunks,
                           [&](std::size_t c, std::size_t begin, std::size_t end) {
                             std::uint64_t s = 0;
                             for (std::size_t i = begin; i < end; ++i) s += i;
                             partial[c] = s;
                           });
      std::uint64_t total = 0;
      for (const std::uint64_t s : partial) total += s;
      sums[t] = total;
    });
  }
  for (auto& th : callers) th.join();
  const std::uint64_t expected = kN * (kN - 1) / 2;
  for (const std::uint64_t s : sums) EXPECT_EQ(s, expected);
}

}  // namespace
}  // namespace gb
