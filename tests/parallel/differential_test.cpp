// Serial-vs-parallel differential suite: every platform, every algorithm,
// on generated instances of a real dataset class, must be *observably
// identical* when run with parallelism = 1 (serial baseline), 2, and 0
// (all hardware threads). Identical means bit-identical: outcome, vertex
// values, scalars, iteration counts, simulated times and the full phase
// breakdown. The engines buy this with deterministic chunk plans (a pure
// function of the loop size) merged in ascending chunk order, so the pool
// only changes wall-clock time, never output.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "algorithms/platform_suite.h"
#include "core/thread_pool.h"
#include "datasets/catalog.h"
#include "harness/experiment.h"
#include "../test_util.h"

namespace gb::algorithms {
namespace {

using platforms::Algorithm;
using platforms::AlgorithmParams;

struct PlatformCase {
  const char* label;
  std::unique_ptr<platforms::Platform> (*factory)();
};

std::unique_ptr<platforms::Platform> make_graphlab_stock() {
  return make_graphlab(false);
}
std::unique_ptr<platforms::Platform> make_graphlab_mp() {
  return make_graphlab(true);
}

const PlatformCase kPlatforms[] = {
    {"Hadoop", &make_hadoop},          {"YARN", &make_yarn},
    {"Stratosphere", &make_stratosphere}, {"Giraph", &make_giraph},
    {"GraphLab", &make_graphlab_stock},   {"GraphLab_mp", &make_graphlab_mp},
    {"Neo4j", &make_neo4j},
};

const Algorithm kAlgorithms[] = {Algorithm::kBfs,  Algorithm::kConn,
                                 Algorithm::kCd,   Algorithm::kPageRank,
                                 Algorithm::kStats, Algorithm::kEvo};

class SerialParallelDifferential
    : public ::testing::TestWithParam<PlatformCase> {
 protected:
  harness::Measurement run(const datasets::Dataset& ds, Algorithm algorithm,
                           const AlgorithmParams& params,
                           std::uint32_t parallelism) {
    const auto platform = GetParam().factory();
    sim::ClusterConfig cfg;
    cfg.num_workers = 4;
    cfg.parallelism = parallelism;
    return harness::run_cell(*platform, ds, algorithm, params, cfg);
  }

  /// The differential oracle: two runs of the same cell must agree on
  /// every simulated observable. Only host_threads / host_wall_seconds
  /// (host-side observability) may differ.
  void expect_identical(const harness::Measurement& serial,
                        const harness::Measurement& parallel,
                        const char* what) {
    SCOPED_TRACE(what);
    ASSERT_EQ(serial.outcome, parallel.outcome);
    EXPECT_EQ(serial.message, parallel.message);
    EXPECT_EQ(serial.result.output.vertex_values,
              parallel.result.output.vertex_values);
    EXPECT_EQ(serial.result.output.scalar, parallel.result.output.scalar);
    EXPECT_EQ(serial.result.output.vertices, parallel.result.output.vertices);
    EXPECT_EQ(serial.result.output.edges, parallel.result.output.edges);
    EXPECT_EQ(serial.result.output.iterations,
              parallel.result.output.iterations);
    EXPECT_EQ(serial.result.total_time, parallel.result.total_time);
    EXPECT_EQ(serial.result.computation_time,
              parallel.result.computation_time);
    EXPECT_EQ(serial.result.phases, parallel.result.phases);
  }

  void run_differential(const datasets::Dataset& ds, Algorithm algorithm,
                        const AlgorithmParams& params) {
    const auto serial = run(ds, algorithm, params, 1);
    EXPECT_EQ(serial.host_threads, 1u);
    const auto two = run(ds, algorithm, params, 2);
    EXPECT_EQ(two.host_threads, 2u);
    expect_identical(serial, two, "parallelism=2 vs serial");
    const auto hw = run(ds, algorithm, params, 0);
    EXPECT_EQ(hw.host_threads, ThreadPool::global().size());
    expect_identical(serial, hw, "parallelism=hardware vs serial");
  }
};

TEST_P(SerialParallelDifferential, AllAlgorithmsOnKgsClassGraph) {
  // Undirected, community-structured; ~5k vertices at this scale, so the
  // 512-grain plan splits the hot loops into real multi-chunk work.
  const auto ds = datasets::generate(datasets::DatasetId::kKGS, 0.01, 21);
  const auto params = harness::default_params(ds);
  for (const Algorithm algorithm : kAlgorithms) {
    SCOPED_TRACE(platforms::algorithm_name(algorithm));
    run_differential(ds, algorithm, params);
  }
}

TEST_P(SerialParallelDifferential, AllAlgorithmsOnCitationClassGraph) {
  // Directed DAG: exercises the in/out-edge split in CONN, CD and
  // PageRank under the same differential oracle.
  const auto ds = datasets::generate(datasets::DatasetId::kCitation, 0.005, 22);
  const auto params = harness::default_params(ds);
  for (const Algorithm algorithm : kAlgorithms) {
    SCOPED_TRACE(platforms::algorithm_name(algorithm));
    run_differential(ds, algorithm, params);
  }
}

TEST_P(SerialParallelDifferential, TinyGraphsDegenerateToOneChunk) {
  // n < grain means a single chunk: the parallel path must still agree
  // (and in fact executes the identical plan inline).
  const auto ds = test::as_dataset(test::barbell_graph());
  AlgorithmParams params;
  for (const Algorithm algorithm : kAlgorithms) {
    SCOPED_TRACE(platforms::algorithm_name(algorithm));
    run_differential(ds, algorithm, params);
  }
}

TEST_P(SerialParallelDifferential, DedicatedPoolSizeIsHonored) {
  const auto ds = test::as_dataset(test::two_components());
  const auto m = run(ds, Algorithm::kConn, {}, 3);
  ASSERT_TRUE(m.ok()) << m.message;
  EXPECT_EQ(m.host_threads, 3u);
  EXPECT_GE(m.host_wall_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, SerialParallelDifferential, ::testing::ValuesIn(kPlatforms),
    [](const ::testing::TestParamInfo<PlatformCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace gb::algorithms
