// Concurrency stress for the dataset cache: N threads race
// load_or_generate on the same (dataset, scale, seed) cell with a shared
// cache directory. The atomic temp-file + rename publish means every
// thread must come back with the same graph and no thread may ever see a
// half-written cache file. Runs under TSAN in CI.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "datasets/catalog.h"

namespace gb::datasets {
namespace {

std::string fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(CacheStress, ConcurrentLoadOrGenerateSameCell) {
  const std::string dir = fresh_dir("gb_cache_stress_same");
  constexpr int kThreads = 8;
  std::vector<Dataset> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&results, &dir, i] {
        results[static_cast<std::size_t>(i)] =
            load_or_generate(DatasetId::kKGS, 0.01, 5, dir);
      });
    }
    for (auto& t : threads) t.join();
  }
  const Dataset reference = generate(DatasetId::kKGS, 0.01, 5);
  for (const auto& ds : results) {
    EXPECT_EQ(ds.graph.num_vertices(), reference.graph.num_vertices());
    EXPECT_EQ(ds.graph.num_edges(), reference.graph.num_edges());
  }
  // The published cache is valid — no temp debris left behind counts as
  // the cell (a later run must hit it, not regenerate garbage).
  const Dataset cached = load_or_generate(DatasetId::kKGS, 0.01, 5, dir);
  EXPECT_EQ(cached.graph.num_edges(), reference.graph.num_edges());
  std::filesystem::remove_all(dir);
}

TEST(CacheStress, ConcurrentLoadOrGenerateMixedCells) {
  // Different cells sharing one directory must not cross-contaminate.
  const std::string dir = fresh_dir("gb_cache_stress_mixed");
  struct Cell {
    DatasetId id;
    double scale;
    std::uint64_t seed;
  };
  const std::vector<Cell> cells = {
      {DatasetId::kKGS, 0.01, 5},
      {DatasetId::kKGS, 0.01, 6},
      {DatasetId::kAmazon, 0.02, 5},
      {DatasetId::kWikiTalk, 0.01, 5},
  };
  constexpr int kRounds = 2;
  std::vector<Dataset> results(cells.size() * kRounds);
  {
    std::vector<std::thread> threads;
    for (int round = 0; round < kRounds; ++round) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        const std::size_t slot = static_cast<std::size_t>(round) * cells.size() + c;
        threads.emplace_back([&results, &cells, &dir, slot, c] {
          results[slot] = load_or_generate(cells[c].id, cells[c].scale,
                                           cells[c].seed, dir);
        });
      }
    }
    for (auto& t : threads) t.join();
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const Dataset reference =
        generate(cells[c].id, cells[c].scale, cells[c].seed);
    for (int round = 0; round < kRounds; ++round) {
      const auto& ds =
          results[static_cast<std::size_t>(round) * cells.size() + c];
      EXPECT_EQ(ds.graph.num_vertices(), reference.graph.num_vertices())
          << ds.name << " round " << round;
      EXPECT_EQ(ds.graph.num_edges(), reference.graph.num_edges())
          << ds.name << " round " << round;
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gb::datasets
