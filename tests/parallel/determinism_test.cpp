// Determinism under repetition: the same (platform, dataset, algorithm,
// seed) cell, run repeatedly with the multi-threaded pool, must serialize
// to the same report JSON every time. Only host_wall_sec — real
// wall-clock, explicitly excluded from the determinism contract — is
// stripped before comparing.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "algorithms/platform_suite.h"
#include "datasets/catalog.h"
#include "harness/experiment.h"
#include "harness/json.h"

namespace gb::algorithms {
namespace {

using platforms::Algorithm;

/// Remove the "host_wall_sec" member (key and value) from a compact JSON
/// object; everything else must match bit for bit.
std::string strip_wall_clock(std::string json) {
  const std::string key = "\"host_wall_sec\":";
  const auto start = json.find(key);
  if (start == std::string::npos) return json;
  auto end = start + key.size();
  while (end < json.size() && json[end] != ',' && json[end] != '}') ++end;
  if (end < json.size() && json[end] == ',') ++end;  // eat the separator
  json.erase(start, end - start);
  return json;
}

TEST(ParallelDeterminism, StripHelperRemovesOnlyTheWallClock) {
  EXPECT_EQ(strip_wall_clock("{\"a\":1,\"host_wall_sec\":0.125,\"b\":2}"),
            "{\"a\":1,\"b\":2}");
  EXPECT_EQ(strip_wall_clock("{\"host_wall_sec\":3}"), "{}");
  EXPECT_EQ(strip_wall_clock("{\"a\":1}"), "{\"a\":1}");
}

std::string run_report(const platforms::Platform& platform,
                       const datasets::Dataset& ds, Algorithm algorithm) {
  sim::ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.parallelism = 0;  // all hardware threads
  const auto params = harness::default_params(ds);
  const auto m = harness::run_cell(platform, ds, algorithm, params, cfg);
  return harness::measurement_to_json(platform.name(), ds.name,
                                      platforms::algorithm_name(algorithm), m);
}

TEST(ParallelDeterminism, RepeatedRunsProduceIdenticalReports) {
  const auto ds = datasets::generate(datasets::DatasetId::kKGS, 0.01, 7);
  const struct {
    std::unique_ptr<platforms::Platform> platform;
    Algorithm algorithm;
  } cells[] = {
      {make_giraph(), Algorithm::kBfs},
      {make_graphlab(), Algorithm::kConn},
      {make_hadoop(), Algorithm::kCd},
      {make_stratosphere(), Algorithm::kPageRank},
      {make_neo4j(), Algorithm::kStats},
  };
  for (const auto& cell : cells) {
    SCOPED_TRACE(cell.platform->name());
    const std::string first =
        strip_wall_clock(run_report(*cell.platform, ds, cell.algorithm));
    EXPECT_NE(first.find("\"host_threads\""), std::string::npos);
    for (int rep = 1; rep < 5; ++rep) {
      const std::string again =
          strip_wall_clock(run_report(*cell.platform, ds, cell.algorithm));
      EXPECT_EQ(again, first) << "repetition " << rep;
    }
  }
}

TEST(ParallelDeterminism, RegeneratedDatasetDoesNotPerturbReports) {
  // The full chain — generator, engine, JSON — is a pure function of the
  // seed even when every stage is rebuilt from scratch.
  const auto a = datasets::generate(datasets::DatasetId::kCitation, 0.005, 3);
  const auto b = datasets::generate(datasets::DatasetId::kCitation, 0.005, 3);
  const auto giraph = make_giraph();
  EXPECT_EQ(strip_wall_clock(run_report(*giraph, a, Algorithm::kPageRank)),
            strip_wall_clock(run_report(*giraph, b, Algorithm::kPageRank)));
}

}  // namespace
}  // namespace gb::algorithms
