// Fault injection must not weaken the PR 1 determinism contract: the same
// fault plan produces a bit-identical fault schedule — and a bit-identical
// report — at every host `parallelism`. Only host_threads (varies with the
// setting by definition) and host_wall_sec (real wall-clock) are stripped
// before comparison.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "algorithms/platform_suite.h"
#include "datasets/catalog.h"
#include "harness/experiment.h"
#include "harness/json.h"
#include "sim/faults.h"

namespace gb::algorithms {
namespace {

using platforms::Algorithm;

/// Remove one "key":value member (and its separator) from compact JSON.
std::string strip_member(std::string json, const std::string& name) {
  const std::string key = "\"" + name + "\":";
  const auto start = json.find(key);
  if (start == std::string::npos) return json;
  auto end = start + key.size();
  while (end < json.size() && json[end] != ',' && json[end] != '}') ++end;
  if (end < json.size() && json[end] == ',') ++end;
  json.erase(start, end - start);
  return json;
}

std::string strip_host_fields(std::string json) {
  return strip_member(strip_member(std::move(json), "host_wall_sec"),
                      "host_threads");
}

std::string run_report(const platforms::Platform& platform,
                       const datasets::Dataset& ds, Algorithm algorithm,
                       const sim::FaultPlan& faults,
                       std::uint32_t parallelism,
                       std::uint32_t checkpoint_interval = 0) {
  sim::ClusterConfig cfg;
  cfg.num_workers = 8;
  cfg.parallelism = parallelism;
  cfg.faults = faults;
  auto params = harness::default_params(ds);
  params.checkpoint_interval = checkpoint_interval;
  const auto m = harness::run_cell(platform, ds, algorithm, params, cfg);
  return harness::measurement_to_json(platform.name(), ds.name,
                                      platforms::algorithm_name(algorithm), m);
}

TEST(FaultDeterminism, SameSeedSameScheduleAtEveryParallelism) {
  const auto ds = datasets::generate(datasets::DatasetId::kKGS, 0.01, 7);
  sim::FaultPlan plan = sim::FaultPlan::random(1234, 8, 600.0, 6);
  plan.add_spec("straggler:50:2.5:100");

  const struct {
    std::unique_ptr<platforms::Platform> platform;
    Algorithm algorithm;
    std::uint32_t checkpoint_interval;
  } cells[] = {
      {make_hadoop(), Algorithm::kConn, 0},
      {make_giraph(), Algorithm::kBfs, 2},
      {make_stratosphere(), Algorithm::kConn, 0},
  };
  for (const auto& cell : cells) {
    SCOPED_TRACE(cell.platform->name());
    const std::string serial = strip_host_fields(
        run_report(*cell.platform, ds, cell.algorithm, plan, 1,
                   cell.checkpoint_interval));
    EXPECT_NE(serial.find("\"faults\""), std::string::npos);
    for (const std::uint32_t parallelism : {2u, 0u}) {
      const std::string parallel = strip_host_fields(
          run_report(*cell.platform, ds, cell.algorithm, plan, parallelism,
                     cell.checkpoint_interval));
      EXPECT_EQ(parallel, serial) << "parallelism " << parallelism;
    }
  }
}

TEST(FaultDeterminism, AbortedRunsAreDeterministicToo) {
  // GraphLab aborts on a worker loss; the failure report — outcome,
  // message, fault stats — must also be parallelism-independent.
  const auto ds = datasets::generate(datasets::DatasetId::kKGS, 0.01, 7);
  sim::FaultPlan plan;
  plan.add_spec("worker:100:2");
  const auto graphlab = make_graphlab();
  const std::string serial =
      strip_host_fields(run_report(*graphlab, ds, Algorithm::kConn, plan, 1));
  EXPECT_NE(serial.find("crash"), std::string::npos);
  const std::string parallel =
      strip_host_fields(run_report(*graphlab, ds, Algorithm::kConn, plan, 0));
  EXPECT_EQ(parallel, serial);
}

TEST(FaultDeterminism, NoFaultPlanReportsAllZeroFaultSection) {
  const auto ds = datasets::generate(datasets::DatasetId::kKGS, 0.01, 7);
  const auto giraph = make_giraph();
  const std::string report =
      run_report(*giraph, ds, Algorithm::kBfs, sim::FaultPlan{}, 0);
  EXPECT_NE(report.find("\"faults\":{\"injected\":0,"), std::string::npos);
  EXPECT_NE(report.find("\"recovery_sec\":0"), std::string::npos);
}

}  // namespace
}  // namespace gb::algorithms
