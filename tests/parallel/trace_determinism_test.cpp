// PR contract for the observability layer: the exported trace document
// and the metrics snapshot derive only from simulated quantities, so the
// same cell must produce byte-identical bytes at every host
// `parallelism` setting — serial, a fixed pool, or hardware concurrency.
#include <gtest/gtest.h>

#include <string>

#include "algorithms/platform_suite.h"
#include "datasets/catalog.h"
#include "harness/experiment.h"
#include "obs/trace_json.h"
#include "sim/cluster.h"
#include "sim/faults.h"
#include "../test_util.h"

namespace gb {
namespace {

using harness::Measurement;
using platforms::Algorithm;

struct TracedRun {
  std::string json;
  obs::MetricsSnapshot metrics;
  harness::Outcome outcome = harness::Outcome::kError;
};

TracedRun traced_run(const platforms::Platform& platform,
                     const datasets::Dataset& ds, Algorithm algorithm,
                     std::uint32_t parallelism, const sim::FaultPlan& faults,
                     std::uint32_t checkpoint_interval = 0) {
  sim::ClusterConfig cfg;
  cfg.num_workers = 8;
  cfg.parallelism = parallelism;
  cfg.work_scale = ds.extrapolation();
  cfg.faults = faults;
  sim::Cluster cluster(cfg);
  auto params = harness::default_params(ds);
  params.checkpoint_interval = checkpoint_interval;
  const Measurement m =
      harness::run_cell(platform, ds, algorithm, params, cluster);

  obs::TraceMeta meta;
  meta.platform = platform.name();
  meta.dataset = ds.name;
  meta.algorithm = "cell";
  meta.outcome = harness::outcome_label(m.outcome);
  meta.total_time = m.result.total_time;

  TracedRun run;
  run.json = obs::trace_to_json(cluster, meta);
  run.metrics = m.metrics;
  run.outcome = m.outcome;
  return run;
}

void expect_identical(const TracedRun& a, const TracedRun& b,
                      const char* label) {
  EXPECT_EQ(a.outcome, b.outcome) << label;
  EXPECT_EQ(a.json, b.json) << label;
  EXPECT_EQ(a.metrics.counters, b.metrics.counters) << label;
  EXPECT_EQ(a.metrics.gauges, b.metrics.gauges) << label;
}

TEST(TraceDeterminism, CleanRunIsByteIdenticalAcrossParallelism) {
  const auto ds = test::as_dataset(test::barbell_graph());
  for (const auto& platform : algorithms::make_all_platforms()) {
    // parallelism: 1 = serial, 2 = dedicated pool, 0 = hardware.
    const TracedRun serial = traced_run(*platform, ds, Algorithm::kBfs, 1, {});
    const TracedRun pool2 = traced_run(*platform, ds, Algorithm::kBfs, 2, {});
    const TracedRun hw = traced_run(*platform, ds, Algorithm::kBfs, 0, {});
    expect_identical(serial, pool2, platform->name().c_str());
    expect_identical(serial, hw, platform->name().c_str());
    EXPECT_FALSE(serial.json.empty());
    // Host wall-clock data must never leak into the default export.
    EXPECT_EQ(serial.json.find("hostProfile"), std::string::npos);
  }
}

TEST(TraceDeterminism, FaultedRunIsByteIdenticalAcrossParallelism) {
  const auto ds = datasets::generate(datasets::DatasetId::kKGS, 0.01, 7);
  const auto hadoop = algorithms::make_hadoop();
  const TracedRun clean = traced_run(*hadoop, ds, Algorithm::kConn, 1, {});
  ASSERT_EQ(clean.outcome, harness::Outcome::kOk);
  // Reconstruct the clean run's simulated span to place faults mid-run.
  sim::FaultPlan plan;
  plan.add({.kind = sim::FaultKind::kWorkerCrash, .time = 100.0, .worker = 3});
  plan.add({.kind = sim::FaultKind::kStraggler,
            .time = 50.0,
            .worker = 1,
            .slowdown = 2.5,
            .duration = 100.0});

  const TracedRun serial = traced_run(*hadoop, ds, Algorithm::kConn, 1, plan);
  const TracedRun pool2 = traced_run(*hadoop, ds, Algorithm::kConn, 2, plan);
  const TracedRun hw = traced_run(*hadoop, ds, Algorithm::kConn, 0, plan);
  expect_identical(serial, pool2, "hadoop faulted");
  expect_identical(serial, hw, "hadoop faulted");
  // The fault schedule itself is parallelism-independent too.
  EXPECT_EQ(serial.metrics.counter("faults.injected"),
            hw.metrics.counter("faults.injected"));
}

TEST(TraceDeterminism, CheckpointedGiraphRecoveryIsByteIdentical) {
  const auto ds = datasets::generate(datasets::DatasetId::kKGS, 0.01, 7);
  const auto giraph = algorithms::make_giraph();
  const TracedRun clean = traced_run(*giraph, ds, Algorithm::kConn, 1, {});
  ASSERT_EQ(clean.outcome, harness::Outcome::kOk);
  sim::FaultPlan plan;
  plan.add({.kind = sim::FaultKind::kWorkerCrash, .time = 100.0, .worker = 2});

  const TracedRun serial =
      traced_run(*giraph, ds, Algorithm::kConn, 1, plan, 2);
  const TracedRun hw = traced_run(*giraph, ds, Algorithm::kConn, 0, plan, 2);
  expect_identical(serial, hw, "giraph checkpointed");
  EXPECT_GE(serial.metrics.counter("checkpoints.written"), 1u);
}

}  // namespace
}  // namespace gb
