#include "datasets/catalog.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/graph_stats.h"

namespace gb::datasets {
namespace {

TEST(Catalog, SevenDatasets) {
  EXPECT_EQ(all_datasets().size(), 7u);
}

TEST(Catalog, InfoMatchesPaperTable2) {
  const DatasetInfo& dota = info(DatasetId::kDotaLeague);
  EXPECT_EQ(dota.name, "DotaLeague");
  EXPECT_FALSE(dota.directed);
  EXPECT_EQ(dota.paper_vertices, 61'171u);
  EXPECT_EQ(dota.paper_edges, 50'870'316u);

  const DatasetInfo& citation = info(DatasetId::kCitation);
  EXPECT_TRUE(citation.directed);
  EXPECT_EQ(citation.paper_vertices, 3'764'117u);
}

TEST(Catalog, FindInfoByName) {
  ASSERT_NE(find_info("KGS"), nullptr);
  EXPECT_EQ(find_info("KGS")->id, DatasetId::kKGS);
  EXPECT_EQ(find_info("NoSuchGraph"), nullptr);
}

TEST(Catalog, FriendsterDefaultsToScaledDown) {
  EXPECT_LT(info(DatasetId::kFriendster).default_scale, 1.0);
}

// Generating at a small scale keeps this test quick while checking the
// pipeline end to end: generation, largest-component extraction,
// directivity, connectivity.
class ScaledGeneration : public ::testing::TestWithParam<DatasetId> {};

TEST_P(ScaledGeneration, ProducesConnectedGraphOfRightShape) {
  const DatasetInfo& meta = info(GetParam());
  const Dataset ds = generate(GetParam(), /*scale=*/0.02, /*seed=*/11);
  const Graph& g = ds.graph;
  EXPECT_EQ(g.directed(), meta.directed);
  EXPECT_GT(g.num_vertices(), 0u);
  EXPECT_GT(g.num_edges(), 0u);
  // Largest-component extraction means the result is weakly connected.
  const Graph again = largest_component(g);
  EXPECT_EQ(again.num_vertices(), g.num_vertices());
  // Extrapolation factor reflects the scale.
  EXPECT_DOUBLE_EQ(ds.extrapolation(), 1.0 / 0.02);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, ScaledGeneration,
                         ::testing::Values(DatasetId::kAmazon,
                                           DatasetId::kWikiTalk,
                                           DatasetId::kKGS,
                                           DatasetId::kCitation,
                                           DatasetId::kDotaLeague,
                                           DatasetId::kSynth,
                                           DatasetId::kFriendster));

TEST(Catalog, GenerationDeterministicBySeed) {
  const Dataset a = generate(DatasetId::kAmazon, 0.02, 3);
  const Dataset b = generate(DatasetId::kAmazon, 0.02, 3);
  EXPECT_EQ(a.graph.num_vertices(), b.graph.num_vertices());
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
}

TEST(Catalog, CacheRoundTrip) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gb_cache_test").string();
  std::filesystem::remove_all(dir);
  const Dataset generated =
      load_or_generate(DatasetId::kKGS, 0.02, 5, dir);
  ASSERT_TRUE(std::filesystem::exists(dir));
  const Dataset cached = load_or_generate(DatasetId::kKGS, 0.02, 5, dir);
  EXPECT_EQ(cached.graph.num_vertices(), generated.graph.num_vertices());
  EXPECT_EQ(cached.graph.num_edges(), generated.graph.num_edges());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gb::datasets
