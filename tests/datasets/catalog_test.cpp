#include "datasets/catalog.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/graph_stats.h"

namespace gb::datasets {
namespace {

TEST(Catalog, SevenDatasets) {
  EXPECT_EQ(all_datasets().size(), 7u);
}

TEST(Catalog, InfoMatchesPaperTable2) {
  const DatasetInfo& dota = info(DatasetId::kDotaLeague);
  EXPECT_EQ(dota.name, "DotaLeague");
  EXPECT_FALSE(dota.directed);
  EXPECT_EQ(dota.paper_vertices, 61'171u);
  EXPECT_EQ(dota.paper_edges, 50'870'316u);

  const DatasetInfo& citation = info(DatasetId::kCitation);
  EXPECT_TRUE(citation.directed);
  EXPECT_EQ(citation.paper_vertices, 3'764'117u);
}

TEST(Catalog, FindInfoByName) {
  ASSERT_NE(find_info("KGS"), nullptr);
  EXPECT_EQ(find_info("KGS")->id, DatasetId::kKGS);
  EXPECT_EQ(find_info("NoSuchGraph"), nullptr);
}

TEST(Catalog, FriendsterDefaultsToScaledDown) {
  EXPECT_LT(info(DatasetId::kFriendster).default_scale, 1.0);
}

// Generating at a small scale keeps this test quick while checking the
// pipeline end to end: generation, largest-component extraction,
// directivity, connectivity.
class ScaledGeneration : public ::testing::TestWithParam<DatasetId> {};

TEST_P(ScaledGeneration, ProducesConnectedGraphOfRightShape) {
  const DatasetInfo& meta = info(GetParam());
  const Dataset ds = generate(GetParam(), /*scale=*/0.02, /*seed=*/11);
  const Graph& g = ds.graph;
  EXPECT_EQ(g.directed(), meta.directed);
  EXPECT_GT(g.num_vertices(), 0u);
  EXPECT_GT(g.num_edges(), 0u);
  // Largest-component extraction means the result is weakly connected.
  const Graph again = largest_component(g);
  EXPECT_EQ(again.num_vertices(), g.num_vertices());
  // Extrapolation factor reflects the scale.
  EXPECT_DOUBLE_EQ(ds.extrapolation(), 1.0 / 0.02);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, ScaledGeneration,
                         ::testing::Values(DatasetId::kAmazon,
                                           DatasetId::kWikiTalk,
                                           DatasetId::kKGS,
                                           DatasetId::kCitation,
                                           DatasetId::kDotaLeague,
                                           DatasetId::kSynth,
                                           DatasetId::kFriendster));

TEST(Catalog, GenerationDeterministicBySeed) {
  const Dataset a = generate(DatasetId::kAmazon, 0.02, 3);
  const Dataset b = generate(DatasetId::kAmazon, 0.02, 3);
  EXPECT_EQ(a.graph.num_vertices(), b.graph.num_vertices());
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
}

TEST(Catalog, CacheRoundTrip) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gb_cache_test").string();
  std::filesystem::remove_all(dir);
  const Dataset generated =
      load_or_generate(DatasetId::kKGS, 0.02, 5, dir);
  ASSERT_TRUE(std::filesystem::exists(dir));
  const Dataset cached = load_or_generate(DatasetId::kKGS, 0.02, 5, dir);
  EXPECT_EQ(cached.graph.num_vertices(), generated.graph.num_vertices());
  EXPECT_EQ(cached.graph.num_edges(), generated.graph.num_edges());
  std::filesystem::remove_all(dir);
}

// The cache file for a cell, located without reaching into catalog
// internals: after a cold load_or_generate the directory holds exactly
// one .gbin file.
std::filesystem::path only_cache_file(const std::string& dir) {
  std::filesystem::path found;
  int count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".gbin") {
      found = entry.path();
      ++count;
    }
  }
  EXPECT_EQ(count, 1) << "expected exactly one cache file in " << dir;
  return found;
}

TEST(Catalog, TruncatedCacheIsTreatedAsAMiss) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gb_cache_truncated").string();
  std::filesystem::remove_all(dir);
  const Dataset generated = load_or_generate(DatasetId::kKGS, 0.02, 5, dir);
  const auto cache = only_cache_file(dir);
  std::filesystem::resize_file(cache, std::filesystem::file_size(cache) / 2);

  // Never a FormatError, never a crash: regenerate and repair the cache.
  const Dataset repaired = load_or_generate(DatasetId::kKGS, 0.02, 5, dir);
  EXPECT_EQ(repaired.graph.num_vertices(), generated.graph.num_vertices());
  EXPECT_EQ(repaired.graph.num_edges(), generated.graph.num_edges());
  const Dataset reloaded = load_or_generate(DatasetId::kKGS, 0.02, 5, dir);
  EXPECT_EQ(reloaded.graph.num_edges(), generated.graph.num_edges());
  std::filesystem::remove_all(dir);
}

TEST(Catalog, OversizedLengthCacheIsTreatedAsAMiss) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gb_cache_oversized").string();
  std::filesystem::remove_all(dir);
  const Dataset generated = load_or_generate(DatasetId::kKGS, 0.02, 5, dir);
  const auto cache = only_cache_file(dir);
  {
    // Corrupt the first vector length (offset 22, after the header) to a
    // value far larger than the file: the reader must notice, not
    // allocate terabytes.
    std::fstream out(cache, std::ios::binary | std::ios::in | std::ios::out);
    out.seekp(22);
    const std::uint64_t bogus = ~std::uint64_t{0} / 2;
    out.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  const Dataset repaired = load_or_generate(DatasetId::kKGS, 0.02, 5, dir);
  EXPECT_EQ(repaired.graph.num_vertices(), generated.graph.num_vertices());
  EXPECT_EQ(repaired.graph.num_edges(), generated.graph.num_edges());
  std::filesystem::remove_all(dir);
}

TEST(Catalog, GarbageCacheIsTreatedAsAMiss) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gb_cache_garbage").string();
  std::filesystem::remove_all(dir);
  const Dataset generated = load_or_generate(DatasetId::kKGS, 0.02, 5, dir);
  const auto cache = only_cache_file(dir);
  {
    std::ofstream out(cache, std::ios::binary | std::ios::trunc);
    out << "definitely not a graph";
  }
  const Dataset repaired = load_or_generate(DatasetId::kKGS, 0.02, 5, dir);
  EXPECT_EQ(repaired.graph.num_edges(), generated.graph.num_edges());
  std::filesystem::remove_all(dir);
}

TEST(Catalog, PublishLeavesNoTempFilesBehind) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gb_cache_tmpfiles").string();
  std::filesystem::remove_all(dir);
  load_or_generate(DatasetId::kKGS, 0.02, 5, dir);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension(), ".gbin")
        << "stray file " << entry.path();
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gb::datasets
